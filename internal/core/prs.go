package core

import (
	"fmt"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/cluster"
	"ds2hpc/internal/scistream"
	"ds2hpc/internal/tlsutil"
)

// prsDeployment routes producers through SciStream: producer → outbound
// S2DS on the producer-facility gateway → TLS overlay tunnel → inbound S2DS
// on the HPC gateway → broker node. One session is created per broker node
// so producers keep queue-master affinity (the paper's S2DS exposes a port
// range, 5100-5110, for the same reason). Consumers are inside the HPC
// facility and attach directly via NodePort, per Figure 3b.
//
// Matching §4.4, the broker speaks plain AMQP: SciStream's tunnel already
// provides TLS, so broker-side encryption would be redundant.
type prsDeployment struct {
	opts     Options
	name     ArchitectureName
	tunnel   scistream.Tunnel
	cl       *cluster.Cluster
	prodCS   *scistream.S2CS
	consCS   *scistream.S2CS
	sessions []*scistream.Session // one per broker node
}

// DeployPRS starts the Proxied Streaming architecture with the given
// tunnel driver and parallel-connection count.
func DeployPRS(opts Options, tunnel scistream.Tunnel, numConn int) (Deployment, error) {
	opts.defaults()
	// PRS brokers speak plain AMQP (the SciStream tunnel carries TLS), so
	// federation links between nodes ride plain TCP.
	cl, err := cluster.StartWithOptions(opts.Nodes, cluster.Options{Federation: opts.Federation, ReplicationFactor: opts.ReplicationFactor}, func(i int) broker.Config {
		return broker.Config{
			Link:        opts.Profile.DSNLink(fmt.Sprintf("dsn-%d", i)),
			MemoryLimit: opts.MemoryLimit,
			DataDir:     opts.DataDir,
			Durability:  opts.Durability,
		}
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (Deployment, error) {
		cl.Close()
		return nil, err
	}

	// Each S2CS generates its own self-signed certificate on startup;
	// the tunnel identity is shared so both S2DS peers trust each other.
	tunnelID, err := tlsutil.SelfSigned("s2ds-tunnel", "127.0.0.1")
	if err != nil {
		return fail(err)
	}
	prodID, err := tlsutil.SelfSigned("prod-s2cs", "127.0.0.1")
	if err != nil {
		return fail(err)
	}
	consID, err := tlsutil.SelfSigned("cons-s2cs", "127.0.0.1")
	if err != nil {
		return fail(err)
	}

	wan := opts.Profile.WANLink("overlay-wan")
	prodCS, err := scistream.NewS2CS(scistream.S2CSConfig{
		Identity:       prodID,
		TunnelIdentity: tunnelID,
		ServerName:     "127.0.0.1",
		WANLink:        wan,
		ProcLink:       opts.Profile.ProxyProcLink("ps2ds-proc"),
		TunnelFlowRate: opts.Profile.TunnelFlowBps,
	})
	if err != nil {
		return fail(err)
	}
	consCS, err := scistream.NewS2CS(scistream.S2CSConfig{
		Identity:       consID,
		TunnelIdentity: tunnelID,
		ServerName:     "127.0.0.1",
		WANLink:        wan,
		ProcLink:       opts.Profile.ProxyProcLink("cs2ds-proc"),
		TunnelFlowRate: opts.Profile.TunnelFlowBps,
	})
	if err != nil {
		prodCS.Close()
		return fail(err)
	}

	d := &prsDeployment{
		opts:   opts,
		tunnel: tunnel,
		cl:     cl,
		prodCS: prodCS,
		consCS: consCS,
	}
	switch {
	case tunnel == scistream.TunnelStunnel:
		d.name = PRSStunnel
	case numConn > 1:
		d.name = PRSHAProxy4Conns
	default:
		d.name = PRSHAProxy
	}

	// One session per broker node for queue-master affinity.
	uc := &scistream.S2UC{}
	for i := 0; i < cl.Size(); i++ {
		sess, err := uc.CreateSession(scistream.SessionRequest{
			ProducerS2CS: prodCS.Addr(),
			ConsumerS2CS: consCS.Addr(),
			ProducerCert: prodID.CertPEM,
			ConsumerCert: consID.CertPEM,
			Targets:      []string{cl.Node(i).Addr()},
			Tunnel:       tunnel,
			NumConn:      numConn,
		})
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("core: prs session for node %d: %w", i, err)
		}
		d.sessions = append(d.sessions, sess)
	}
	return d, nil
}

func (d *prsDeployment) Name() ArchitectureName    { return d.name }
func (d *prsDeployment) Cluster() *cluster.Cluster { return d.cl }
func (d *prsDeployment) Durable() bool             { return d.opts.DataDir != "" }

// MaxProducerConns reports the Stunnel concurrent-stream ceiling. The cap
// applies per shared tunnel; sessions to different nodes have independent
// tunnels, but the paper's work-sharing workload concentrates producers on
// two shared queues, so the per-tunnel limit is the binding one.
func (d *prsDeployment) MaxProducerConns() int {
	if d.tunnel == scistream.TunnelStunnel {
		return scistream.StunnelMaxStreams
	}
	return 0
}

func (d *prsDeployment) Close() error {
	if d.prodCS != nil {
		d.prodCS.Close()
	}
	if d.consCS != nil {
		d.consCS.Close()
	}
	return d.cl.Close()
}

// ProducerEndpoint composes the producer half of Figure 3b: client NIC
// link into the SciStream session whose target is the queue's master node
// (the S2DS pair and TLS overlay tunnel relay from there).
func (d *prsDeployment) ProducerEndpoint(queue string) Endpoint {
	sess := d.sessions[d.cl.OwnerOf(queue)]
	return d.opts.endpoint("amqp://" + sess.ClientAddr)
}

// ConsumerEndpoint attaches directly to the queue's master node (consumers
// are facility-internal in the PRS deployment), so with federation on it
// carries the node address list as reconnect seeds. Producer endpoints
// dial SciStream session addresses and do not rotate — the paper's S2DS
// sessions are pinned per target node.
func (d *prsDeployment) ConsumerEndpoint(queue string) Endpoint {
	e := d.opts.endpoint("amqp://" + d.cl.AddrFor(queue))
	if d.opts.Federation {
		e.Seeds = d.cl.Addrs()
	}
	return e
}
