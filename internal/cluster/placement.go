package cluster

import (
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVNodes is the number of virtual nodes each broker node projects
// onto the placement ring. 64 points per node keeps the per-node queue
// share within a few percent of even for the cluster sizes the scenarios
// run (2–8 nodes) while keeping ring rebuilds trivially cheap.
const defaultVNodes = 64

// ringPoint is one virtual node: a hash position on the ring and the
// physical node it maps to.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is a consistent-hash placement ring. Each member node contributes
// a fixed set of virtual points; a queue's master is the owner of the
// first point at or after the queue name's hash. Placement is therefore
// deterministic for a given member set — two processes that add the same
// nodes compute identical ownership, which is what lets every cluster
// node (and the pattern engine's co-location helpers) answer "who masters
// queue q" without a coordination round.
//
// The ring is topology-versioned: every membership change bumps Version,
// so callers can cheaply detect "ownership may have moved" and refresh
// cached routes.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint
	members map[int]bool
	version uint64
}

// NewRing creates an empty ring with the given virtual-node count per
// member (0 means defaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[int]bool)}
}

func vnodeHash(node, replica int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	n := putUvarint(buf[:0], uint64(node))
	n = append(n, '/')
	n = putUvarint(n, uint64(replica))
	h.Write(n)
	return mix64(h.Sum64())
}

// putUvarint appends a minimal varint encoding of v; the exact encoding
// only needs to be stable and injective per (node, replica).
func putUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-64a of short inputs (vnode
// labels, "ws-q-3"-style queue names) leaves the high bits barely
// avalanched, which bunches ring points into narrow bands and defeats
// the whole placement scheme; the finalizer spreads both point and key
// hashes uniformly over the 64-bit ring.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add joins node to the ring. Adding a current member is a no-op (no
// version bump), so re-registration after a restart is idempotent.
// It reports whether membership changed.
func (r *Ring) Add(node int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return false
	}
	r.members[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.version++
	return true
}

// Remove retires node from the ring; its arc is absorbed by the
// clockwise successors. Removing a non-member is a no-op. It reports
// whether membership changed.
func (r *Ring) Remove(node int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return false
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.version++
	return true
}

// Owner returns the node mastering key, or ok=false on an empty ring.
func (r *Ring) Owner(key string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return 0, false
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Owners returns up to n distinct nodes for key, walking the ring
// clockwise from the key's hash position — the replica placement walk.
// The first element is the master (identical to Owner); the rest are the
// successor nodes that host the key's mirrors, in ring order. Fewer than
// n members yields every member. The result is nil on an empty ring.
func (r *Ring) Owners(key string, n int) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for walked := 0; walked < len(r.points) && len(out) < n; walked++ {
		p := r.points[(i+walked)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Version returns the topology version; it increments on every
// membership change.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Members returns the current member set (unordered membership test
// slice, ascending).
func (r *Ring) Members() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Has reports whether node is a current ring member.
func (r *Ring) Has(node int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[node]
}
