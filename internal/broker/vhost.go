package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/wire"
)

// Errors surfaced as channel exceptions.
var (
	ErrNotFound           = errors.New("broker: not found")
	ErrPreconditionFailed = errors.New("broker: precondition failed")
	ErrMemoryAlarm        = errors.New("broker: memory high watermark reached")
)

// VHost is an isolated namespace of exchanges and queues. The paper's
// deployments use a single vhost per broker; multiple vhosts let several
// users share one MSS-provisioned service.
type VHost struct {
	Name string

	// MemoryLimit bounds the total ready bytes across all queues; when
	// exceeded, publishes are rejected (the broker's memory alarm).
	// Zero means unlimited. The paper reserves 80% of broker RAM for
	// payload queues.
	MemoryLimit int64

	mu        sync.RWMutex
	exchanges map[string]*Exchange
	queues    map[string]*Queue

	totalBytes atomic.Int64
}

// NewVHost creates a vhost containing the default exchanges.
func NewVHost(name string) *VHost {
	vh := &VHost{
		Name:      name,
		exchanges: map[string]*Exchange{},
		queues:    map[string]*Queue{},
	}
	// Default (nameless direct) exchange plus the standard pre-declared
	// exchanges clients expect.
	vh.exchanges[""] = NewExchange("", KindDirect)
	vh.exchanges["amq.direct"] = NewExchange("amq.direct", KindDirect)
	vh.exchanges["amq.fanout"] = NewExchange("amq.fanout", KindFanout)
	vh.exchanges["amq.topic"] = NewExchange("amq.topic", KindTopic)
	return vh
}

// TotalBytes reports ready payload bytes across all queues.
func (vh *VHost) TotalBytes() int64 { return vh.totalBytes.Load() }

// DeclareExchange creates (or verifies, if passive) an exchange.
func (vh *VHost) DeclareExchange(name, kind string, passive bool) (*Exchange, error) {
	vh.mu.Lock()
	defer vh.mu.Unlock()
	if e, ok := vh.exchanges[name]; ok {
		if e.Kind != kind && !passive {
			return nil, fmt.Errorf("%w: exchange %q exists with kind %q", ErrPreconditionFailed, name, e.Kind)
		}
		return e, nil
	}
	if passive {
		return nil, fmt.Errorf("%w: exchange %q", ErrNotFound, name)
	}
	switch kind {
	case KindDirect, KindFanout, KindTopic:
	default:
		return nil, fmt.Errorf("%w: unknown exchange kind %q", ErrPreconditionFailed, kind)
	}
	e := NewExchange(name, kind)
	vh.exchanges[name] = e
	return e, nil
}

// Exchange looks up an exchange.
func (vh *VHost) Exchange(name string) (*Exchange, bool) {
	vh.mu.RLock()
	defer vh.mu.RUnlock()
	e, ok := vh.exchanges[name]
	return e, ok
}

// DeleteExchange removes an exchange.
func (vh *VHost) DeleteExchange(name string, ifUnused bool) error {
	vh.mu.Lock()
	defer vh.mu.Unlock()
	e, ok := vh.exchanges[name]
	if !ok {
		return fmt.Errorf("%w: exchange %q", ErrNotFound, name)
	}
	if ifUnused && e.BindingCount() > 0 {
		return fmt.Errorf("%w: exchange %q in use", ErrPreconditionFailed, name)
	}
	if name == "" {
		return fmt.Errorf("%w: cannot delete default exchange", ErrPreconditionFailed)
	}
	delete(vh.exchanges, name)
	return nil
}

// DeclareQueue creates (or verifies, if passive) a queue. Anonymous names
// are generated. The default-exchange binding (queue name as routing key)
// is implicit via Route on the default exchange.
func (vh *VHost) DeclareQueue(name string, exclusive, autoDelete, passive bool, args wire.Table) (*Queue, error) {
	vh.mu.Lock()
	defer vh.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("amq.gen-%d", len(vh.queues)+1)
		for vh.queues[name] != nil {
			name += "x"
		}
	}
	if q, ok := vh.queues[name]; ok {
		return q, nil
	}
	if passive {
		return nil, fmt.Errorf("%w: queue %q", ErrNotFound, name)
	}
	limits := QueueLimits{
		MaxLen:   int(args.Int("x-max-length", 0)),
		MaxBytes: args.Int("x-max-length-bytes", 0),
		Overflow: args.String("x-overflow", OverflowDropHead),
	}
	q := NewQueue(name, limits)
	q.Exclusive = exclusive
	q.AutoDelete = autoDelete
	q.onBytes = func(d int64) { vh.totalBytes.Add(d) }
	vh.queues[name] = q
	// Implicit default-exchange binding.
	vh.exchanges[""].Bind(q, name)
	return q, nil
}

// Queue looks up a queue by name.
func (vh *VHost) Queue(name string) (*Queue, bool) {
	vh.mu.RLock()
	defer vh.mu.RUnlock()
	q, ok := vh.queues[name]
	return q, ok
}

// DeleteQueue removes a queue and all its bindings, returning the purged
// message count.
func (vh *VHost) DeleteQueue(name string, ifUnused, ifEmpty bool) (int, error) {
	vh.mu.Lock()
	defer vh.mu.Unlock()
	q, ok := vh.queues[name]
	if !ok {
		return 0, fmt.Errorf("%w: queue %q", ErrNotFound, name)
	}
	if ifUnused && q.ConsumerCount() > 0 {
		return 0, fmt.Errorf("%w: queue %q has consumers", ErrPreconditionFailed, name)
	}
	if ifEmpty && q.Len() > 0 {
		return 0, fmt.Errorf("%w: queue %q not empty", ErrPreconditionFailed, name)
	}
	n := q.Len()
	delete(vh.queues, name)
	for _, e := range vh.exchanges {
		e.UnbindQueue(q)
	}
	q.markDeleted()
	return n, nil
}

// Publish routes a message through an exchange into zero or more queues.
// It returns the number of queues the message reached. With a reject-publish
// queue at capacity or the vhost memory alarm raised, the error reports the
// rejection so confirm mode can nack the publisher.
func (vh *VHost) Publish(exchange, routingKey string, m *Message) (int, error) {
	vh.mu.RLock()
	e, ok := vh.exchanges[exchange]
	vh.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: exchange %q", ErrNotFound, exchange)
	}
	if vh.MemoryLimit > 0 && vh.totalBytes.Load() >= vh.MemoryLimit {
		return 0, ErrMemoryAlarm
	}
	queues := e.Route(routingKey)
	routed := 0
	var rejectErr error
	for _, q := range queues {
		// Fanout and multi-binding routes copy the message so per-queue
		// Redelivered flags do not interfere.
		msg := m
		if len(queues) > 1 {
			cp := *m
			msg = &cp
		}
		if err := q.Publish(msg); err != nil {
			rejectErr = err
			continue
		}
		routed++
	}
	if rejectErr != nil && routed == 0 {
		return 0, rejectErr
	}
	return routed, nil
}

// QueueNames returns the declared queue names (stable order not guaranteed).
func (vh *VHost) QueueNames() []string {
	vh.mu.RLock()
	defer vh.mu.RUnlock()
	out := make([]string, 0, len(vh.queues))
	for n := range vh.queues {
		out = append(out, n)
	}
	return out
}
