package forwarder

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"
)

// Sink is where a Forwarder delivers framed payloads. Send returning
// nil acknowledges the frame; an error makes the forwarder retry the
// same frame. Send is called from a single worker goroutine per
// forwarder, but one sink may serve several forwarders.
type Sink interface {
	Send(frame []byte) error
	Close() error
}

// HTTPSink POSTs each frame to a collector endpoint as one
// application/octet-stream body. Any 2xx status acknowledges the
// frame; everything else (including transport errors) is retryable.
type HTTPSink struct {
	URL    string
	Client *http.Client // nil uses a 5s-timeout client
}

// NewHTTPSink builds a sink posting to url (e.g.
// "http://collector:9191/ingest").
func NewHTTPSink(url string) *HTTPSink {
	return &HTTPSink{URL: url, Client: &http.Client{Timeout: 5 * time.Second}}
}

// Send posts one frame.
func (s *HTTPSink) Send(frame []byte) error {
	c := s.Client
	if c == nil {
		c = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := c.Post(s.URL, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("forwarder: collector returned %s", resp.Status)
	}
	return nil
}

// Close releases idle connections.
func (s *HTTPSink) Close() error {
	if s.Client != nil {
		s.Client.CloseIdleConnections()
	}
	return nil
}

// FileSink appends frames to a local file — the test sink and the
// "collector is a cron job" deployment. Frames are written verbatim;
// ReadFrame recovers them, and the CRC catches a torn tail.
type FileSink struct {
	mu sync.Mutex
	f  *os.File
}

// NewFileSink opens (creating or appending) the frame file.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f}, nil
}

// Send appends one frame.
func (s *FileSink) Send(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("forwarder: file sink closed")
	}
	_, err := s.f.Write(frame)
	return err
}

// Close syncs and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
