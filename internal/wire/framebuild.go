package wire

import (
	"encoding/binary"
	"io"
	"net"

	"ds2hpc/internal/metrics"
)

// Frame building: hot-path senders encode complete frames — header, payload
// and frame-end — directly into one Writer buffer and emit the whole batch
// with a single Write call, instead of one write syscall per frame section.
// Effectiveness is observable through the metrics registry:
//
//	wire.frames_coalesced  frames that shared a Write with other frames
//	wire.coalesced_writes  batched Write calls issued via FlushFrames

var (
	framesCoalesced = metrics.Default.Counter("wire.frames_coalesced")
	coalescedWrites = metrics.Default.Counter("wire.coalesced_writes")
)

// netBufs keeps the net import out of the pure-codec file while letting
// Writer hold a net.Buffers scratch field.
type netBufs = net.Buffers

// StartFrame begins a frame of the given type, leaving the 32-bit payload
// size zero until EndFrame patches it. It returns the payload start offset
// to pass to EndFrame. Between the two calls the caller appends the frame
// payload with the Writer's encoding methods.
func (w *Writer) StartFrame(ftype byte, channel uint16) int {
	w.Octet(ftype)
	w.Short(channel)
	w.Long(0)
	return len(w.buf)
}

// EndFrame patches the payload size of the frame begun at payloadStart and
// appends the frame-end octet.
func (w *Writer) EndFrame(payloadStart int) {
	size := len(w.buf) - payloadStart
	binary.BigEndian.PutUint32(w.buf[payloadStart-4:payloadStart], uint32(size))
	w.Octet(FrameEnd)
}

// AppendRawFrame appends one complete frame with a verbatim payload.
func (w *Writer) AppendRawFrame(ftype byte, channel uint16, payload []byte) {
	off := w.StartFrame(ftype, channel)
	w.buf = append(w.buf, payload...)
	w.EndFrame(off)
}

// AppendMethodFrame appends one complete method frame, encoding the method
// arguments in place (no intermediate payload slice).
func (w *Writer) AppendMethodFrame(channel uint16, m Method) {
	off := w.StartFrame(FrameMethod, channel)
	c, id := m.ID()
	w.Short(c)
	w.Short(id)
	m.Marshal(w)
	w.EndFrame(off)
}

// AppendContentFrames appends the full method + content-header + body frame
// sequence for one content-bearing basic-class method (basic.publish,
// basic.deliver, basic.get-ok, basic.return), splitting the body at
// frameMax. It returns the number of frames appended.
func (w *Writer) AppendContentFrames(channel uint16, m Method, props *Properties, body []byte, frameMax uint32) int {
	w.AppendMethodFrame(channel, m)
	off := w.StartFrame(FrameHeader, channel)
	marshalContentHeader(w, ClassBasic, uint64(len(body)), props)
	w.EndFrame(off)
	frames := 2
	max := int(frameMax)
	if max <= 0 {
		max = DefaultFrameMax
	}
	for start := 0; start < len(body); start += max {
		end := start + max
		if end > len(body) {
			end = len(body)
		}
		w.AppendRawFrame(FrameBody, channel, body[start:end])
		frames++
	}
	return frames
}

// zcMinBorrow is the smallest body chunk AppendContentFramesZC borrows
// instead of copying. Below it the memcpy is cheaper than an extra iovec
// entry; above it the copy dominates and the chunk rides the vectored
// write in place.
const zcMinBorrow = 2048

// AppendContentFramesZC is AppendContentFrames with zero-copy bodies:
// body chunks of at least zcMinBorrow bytes are recorded as borrow
// segments instead of being copied into the Writer's buffer, and
// FlushFrames stitches buffer and borrowed slices into one vectored
// write. The caller must keep body valid and unmodified until the
// frames are flushed (delivery paths hold the message's refcount across
// the flush, which guarantees exactly that).
func (w *Writer) AppendContentFramesZC(channel uint16, m Method, props *Properties, body []byte, frameMax uint32) int {
	w.AppendMethodFrame(channel, m)
	off := w.StartFrame(FrameHeader, channel)
	marshalContentHeader(w, ClassBasic, uint64(len(body)), props)
	w.EndFrame(off)
	frames := 2
	max := int(frameMax)
	if max <= 0 {
		max = DefaultFrameMax
	}
	for start := 0; start < len(body); start += max {
		end := start + max
		if end > len(body) {
			end = len(body)
		}
		chunk := body[start:end]
		if len(chunk) < zcMinBorrow {
			w.AppendRawFrame(FrameBody, channel, chunk)
		} else {
			// Frame header into the buffer, chunk borrowed, frame-end
			// octet back in the buffer after the splice point.
			w.Octet(FrameBody)
			w.Short(channel)
			w.Long(uint32(len(chunk)))
			w.segs = append(w.segs, borrowSeg{cut: len(w.buf), ext: chunk})
			w.extLen += len(chunk)
			w.Octet(FrameEnd)
		}
		frames++
	}
	return frames
}

// FlushFrames emits every frame accumulated in the Writer with a single
// Write call — a plain write when everything was copied in, a vectored
// write (writev on TCP) when body segments were borrowed — resets the
// buffer, and records the coalescing counters. frames is the number of
// frames in the buffer (counted by the caller or returned from
// AppendContentFrames/AppendContentFramesZC).
func (w *Writer) FlushFrames(dst io.Writer, frames int) error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 && w.extLen == 0 {
		return nil
	}
	var err error
	if len(w.segs) == 0 {
		_, err = dst.Write(w.buf)
	} else {
		iov := w.iov[:0]
		prev := 0
		for _, s := range w.segs {
			if s.cut > prev {
				iov = append(iov, w.buf[prev:s.cut])
				prev = s.cut
			}
			iov = append(iov, s.ext)
		}
		if prev < len(w.buf) {
			iov = append(iov, w.buf[prev:])
		}
		w.iov = iov // keep grown scratch for reuse
		w.nb = net.Buffers(iov)
		_, err = w.nb.WriteTo(dst)
		w.nb = nil // WriteTo re-sliced it; drop so nothing stays pinned
	}
	w.buf = w.buf[:0]
	w.dropBorrows()
	coalescedWrites.Inc()
	if frames > 1 {
		framesCoalesced.Add(uint64(frames))
	}
	return err
}
