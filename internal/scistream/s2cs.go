package scistream

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"ds2hpc/internal/netem"
	"ds2hpc/internal/tlsutil"
)

// ControlRequest is the JSON message S2UC sends to an S2CS instance. It
// corresponds to the `s2uc inbound-request` / `s2uc outbound-request`
// commands shown in the paper's §4.4 deployment.
type ControlRequest struct {
	// Type is "inbound" (consumer side: expose a WAN proxy in front of
	// the streaming service) or "outbound" (producer side: expose a local
	// proxy that tunnels to the remote WAN proxy).
	Type string `json:"type"`
	// UID identifies the session; assigned by the inbound request and
	// echoed by the outbound request.
	UID string `json:"uid,omitempty"`
	// Tunnel selects the driver ("stunnel" or "haproxy").
	Tunnel string `json:"tunnel"`
	// NumConn is the number of parallel tunnel connections.
	NumConn int `json:"num_conn"`
	// ReceiverPorts are the streaming-service endpoints (inbound) —
	// the paper's --receiver_ports option.
	ReceiverPorts []string `json:"receiver_ports,omitempty"`
	// RemoteProxy is the WAN address of the inbound proxy (outbound).
	RemoteProxy string `json:"remote_proxy,omitempty"`
}

// ControlResponse reports the created proxy endpoint.
type ControlResponse struct {
	UID       string `json:"uid"`
	ProxyAddr string `json:"proxy_addr"`
	Err       string `json:"err,omitempty"`
}

// S2CSConfig configures a control server for one facility side.
type S2CSConfig struct {
	// Addr is the control listen address.
	Addr string
	// Identity is the facility's certificate: it secures the control
	// channel and is reused as the tunnel mTLS identity, mirroring the
	// self-signed certificate the S2CS container generates on startup.
	Identity *tlsutil.Identity
	// TunnelIdentity, if set, overrides the identity used on the data
	// tunnel (both sides must share a trust root).
	TunnelIdentity *tlsutil.Identity
	// ServerName for outbound tunnel verification.
	ServerName string
	// WANLink shapes the overlay tunnel.
	WANLink *netem.Link
	// ClientLink shapes the facility-internal hop to applications.
	ClientLink *netem.Link
	// ProcLink models per-proxy processing capacity.
	ProcLink *netem.Link
	// TunnelFlowRate caps this relay's aggregate Stunnel flow (bps);
	// one shared link models the single stunnel process's throughput.
	TunnelFlowRate int64
	// DialTarget dials the streaming service from the inbound proxy.
	DialTarget DialFunc
}

// S2CS is a running control server. One instance runs on each facility's
// gateway node in the paper's deployment (PS2CS and CS2CS pods).
type S2CS struct {
	cfg      S2CSConfig
	ln       net.Listener
	flowLink *netem.Link // shared across all stunnel tunnels

	mu        sync.Mutex
	inbounds  map[string]*Inbound
	outbounds map[string]*Outbound
	nextUID   int
	closed    bool
}

// NewS2CS starts a control server.
func NewS2CS(cfg S2CSConfig) (*S2CS, error) {
	if cfg.Identity == nil {
		return nil, fmt.Errorf("scistream: S2CS needs a TLS identity")
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := tls.Listen("tcp", addr, cfg.Identity.ServerConfig())
	if err != nil {
		return nil, err
	}
	s := &S2CS{
		cfg:       cfg,
		ln:        ln,
		inbounds:  map[string]*Inbound{},
		outbounds: map[string]*Outbound{},
	}
	if cfg.TunnelFlowRate > 0 {
		s.flowLink = netem.NewLink("stunnel-flow", cfg.TunnelFlowRate, 0)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr is the control endpoint address.
func (s *S2CS) Addr() string { return s.ln.Addr().String() }

// Close stops the control server and all proxies it launched.
func (s *S2CS) Close() error {
	s.mu.Lock()
	s.closed = true
	ins := s.inbounds
	outs := s.outbounds
	s.inbounds = map[string]*Inbound{}
	s.outbounds = map[string]*Outbound{}
	s.mu.Unlock()
	for _, in := range ins {
		in.Close()
	}
	for _, o := range outs {
		o.Close()
	}
	return s.ln.Close()
}

// Inbound returns the inbound proxy for a session UID (for tests/metrics).
func (s *S2CS) Inbound(uid string) (*Inbound, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	in, ok := s.inbounds[uid]
	return in, ok
}

func (s *S2CS) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(c)
	}
}

func (s *S2CS) serve(c net.Conn) {
	defer c.Close()
	var req ControlRequest
	if err := json.NewDecoder(c).Decode(&req); err != nil {
		return
	}
	resp := s.handle(&req)
	json.NewEncoder(c).Encode(resp)
}

func (s *S2CS) handle(req *ControlRequest) *ControlResponse {
	switch req.Type {
	case "inbound":
		return s.handleInbound(req)
	case "outbound":
		return s.handleOutbound(req)
	default:
		return &ControlResponse{Err: fmt.Sprintf("unknown request type %q", req.Type)}
	}
}

func (s *S2CS) tunnelIdentity() *tlsutil.Identity {
	if s.cfg.TunnelIdentity != nil {
		return s.cfg.TunnelIdentity
	}
	return s.cfg.Identity
}

func (s *S2CS) handleInbound(req *ControlRequest) *ControlResponse {
	if len(req.ReceiverPorts) == 0 {
		return &ControlResponse{Err: "inbound request needs receiver_ports"}
	}
	in, err := NewInbound(InboundConfig{
		Targets:    req.ReceiverPorts,
		Tunnel:     Tunnel(req.Tunnel),
		Identity:   s.tunnelIdentity(),
		WANLink:    s.cfg.WANLink,
		ProcLink:   s.cfg.ProcLink,
		FlowLink:   s.flowLink,
		DialTarget: s.cfg.DialTarget,
	})
	if err != nil {
		return &ControlResponse{Err: err.Error()}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		in.Close()
		return &ControlResponse{Err: "control server closed"}
	}
	s.nextUID++
	uid := fmt.Sprintf("s2-session-%d", s.nextUID)
	s.inbounds[uid] = in
	s.mu.Unlock()
	return &ControlResponse{UID: uid, ProxyAddr: in.Addr()}
}

func (s *S2CS) handleOutbound(req *ControlRequest) *ControlResponse {
	if req.RemoteProxy == "" {
		return &ControlResponse{Err: "outbound request needs remote_proxy"}
	}
	dialWAN := DialFunc(net.Dial)
	if s.cfg.WANLink != nil {
		d := &netem.Dialer{Link: s.cfg.WANLink}
		dialWAN = d.Dial
	}
	out, err := NewOutbound(OutboundConfig{
		RemoteProxy: req.RemoteProxy,
		Tunnel:      Tunnel(req.Tunnel),
		NumConns:    req.NumConn,
		Identity:    s.tunnelIdentity(),
		ServerName:  s.cfg.ServerName,
		ClientLink:  s.cfg.ClientLink,
		ProcLink:    s.cfg.ProcLink,
		FlowLink:    s.flowLink,
		DialWAN:     dialWAN,
	})
	if err != nil {
		return &ControlResponse{Err: err.Error()}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		out.Close()
		return &ControlResponse{Err: "control server closed"}
	}
	uid := req.UID
	if uid == "" {
		s.nextUID++
		uid = fmt.Sprintf("s2-session-%d", s.nextUID)
	}
	s.outbounds[uid] = out
	s.mu.Unlock()
	return &ControlResponse{UID: uid, ProxyAddr: out.Addr()}
}
