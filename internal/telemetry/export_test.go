package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a deterministic registry covering every probe
// type, the stable surface the golden file locks in.
func goldenSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("broker.published", `queue=ws-q-0`).Add(128)
	r.Counter("broker.published", `queue=ws-q-1`).Add(64)
	// A context-keyed series renders identically to a tag-keyed one
	// (tags canonicalized into sorted label order).
	r.CounterCtx("broker.published", Intern("queue=ws-q-2", "node=1")).Add(32)
	r.Counter("transport.relay_bytes").Add(1 << 20)
	r.Gauge("pattern.inflight", "role=producer").Set(8)
	r.GaugeFunc("broker.queue_depth", func() int64 { return 5 }, `queue=ws-q-0`)
	r.Watermark("broker.queue_depth_peak").Record(42)
	h := r.Histogram("rtt_ns")
	for _, v := range []int64{1000, 1000, 2500, 40000, 40000, 40000, 900000} {
		h.Record(v)
	}
	return r.Snapshot()
}

// TestPrometheusGolden locks in the exposition format: stable metric
// names, labels, ordering, and histogram bucket rendering.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusCumulativeBuckets(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// le-bucket counts must be cumulative and capped by _count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rtt_ns_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		last = n
	}
	if !strings.Contains(out, `rtt_ns_bucket{le="+Inf"} 7`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "rtt_ns_count 7") {
		t.Fatalf("missing _count:\n%s", out)
	}
}

// TestSnapshotJSONRoundTrip locks in that a snapshot survives
// marshal/unmarshal intact — the contract benchsnap and the HTTP
// endpoint rely on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := goldenSnapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", s, &back)
	}
	// Quantiles still work on the decoded histogram.
	if q := back.Histograms["rtt_ns"].Quantile(50); q < 40000 || q > 40000+BucketWidth(40000) {
		t.Fatalf("decoded median = %d", q)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	if got := promName("broker.queue-depth"); got != "broker_queue_depth" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("0bad"); got != "_bad" {
		t.Fatalf("promName leading digit = %q", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "hits 3") {
		t.Fatal("metrics endpoint missing counter")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["hits"] != 3 {
		t.Fatalf("snapshot endpoint: %+v", snap.Counters)
	}
}
