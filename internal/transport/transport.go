// Package transport models the client→service connection path of a
// cross-facility streaming architecture as an ordered chain of hops.
// The paper's subject is precisely this path — direct AMQPS NodePorts
// (DTS, Figure 3a), SciStream proxies over a TLS overlay (PRS, 3b), a
// managed load balancer and ingress (MSS, 3c) — and each deployment in
// internal/core is declared as a Path composition instead of carrying
// its own dial/TLS/relay plumbing.
//
// A Hop transforms the dial step for everything after it; Path lists
// hops client-side first, so the first hop's connection wrapper is the
// outermost layer. The package also provides the shared server-side
// pieces every relaying hop needs: a half-close-correct Relay (one
// implementation instead of the former three copies in scistream and
// mss) and the Admission worker gate the MSS load balancer applies to
// connection setup. fault.go adds the WAN-fault injector that scripted
// resilience scenarios compose into a path.
package transport

import (
	"crypto/tls"
	"net"
	"time"

	"ds2hpc/internal/netem"
)

// DialFunc dials a transport connection. It is the signature shared with
// amqp.Config.Dial and the proxy stacks.
type DialFunc func(network, addr string) (net.Conn, error)

// Hop is one segment of a connection path. Apply wraps the dial step for
// everything beyond this hop and returns the combined dial step.
type Hop interface {
	// Name identifies the hop in diagnostics ("link(andes-nic)").
	Name() string
	// Apply composes the hop over the rest of the path.
	Apply(next DialFunc) DialFunc
}

// Path is an ordered hop chain, client-side first: the first hop is the
// segment nearest the client, and its connection wrapper (shaping, fault
// injection) becomes the outermost layer of the dialed connection.
type Path []Hop

// baseDial is the path terminus: a plain TCP dial with a bounded timeout.
func baseDial(network, addr string) (net.Conn, error) {
	return net.DialTimeout(network, addr, 10*time.Second)
}

// Dial composes the path over plain TCP dialing.
func (p Path) Dial() DialFunc { return p.DialOver(baseDial) }

// DialOver composes the path over an explicit base dialer.
func (p Path) DialOver(base DialFunc) DialFunc {
	d := base
	for i := len(p) - 1; i >= 0; i-- {
		d = p[i].Apply(d)
	}
	return d
}

// String renders the chain for diagnostics: "fault → link(nic) → tls".
func (p Path) String() string {
	if len(p) == 0 {
		return "direct"
	}
	s := p[0].Name()
	for _, h := range p[1:] {
		s += " → " + h.Name()
	}
	return s
}

// hop is a named Hop built from a compose function.
type hop struct {
	name  string
	apply func(next DialFunc) DialFunc
}

func (h hop) Name() string                 { return h.name }
func (h hop) Apply(next DialFunc) DialFunc { return h.apply(next) }

// HopFunc builds a Hop from a name and a compose function.
func HopFunc(name string, apply func(next DialFunc) DialFunc) Hop {
	return hop{name: name, apply: apply}
}

// Link shapes every connection dialed through the path with the given
// emulated link (a client NIC, a WAN segment). A nil link is a no-op hop.
func Link(l *netem.Link) Hop {
	name := "link"
	if l != nil {
		name = "link(" + l.Name + ")"
	}
	return HopFunc(name, func(next DialFunc) DialFunc {
		if l == nil {
			return next
		}
		return func(network, addr string) (net.Conn, error) {
			c, err := next(network, addr)
			if err != nil {
				return nil, err
			}
			return netem.Wrap(c, l), nil
		}
	})
}

// TLSClient originates TLS over the dialed connection — the client side
// of an AMQPS NodePort or of the MSS front door (where cfg.ServerName
// carries the SNI hostname the LB routes on). The handshake is driven
// eagerly so dial errors surface at connect time.
func TLSClient(cfg *tls.Config) Hop {
	name := "tls"
	if cfg != nil && cfg.ServerName != "" {
		name = "tls(sni=" + cfg.ServerName + ")"
	}
	return HopFunc(name, func(next DialFunc) DialFunc {
		return func(network, addr string) (net.Conn, error) {
			raw, err := next(network, addr)
			if err != nil {
				return nil, err
			}
			tc := tls.Client(raw, cfg)
			if err := tc.Handshake(); err != nil {
				raw.Close()
				return nil, err
			}
			return tc, nil
		}
	})
}

// Target redirects every dial to a fixed address — the front door of a
// proxy or load balancer — regardless of the address the client asked
// for (which names the service, not the path to it).
func Target(addr string) Hop {
	return HopFunc("target("+addr+")", func(next DialFunc) DialFunc {
		return func(network, _ string) (net.Conn, error) {
			return next(network, addr)
		}
	})
}

// AdmissionGate runs every dial through the admission gate: the dial
// waits for a worker slot and pays the per-connection setup cost before
// the connection is returned. The MSS load balancer applies the same
// Admission on its accept side; the hop form lets paths model managed
// front doors without a live proxy process.
func AdmissionGate(a *Admission) Hop {
	return HopFunc("admission", func(next DialFunc) DialFunc {
		return func(network, addr string) (net.Conn, error) {
			if err := a.Acquire(nil); err != nil {
				return nil, err
			}
			defer a.Release()
			c, err := next(network, addr)
			if err != nil {
				return nil, err
			}
			a.Setup()
			return c, nil
		}
	})
}
