package h5lite

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	in := &File{Datasets: []Dataset{
		{Name: "a", Type: U8, Dims: []uint64{4}, Data: []byte{1, 2, 3, 4}},
		{Name: "grid", Type: I16, Dims: []uint64{2, 3}, Data: make([]byte, 12)},
	}}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round-trip mismatch")
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	f := &File{Datasets: []Dataset{
		{Name: "bad", Type: F64, Dims: []uint64{3}, Data: make([]byte, 8)},
	}}
	if _, err := f.Encode(); err == nil {
		t.Fatal("expected shape validation error")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode([]byte("definitely not h5")); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	in := &File{Datasets: []Dataset{
		{Name: "x", Type: U8, Dims: []uint64{100}, Data: make([]byte, 100)},
	}}
	data, _ := in.Encode()
	if _, err := Decode(data[:len(data)-10]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDatasetLookup(t *testing.T) {
	f := &File{Datasets: []Dataset{
		{Name: "one", Type: U8, Dims: []uint64{1}, Data: []byte{9}},
	}}
	if ds, ok := f.Dataset("one"); !ok || ds.Data[0] != 9 {
		t.Fatal("lookup failed")
	}
	if _, ok := f.Dataset("two"); ok {
		t.Fatal("phantom dataset")
	}
}

func TestDTypeSizes(t *testing.T) {
	want := map[DType]int{U8: 1, I16: 2, I32: 4, F32: 4, F64: 8, DType(99): 0}
	for dt, w := range want {
		if got := dt.Size(); got != w {
			t.Errorf("Size(%d) = %d, want %d", dt, got, w)
		}
	}
}

func TestNewFrameFileApproximatesSize(t *testing.T) {
	const want = 1 << 20 // the LCLS 1 MiB payload
	f, err := NewFrameFile(5, want)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < want*8/10 || len(data) > want*11/10 {
		t.Fatalf("encoded %d bytes, want ~%d", len(data), want)
	}
	if _, ok := f.Dataset("entry/data/frame"); !ok {
		t.Fatal("frame dataset missing")
	}
}

func TestNewFrameFileDeterministic(t *testing.T) {
	a, _ := NewFrameFile(3, 64*1024)
	b, _ := NewFrameFile(3, 64*1024)
	da, _ := a.Encode()
	db, _ := b.Encode()
	if !bytes.Equal(da, db) {
		t.Fatal("frame generation not deterministic")
	}
}

func TestQuickRoundTripU8(t *testing.T) {
	f := func(name string, data []byte) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		in := &File{Datasets: []Dataset{
			{Name: name, Type: U8, Dims: []uint64{uint64(len(data))}, Data: data},
		}}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(enc)
		if err != nil {
			return false
		}
		got, ok := out.Dataset(name)
		return ok && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
