package amqp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/telemetry"
)

// Pool-wide runtime-cost gauges, exported through telemetry.Default so
// `-watch` and /snapshot.json show how many logical clients are mapped
// onto how many physical sockets during a scale run.
var (
	poolSessions atomic.Int64
	poolConns    atomic.Int64
)

func init() {
	telemetry.Default.GaugeFunc("client_sessions", poolSessions.Load)
	telemetry.Default.GaugeFunc("client_conns", poolConns.Load)
}

// PoolSessions reports the number of open pool sessions process-wide.
func PoolSessions() int64 { return poolSessions.Load() }

// PoolConns reports the number of live pooled connections process-wide.
func PoolConns() int64 { return poolConns.Load() }

// ErrPoolClosed reports a session request against a closed pool.
var ErrPoolClosed = errors.New("amqp: client pool closed")

// PoolConfig shapes a ClientPool.
type PoolConfig struct {
	// URL is the broker URI every pooled connection dials.
	URL string
	// Config is the per-connection configuration (dialer, TLS, reconnect
	// policy). All pooled connections share it.
	Config Config
	// SessionsPerConn is the soft fan-out target: the pool prefers
	// growing a new physical connection once every existing one carries
	// this many sessions. Zero means "pack to the negotiated channel
	// limit". The negotiated ChannelMax is always the hard per-connection
	// cap; when growth is refused (MaxConns or DialGate) the pool packs
	// past the soft target up to that cap.
	SessionsPerConn int
	// MaxConns caps the number of physical connections; zero = unbounded.
	MaxConns int
	// DialGate, when non-nil, is consulted before the pool dials a new
	// physical connection beyond the first. Returning false makes the
	// pool keep packing sessions onto existing connections instead —
	// this is how the pattern engine enforces a global goroutine budget
	// across several per-endpoint pools.
	DialGate func() bool
}

// ClientPool multiplexes many lightweight logical clients over a small
// set of physical AMQP connections. Each Session is an ordinary channel
// on one of the pooled connections: opening one costs a channel.open
// round-trip and a map entry, not a socket, a reader goroutine, or a
// writer goroutine. Delivery dispatch stays on the owning connection's
// single read loop (use ConsumeFunc for goroutine-free consumers), so a
// pool carrying 100k idle sessions runs on ~⌈100k/ChannelMax⌉ goroutines.
type ClientPool struct {
	cfg PoolConfig

	mu     sync.Mutex
	conns  []*poolConn
	closed bool

	pacerOnce sync.Once
	pacer     *Pacer
}

// poolConn is one physical connection and its session count.
type poolConn struct {
	conn     *Connection
	sessions int
}

// NewClientPool creates an empty pool; connections are dialed lazily as
// sessions are requested.
func NewClientPool(cfg PoolConfig) *ClientPool {
	return &ClientPool{cfg: cfg}
}

// Session opens a logical client: a channel on the least-loaded pooled
// connection, dialing a new connection when the fan-out policy asks for
// one. The returned Session is used exactly like a Channel; Close
// releases only the channel, never the shared connection.
func (p *ClientPool) Session() (*Session, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		pc, err := p.placeLocked()
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		pc.sessions++
		p.mu.Unlock()

		ch, err := pc.conn.Channel()
		if err != nil {
			p.mu.Lock()
			pc.sessions--
			p.mu.Unlock()
			if errors.Is(err, ErrChannelMax) || errors.Is(err, ErrClosed) {
				// The chosen connection filled up (or died) between
				// placement and open; re-place on another one.
				continue
			}
			return nil, err
		}
		poolSessions.Add(1)
		return &Session{Channel: ch, pool: p, pc: pc}, nil
	}
}

// placeLocked picks (or dials) the connection for one new session. The
// caller holds p.mu.
func (p *ClientPool) placeLocked() (*poolConn, error) {
	// Prune connections that died without a reconnect policy (or whose
	// reconnect budget ran out): their sessions are gone and new ones
	// must not land there.
	live := p.conns[:0]
	for _, pc := range p.conns {
		if pc.conn.IsClosed() {
			poolConns.Add(-1)
			poolSessions.Add(-int64(pc.sessions))
			continue
		}
		live = append(live, pc)
	}
	p.conns = live

	var best *poolConn
	for _, pc := range p.conns {
		if pc.sessions >= p.connCap(pc) {
			continue
		}
		if best == nil || pc.sessions < best.sessions {
			best = pc
		}
	}
	soft := p.cfg.SessionsPerConn
	needGrow := best == nil || (soft > 0 && best.sessions >= soft)
	if needGrow && p.mayGrowLocked() {
		conn, err := DialConfig(p.cfg.URL, p.cfg.Config)
		if err != nil {
			if best != nil {
				return best, nil // fall back to packing
			}
			return nil, err
		}
		pc := &poolConn{conn: conn}
		p.conns = append(p.conns, pc)
		poolConns.Add(1)
		return pc, nil
	}
	if best == nil {
		return nil, fmt.Errorf("amqp: client pool exhausted: %d connections at their channel limit and growth refused (MaxConns/DialGate)", len(p.conns))
	}
	return best, nil
}

// connCap is the hard session capacity of one connection: the channel-id
// space negotiated at handshake.
func (p *ClientPool) connCap(pc *poolConn) int {
	if m := pc.conn.ChannelMax(); m > 0 {
		return m
	}
	return 65535
}

// mayGrowLocked reports whether policy allows dialing another connection.
func (p *ClientPool) mayGrowLocked() bool {
	if p.cfg.MaxConns > 0 && len(p.conns) >= p.cfg.MaxConns {
		return false
	}
	if len(p.conns) > 0 && p.cfg.DialGate != nil && !p.cfg.DialGate() {
		return false
	}
	return true
}

// release returns one session slot to pc.
func (p *ClientPool) release(pc *poolConn) {
	p.mu.Lock()
	if pc.sessions > 0 {
		pc.sessions--
	}
	p.mu.Unlock()
	poolSessions.Add(-1)
}

// Pacer returns the pool's shared deadline scheduler, starting it on
// first use. All paced writes and backoffs across the pool's sessions
// share its single timer goroutine.
func (p *ClientPool) Pacer() *Pacer {
	p.pacerOnce.Do(func() { p.pacer = NewPacer() })
	return p.pacer
}

// Stats reports the pool's live connection and session counts.
func (p *ClientPool) Stats() (conns, sessions int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.conns {
		if pc.conn.IsClosed() {
			continue
		}
		conns++
		sessions += pc.sessions
	}
	return conns, sessions
}

// Close shuts down every pooled connection (and with them all sessions).
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	pacer := p.pacer
	p.mu.Unlock()
	if pacer != nil {
		pacer.Stop()
	}
	var firstErr error
	for _, pc := range conns {
		if err := pc.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		poolConns.Add(-1)
		poolSessions.Add(-int64(pc.sessions))
	}
	return firstErr
}

// Session is one logical client: a Channel plus its place in the pool.
// All Channel methods apply; Close releases the channel back to the
// pool's accounting without touching the shared physical connection.
type Session struct {
	*Channel
	pool *ClientPool
	pc   *poolConn
	once sync.Once
}

// Conn exposes the owning physical connection (shared with sibling
// sessions) — useful for tests and for co-locating related channels.
func (s *Session) Conn() *Connection { return s.Channel.conn }

// Sibling opens another session multiplexed onto the same physical
// connection, for channels that must observe the same transport (e.g. a
// closed-loop producer's reply consumer living next to its publish
// channel). It counts against the connection's channel capacity.
func (s *Session) Sibling() (*Session, error) {
	ch, err := s.Channel.conn.Channel()
	if err != nil {
		return nil, err
	}
	s.pool.mu.Lock()
	s.pc.sessions++
	s.pool.mu.Unlock()
	poolSessions.Add(1)
	return &Session{Channel: ch, pool: s.pool, pc: s.pc}, nil
}

// Close closes the session's channel and releases its pool slot. Safe to
// call more than once; the physical connection stays up for siblings.
func (s *Session) Close() error {
	var err error
	s.once.Do(func() {
		err = s.Channel.Close()
		s.pool.release(s.pc)
	})
	return err
}
