package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
)

// TestServerStartPublishShutdown smoke-tests the binary's full lifecycle:
// start on an ephemeral port, serve a real client round-trip, and shut
// down cleanly on a signal.
func TestServerStartPublishShutdown(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrs := make(chan []string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-nodes", "2"}, sig, &out,
			func(a []string) { addrs <- a })
	}()

	var nodes []string
	select {
	case nodes = <-addrs:
	case err := <-done:
		t.Fatalf("server exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start listening")
	}
	if len(nodes) != 2 {
		t.Fatalf("addrs = %v, want 2 nodes", nodes)
	}

	conn, err := amqp.Dial(fmt.Sprintf("amqp://%s/", nodes[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.QueueDeclare("smoke", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := ch.Publish("", "smoke", false, false, amqp.Publishing{Body: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	d, ok, err := ch.Get("smoke", true)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(d.Body) != "ping" {
		t.Fatalf("body %q", d.Body)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on signal")
	}
	if !strings.Contains(out.String(), "listening on amqp://") {
		t.Fatalf("missing listen banner in output: %s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown message in output: %s", out.String())
	}
}

// TestBadFlagRejected checks flag parsing surfaces errors instead of
// exiting the process.
func TestBadFlagRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, nil, &out, nil); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// TestBadAddrRejected checks an unbindable address becomes an error.
func TestBadAddrRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "256.0.0.1:bogus"}, nil, &out, nil); err == nil {
		t.Fatal("bad listen address must be rejected")
	}
}
