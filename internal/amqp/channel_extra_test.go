package amqp_test

import (
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
)

func TestExchangeDeclareAndDelete(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c := dial(t, s)
	ch := openChannel(t, c)
	if err := ch.ExchangeDeclare("tmp-x", "direct", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	// Conflicting kind must raise a channel exception.
	ch2 := openChannel(t, c)
	if err := ch2.ExchangeDeclare("tmp-x", "fanout", false, false, false, false, nil); err == nil {
		t.Fatal("expected kind-conflict exception")
	}
	if err := ch.ExchangeDelete("tmp-x", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestQueueUnbindStopsRouting(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c := dial(t, s)
	ch := openChannel(t, c)
	ch.ExchangeDeclare("ub-x", "direct", false, false, false, false, nil)
	q, _ := ch.QueueDeclare("ub-q", false, false, false, false, nil)
	ch.QueueBind(q.Name, "k", "ub-x", false, nil)
	ch.Publish("ub-x", "k", false, false, amqp.Publishing{Body: []byte("a")})
	time.Sleep(50 * time.Millisecond)
	if err := ch.QueueUnbind(q.Name, "k", "ub-x", nil); err != nil {
		t.Fatal(err)
	}
	ch.Publish("ub-x", "k", false, false, amqp.Publishing{Body: []byte("b")})
	time.Sleep(50 * time.Millisecond)
	d, ok, _ := ch.Get(q.Name, true)
	if !ok || string(d.Body) != "a" {
		t.Fatalf("first get: ok=%v body=%q", ok, d.Body)
	}
	if _, ok, _ := ch.Get(q.Name, true); ok {
		t.Fatal("message routed after unbind")
	}
}

func TestNotifyCloseOnChannelException(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c := dial(t, s)
	ch := openChannel(t, c)
	closed := ch.NotifyClose(make(chan *amqp.Error, 1))
	// Passive declare of a missing queue raises the exception.
	if _, err := ch.QueueDeclare("", false, false, false, false, amqp.Table{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Consume("never-declared", "", true, false, false, false, nil); err == nil {
		t.Fatal("expected exception")
	}
	select {
	case e := <-closed:
		if e == nil {
			t.Fatal("nil error on close notification")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("NotifyClose never fired")
	}
}

func TestConnectionNotifyCloseOnServerShutdown(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c, err := amqp.Dial("amqp://" + s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	closed := c.NotifyClose(make(chan *amqp.Error, 1))
	s.Close()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("connection close never observed")
	}
	if !c.IsClosed() {
		t.Fatal("IsClosed false after shutdown")
	}
}

func TestCancelStopsDeliveries(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c := dial(t, s)
	ch := openChannel(t, c)
	q, _ := ch.QueueDeclare("cancel-q", false, false, false, false, nil)
	dc, err := ch.Consume(q.Name, "tag-1", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Cancel("tag-1", false); err != nil {
		t.Fatal(err)
	}
	// Channel closes and later publishes stay in the queue.
	if _, ok := <-dc; ok {
		t.Fatal("delivery after cancel")
	}
	ch.Publish("", q.Name, false, false, amqp.Publishing{Body: []byte("parked")})
	time.Sleep(50 * time.Millisecond)
	if _, ok, _ := ch.Get(q.Name, true); !ok {
		t.Fatal("message lost after cancel")
	}
}

func TestHeartbeatKeepsIdleConnectionAlive(t *testing.T) {
	s := startBroker(t, broker.Config{Heartbeat: time.Second})
	c, err := amqp.DialConfig("amqp://"+s.Addr(), amqp.Config{Heartbeat: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.Channel()
	if err != nil {
		t.Fatal(err)
	}
	// Idle well past two heartbeat intervals; the connection must survive.
	time.Sleep(2500 * time.Millisecond)
	if _, err := ch.QueueDeclare("hb-q", false, false, false, false, nil); err != nil {
		t.Fatalf("connection died during idle: %v", err)
	}
}

func TestConcurrentChannelsOneConnection(t *testing.T) {
	s := startBroker(t, broker.Config{})
	c := dial(t, s)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch, err := c.Channel()
			if err != nil {
				errs <- err
				return
			}
			name := string(rune('a'+i)) + "-chq"
			if _, err := ch.QueueDeclare(name, false, false, false, false, nil); err != nil {
				errs <- err
				return
			}
			for m := 0; m < 10; m++ {
				if err := ch.Publish("", name, false, false, amqp.Publishing{Body: []byte{byte(m)}}); err != nil {
					errs <- err
					return
				}
			}
			errs <- ch.Close()
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
