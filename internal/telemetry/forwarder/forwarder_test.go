package forwarder

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ds2hpc/internal/telemetry"
)

// flakySink is a scriptable in-memory sink: it refuses frames while
// down and records accepted ones.
type flakySink struct {
	mu       sync.Mutex
	down     bool
	failures int // fail this many more Sends, then accept
	frames   [][]byte
	attempts int
}

func (s *flakySink) Send(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.down {
		return errors.New("sink down")
	}
	if s.failures > 0 {
		s.failures--
		return errors.New("transient failure")
	}
	s.frames = append(s.frames, append([]byte(nil), frame...))
	return nil
}

func (s *flakySink) Close() error { return nil }

func (s *flakySink) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func (s *flakySink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func (s *flakySink) payloads(t *testing.T) []Payload {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Payload, 0, len(s.frames))
	for _, f := range s.frames {
		body, err := ReadFrame(bytes.NewReader(f))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		p, err := Decode(body)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		out = append(out, p)
	}
	return out
}

func tick(i int) telemetry.Tick {
	return telemetry.Tick{
		T:      time.Unix(int64(i), 0),
		Values: map[string]float64{"consumed": float64(i)},
	}
}

// TestForwarderResilience is the bounded-memory / exactly-once
// contract: with the sink dead, a small queue holds only the newest
// payloads (oldest dropped, accounted); after the sink recovers, every
// surviving payload is delivered exactly once and sent+dropped covers
// everything enqueued.
func TestForwarderResilience(t *testing.T) {
	sink := &flakySink{}
	sink.setDown(true)
	f := New(Config{
		Sink:     sink,
		QueueCap: 8,
		Backoff:  time.Millisecond,
		Probes:   telemetry.NewRegistry(),
	})

	const n = 32
	for i := 0; i < n; i++ {
		f.ForwardTick(tick(i))
	}

	// Bounded memory: the queue never exceeds its cap (+1 in-flight).
	if st := f.Stats(); st.Queued > 8 {
		t.Fatalf("queue grew past cap: %d", st.Queued)
	}

	// Let the worker bounce off the dead sink at least once before
	// recovery so the retry path is actually exercised.
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Retried == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	sink.setDown(false)
	deadline = time.Now().Add(5 * time.Second)
	for sink.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	f.Stop()

	st := f.Stats()
	if st.Sent+st.Dropped != n {
		t.Fatalf("sent %d + dropped %d != enqueued %d", st.Sent, st.Dropped, n)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected drops with cap 8 and %d payloads while sink down", n)
	}
	if st.Retried == 0 {
		t.Fatalf("expected retries while sink was down")
	}

	// Exactly once: every delivered seq is unique, and the survivors are
	// the newest payloads (drop-oldest policy).
	seen := map[uint64]bool{}
	for _, p := range sink.payloads(t) {
		if seen[p.Seq] {
			t.Fatalf("payload seq %d delivered twice", p.Seq)
		}
		seen[p.Seq] = true
		if p.Kind != KindTick {
			t.Fatalf("unexpected payload kind %q", p.Kind)
		}
	}
	if int64(len(seen)) != st.Sent {
		t.Fatalf("sink saw %d unique payloads, stats claim %d sent", len(seen), st.Sent)
	}
	if !seen[n] {
		t.Fatalf("newest payload (seq %d) was dropped; drop policy should evict oldest", n)
	}
}

// TestForwarderSinkFlap exercises backoff through a transient outage:
// the first K attempts fail, then everything drains with no loss.
func TestForwarderSinkFlap(t *testing.T) {
	sink := &flakySink{failures: 5}
	f := New(Config{
		Sink:     sink,
		QueueCap: 64,
		Backoff:  time.Millisecond,
		Probes:   telemetry.NewRegistry(),
	})

	const n = 16
	for i := 0; i < n; i++ {
		f.ForwardTick(tick(i))
	}
	f.Stop()

	st := f.Stats()
	if st.Sent != n || st.Dropped != 0 {
		t.Fatalf("want %d sent 0 dropped, got %d sent %d dropped", n, st.Sent, st.Dropped)
	}
	if st.Retried < 5 {
		t.Fatalf("want >=5 retries through the flap, got %d", st.Retried)
	}
	if got := sink.count(); got != n {
		t.Fatalf("sink saw %d frames, want %d", got, n)
	}
}

// TestForwarderStopFlushes: Stop on a healthy sink drains the queue
// before returning.
func TestForwarderStopFlushes(t *testing.T) {
	sink := &flakySink{}
	f := New(Config{Sink: sink, Probes: telemetry.NewRegistry()})
	const n = 10
	for i := 0; i < n; i++ {
		f.ForwardTick(tick(i))
	}
	f.Stop()
	if got := sink.count(); got != n {
		t.Fatalf("Stop flushed %d frames, want %d", got, n)
	}
	if st := f.Stats(); st.Sent != n || st.Dropped != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

// TestForwarderStopDeadSinkBounded: Stop against a dead sink returns
// within the flush timeout and accounts the stragglers as dropped.
func TestForwarderStopDeadSinkBounded(t *testing.T) {
	sink := &flakySink{}
	sink.setDown(true)
	f := New(Config{
		Sink:         sink,
		QueueCap:     16,
		Backoff:      time.Millisecond,
		FlushTimeout: 50 * time.Millisecond,
		Probes:       telemetry.NewRegistry(),
	})
	const n = 8
	for i := 0; i < n; i++ {
		f.ForwardTick(tick(i))
	}
	start := time.Now()
	f.Stop()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Stop took %v against a dead sink", elapsed)
	}
	st := f.Stats()
	if st.Sent+st.Dropped != n {
		t.Fatalf("sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
	if st.Sent != 0 {
		t.Fatalf("dead sink accepted %d frames", st.Sent)
	}
	// The flush window must keep backing off, not busy-spin: with a 1ms
	// initial backoff a 50ms window fits tens of attempts, while a spin
	// regression produces tens of thousands.
	if st.Retried > 2000 {
		t.Fatalf("retried %d times in a 50ms flush window (busy-spin?)", st.Retried)
	}
	// Enqueue after Stop is a counted drop, not a hang.
	f.ForwardTick(tick(99))
	if st := f.Stats(); st.Dropped != n+1 {
		t.Fatalf("post-Stop enqueue not dropped: %+v", st)
	}
}

// TestFrameRoundTrip covers the wire format: encode/decode identity,
// multiple frames on one stream, CRC detection of corruption, and torn
// tails.
func TestFrameRoundTrip(t *testing.T) {
	p := Payload{Kind: KindHealth, Seq: 7, T: time.Unix(42, 0).UTC(),
		Health: &telemetry.HealthEvent{Rule: "queue-depth-watermark", Source: "queue_depth",
			FromState: "ok", ToState: "warn", Value: 2048}}
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		body, err := encodePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(body)
	}

	for i := 0; i < 3; i++ {
		body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := Decode(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != p.Kind || got.Seq != p.Seq || got.Health == nil || got.Health.Rule != p.Health.Rule {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want clean EOF at stream end, got %v", err)
	}

	// Flip a body byte: CRC must catch it.
	frame, err := encodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-2] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("corrupted frame passed CRC")
	}

	// Torn tail: a truncated frame is ErrUnexpectedEOF, not silence.
	if _, err := ReadFrame(bytes.NewReader(frame[:frameHeader+3])); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte("BOGUS-MAGIC-1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// encodePayload frames a payload through the production marshal path.
func encodePayload(p Payload) ([]byte, error) {
	body, err := marshalPayload(p)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(body), nil
}

// TestHTTPSink delivers through a real HTTP round trip and maps
// non-2xx statuses to retryable errors.
func TestHTTPSink(t *testing.T) {
	var mu sync.Mutex
	var got []Payload
	fail := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		body, err := ReadFrame(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := Decode(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = append(got, p)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	sink := NewHTTPSink(srv.URL)
	defer sink.Close()

	frame, err := encodePayload(Payload{Kind: KindTick, Seq: 1, Values: map[string]float64{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Send(frame); err == nil {
		t.Fatal("503 response should be a retryable error")
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	if err := sink.Send(frame); err != nil {
		t.Fatalf("Send: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Kind != KindTick {
		t.Fatalf("server decoded %+v", got)
	}
}

// TestFileSink writes frames through a forwarder to disk and reads
// them all back.
func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.dstl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Sink: sink, Probes: telemetry.NewRegistry()})
	f.ForwardTick(tick(1))
	f.ForwardHealth(telemetry.HealthEvent{Rule: "consume-stall", FromState: "ok", ToState: "warn"})
	f.ForwardSnapshot(&telemetry.Snapshot{Counters: map[string]int64{"broker.published": 9}})
	f.Stop()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(data)
	var kinds []string
	for {
		body, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, p.Kind)
	}
	want := []string{KindTick, KindHealth, KindSnapshot}
	if len(kinds) != len(want) {
		t.Fatalf("read %v kinds, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("frame %d kind %q, want %q", i, kinds[i], want[i])
		}
	}
}
