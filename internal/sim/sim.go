// Package sim is the streaming simulator of the paper's §5.2: it runs a
// messaging pattern over a deployed architecture with a given workload and
// experiment configuration, averages multiple runs per data point, and
// produces the sweeps behind each figure. A TCP coordinator component (see
// coordinator.go) mirrors the paper's simulator layout, where a dedicated
// coordinator node tells producers and consumers which queues to use and
// aggregates their metrics.
//
// Experiment is a thin adapter over the declarative scenario API: Run and
// RunOn validate the experiment, translate it to a scenario.Spec, and
// execute it through scenario's shared role engine. New code should use
// internal/scenario directly.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/scenario"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/workload"
)

// PatternName selects a messaging pattern (a registered pattern role
// graph; the string doubles as the graph name).
type PatternName string

// The three patterns of §5.1 (broadcast with and without gather are
// reported separately in Figure 7), plus the multi-stage pipeline enabled
// by the role engine.
const (
	PatternWorkSharing     PatternName = pattern.WorkSharingName
	PatternFeedback        PatternName = pattern.FeedbackName
	PatternBroadcast       PatternName = pattern.BroadcastName
	PatternBroadcastGather PatternName = pattern.BroadcastGatherName
	PatternPipeline        PatternName = pattern.PipelineName
)

// AllPatterns lists every pattern an Experiment can select.
var AllPatterns = []PatternName{
	PatternWorkSharing, PatternFeedback, PatternBroadcast, PatternBroadcastGather, PatternPipeline,
}

// ErrBadSpec reports an Experiment rejected by up-front validation —
// negative client counts, a zero message budget, an unknown pattern or
// workload — instead of hanging or failing deep inside a run.
var ErrBadSpec = errors.New("sim: invalid experiment")

// Experiment is one data point's configuration.
type Experiment struct {
	Architecture core.ArchitectureName
	Workload     workload.Workload
	Pattern      PatternName
	Producers    int
	Consumers    int
	// MessagesPerProducer per run (the paper streams up to 128K per run;
	// scaled-down runs use less).
	MessagesPerProducer int
	// Runs averaged per data point (paper: 3).
	Runs int
	// Options configure the deployment (nodes, fabric profile).
	Options core.Options
	// Tuning mirrors pattern.Config knobs; zero values use defaults.
	WorkQueues int
	Prefetch   int
	AckBatch   int
	Window     int
	Timeout    time.Duration
}

// validate rejects experiments that could only hang or fail mid-run. The
// shared rules (negative counts, zero messages, unknown pattern/workload,
// negative runs) live in scenario.Spec.Validate; only the translation
// fidelity check is sim-specific.
func (e Experiment) validate() error {
	if err := e.spec().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// The scenario layer resolves workloads by name with only the payload
	// size overridable, so any other customization would be silently
	// undone in translation — reject it loudly instead (callers needing a
	// custom workload use internal/pattern directly).
	base, err := workload.ByName(e.Workload.Name)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	base.PayloadBytes = e.Workload.PayloadBytes
	if base != e.Workload {
		return fmt.Errorf("%w: workload %q customized beyond payload size (only PayloadBytes survives the scenario translation)",
			ErrBadSpec, e.Workload.Name)
	}
	return nil
}

// spec translates the experiment into the declarative scenario form. The
// deployment section is left empty: sim deploys from the richer
// core.Options itself and runs on the resulting deployment.
func (e Experiment) spec() scenario.Spec {
	// Only the unset value gets the paper's 3-run default; a negative
	// count flows through so validation rejects it.
	runs := e.Runs
	if runs == 0 {
		runs = 3
	}
	return scenario.Spec{
		Deployment: scenario.Deployment{Architecture: string(e.Architecture)},
		Workload: scenario.Workload{
			Name:         e.Workload.Name,
			PayloadBytes: e.Workload.PayloadBytes,
		},
		Pattern:             string(e.Pattern),
		Producers:           e.Producers,
		Consumers:           e.Consumers,
		MessagesPerProducer: e.MessagesPerProducer,
		Runs:                runs,
		Tuning: scenario.Tuning{
			WorkQueues: e.WorkQueues,
			Prefetch:   e.Prefetch,
			AckBatch:   e.AckBatch,
			Window:     e.Window,
		},
		TimeoutMS: e.Timeout.Milliseconds(),
	}
}

// Point is one measured data point.
type Point struct {
	Experiment Experiment
	Result     *metrics.Result
	// P50, P95, P99 are round-trip percentiles from the scenario
	// report's streaming histogram (zero for patterns without RTTs).
	P50, P95, P99 time.Duration
	// Timeline is the per-tick consumer-throughput rollup of the runs.
	Timeline []telemetry.Point
	// Infeasible marks configurations the architecture cannot run (the
	// paper's missing Stunnel points beyond 16 consumers).
	Infeasible bool
}

// Run executes the experiment: deploy once, run Runs times, merge.
func Run(exp Experiment) (*Point, error) {
	if err := exp.validate(); err != nil {
		return nil, err
	}
	dep, err := core.Deploy(exp.Architecture, exp.Options)
	if err != nil {
		return nil, fmt.Errorf("sim: deploy %s: %w", exp.Architecture, err)
	}
	defer dep.Close()
	return RunOn(dep, exp)
}

// RunOn executes the experiment on an existing deployment (reused across
// points of a sweep to avoid redeploy cost).
func RunOn(dep core.Deployment, exp Experiment) (*Point, error) {
	if err := exp.validate(); err != nil {
		return nil, err
	}
	rep, err := scenario.RunOn(context.Background(), dep, exp.spec())
	if err != nil {
		if errors.Is(err, scenario.ErrBadSpec) {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Point{
		Experiment: exp,
		Result:     rep.Result,
		P50:        rep.P50,
		P95:        rep.P95,
		P99:        rep.P99,
		Timeline:   rep.Timeline,
		Infeasible: rep.Infeasible,
	}, nil
}

// ConsumerCounts is the x-axis of every figure: 1-64 consumers.
var ConsumerCounts = scenario.ConsumerCounts

// Sweep runs the experiment across consumer counts for one architecture,
// reusing a single deployment. Except for the single-producer broadcast
// patterns, producers scale with consumers, matching §5.2 ("all other
// tests were performed with an equal number of producers and consumers").
func Sweep(exp Experiment, consumerCounts []int) ([]*Point, error) {
	if err := exp.validate(); err != nil {
		return nil, err
	}
	if len(consumerCounts) == 0 {
		consumerCounts = ConsumerCounts
	}
	dep, err := core.Deploy(exp.Architecture, exp.Options)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	singleProducer := false
	if g, ok := pattern.Lookup(string(exp.Pattern)); ok {
		singleProducer = g.SingleProducer
	}
	var points []*Point
	for _, n := range consumerCounts {
		e := exp
		e.Consumers = n
		if singleProducer {
			e.Producers = 1
		} else {
			e.Producers = n
		}
		p, err := RunOn(dep, e)
		if err != nil {
			return points, err
		}
		points = append(points, p)
	}
	return points, nil
}
