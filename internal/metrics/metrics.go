// Package metrics collects and summarizes the two quantities the paper
// reports — aggregate consumer throughput (messages per second) and
// per-message round-trip time — plus the derived streaming overhead of an
// architecture relative to the DTS baseline and the RTT CDFs of Figures 5
// and 8.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// RTTSample is one per-message round-trip measurement.
type RTTSample = time.Duration

// Collector accumulates RTT samples and message counts concurrently.
type Collector struct {
	mu       sync.Mutex
	rtts     []time.Duration
	consumed int64
	produced int64
	errors   int64
	start    time.Time
	end      time.Time
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Start marks the experiment start time.
func (c *Collector) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start = time.Now()
}

// Stop marks the experiment end time.
func (c *Collector) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.end = time.Now()
}

// AddRTT records one round-trip sample.
func (c *Collector) AddRTT(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rtts = append(c.rtts, d)
}

// AddConsumed counts delivered messages.
func (c *Collector) AddConsumed(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.consumed += n
}

// AddProduced counts published messages.
func (c *Collector) AddProduced(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.produced += n
}

// AddError counts failures (rejected publishes, timeouts).
func (c *Collector) AddError() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errors++
}

// Snapshot freezes the collector into a Result.
func (c *Collector) Snapshot() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	end := c.end
	if end.IsZero() {
		end = time.Now()
	}
	dur := end.Sub(c.start)
	r := &Result{
		Duration: dur,
		Consumed: c.consumed,
		Produced: c.produced,
		Errors:   c.errors,
		RTTs:     append([]time.Duration(nil), c.rtts...),
	}
	if dur > 0 {
		r.Throughput = float64(c.consumed) / dur.Seconds()
	}
	sort.Slice(r.RTTs, func(i, j int) bool { return r.RTTs[i] < r.RTTs[j] })
	return r
}

// Result is one experiment run's summary.
type Result struct {
	Duration   time.Duration
	Consumed   int64
	Produced   int64
	Errors     int64
	Throughput float64         // aggregate msgs/sec across all consumers
	RTTs       []time.Duration // sorted ascending
}

// MedianRTT returns the 50th percentile RTT (0 if no samples).
func (r *Result) MedianRTT() time.Duration { return r.PercentileRTT(50) }

// PercentileRTT returns the p-th percentile RTT using nearest-rank.
func (r *Result) PercentileRTT(p float64) time.Duration {
	if len(r.RTTs) == 0 {
		return 0
	}
	if p <= 0 {
		return r.RTTs[0]
	}
	if p >= 100 {
		return r.RTTs[len(r.RTTs)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.RTTs))))
	if rank < 1 {
		rank = 1
	}
	return r.RTTs[rank-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	RTT time.Duration
	P   float64 // cumulative probability in (0, 1]
}

// CDF returns up to points evenly spaced points of the RTT CDF, as plotted
// in the paper's Figures 5 and 8.
func (r *Result) CDF(points int) []CDFPoint {
	n := len(r.RTTs)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*n/points - 1
		out = append(out, CDFPoint{
			RTT: r.RTTs[idx],
			P:   float64(idx+1) / float64(n),
		})
	}
	return out
}

// FractionUnder reports the fraction of RTTs at or below the threshold
// (e.g. the paper's "PRS keeps 80% of message RTTs under 0.7 seconds").
func (r *Result) FractionUnder(d time.Duration) float64 {
	if len(r.RTTs) == 0 {
		return 0
	}
	idx := sort.Search(len(r.RTTs), func(i int) bool { return r.RTTs[i] > d })
	return float64(idx) / float64(len(r.RTTs))
}

// Overhead is the paper's derived metric: how much worse `other` is than
// the DTS baseline. For throughput it is base/other (2.0 = "2x overhead",
// i.e. half the baseline's throughput); for RTT it is other/base.
func Overhead(baseThroughput, otherThroughput float64) float64 {
	if otherThroughput <= 0 {
		return math.Inf(1)
	}
	return baseThroughput / otherThroughput
}

// RTTOverhead computes latency overhead relative to baseline.
func RTTOverhead(baseRTT, otherRTT time.Duration) float64 {
	if baseRTT <= 0 {
		return math.Inf(1)
	}
	return float64(otherRTT) / float64(baseRTT)
}

// Merge combines run results (averaging throughput, pooling RTTs), used to
// aggregate the paper's three runs per data point.
func Merge(runs []*Result) *Result {
	if len(runs) == 0 {
		return &Result{}
	}
	out := &Result{}
	var tp float64
	for _, r := range runs {
		out.Consumed += r.Consumed
		out.Produced += r.Produced
		out.Errors += r.Errors
		out.Duration += r.Duration
		tp += r.Throughput
		out.RTTs = append(out.RTTs, r.RTTs...)
	}
	out.Throughput = tp / float64(len(runs))
	out.Duration /= time.Duration(len(runs))
	sort.Slice(out.RTTs, func(i, j int) bool { return out.RTTs[i] < out.RTTs[j] })
	return out
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("consumed=%d throughput=%.1f msg/s median_rtt=%v errors=%d",
		r.Consumed, r.Throughput, r.MedianRTT(), r.Errors)
}
