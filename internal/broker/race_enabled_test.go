//go:build race

package broker

// raceEnabled reports that the race detector is instrumenting this build.
// sync.Pool deliberately drops a fraction of Puts under the race detector,
// so zero-allocation assertions over pooled hot paths are skipped.
const raceEnabled = true
