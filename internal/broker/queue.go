package broker

import (
	"errors"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/telemetry"
)

// Broker-wide telemetry probes. Each queue captures its own counter
// shard at construction, so the per-message updates below stay one
// uncontended atomic add even with many queues publishing at once.
var (
	telPublished = telemetry.Default.Counter("broker.published")
	telDelivered = telemetry.Default.Counter("broker.delivered")
	telAcked     = telemetry.Default.Counter("broker.acked")
	telRequeued  = telemetry.Default.Counter("broker.requeued")
	telDepthPeak = telemetry.Default.Watermark("broker.queue_depth_peak")

	queueSeq atomic.Int64 // round-robin shard assignment for new queues
)

// queueTel is a queue's captured shard set.
type queueTel struct {
	published *telemetry.CounterShard
	delivered *telemetry.CounterShard
	acked     *telemetry.CounterShard
	requeued  *telemetry.CounterShard
}

func newQueueTel() queueTel {
	i := int(queueSeq.Add(1))
	return queueTel{
		published: telPublished.Shard(i),
		delivered: telDelivered.Shard(i),
		acked:     telAcked.Shard(i),
		requeued:  telRequeued.Shard(i),
	}
}

// Overflow policies (RabbitMQ classic-queue x-overflow argument). The paper
// sets "reject-publish" so producers can detect backpressure and republish.
const (
	OverflowDropHead      = "drop-head"
	OverflowRejectPublish = "reject-publish"
)

// ErrQueueFull is reported to publishers when a reject-publish queue is at
// capacity. With publisher confirms enabled this surfaces as a basic.nack.
var ErrQueueFull = errors.New("broker: queue full (reject-publish)")

// QueueLimits captures the classic-queue resource arguments.
type QueueLimits struct {
	// MaxLen bounds the number of ready messages; 0 means unlimited.
	MaxLen int
	// MaxBytes bounds the total ready-message payload bytes; 0 = unlimited.
	MaxBytes int64
	// Overflow is OverflowDropHead (default) or OverflowRejectPublish.
	Overflow string
}

// delivery is a message en route to one consumer, carrying the per-queue
// redelivered flag alongside the shared message.
type delivery struct {
	msg         *Message
	redelivered bool
}

// consumer is a registered basic.consume subscription. Deliveries flow
// through outbox to a per-consumer writer goroutine owned by the channel
// layer, so one slow connection does not stall the queue's other consumers.
type consumer struct {
	tag    string
	noAck  bool
	outbox chan delivery
	closed chan struct{}

	// credit is the number of additional messages that may be pushed
	// before an ack returns a slot. creditUnlimited when prefetch is 0.
	credit int

	// owner is invoked by the channel layer; the queue only needs the
	// drain notification hook.
	q *Queue
}

const creditUnlimited = int(^uint(0) >> 1) // max int

// outboxCap bounds in-flight deliveries per consumer when prefetch is
// unlimited; it provides flow control in lieu of credit.
const outboxCap = 64

// Queue is a classic queue: an in-memory FIFO of ready messages plus a set
// of consumers served round-robin subject to prefetch credit.
//
// The queue owns one reference to every ready message. Delivery transfers
// that reference to the channel layer (which releases it on ack/discard or
// requeues it, handing it back); drop-head eviction, purge, and queue
// deletion release it directly.
type Queue struct {
	Name       string
	Durable    bool
	Exclusive  bool
	AutoDelete bool
	Limits     QueueLimits

	mu        sync.Mutex
	ready     msgRing // chunked ring deque: O(1) push-front/push-back/pop
	bytes     int64
	consumers []*consumer
	rr        int
	deleted   bool

	// onDequeue, if set, is called with the payload size whenever ready
	// bytes shrink; used for broker-wide memory accounting.
	onBytes func(deltaBytes int64)

	stats QueueStats
	tel   queueTel
}

// QueueStats are cumulative counters exposed for tests and metrics.
type QueueStats struct {
	Published uint64
	Delivered uint64
	Acked     uint64
	Requeued  uint64
	Dropped   uint64
	Rejected  uint64
}

// NewQueue creates a queue.
func NewQueue(name string, limits QueueLimits) *Queue {
	if limits.Overflow == "" {
		limits.Overflow = OverflowDropHead
	}
	return &Queue{Name: name, Limits: limits, tel: newQueueTel()}
}

// Len reports the number of ready messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ready.len()
}

// Bytes reports the total ready payload bytes.
func (q *Queue) Bytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}

// ConsumerCount reports the number of active consumers.
func (q *Queue) ConsumerCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.consumers)
}

// Stats returns a copy of the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Publish routes one message into the queue, delivering immediately if a
// consumer has credit. It returns ErrQueueFull when the reject-publish
// overflow policy denies the message (the caller keeps its reference). On
// success the queue owns the reference the caller retained for it.
func (q *Queue) Publish(m *Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.deleted {
		return errors.New("broker: queue deleted")
	}
	if q.overLimitLocked(m) {
		if q.Limits.Overflow == OverflowRejectPublish {
			q.stats.Rejected++
			return ErrQueueFull
		}
		// drop-head: evict from the front until the new message fits.
		for q.overLimitLocked(m) && q.ready.len() > 0 {
			dropped := q.popLocked()
			q.stats.Dropped++
			dropped.msg.Release()
		}
	}
	q.pushLocked(m)
	q.stats.Published++
	q.tel.published.Inc()
	q.pumpLocked()
	return nil
}

// Get synchronously pops one ready message (basic.get), transferring the
// queue's reference to the caller. ok is false when the queue is empty.
// remaining is the ready count after the pop.
func (q *Queue) Get() (m *Message, redelivered bool, remaining int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ready.len() == 0 {
		return nil, false, 0, false
	}
	it := q.popLocked()
	q.stats.Delivered++
	q.tel.delivered.Inc()
	return it.msg, it.redelivered, q.ready.len(), true
}

// Purge drops all ready messages, returning how many were removed.
func (q *Queue) Purge() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.ready.len()
	for q.ready.len() > 0 {
		q.popLocked().msg.Release()
	}
	return n
}

// Requeue returns a message to the head of the queue (nack/reject requeue,
// channel close), handing the caller's reference back to the queue. The
// entry is flagged redelivered. A requeue racing a queue delete releases
// the message instead of parking it forever.
func (q *Queue) Requeue(m *Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.deleted {
		m.Release()
		return
	}
	q.requeueLocked(m)
	q.pumpLocked()
}

// RequeueAll returns a batch of messages to the head of the queue in one
// lock acquisition, preserving their order (msgs[0] ends up at the head).
func (q *Queue) RequeueAll(msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.deleted {
		for _, m := range msgs {
			m.Release()
		}
		return
	}
	for i := len(msgs) - 1; i >= 0; i-- {
		q.requeueLocked(msgs[i])
	}
	q.pumpLocked()
}

// requeueLocked inserts m at the head (caller holds q.mu).
func (q *Queue) requeueLocked(m *Message) {
	q.ready.pushFront(qitem{msg: m, redelivered: true})
	q.bytes += m.size()
	if q.onBytes != nil {
		q.onBytes(m.size())
	}
	q.stats.Requeued++
	q.tel.requeued.Inc()
	telDepthPeak.Record(int64(q.ready.len()))
}

// AddConsumer registers a consumer with the given prefetch limit (0 means
// unlimited) and returns it. The channel layer must run a goroutine that
// drains c.outbox and calls q.DeliveryDone(c) after each send.
func (q *Queue) AddConsumer(tag string, noAck bool, prefetch int) (*consumer, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.deleted {
		return nil, errors.New("broker: queue deleted")
	}
	credit := prefetch
	if credit <= 0 {
		credit = creditUnlimited
	}
	c := &consumer{
		tag:    tag,
		noAck:  noAck,
		credit: credit,
		outbox: make(chan delivery, outboxCap),
		closed: make(chan struct{}),
		q:      q,
	}
	q.consumers = append(q.consumers, c)
	q.pumpLocked()
	return c, nil
}

// RemoveConsumer cancels a consumer.
func (q *Queue) RemoveConsumer(c *consumer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, x := range q.consumers {
		if x == c {
			q.consumers = append(q.consumers[:i], q.consumers[i+1:]...)
			close(c.closed)
			break
		}
	}
	if q.rr >= len(q.consumers) {
		q.rr = 0
	}
}

// Ack returns one prefetch slot to the consumer and pumps the queue.
func (q *Queue) Ack(c *consumer) { q.AckN(c, 1) }

// AckN acknowledges n deliveries for consumer c, restoring n prefetch slots
// and re-pumping in a single lock acquisition (multiple-ack batching).
func (q *Queue) AckN(c *consumer, n int) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if c.credit != creditUnlimited {
		c.credit += n
	}
	q.stats.Acked += uint64(n)
	q.tel.acked.Add(int64(n))
	q.pumpLocked()
}

// Release returns one prefetch slot without counting an acknowledgement
// (nack/reject paths and channel teardown).
func (q *Queue) Release(c *consumer) { q.ReleaseN(c, 1) }

// ReleaseN returns n prefetch slots without counting acknowledgements, in a
// single lock acquisition.
func (q *Queue) ReleaseN(c *consumer, n int) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if c.credit != creditUnlimited {
		c.credit += n
	}
	q.pumpLocked()
}

// DeliveryDone signals that a consumer's writer drained one delivery from
// its outbox, freeing buffer room; the queue may be able to push more.
func (q *Queue) DeliveryDone(c *consumer) { q.DeliveryDoneN(c, 1) }

// DeliveryDoneN signals that a consumer's writer drained n deliveries from
// its outbox, re-pumping once for the whole batch.
func (q *Queue) DeliveryDoneN(c *consumer, n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pumpLocked()
}

// markDeleted flags the queue as gone, cancels all consumers, and releases
// every ready message, returning the consumers so the channel layer can
// clean up.
func (q *Queue) markDeleted() []*consumer {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.deleted = true
	cs := q.consumers
	q.consumers = nil
	for _, c := range cs {
		close(c.closed)
	}
	for q.ready.len() > 0 {
		q.popLocked().msg.Release()
	}
	return cs
}

// --- internal (callers hold q.mu) ---

func (q *Queue) lenLocked() int { return q.ready.len() }

func (q *Queue) overLimitLocked(m *Message) bool {
	if q.Limits.MaxLen > 0 && q.ready.len()+1 > q.Limits.MaxLen {
		return true
	}
	if q.Limits.MaxBytes > 0 && q.bytes+m.size() > q.Limits.MaxBytes {
		return true
	}
	return false
}

func (q *Queue) pushLocked(m *Message) {
	q.ready.pushBack(qitem{msg: m})
	q.bytes += m.size()
	if q.onBytes != nil {
		q.onBytes(m.size())
	}
	telDepthPeak.Record(int64(q.ready.len()))
}

func (q *Queue) popLocked() qitem {
	it := q.ready.popFront()
	q.bytes -= it.msg.size()
	if q.onBytes != nil {
		q.onBytes(-it.msg.size())
	}
	return it
}

// pumpLocked delivers ready messages round-robin to consumers that have
// both prefetch credit and outbox room. It never blocks: outbox sends are
// guaranteed by the room check under q.mu (the queue is the only sender).
func (q *Queue) pumpLocked() {
	for q.ready.len() > 0 && len(q.consumers) > 0 {
		c := q.nextConsumerLocked()
		if c == nil {
			return
		}
		it := q.popLocked()
		if c.credit != creditUnlimited {
			c.credit--
		}
		q.stats.Delivered++
		q.tel.delivered.Inc()
		c.outbox <- delivery{msg: it.msg, redelivered: it.redelivered}
	}
}

// nextConsumerLocked picks the next round-robin consumer that can accept a
// delivery, or nil if none can.
func (q *Queue) nextConsumerLocked() *consumer {
	n := len(q.consumers)
	for i := 0; i < n; i++ {
		c := q.consumers[(q.rr+i)%n]
		if (c.credit == creditUnlimited || c.credit > 0) && len(c.outbox) < cap(c.outbox) {
			q.rr = (q.rr + i + 1) % n
			return c
		}
	}
	return nil
}
