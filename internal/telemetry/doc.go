// Package telemetry is the live observability subsystem: lock-free
// instrumentation probes, a tick-driven time-series aggregator, and
// exporters, so a cross-facility streaming run can be watched while it
// happens instead of summarized after it ends.
//
// The pipeline has three stages, in the style of the datadog-agent
// aggregator:
//
//	probes ──► aggregator ──► exporters
//
// # Probes
//
// Probes are the hot-path primitives. All of them update with atomic
// operations only — no mutex, no allocation — so they can sit on the
// broker publish path or a consumer delivery loop:
//
//   - Counter: a monotonic event counter. Hot goroutines capture a
//     Shard once and add to it, spreading contended increments across
//     cache-line-padded slots; Load sums the shards.
//   - Gauge: an instantaneous level (queue depth, in-flight messages).
//   - Watermark: a monotonic maximum (peak queue depth).
//   - Histogram: a fixed-bucket log-linear streaming histogram of
//     int64 values (nanoseconds, bytes). Memory is bounded (~15 KiB)
//     regardless of sample count, snapshots are mergeable, and
//     percentiles/CDFs are extracted from bucket boundaries with a
//     relative error of at most one bucket width (~3%).
//
// A Registry names probes (optionally with key=value tags) and hands
// out stable pointers; Default is the process-wide registry. GaugeFunc
// and CounterFunc register read-at-export callbacks for values another
// subsystem already maintains (a queue's depth, an atomic server stat).
//
// # Aggregator
//
// An Aggregator snapshots observed sources on a tick (1s by default)
// into ring-buffered time series: counters become per-second rates,
// gauges become levels. Stop performs a final partial tick so runs
// shorter than one interval still produce a data point. An OnTick
// callback delivers each rollup live — this is what `streamsim
// scenario -watch` prints.
//
// # Exporters
//
// Registry.Snapshot freezes every probe into a JSON-serializable
// Snapshot; WritePrometheus renders a snapshot in the Prometheus text
// exposition format (histograms as cumulative le-buckets). Serve
// exposes both from an opt-in HTTP endpoint: GET /metrics and
// GET /snapshot.json.
package telemetry
