// Command benchsnap converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot, seeding the repo's performance
// trajectory: the bench-snapshot make target runs the short figure
// benchmarks with -benchmem and writes BENCH_<pr>.json, so successive
// PRs can be diffed metric-by-metric instead of eyeballing bench logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchsnap -out BENCH_dev.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the full bench run.
type Snapshot struct {
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBenchLine parses one "BenchmarkX-8  N  v unit  v unit ..." line,
// returning ok=false for non-benchmark lines.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// parse reads bench output and collects benchmark lines.
func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseBenchLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()
	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}
