package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/metrics"
	"ds2hpc/internal/wire"
)

// srvChannel is the server-side state of one client channel: consumers,
// unacknowledged deliveries, confirm mode, and in-flight publish assembly.
type srvChannel struct {
	id   uint16
	conn *srvConn

	mu          sync.Mutex
	prefetch    int
	confirm     bool
	publishSeq  uint64
	deliveryTag uint64
	consumers   map[string]*consumerEntry
	unacked     map[uint64]*unackedEntry
	pending     *pendingPublish
	closed      bool
}

// consumerEntry pairs a queue consumer with the channel that owns it.
// scheduled is the dispatch flag of the connection's delivery loop: set
// when the entry sits in (or is being served from) the loop's ready list,
// which guarantees one server per consumer at a time and hence
// per-consumer delivery order.
type consumerEntry struct {
	tag       string
	queue     *Queue
	cons      *consumer
	noAck     bool
	ch        *srvChannel
	scheduled atomic.Bool
}

// unackedEntry tracks one outstanding delivery awaiting acknowledgement.
// off is the entry's segment-log offset (offNone on non-durable queues),
// committed when the delivery settles as acked or discarded.
type unackedEntry struct {
	queue *Queue
	cons  *consumer // nil for basic.get deliveries
	msg   *Message
	off   uint64
}

// unackedPool recycles unacked-delivery entries; an entry is owned by
// exactly one map slot, so whoever deletes it (ack/nack/teardown) releases
// it once resolved.
var unackedPool = sync.Pool{New: func() any { return new(unackedEntry) }}

func newUnacked(q *Queue, c *consumer, m *Message, off uint64) *unackedEntry {
	ua := unackedPool.Get().(*unackedEntry)
	ua.queue, ua.cons, ua.msg, ua.off = q, c, m, off
	return ua
}

func releaseUnacked(ua *unackedEntry) {
	*ua = unackedEntry{}
	unackedPool.Put(ua)
}

// pendingPublish accumulates a basic.publish across method/header/body.
// The message is created when the content header arrives — its pooled
// body buffer is presized from the header's BodySize, so multi-frame
// bodies assemble into one loan with zero reallocation.
type pendingPublish struct {
	method *wire.BasicPublish
	header *wire.ContentHeader
	msg    *Message
	seq    uint64
}

// pendingPool recycles publish-assembly state across messages.
var pendingPool = sync.Pool{New: func() any { return new(pendingPublish) }}

// maxBodyBytes bounds the body size a single publish may declare; it
// exists because ingest now trusts the header's BodySize to presize the
// pooled body buffer, and an absurd declared size must fail the channel
// rather than reserve the memory.
const maxBodyBytes = 1 << 27 // 128 MiB, far above any paper workload

func newSrvChannel(sc *srvConn, id uint16) *srvChannel {
	return &srvChannel{
		id:        id,
		conn:      sc,
		consumers: map[string]*consumerEntry{},
		unacked:   map[uint64]*unackedEntry{},
	}
}

// teardown cancels consumers and requeues unacked messages (connection or
// channel close).
func (ch *srvChannel) teardown() {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	ch.closed = true
	consumers := ch.consumers
	unacked := ch.unacked
	pending := ch.pending
	ch.consumers = map[string]*consumerEntry{}
	ch.unacked = map[uint64]*unackedEntry{}
	ch.pending = nil
	ch.mu.Unlock()

	if pending != nil && pending.msg != nil {
		// A publish cut off mid-assembly: drop the half-built body.
		pending.msg.Release()
	}
	for _, ce := range consumers {
		ce.queue.RemoveConsumer(ce.cons)
		// Drain inline as well: on connection death the delivery loop may
		// already have exited, leaving outbox messages no one else would
		// return to the queue. (Racing the loop's own closed-drain is
		// safe — each delivery is received exactly once.)
		drainOutbox(ce)
	}
	for _, ua := range unacked {
		if ua.cons != nil {
			ua.queue.Release(ua.cons)
		}
		ua.queue.Requeue(ua.msg, ua.off)
		releaseUnacked(ua)
	}
}

// exception sends a channel.close to the client and tears the channel down.
func (ch *srvChannel) exception(code uint16, text string, m wire.Method) error {
	classID, methodID := uint16(0), uint16(0)
	if m != nil {
		classID, methodID = m.ID()
	}
	ch.teardown()
	ch.conn.removeChannel(ch.id)
	return ch.conn.writeMethod(ch.id, &wire.ChannelClose{
		ReplyCode: code, ReplyText: text, ClassID: classID, MethodID: methodID,
	})
}

func errorCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrNotFound):
		return wire.ReplyNotFound
	case errors.Is(err, ErrPreconditionFailed):
		return wire.ReplyPreconditionFailed
	case errors.Is(err, ErrMemoryAlarm), errors.Is(err, ErrQueueFull):
		return wire.ReplyResourceError
	default:
		return wire.ReplyInternalError
	}
}

func (ch *srvChannel) onMethod(m wire.Method) error {
	vh := ch.conn.vh
	switch x := m.(type) {
	case *wire.ChannelClose:
		ch.teardown()
		ch.conn.removeChannel(ch.id)
		return ch.conn.writeMethod(ch.id, &wire.ChannelCloseOk{})
	case *wire.ChannelCloseOk:
		return nil
	case *wire.ChannelFlow:
		return ch.conn.writeMethod(ch.id, &wire.ChannelFlowOk{Active: x.Active})

	case *wire.ExchangeDeclare:
		if _, err := vh.DeclareExchange(x.Exchange, x.Type, x.Passive); err != nil {
			return ch.exception(errorCode(err), err.Error(), m)
		}
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.ExchangeDeclareOk{})
	case *wire.ExchangeDelete:
		if err := vh.DeleteExchange(x.Exchange, x.IfUnused); err != nil {
			return ch.exception(errorCode(err), err.Error(), m)
		}
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.ExchangeDeleteOk{})

	case *wire.QueueDeclare:
		if hook := ch.conn.srv.cfg.Cluster; hook != nil && x.Queue != "" {
			if _, local := hook.Lookup(vh.Name, x.Queue); !local {
				// Location-transparent declare: ensure the queue exists on
				// its master over the federation link and answer here, so
				// a client never needs to know placement to declare.
				if err := hook.EnsureRemoteQueue(vh.Name, x.Queue, x.Durable); err != nil {
					return ch.exception(wire.ReplyResourceError, err.Error(), m)
				}
				if x.NoWait {
					return nil
				}
				return ch.conn.writeMethod(ch.id, &wire.QueueDeclareOk{Queue: x.Queue})
			}
		}
		q, err := vh.DeclareQueue(x.Queue, x.Durable, x.Exclusive, x.AutoDelete, x.Passive, x.Arguments)
		if err != nil {
			return ch.exception(errorCode(err), err.Error(), m)
		}
		if hook := ch.conn.srv.cfg.Cluster; hook != nil {
			hook.RegisterQueue(vh.Name, q.Name, x.Durable)
		}
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.QueueDeclareOk{
			Queue:         q.Name,
			MessageCount:  uint32(q.Len()),
			ConsumerCount: uint32(q.ConsumerCount()),
		})
	case *wire.QueueBind:
		q, ok := vh.Queue(x.Queue)
		if !ok {
			return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no queue %q", x.Queue), m)
		}
		e, ok := vh.Exchange(x.Exchange)
		if !ok {
			return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no exchange %q", x.Exchange), m)
		}
		e.Bind(q, x.RoutingKey)
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.QueueBindOk{})
	case *wire.QueueUnbind:
		q, ok := vh.Queue(x.Queue)
		if !ok {
			return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no queue %q", x.Queue), m)
		}
		if e, ok := vh.Exchange(x.Exchange); ok {
			e.Unbind(q, x.RoutingKey)
		}
		return ch.conn.writeMethod(ch.id, &wire.QueueUnbindOk{})
	case *wire.QueuePurge:
		q, ok := vh.Queue(x.Queue)
		if !ok {
			return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no queue %q", x.Queue), m)
		}
		n := q.Purge()
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.QueuePurgeOk{MessageCount: uint32(n)})
	case *wire.QueueDelete:
		n, err := vh.DeleteQueue(x.Queue, x.IfUnused, x.IfEmpty)
		if err != nil {
			return ch.exception(errorCode(err), err.Error(), m)
		}
		// Drop consumer entries that pointed at the deleted queue.
		ch.mu.Lock()
		for tag, ce := range ch.consumers {
			if ce.queue.Name == x.Queue {
				delete(ch.consumers, tag)
			}
		}
		ch.mu.Unlock()
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.QueueDeleteOk{MessageCount: uint32(n)})

	case *wire.BasicQos:
		ch.mu.Lock()
		ch.prefetch = int(x.PrefetchCount)
		ch.mu.Unlock()
		return ch.conn.writeMethod(ch.id, &wire.BasicQosOk{})
	case *wire.BasicConsume:
		return ch.basicConsume(x)
	case *wire.BasicCancel:
		ch.mu.Lock()
		ce, ok := ch.consumers[x.ConsumerTag]
		delete(ch.consumers, x.ConsumerTag)
		ch.mu.Unlock()
		if ok {
			ce.queue.RemoveConsumer(ce.cons)
		}
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.BasicCancelOk{ConsumerTag: x.ConsumerTag})
	case *wire.BasicPublish:
		p := pendingPool.Get().(*pendingPublish)
		p.method, p.header, p.msg, p.seq = x, nil, nil, 0
		ch.mu.Lock()
		if ch.confirm {
			ch.publishSeq++
			p.seq = ch.publishSeq
		}
		prev := ch.pending
		ch.pending = p
		ch.mu.Unlock()
		if prev != nil && prev.msg != nil {
			// Protocol misuse: a new publish started before the previous
			// one's body completed. Drop the half-assembled message.
			prev.msg.Release()
		}
		return nil
	case *wire.BasicGet:
		return ch.basicGet(x)
	case *wire.BasicAck:
		return ch.basicAck(x.DeliveryTag, x.Multiple, true, false)
	case *wire.BasicNack:
		return ch.basicAck(x.DeliveryTag, x.Multiple, false, x.Requeue)
	case *wire.BasicReject:
		return ch.basicAck(x.DeliveryTag, false, false, x.Requeue)

	case *wire.ConfirmSelect:
		ch.mu.Lock()
		ch.confirm = true
		ch.mu.Unlock()
		if x.NoWait {
			return nil
		}
		return ch.conn.writeMethod(ch.id, &wire.ConfirmSelectOk{})
	default:
		return ch.exception(wire.ReplyNotImplemented, fmt.Sprintf("method %T", m), m)
	}
}

func (ch *srvChannel) basicConsume(x *wire.BasicConsume) error {
	vh := ch.conn.vh
	if err := ch.redirectIfRemote(vh.Name, x.Queue, x); err != nil {
		return err
	}
	q, ok := vh.Queue(x.Queue)
	if !ok {
		return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no queue %q", x.Queue), x)
	}
	tag := x.ConsumerTag
	ch.mu.Lock()
	if tag == "" {
		tag = fmt.Sprintf("ctag-%d-%d", ch.id, len(ch.consumers)+1)
	}
	if _, dup := ch.consumers[tag]; dup {
		ch.mu.Unlock()
		return ch.exception(wire.ReplyNotAllowed, fmt.Sprintf("duplicate consumer tag %q", tag), x)
	}
	prefetch := ch.prefetch
	ch.mu.Unlock()

	var cons *consumer
	var err error
	noAck := x.NoAck
	if _, replay := x.Arguments["x-stream-offset"]; replay {
		// Replay consume: attach to the queue's segment log at the given
		// offset instead of the live ready ring. Replay deliveries are
		// forcibly noAck — the log already settled or will settle these
		// records through their live deliveries.
		from := x.Arguments.Int("x-stream-offset", 0)
		if from < 0 {
			from = 0
		}
		cons, err = q.AddReplayConsumer(tag, uint64(from))
		noAck = true
	} else {
		cons, err = q.AddConsumer(tag, x.NoAck, prefetch)
	}
	if err != nil {
		return ch.exception(errorCode(err), err.Error(), x)
	}
	ce := &consumerEntry{tag: tag, queue: q, cons: cons, noAck: noAck, ch: ch}
	ch.mu.Lock()
	ch.consumers[tag] = ce
	ch.mu.Unlock()

	// Hand delivery writing to the connection's event-driven loop: the
	// wake hook schedules this consumer whenever its outbox has work, so
	// an idle consumer costs a map entry, not a parked goroutine.
	cons.SetWake(func() { ch.conn.wakeConsumer(ce) })

	if x.NoWait {
		return nil
	}
	return ch.conn.writeMethod(ch.id, &wire.BasicConsumeOk{ConsumerTag: tag})
}

// maxDeliveryBatch caps how many queued deliveries one writer drains into a
// single coalesced write (and one queue-lock round-trip of completions).
const maxDeliveryBatch = 16

// serveConsumer drains one bounded batch from a consumer's outbox onto
// the wire and emits it with one flush, instead of one write — and one
// queue-lock acquisition — per message. It runs on the connection's
// delivery loop; the entry's scheduled flag guarantees a single server
// per consumer at a time, preserving per-consumer delivery order. A
// closed consumer drains back to its queue and stays scheduled forever,
// so later wakes cannot resurrect it.
func (ch *srvChannel) serveConsumer(ce *consumerEntry) {
	select {
	case <-ce.cons.closed:
		drainOutbox(ce)
		return
	default:
	}
	var batch [maxDeliveryBatch]delivery
	n := 0
fill:
	for n < maxDeliveryBatch {
		select {
		case d := <-ce.cons.outbox:
			batch[n] = d
			n++
		default:
			break fill
		}
	}
	if n > 0 {
		ch.sendDeliverBatch(ce, batch[:n])
		ce.queue.DeliveryDoneN(ce.cons, n)
	}
	// Unschedule, then re-check: a delivery (or close) that raced the
	// drain above re-schedules the entry instead of being stranded.
	ce.scheduled.Store(false)
	resched := len(ce.cons.outbox) > 0
	if !resched {
		select {
		case <-ce.cons.closed:
			resched = true
		default:
		}
	}
	if resched {
		ch.conn.wakeConsumer(ce)
	}
}

// drainOutbox returns a closed consumer's undelivered outbox to its queue
// (a requeue racing a queue delete releases the message instead). Replay
// deliveries never re-enter the ring — their messages are log re-reads,
// not queue-owned references.
func drainOutbox(ce *consumerEntry) {
	for {
		select {
		case d := <-ce.cons.outbox:
			if ce.cons.replay {
				d.msg.Release()
			} else {
				ce.queue.Requeue(d.msg, d.off)
			}
		default:
			return
		}
	}
}

var (
	deliveryBatches   = metrics.Default.Counter("broker.delivery_batches")
	deliveriesBatched = metrics.Default.Counter("broker.deliveries_batched")
)

// sendDeliverBatch assigns delivery tags to a batch of deliveries under
// one channel-lock hold and writes all their frames as one coalesced
// batch. The redelivered flag travels with the delivery (per-queue
// state), so a concurrent requeue of the shared message cannot flip it
// mid-serialization. The batch's message references are either parked in
// the unacked map, requeued, or released — never dropped.
func (ch *srvChannel) sendDeliverBatch(ce *consumerEntry, batch []delivery) {
	var msgs [maxDeliveryBatch]*Message
	var tags [maxDeliveryBatch]uint64
	var offs [maxDeliveryBatch]uint64
	var redeliv [maxDeliveryBatch]bool
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		// Hand the references back to the queue, preserving order (replay
		// re-reads are simply dropped — the log still has them).
		for i := len(batch) - 1; i >= 0; i-- {
			if ce.cons.replay {
				batch[i].msg.Release()
			} else {
				ce.queue.Requeue(batch[i].msg, batch[i].off)
			}
		}
		return
	}
	for i, d := range batch {
		ch.deliveryTag++
		msgs[i] = d.msg
		tags[i] = ch.deliveryTag
		offs[i] = d.off
		redeliv[i] = d.redelivered
		if !ce.noAck {
			// The unacked entry takes over the queue's reference; the
			// write below needs its own — the moment the entry exists, a
			// concurrent teardown may requeue the message, and another
			// consumer could resolve it while these frames are still
			// being serialized.
			d.msg.Retain()
			ch.unacked[tags[i]] = newUnacked(ce.queue, ce.cons, d.msg, d.off)
		}
	}
	ch.mu.Unlock()

	deliveryBatches.Inc()
	deliveriesBatched.Add(uint64(len(batch)))
	err := ch.conn.writeDeliveries(ch.id, ce.tag, msgs[:len(batch)], tags[:len(batch)], redeliv[:len(batch)])
	if ce.noAck {
		// noAck deliveries resolve immediately: restore credit (even on a
		// dying connection the pop already happened) and drop the queue's
		// reference — the bytes are on the wire or lost, at-most-once.
		// On a durable queue that settlement is committed to the log;
		// replay deliveries commit nothing (the log is their source).
		ce.queue.AckN(ce.cons, len(batch))
		if !ce.cons.replay {
			ce.queue.CommitAll(offs[:len(batch)])
		}
	}
	// Drop the write's (noAck: the queue's) reference per message.
	for _, d := range batch {
		d.msg.Release()
	}
	_ = err // on error the connection is going away; teardown requeues unacked
}

func (ch *srvChannel) basicGet(x *wire.BasicGet) error {
	vh := ch.conn.vh
	if err := ch.redirectIfRemote(vh.Name, x.Queue, x); err != nil {
		return err
	}
	q, ok := vh.Queue(x.Queue)
	if !ok {
		return ch.exception(wire.ReplyNotFound, fmt.Sprintf("no queue %q", x.Queue), x)
	}
	msg, off, redelivered, remaining, ok := q.Get()
	if !ok {
		return ch.conn.writeMethod(ch.id, &wire.BasicGetEmpty{})
	}
	ch.mu.Lock()
	ch.deliveryTag++
	tag := ch.deliveryTag
	if !x.NoAck {
		// As in sendDeliverBatch: the unacked entry takes the queue's
		// reference, the write holds its own.
		msg.Retain()
		ch.unacked[tag] = newUnacked(q, nil, msg, off)
	}
	ch.mu.Unlock()
	err := ch.conn.writeContent(ch.id, &wire.BasicGetOk{
		DeliveryTag:  tag,
		Redelivered:  redelivered,
		Exchange:     msg.Exchange,
		RoutingKey:   msg.RoutingKey,
		MessageCount: uint32(remaining),
	}, &msg.Props, msg.Body)
	// Drop the write's (NoAck: the queue's) reference; a NoAck get is a
	// settlement, so the durable offset commits.
	msg.Release()
	if x.NoAck {
		q.Commit(off)
	}
	return err
}

var (
	ackBatches  = metrics.Default.Counter("broker.ack_batches")
	acksBatched = metrics.Default.Counter("broker.acks_batched")
)

// ackGroup accumulates the resolutions of a multiple-ack that target the
// same queue and consumer, so credit is restored (and the queue re-pumped)
// in one lock acquisition per group instead of one per message.
type ackGroup struct {
	queue *Queue
	cons  *consumer
	n     int        // deliveries resolved for cons
	msgs  []*Message // messages to requeue, in delivery-tag order
	offs  []uint64   // durable offsets: commit targets (ack/discard) or requeue offsets, parallel to msgs
}

// basicAck resolves unacked deliveries. ack=true acknowledges; ack=false
// with requeue returns messages to their queues; ack=false without requeue
// discards them (dead-lettering is out of scope). Multiple-ack paths batch
// per-queue work: one credit restore and one pump per (queue, consumer).
func (ch *srvChannel) basicAck(tag uint64, multiple, ack, requeue bool) error {
	if !multiple {
		// Fast path: a single-tag resolution needs no batching machinery
		// (and no slice allocations).
		ch.mu.Lock()
		ua, ok := ch.unacked[tag]
		delete(ch.unacked, tag)
		ch.mu.Unlock()
		if !ok {
			return nil
		}
		ch.resolveEntry(ua, ack, requeue)
		releaseUnacked(ua)
		return nil
	}
	ch.mu.Lock()
	var tags []uint64
	var entries []*unackedEntry
	for t, ua := range ch.unacked {
		if t <= tag || tag == 0 {
			tags = append(tags, t)
			entries = append(entries, ua)
			delete(ch.unacked, t)
		}
	}
	ch.mu.Unlock()
	if len(entries) == 0 {
		return nil
	}
	if len(entries) == 1 {
		ch.resolveEntry(entries[0], ack, requeue)
		releaseUnacked(entries[0])
		return nil
	}
	// Resolve in delivery-tag order so batch requeues restore queue order.
	sort.Sort(byTag{tags, entries})
	ackBatches.Inc()
	acksBatched.Add(uint64(len(entries)))

	var groups []ackGroup
	for _, ua := range entries {
		var g *ackGroup
		for i := range groups {
			if groups[i].queue == ua.queue && groups[i].cons == ua.cons {
				g = &groups[i]
				break
			}
		}
		if g == nil {
			groups = append(groups, ackGroup{queue: ua.queue, cons: ua.cons})
			g = &groups[len(groups)-1]
		}
		if ua.cons != nil {
			g.n++
		}
		// Durable queues track offsets per entry: as requeue offsets
		// (parallel to msgs) or commit targets (ack/discard). Non-durable
		// groups skip the slice entirely — the batched-ack fast path must
		// not pick up an allocation for queues with nothing to commit.
		if ua.queue.log != nil {
			g.offs = append(g.offs, ua.off)
		}
		if !ack && requeue {
			g.msgs = append(g.msgs, ua.msg)
		} else {
			// Acked or discarded: the unacked entry's reference resolves
			// here; the last owner returns the body to the pool.
			ua.msg.Release()
		}
	}
	for i := range groups {
		g := &groups[i]
		switch {
		case ack:
			if g.cons != nil {
				g.queue.AckN(g.cons, g.n)
			}
			g.queue.CommitAll(g.offs)
		case requeue:
			if g.cons != nil {
				g.queue.ReleaseN(g.cons, g.n)
			}
			g.queue.RequeueAll(g.msgs, g.offs)
		default:
			if g.cons != nil {
				g.queue.ReleaseN(g.cons, g.n)
			}
			g.queue.CommitAll(g.offs)
		}
	}
	// The groups hold their own message-pointer copies; the resolved
	// entries can recycle now.
	for _, ua := range entries {
		releaseUnacked(ua)
	}
	return nil
}

// resolveEntry applies a single delivery resolution (the non-batched
// path). Requeue hands the entry's message reference back to the queue;
// ack and discard release it and commit the durable offset — both settle
// the message for good, so neither may replay after a restart.
func (ch *srvChannel) resolveEntry(ua *unackedEntry, ack, requeue bool) {
	switch {
	case ack:
		if ua.cons != nil {
			ua.queue.Ack(ua.cons)
		}
		ua.msg.Release()
		ua.queue.Commit(ua.off)
	case requeue:
		if ua.cons != nil {
			ua.queue.Release(ua.cons)
		}
		ua.queue.Requeue(ua.msg, ua.off)
	default:
		if ua.cons != nil {
			ua.queue.Release(ua.cons)
		}
		ua.msg.Release()
		ua.queue.Commit(ua.off)
	}
}

// byTag sorts parallel tag/entry slices by delivery tag.
type byTag struct {
	tags    []uint64
	entries []*unackedEntry
}

func (s byTag) Len() int           { return len(s.tags) }
func (s byTag) Less(i, j int) bool { return s.tags[i] < s.tags[j] }
func (s byTag) Swap(i, j int) {
	s.tags[i], s.tags[j] = s.tags[j], s.tags[i]
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
}

// onHeader receives the content header of an in-flight publish and
// creates the pooled message, presizing its body buffer from the
// header's BodySize so every body frame appends without reallocating.
func (ch *srvChannel) onHeader(h *wire.ContentHeader) error {
	ch.mu.Lock()
	p := ch.pending
	if p != nil {
		if h.BodySize > maxBodyBytes {
			ch.pending = nil
			ch.mu.Unlock()
			return ch.exception(wire.ReplyPreconditionFailed,
				fmt.Sprintf("declared body size %d exceeds limit", h.BodySize), p.method)
		}
		p.header = h
		p.msg = NewMessage(p.method.Exchange, p.method.RoutingKey, h.Properties, int(h.BodySize))
		if h.BodySize == 0 {
			ch.pending = nil
		}
	}
	ch.mu.Unlock()
	if p == nil {
		return fmt.Errorf("broker: header frame without publish on channel %d", ch.id)
	}
	if h.BodySize == 0 {
		return ch.completePublish(p)
	}
	return nil
}

// onBody receives a body frame of an in-flight publish, copying it into
// the presized pooled body (the frame payload itself is a reader loan
// recycled on the next read).
func (ch *srvChannel) onBody(b []byte) error {
	ch.mu.Lock()
	p := ch.pending
	if p == nil || p.header == nil {
		ch.mu.Unlock()
		return fmt.Errorf("broker: body frame without header on channel %d", ch.id)
	}
	p.msg.AppendBody(b)
	complete := uint64(len(p.msg.Body)) >= p.header.BodySize
	if complete {
		ch.pending = nil
	}
	ch.mu.Unlock()
	if complete {
		return ch.completePublish(p)
	}
	return nil
}

func (ch *srvChannel) completePublish(p *pendingPublish) error {
	msg, method, seq := p.msg, p.method, p.seq
	*p = pendingPublish{}
	pendingPool.Put(p)
	// The publisher's reference covers routing and the mandatory-return
	// write below; the queues' references are retained by vhost.Publish.
	defer msg.Release()
	ch.conn.srv.Stats.MessagesIn.Add(1)
	ch.conn.srv.Stats.BytesIn.Add(uint64(len(msg.Body)))
	if hook := ch.conn.srv.cfg.Cluster; hook != nil && IsMirrorExchange(method.Exchange) {
		// Inbound mirror-stream frame from a master's federation link:
		// apply to the standby replica and answer the link's confirm —
		// the ack IS the "mirror appended" signal the master's in-sync
		// accounting waits on.
		err := hook.ApplyMirror(ch.conn.vh.Name, method.Exchange, method.RoutingKey, msg)
		if seq != 0 {
			if err != nil {
				return ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: seq})
			}
			return ch.conn.writeMethod(ch.id, &wire.BasicAck{DeliveryTag: seq})
		}
		return nil
	}
	if hook := ch.conn.srv.cfg.Cluster; hook != nil && method.Exchange == "" {
		if _, local := hook.Lookup(ch.conn.vh.Name, method.RoutingKey); !local {
			// Default-exchange publish to a remotely-mastered queue:
			// forward over the federation link. Confirm-bridged — the
			// producer's ack waits for the master's verdict; without
			// confirm mode the forward is fire-and-forget, matching the
			// local no-confirm contract.
			var target ConfirmTarget
			if seq != 0 {
				target = ch
			}
			if err := hook.ForwardPublish(ch.conn.vh.Name, method.RoutingKey, msg, target, seq); err != nil {
				if seq != 0 {
					return ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: seq})
				}
			}
			return nil
		}
		if hook.Replicated(ch.conn.vh.Name, method.RoutingKey) {
			// Locally mastered replicated queue: append locally (offset
			// tracked), then stream to mirrors. The producer's confirm is
			// withheld — ReplicateAppend resolves it via ClusterConfirm
			// once the in-sync set has appended (or lagging mirrors are
			// evicted).
			off, err := ch.conn.vh.PublishTracked(method.RoutingKey, msg)
			switch {
			case err != nil && errors.Is(err, ErrNotFound):
				return ch.exception(wire.ReplyNotFound, err.Error(), method)
			case err != nil:
				if ch.isConfirm() {
					return ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: seq})
				}
				return nil
			}
			if off == OffNone {
				// Transient queue: nothing durable to mirror.
				if ch.isConfirm() {
					return ch.conn.writeMethod(ch.id, &wire.BasicAck{DeliveryTag: seq})
				}
				return nil
			}
			var target ConfirmTarget
			if seq != 0 {
				target = ch
			}
			hook.ReplicateAppend(ch.conn.vh.Name, method.RoutingKey, off, msg, target, seq)
			return nil
		}
	}
	routed, err := ch.conn.vh.Publish(method.Exchange, method.RoutingKey, msg)
	switch {
	case err != nil && errors.Is(err, ErrNotFound):
		return ch.exception(wire.ReplyNotFound, err.Error(), method)
	case err != nil:
		// Backpressure (queue full / memory alarm): reject-publish shows
		// up as a basic.nack in confirm mode so the producer can retry.
		if ch.isConfirm() {
			return ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: seq})
		}
		return nil
	case routed == 0 && method.Mandatory:
		if err := ch.conn.writeContent(ch.id, &wire.BasicReturn{
			ReplyCode:  wire.ReplyNoRoute,
			ReplyText:  "NO_ROUTE",
			Exchange:   method.Exchange,
			RoutingKey: method.RoutingKey,
		}, &msg.Props, msg.Body); err != nil {
			return err
		}
	}
	if ch.isConfirm() {
		return ch.conn.writeMethod(ch.id, &wire.BasicAck{DeliveryTag: seq})
	}
	return nil
}

func (ch *srvChannel) isConfirm() bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.confirm
}

// redirectIfRemote answers a consume/get on a queue mastered elsewhere
// with a connection-level redirect: connection.close 302 whose reply-text
// carries the master's address. Consumers must sit on the master (that is
// where the ready ring and the segment log live), so the broker points
// the client there instead of proxying a delivery stream. Returning
// errConnClosed ends the serve loop cleanly after the close frame is on
// the wire. A nil return means the queue is local (or the node is not
// clustered) and the caller proceeds.
func (ch *srvChannel) redirectIfRemote(vhost, queue string, m wire.Method) error {
	hook := ch.conn.srv.cfg.Cluster
	if hook == nil {
		return nil
	}
	addr, local := hook.Lookup(vhost, queue)
	if local {
		return nil
	}
	hook.NoteRedirect(vhost, queue)
	classID, methodID := m.ID()
	_ = ch.conn.writeMethod(0, &wire.ConnectionClose{
		ReplyCode: wire.ReplyRedirect,
		ReplyText: addr,
		ClassID:   classID,
		MethodID:  methodID,
	})
	return errConnClosed
}

// ClusterConfirm relays a federated publish's bridged confirm verdict to
// the producer. It runs on the federation link's read loop; writeMethod
// serializes on the connection's write mutex, so concurrent local acks
// are safe. Errors are dropped — a failed write means the producer's
// connection is already going away and teardown owns the cleanup.
func (ch *srvChannel) ClusterConfirm(seq uint64, ok bool) {
	if ok {
		_ = ch.conn.writeMethod(ch.id, &wire.BasicAck{DeliveryTag: seq})
		return
	}
	_ = ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: seq})
}
