// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each data point deploys the architecture on a scaled
// ACE fabric (same capacity ratios as the paper's testbed, lower absolute
// rates) and runs the corresponding messaging pattern, reporting the
// paper's metrics via b.ReportMetric:
//
//	msgs_per_sec  aggregate consumer throughput (Figures 4 and 7a)
//	median_ms     median round-trip time (Figures 6 and 7b)
//	p80_ms        80th percentile RTT (the CDF figures 5 and 8)
//	overhead_x    throughput overhead relative to DTS (§5.3 text)
//
// Absolute numbers differ from the paper (scaled fabric, loopback TCP);
// the comparative shape — who wins, by roughly what factor, where the
// curves flatten — is the reproduction target. Run with:
//
//	go test -bench=. -benchmem
package ds2hpc

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/sim"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/workload"
)

// TestMain emits the final process-wide telemetry snapshot after a
// bench run — one "TELEMETRY_SNAPSHOT: {...}" line benchsnap embeds in
// BENCH_<pr>.json, so the perf trajectory records the cumulative RTT
// histogram and peak queue depth alongside the per-benchmark means.
// Plain `go test` runs (no -test.bench) stay silent.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		if data, err := json.Marshal(telemetry.Default.Snapshot()); err == nil {
			fmt.Printf("TELEMETRY_SNAPSHOT: %s\n", data)
		}
	}
	os.Exit(code)
}

// benchScale shrinks the fabric (and payloads via benchWorkload) so a full
// `go test -bench=.` pass completes in minutes on a laptop while keeping
// every capacity ratio of the paper's testbed.
const benchScale = 0.1

// benchConsumerCounts samples the paper's 1-64 consumer x-axis.
var benchConsumerCounts = []int{1, 4, 16}

// payloadDivisor shrinks workload payloads in proportion to benchScale.
const payloadDivisor = 8

func benchOptions() core.Options {
	return core.Options{
		Nodes:       3,
		Profile:     fabric.ACE(benchScale),
		MemoryLimit: 1 << 30,
	}
}

func benchWorkload(w workload.Workload) workload.Workload {
	return w.Scaled(payloadDivisor)
}

// messagesFor keeps per-point message counts roughly proportional to the
// paper's ratio between workload sizes without taking minutes per point.
func messagesFor(w workload.Workload) int {
	switch w.Name {
	case "Dstream":
		return 48
	case "Lstream":
		return 8
	default: // generic
		return 6
	}
}

// runPoint executes one experiment data point inside a benchmark.
func runPoint(b *testing.B, exp sim.Experiment) *metrics.Result {
	b.Helper()
	var last *metrics.Result
	for i := 0; i < b.N; i++ {
		pt, err := sim.Run(exp)
		if err != nil {
			b.Fatal(err)
		}
		if pt.Infeasible {
			b.Skip("infeasible for this architecture (paper: no data point)")
		}
		last = pt.Result
	}
	if last != nil {
		b.ReportMetric(last.Throughput, "msgs_per_sec")
		if last.RTTCount() > 0 {
			b.ReportMetric(float64(last.MedianRTT())/1e6, "median_ms")
			b.ReportMetric(float64(last.PercentileRTT(80))/1e6, "p80_ms")
		}
	}
	return last
}

func baseExperiment(arch core.ArchitectureName, w workload.Workload, pat sim.PatternName, consumers int) sim.Experiment {
	exp := sim.Experiment{
		Architecture:        arch,
		Workload:            benchWorkload(w),
		Pattern:             pat,
		Consumers:           consumers,
		Producers:           consumers,
		MessagesPerProducer: messagesFor(w),
		Runs:                1,
		Options:             benchOptions(),
		Window:              4,
		Timeout:             90 * time.Second,
	}
	if pat == sim.PatternBroadcast || pat == sim.PatternBroadcastGather {
		exp.Producers = 1
	}
	if pat == sim.PatternFeedback {
		// The feedback pattern is a closed loop (each reply gates the
		// next request); a shallow window keeps the offered load in the
		// regime the paper measured, where RTT rather than saturation
		// dominates.
		exp.Window = 2
	}
	return exp
}

// --------------------------------------------------------------- Table 1

// BenchmarkTable1Workloads measures payload generation and verification
// for the three Table 1 workloads at full payload size, checking that the
// generators sustain rates far above the emulated links.
func BenchmarkTable1Workloads(b *testing.B) {
	for _, w := range workload.All {
		b.Run(w.Name, func(b *testing.B) {
			gen := workload.NewGenerator(w, 0)
			b.SetBytes(int64(w.PayloadBytes))
			for i := 0; i < b.N; i++ {
				body, err := gen.Payload(uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Verify(body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------------- Figure 4

func benchWorkSharing(b *testing.B, w workload.Workload) {
	for _, arch := range core.AllArchitectures {
		for _, n := range benchConsumerCounts {
			b.Run(string(arch)+"/cons="+itoa(n), func(b *testing.B) {
				runPoint(b, baseExperiment(arch, w, sim.PatternWorkSharing, n))
			})
		}
	}
}

// BenchmarkFig4aDstreamWorkSharing reproduces Figure 4a: Dstream
// throughput under work sharing across all five architecture variants.
func BenchmarkFig4aDstreamWorkSharing(b *testing.B) {
	benchWorkSharing(b, workload.Dstream)
}

// BenchmarkFig4bLstreamWorkSharing reproduces Figure 4b: Lstream
// throughput under work sharing.
func BenchmarkFig4bLstreamWorkSharing(b *testing.B) {
	benchWorkSharing(b, workload.Lstream)
}

// --------------------------------------------------------------- Figure 5

// fig56Architectures are the variants shown in Figures 5 and 6 (Stunnel is
// excluded after its poor work-sharing results, §5.4).
var fig56Architectures = []core.ArchitectureName{
	core.DTS, core.PRSHAProxy, core.PRSHAProxy4Conns, core.MSS,
}

// BenchmarkFig5RTTCDF reproduces Figure 5: per-message RTT distributions
// under work sharing with feedback. The p80_ms metric is the CDF's 80th
// percentile (the paper's headline CDF statistic).
func BenchmarkFig5RTTCDF(b *testing.B) {
	for _, w := range []workload.Workload{workload.Dstream, workload.Lstream} {
		for _, arch := range fig56Architectures {
			b.Run(w.Name+"/"+string(arch)+"/cons=16", func(b *testing.B) {
				res := runPoint(b, baseExperiment(arch, w, sim.PatternFeedback, 16))
				if res != nil && res.RTTCount() > 0 {
					// Emit three CDF probes so the distribution shape is
					// visible in the bench output.
					b.ReportMetric(float64(res.PercentileRTT(50))/1e6, "p50_ms")
					b.ReportMetric(float64(res.PercentileRTT(95))/1e6, "p95_ms")
				}
			})
		}
	}
}

// --------------------------------------------------------------- Figure 6

func benchFeedback(b *testing.B, w workload.Workload) {
	for _, arch := range fig56Architectures {
		for _, n := range benchConsumerCounts {
			b.Run(string(arch)+"/cons="+itoa(n), func(b *testing.B) {
				runPoint(b, baseExperiment(arch, w, sim.PatternFeedback, n))
			})
		}
	}
}

// BenchmarkFig6aDstreamFeedbackRTT reproduces Figure 6a: Dstream median
// RTT under work sharing with feedback.
func BenchmarkFig6aDstreamFeedbackRTT(b *testing.B) {
	benchFeedback(b, workload.Dstream)
}

// BenchmarkFig6bLstreamFeedbackRTT reproduces Figure 6b: Lstream median
// RTT under work sharing with feedback.
func BenchmarkFig6bLstreamFeedbackRTT(b *testing.B) {
	benchFeedback(b, workload.Lstream)
}

// --------------------------------------------------------------- Figure 7

// fig78Architectures are the variants shown in Figures 7 and 8.
var fig78Architectures = []core.ArchitectureName{
	core.DTS, core.PRSHAProxy, core.MSS,
}

// BenchmarkFig7aBroadcastThroughput reproduces Figure 7a: generic-workload
// broadcast throughput, one producer fanning out to N consumers.
func BenchmarkFig7aBroadcastThroughput(b *testing.B) {
	for _, arch := range fig78Architectures {
		for _, n := range benchConsumerCounts {
			b.Run(string(arch)+"/cons="+itoa(n), func(b *testing.B) {
				runPoint(b, baseExperiment(arch, workload.Generic, sim.PatternBroadcast, n))
			})
		}
	}
}

// BenchmarkFig7bBroadcastGatherRTT reproduces Figure 7b: median RTT when
// the producer also gathers one reply per consumer per broadcast.
func BenchmarkFig7bBroadcastGatherRTT(b *testing.B) {
	for _, arch := range fig78Architectures {
		for _, n := range benchConsumerCounts {
			b.Run(string(arch)+"/cons="+itoa(n), func(b *testing.B) {
				runPoint(b, baseExperiment(arch, workload.Generic, sim.PatternBroadcastGather, n))
			})
		}
	}
}

// --------------------------------------------------------------- Figure 8

// BenchmarkFig8BroadcastGatherCDF reproduces Figure 8: RTT distributions
// for broadcast and gather at a high consumer count.
func BenchmarkFig8BroadcastGatherCDF(b *testing.B) {
	for _, arch := range fig78Architectures {
		b.Run(string(arch)+"/cons=16", func(b *testing.B) {
			res := runPoint(b, baseExperiment(arch, workload.Generic, sim.PatternBroadcastGather, 16))
			if res != nil && res.RTTCount() > 0 {
				b.ReportMetric(float64(res.PercentileRTT(50))/1e6, "p50_ms")
				b.ReportMetric(float64(res.PercentileRTT(95))/1e6, "p95_ms")
			}
		})
	}
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationWorkQueues compares one vs two shared work queues
// (§5.2 adopts two, citing the messaging trade-off study [26]).
func BenchmarkAblationWorkQueues(b *testing.B) {
	for _, queues := range []int{1, 2} {
		b.Run("queues="+itoa(queues), func(b *testing.B) {
			exp := baseExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, 8)
			exp.WorkQueues = queues
			runPoint(b, exp)
		})
	}
}

// reportHotPath reports the broker hot-path counter deltas of one run as
// benchmark metrics: wire buffer-pool hit rate, frames coalesced per write,
// delivery/ack batching factors, and residual routing-shard contention.
func reportHotPath(b *testing.B, before map[string]uint64) {
	b.Helper()
	d := metrics.Delta(before, metrics.Default.Snapshot())
	if hits, misses := d["wire.bufpool_hits"], d["wire.bufpool_misses"]; hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "bufpool_hit_rate")
	}
	if w := d["wire.coalesced_writes"]; w > 0 {
		b.ReportMetric(float64(d["wire.frames_coalesced"])/float64(w), "frames_per_write")
	}
	if n := d["broker.delivery_batches"]; n > 0 {
		b.ReportMetric(float64(d["broker.deliveries_batched"])/float64(n), "deliveries_per_batch")
	}
	if n := d["broker.ack_batches"]; n > 0 {
		b.ReportMetric(float64(d["broker.acks_batched"])/float64(n), "acks_per_batch")
	}
	if c := d["broker.shard_contention"]; c > 0 {
		b.ReportMetric(float64(c)/float64(b.N), "shard_contention/op")
	}
}

// BenchmarkAblationAckBatching compares per-message and batch-wise
// consumer acknowledgements (§5.2 enables batch acks).
func BenchmarkAblationAckBatching(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run("ackbatch="+itoa(batch), func(b *testing.B) {
			exp := baseExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, 8)
			exp.AckBatch = batch
			// The prefetch window must cover the batch or the batch can
			// never fill (see pattern.Config).
			exp.Prefetch = 2 * batch
			before := metrics.Default.Snapshot()
			runPoint(b, exp)
			reportHotPath(b, before)
		})
	}
}

// BenchmarkAblationPrefetch sweeps the consumer QoS prefetch window.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, prefetch := range []int{1, 8, 64} {
		b.Run("prefetch="+itoa(prefetch), func(b *testing.B) {
			exp := baseExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, 8)
			exp.Prefetch = prefetch
			runPoint(b, exp)
		})
	}
}

// BenchmarkAblationMSSBypass measures the §6 improvement proposal: letting
// facility-internal consumers bypass the load balancer.
func BenchmarkAblationMSSBypass(b *testing.B) {
	for _, bypass := range []bool{false, true} {
		name := "front-door"
		if bypass {
			name = "bypass-lb"
		}
		b.Run(name, func(b *testing.B) {
			exp := baseExperiment(core.MSS, workload.Dstream, sim.PatternWorkSharing, 8)
			exp.Options.BypassLB = bypass
			runPoint(b, exp)
		})
	}
}

// BenchmarkAblationDurabilityPayload crosses the fsync policy with the
// payload size on durable DTS queues: msgs_per_sec shows the durability
// tax each policy charges and how larger payloads amortize the per-append
// sync (the write is payload-dominated, the fsync is not).
func BenchmarkAblationDurabilityPayload(b *testing.B) {
	policies := []struct {
		name  string
		fsync seglog.Fsync
	}{
		{"never", seglog.FsyncNever},
		{"interval", seglog.FsyncInterval},
		{"always", seglog.FsyncAlways},
	}
	for _, pol := range policies {
		for _, payload := range []int{512, 8192} {
			b.Run("fsync="+pol.name+"/payload="+itoa(payload), func(b *testing.B) {
				exp := baseExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, 8)
				exp.Workload.PayloadBytes = payload
				exp.Options.DataDir = b.TempDir()
				exp.Options.Durability = seglog.Options{Fsync: pol.fsync, FsyncEvery: 5 * time.Millisecond}
				runPoint(b, exp)
			})
		}
	}
}

// BenchmarkOverheadVsDTS reproduces the §5.3 overhead numbers: PRS and MSS
// throughput overhead relative to the DTS baseline at 8 consumers.
func BenchmarkOverheadVsDTS(b *testing.B) {
	base, err := sim.Run(baseExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, 8))
	if err != nil {
		b.Fatal(err)
	}
	for _, arch := range []core.ArchitectureName{core.PRSHAProxy, core.MSS} {
		b.Run(string(arch), func(b *testing.B) {
			before := metrics.Default.Snapshot()
			res := runPoint(b, baseExperiment(arch, workload.Dstream, sim.PatternWorkSharing, 8))
			if res != nil {
				b.ReportMetric(metrics.Overhead(base.Result.Throughput, res.Throughput), "overhead_x")
			}
			reportHotPath(b, before)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
