package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func pipe(t *testing.T, link *Link) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, link)
	done := make(chan net.Conn, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- c
	}()
	d := &Dialer{Link: link}
	c, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	t.Cleanup(func() { c.Close(); s.Close(); ln.Close() })
	return c, s
}

func TestUnshapedPassThrough(t *testing.T) {
	c, s := pipe(t, nil)
	msg := []byte("hello over loopback")
	go func() {
		if _, err := c.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestRateLimitThrottles(t *testing.T) {
	// 8 Mbps => 1 MB/s. Sending 256 KiB should take >= ~200 ms.
	link := NewLink("test", Mbps(8), 0)
	c, s := pipe(t, link)
	payload := make([]byte, 256*1024)
	start := time.Now()
	go func() {
		if _, err := c.Write(payload); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("256 KiB over 8 Mbps finished in %v, expected >= ~200 ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("transfer took %v, limiter appears stuck", elapsed)
	}
}

func TestLatencyApplied(t *testing.T) {
	link := NewLink("lat", 0, 30*time.Millisecond)
	c, s := pipe(t, link)
	start := time.Now()
	go c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("one-byte write arrived in %v, want >= 30ms latency", el)
	}
}

func TestSharedLinkContention(t *testing.T) {
	// Two flows over one 8 Mbps link must take roughly twice as long as
	// one flow for the same per-flow volume.
	link := NewLink("shared", Mbps(8), 0)
	c1, s1 := pipe(t, link)
	c2, s2 := pipe(t, link)
	const size = 128 * 1024

	var wg sync.WaitGroup
	recv := func(s net.Conn) {
		defer wg.Done()
		buf := make([]byte, size)
		if _, err := io.ReadFull(s, buf); err != nil {
			t.Error(err)
		}
	}
	start := time.Now()
	wg.Add(2)
	go recv(s1)
	go recv(s2)
	go c1.Write(make([]byte, size))
	go c2.Write(make([]byte, size))
	wg.Wait()
	elapsed := time.Since(start)
	// 256 KiB total at 1 MB/s ≈ 250 ms.
	if elapsed < 150*time.Millisecond {
		t.Errorf("two flows finished in %v; link not shared", elapsed)
	}
}

func TestJitterWithinBounds(t *testing.T) {
	link := NewLink("jit", 0, 5*time.Millisecond)
	link.Jitter = 10 * time.Millisecond
	c, s := pipe(t, link)
	for i := 0; i < 3; i++ {
		// Leave an idle gap so each write restarts the flow and pays
		// propagation latency again.
		time.Sleep(8 * time.Millisecond)
		start := time.Now()
		go c.Write([]byte("y"))
		buf := make([]byte, 1)
		if _, err := io.ReadFull(s, buf); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		if el < 4*time.Millisecond {
			t.Errorf("write %d arrived in %v, want >= base latency", i, el)
		}
	}
}

func TestLatencyPipelined(t *testing.T) {
	// Back-to-back writes must NOT pay per-write latency: 20 writes over
	// a 20 ms link should take far less than 20*20 ms.
	link := NewLink("pipe", 0, 20*time.Millisecond)
	c, s := pipe(t, link)
	go func() {
		for i := 0; i < 20; i++ {
			c.Write([]byte("z"))
		}
	}()
	start := time.Now()
	buf := make([]byte, 20)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Errorf("pipelined writes took %v; latency is serializing throughput", el)
	}
}

func TestUnitHelpers(t *testing.T) {
	if Gbps(1) != 1_000_000_000 {
		t.Errorf("Gbps(1) = %d", Gbps(1))
	}
	if Mbps(100) != 100_000_000 {
		t.Errorf("Mbps(100) = %d", Mbps(100))
	}
}

func TestWrapNilLink(t *testing.T) {
	c, s := pipe(t, nil)
	if _, ok := c.(*Conn); ok {
		t.Error("nil link should not wrap dialer conn")
	}
	if _, ok := s.(*Conn); ok {
		t.Error("nil link should not wrap accepted conn")
	}
}

func TestUnwrap(t *testing.T) {
	link := NewLink("u", 0, 0)
	c, _ := pipe(t, link)
	wrapped, ok := c.(*Conn)
	if !ok {
		t.Fatal("expected wrapped conn")
	}
	if wrapped.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestTakeZeroAndNegative(t *testing.T) {
	link := NewLink("z", Mbps(1), 0)
	done := make(chan struct{})
	go func() {
		link.take(0)
		link.take(-5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("take(0) blocked")
	}
}
