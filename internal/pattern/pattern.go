// Package pattern implements the messaging patterns of the paper's
// evaluation (§5.1) — work sharing (shared work queues), work sharing with
// feedback (work queues plus direct-routed per-producer reply queues),
// broadcast and gather (pub-sub fan-out with a reply queue drained by the
// single producer) — plus a multi-stage pipeline (edge → filter → fan-in
// aggregation) enabled by the role-graph engine.
//
// Every pattern is a declarative Graph (see engine.go): queues and
// exchanges to declare plus producer/consumer role behaviors, executed by
// one shared producer loop and one shared consumer loop. Run a pattern
// with Run(ctx, name, cfg); Names lists the registered patterns.
//
// Messaging parameters follow §5.2: two shared work queues, classic queues
// with the "reject-publish" overflow policy so producers observe
// backpressure and republish, and batch-wise acknowledgements.
package pattern

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/ranks"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/workload"
)

// ErrInfeasible reports configurations an architecture cannot run — the
// paper's "no data points shown" cases (Stunnel beyond 16 connections).
var ErrInfeasible = errors.New("pattern: configuration infeasible for architecture")

// Config parameterizes one experiment run.
type Config struct {
	// Deployment is the architecture under test.
	Deployment core.Deployment
	// Workload selects payloads (Table 1 row).
	Workload workload.Workload
	// Producers and Consumers are the client counts. Broadcast/gather
	// forces one producer.
	Producers int
	Consumers int
	// MessagesPerProducer is the per-producer message budget.
	MessagesPerProducer int
	// WorkQueues is the number of shared work queues (default 2, §5.2).
	WorkQueues int
	// Prefetch is the consumer QoS window (default 8).
	Prefetch int
	// AckBatch acknowledges every n-th delivery with multiple=true
	// (default 4; 1 disables batching).
	AckBatch int
	// Window bounds a producer's in-flight unconfirmed publishes
	// (default 8).
	Window int
	// QueueBytes caps each queue's ready bytes with reject-publish
	// (default 32 MiB).
	QueueBytes int64
	// GoroutineBudget, when positive, switches the run to the budgeted
	// client runtime (light.go): every role channel is a Session
	// multiplexed onto a small pool of physical connections, consumers
	// are event-driven ConsumeFunc state machines on the pooled read
	// loops, and producers execute on a bounded worker pool — the whole
	// client fleet (plus the in-process broker's per-connection serve
	// loops) stays within this many goroutines. 10⁴–10⁵ logical clients
	// per box become feasible; MPI rank semantics (synchronized start)
	// do not apply under a budget. Zero keeps the goroutine-per-client
	// model.
	GoroutineBudget int
	// Timeout bounds the whole run — declarations, consumer start-up,
	// production, confirm drain, and the final consume wait share one
	// deadline (default 120 s). Size it for the run, not one phase.
	Timeout time.Duration
	// Collector, when non-nil, receives the run's metrics — a scenario
	// injects one it has registered with a live telemetry aggregator.
	// Nil creates a run-private collector.
	Collector *metrics.Collector
	// Probes selects the telemetry registry the engine's per-role
	// probes (produced/consumed/inflight, confirm latency) register in;
	// nil uses telemetry.Default.
	Probes *telemetry.Registry
}

// probes resolves the telemetry registry.
func (c *Config) probes() *telemetry.Registry {
	if c.Probes != nil {
		return c.Probes
	}
	return telemetry.Default
}

func (c *Config) defaults() error {
	if c.Deployment == nil {
		return errors.New("pattern: Config.Deployment required")
	}
	if c.Producers <= 0 {
		c.Producers = 1
	}
	if c.Consumers <= 0 {
		c.Consumers = 1
	}
	if c.MessagesPerProducer <= 0 {
		c.MessagesPerProducer = 16
	}
	if c.WorkQueues <= 0 {
		c.WorkQueues = 2
	}
	if c.Prefetch <= 0 {
		c.Prefetch = 8
	}
	if c.AckBatch <= 0 {
		c.AckBatch = 4
	}
	// A batch larger than the prefetch window can never fill: the broker
	// stops delivering once prefetch messages are unacknowledged, so the
	// consumer would wait forever for the rest of its batch. Clamp, as a
	// RabbitMQ operator must.
	if c.AckBatch > c.Prefetch {
		c.AckBatch = c.Prefetch
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = 32 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return nil
}

// queueArgs are the §5.2 classic-queue settings.
func (c *Config) queueArgs() amqp.Table {
	return amqp.Table{
		"x-overflow":         "reject-publish",
		"x-max-length-bytes": c.QueueBytes,
	}
}

// nameOnSameNode derives a queue name that hashes to the same cluster node
// as ref, so direct-routed replies can be published over the same
// connection as the work queue (classic queues live on one master node).
func nameOnSameNode(d core.Deployment, base, ref string) string {
	return nameOnNode(d, base, d.Cluster().OwnerOf(ref))
}

// nameOnNode derives a queue name that hashes to the given cluster node.
func nameOnNode(d core.Deployment, base string, node int) string {
	cl := d.Cluster()
	name := base
	for i := 0; cl.OwnerOf(name) != node; i++ {
		name = fmt.Sprintf("%s~%d", base, i)
	}
	return name
}

// batchAcker acknowledges every n-th delivery with multiple=true and
// flushes the tail on Close.
type batchAcker struct {
	n       int
	pending int
	last    amqp.Delivery
	has     bool
}

func (b *batchAcker) add(d amqp.Delivery) error {
	b.pending++
	b.last = d
	b.has = true
	if b.pending >= b.n {
		b.pending = 0
		b.has = false
		return d.Ack(true)
	}
	return nil
}

func (b *batchAcker) flush() error {
	if b.has {
		b.has = false
		b.pending = 0
		return b.last.Ack(true)
	}
	return nil
}

// pubEntry tracks one in-flight publish: which message it carries and
// when it left, for the confirm-latency histogram.
type pubEntry struct {
	msgSeq uint64
	sentNs int64
}

// confirmWindow tracks in-flight publishes on a confirm-mode channel and
// reports nacked sequence numbers for retry. Publish-to-confirm latency
// streams into the engine's confirm-latency histogram.
type confirmWindow struct {
	ch       *amqp.Channel
	confirms <-chan amqp.Confirmation
	window   int
	lat      *telemetry.Histogram

	mu       sync.Mutex
	inflight map[uint64]pubEntry // publish seq -> in-flight entry
	nacked   []uint64
	idle     chan struct{} // non-nil while a drain waits for an empty window
	slots    chan struct{}
	closed   chan struct{}
	wg       sync.WaitGroup
}

func newConfirmWindow(ch *amqp.Channel, window int, lat *telemetry.Histogram) (*confirmWindow, error) {
	if err := ch.Confirm(false); err != nil {
		return nil, err
	}
	cw := &confirmWindow{
		ch:       ch,
		confirms: ch.NotifyPublish(make(chan amqp.Confirmation, 2*window)),
		window:   window,
		lat:      lat,
		inflight: map[uint64]pubEntry{},
		slots:    make(chan struct{}, window),
		closed:   make(chan struct{}),
	}
	cw.wg.Add(1)
	go cw.listen()
	return cw, nil
}

// listen resolves confirmations until the confirm stream closes (channel
// teardown or connection death); closed lets blocked publishers and
// drainers fail immediately instead of waiting out the run deadline.
func (cw *confirmWindow) listen() {
	defer cw.wg.Done()
	defer close(cw.closed)
	for conf := range cw.confirms {
		cw.mu.Lock()
		entry, ok := cw.inflight[conf.DeliveryTag]
		delete(cw.inflight, conf.DeliveryTag)
		if ok && !conf.Ack {
			cw.nacked = append(cw.nacked, entry.msgSeq)
		}
		if len(cw.inflight) == 0 && cw.idle != nil {
			close(cw.idle)
			cw.idle = nil
		}
		cw.mu.Unlock()
		if ok {
			if conf.Ack && cw.lat != nil {
				cw.lat.Record(time.Now().UnixNano() - entry.sentNs)
			}
			<-cw.slots
		}
	}
}

// publish sends one message, blocking while the window is full (but never
// past ctx or the death of the confirm stream). It returns any message
// sequence numbers that were nacked and must be resent.
func (cw *confirmWindow) publish(ctx context.Context, exchange, key string, msgSeq uint64, pub amqp.Publishing) error {
	select {
	case cw.slots <- struct{}{}:
	case <-cw.closed:
		return errors.New("pattern: confirm stream closed")
	case <-ctx.Done():
		return ctx.Err()
	}
	cw.mu.Lock()
	seq := cw.ch.GetNextPublishSeqNo()
	cw.inflight[seq] = pubEntry{msgSeq: msgSeq, sentNs: time.Now().UnixNano()}
	cw.mu.Unlock()
	if err := cw.ch.Publish(exchange, key, false, false, pub); err != nil {
		cw.mu.Lock()
		delete(cw.inflight, seq)
		cw.mu.Unlock()
		<-cw.slots
		return err
	}
	return nil
}

// takeNacked drains the retry list.
func (cw *confirmWindow) takeNacked() []uint64 {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	out := cw.nacked
	cw.nacked = nil
	return out
}

// drain waits until no publishes are in flight, signaled by the confirm
// listener the moment the window empties.
func (cw *confirmWindow) drain(ctx context.Context) error {
	cw.mu.Lock()
	if len(cw.inflight) == 0 {
		cw.mu.Unlock()
		return nil
	}
	if cw.idle == nil {
		cw.idle = make(chan struct{})
	}
	ch := cw.idle
	cw.mu.Unlock()
	unconfirmed := func() int {
		cw.mu.Lock()
		defer cw.mu.Unlock()
		return len(cw.inflight)
	}
	select {
	case <-ch:
		return nil
	case <-cw.closed:
		return fmt.Errorf("pattern: confirm stream closed with %d publishes unconfirmed", unconfirmed())
	case <-ctx.Done():
		return fmt.Errorf("pattern: %d publishes unconfirmed: %w", unconfirmed(), ctx.Err())
	}
}

// runClients launches n clients either as plain goroutines (Deleria-style)
// or under an MPI-like rank group (Lstream/generic), per Table 1.
func runClients(n int, mpi bool, f func(id int) error) error {
	if mpi {
		return ranks.NewGroup(n).Run(func(r *ranks.Rank) error {
			r.Barrier() // mpirun-style synchronized start
			return f(r.ID())
		})
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
