// Package scenario is the declarative experiment surface: one
// JSON-serializable Spec declares a whole data point of the paper's
// evaluation grid — deployment (architecture, nodes, fabric profile),
// workload, pattern, client counts, tuning knobs, fault script, and run
// count — and Run(ctx, Spec) executes it through the pattern role engine.
// Command-line drivers, tests, and the figure harness all speak Spec, so a
// new scenario is a value (or a .json file) rather than new plumbing.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/workload"
)

// ErrBadSpec reports a Spec rejected by validation before any deployment
// or client work starts.
var ErrBadSpec = errors.New("scenario: invalid spec")

// Spec declares one experiment scenario end to end. The zero value of
// every optional field means "use the default", so a minimal spec is just
// an architecture, a workload, a pattern, and a message budget.
type Spec struct {
	// Name labels the scenario in reports and logs.
	Name string `json:"name,omitempty"`
	// Deployment declares the architecture under test.
	Deployment Deployment `json:"deployment"`
	// Workload selects the Table 1 row (and optional payload scaling).
	Workload Workload `json:"workload"`
	// Pattern names a registered pattern role graph (pattern.Names()).
	Pattern string `json:"pattern"`
	// Producers and Consumers are the client counts (default 1 each;
	// single-producer patterns force Producers to 1).
	Producers int `json:"producers,omitempty"`
	Consumers int `json:"consumers,omitempty"`
	// MessagesPerProducer is the per-producer message budget (required).
	MessagesPerProducer int `json:"messages_per_producer"`
	// Runs is the number of runs merged into one data point (default 1).
	Runs int `json:"runs,omitempty"`
	// Tuning carries the messaging knobs of §5.2.
	Tuning Tuning `json:"tuning,omitempty"`
	// Faults is the scripted WAN fault sequence armed before each run.
	Faults []Fault `json:"faults,omitempty"`
	// Health overrides the default health-rule set evaluated against
	// every aggregator tick (DefaultHealthRules when empty). Transitions
	// land in Report.HealthEvents.
	Health []telemetry.HealthRule `json:"health,omitempty"`
	// TimeoutMS bounds each whole run end to end — setup, production,
	// and the final drain share one deadline (default 120000).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Deployment declares the architecture, cluster size and fabric profile.
type Deployment struct {
	// Architecture is one of core.AllArchitectures.
	Architecture string `json:"architecture"`
	// Nodes is the broker cluster size (default 3).
	Nodes int `json:"nodes,omitempty"`
	// ClusterNodes, when positive, runs that many nodes as a clustered
	// data plane: ring placement assigns every queue a master, declares
	// and default-exchange publishes for remotely-mastered queues are
	// federated to the master node, mis-routed consumers are redirected,
	// and node-kill faults fail mastered queues over to survivors.
	// Mutually exclusive with Nodes (which keeps the nodes independent
	// placement-sharing brokers).
	ClusterNodes int `json:"cluster_nodes,omitempty"`
	// Placement names the clustered placement policy; "ring" (the
	// consistent-hash ring) is the only policy and the default. Only
	// valid alongside ClusterNodes.
	Placement string `json:"placement,omitempty"`
	// FabricScale scales the emulated ACE testbed rates (1.0 = paper
	// rates; default 1.0).
	FabricScale float64 `json:"fabric_scale,omitempty"`
	// MemoryLimitBytes bounds ready bytes per broker vhost.
	MemoryLimitBytes int64 `json:"memory_limit_bytes,omitempty"`
	// DisableClientShaping turns off per-connection client NIC links.
	DisableClientShaping bool `json:"disable_client_shaping,omitempty"`
	// FastControlPlane zeroes the per-connection LB setup and route
	// lookup costs (useful for protocol-focused scenarios and tests).
	FastControlPlane bool `json:"fast_control_plane,omitempty"`
	// BypassLB lets MSS consumers skip the load balancer (§6 proposal).
	BypassLB bool `json:"bypass_lb,omitempty"`
	// Reconnect enables bounded client auto-reconnect, required for runs
	// that must survive injected faults.
	Reconnect *Reconnect `json:"reconnect,omitempty"`
	// Durability enables durable queue storage on every broker node,
	// required by broker-restart faults and replay patterns.
	Durability *Durability `json:"durability,omitempty"`
	// ReplicationFactor R >= 2 gives every durable queue R-1 synchronous
	// mirrors on distinct cluster nodes: producer confirms wait for the
	// in-sync mirror set, and a master kill promotes the most-advanced
	// in-sync mirror instead of relocating segment logs. Requires
	// cluster_nodes >= R and durability.
	ReplicationFactor int `json:"replication_factor,omitempty"`
}

// Durability mirrors seglog.Options in JSON-friendly units. Declaring it
// (even empty) turns durable storage on for every broker node.
type Durability struct {
	// DataDir roots the brokers' durable storage; empty uses a fresh
	// temporary directory removed when the scenario finishes.
	DataDir string `json:"data_dir,omitempty"`
	// Fsync is the segment-log sync policy: "never" (default), "always"
	// (confirm implies durable) or "interval".
	Fsync string `json:"fsync,omitempty"`
	// FsyncIntervalMS is the interval policy's cadence (default 50).
	FsyncIntervalMS int64 `json:"fsync_interval_ms,omitempty"`
	// SegmentBytes caps each segment file (default 8 MiB).
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// RetainAll keeps fully-acked segments instead of compacting them —
	// required by replay patterns that read history from offset 0.
	RetainAll bool `json:"retain_all,omitempty"`
}

// Reconnect mirrors amqp.ReconnectPolicy in JSON-friendly units.
type Reconnect struct {
	MaxAttempts int   `json:"max_attempts,omitempty"`
	DelayMS     int64 `json:"delay_ms,omitempty"`
	MaxDelayMS  int64 `json:"max_delay_ms,omitempty"`
}

// Workload selects a Table 1 workload with optional payload scaling.
type Workload struct {
	// Name is "Dstream", "Lstream" or "generic".
	Name string `json:"name"`
	// PayloadDivisor shrinks the payload (workload.Scaled) so scaled
	// fabrics keep the paper's payload-to-bandwidth ratio.
	PayloadDivisor int `json:"payload_divisor,omitempty"`
	// PayloadBytes overrides the payload size outright when positive.
	PayloadBytes int `json:"payload_bytes,omitempty"`
}

// Tuning mirrors the pattern.Config knobs; zero values use defaults.
type Tuning struct {
	WorkQueues int   `json:"work_queues,omitempty"`
	Prefetch   int   `json:"prefetch,omitempty"`
	AckBatch   int   `json:"ack_batch,omitempty"`
	Window     int   `json:"window,omitempty"`
	QueueBytes int64 `json:"queue_bytes,omitempty"`
	// GoroutineBudget, when positive, runs the scenario on the budgeted
	// client runtime: role channels multiplex onto pooled connections and
	// the whole client fleet stays within this many goroutines (see
	// pattern.Config.GoroutineBudget). Required for 10⁴+-client specs.
	GoroutineBudget int `json:"goroutine_budget,omitempty"`
}

// Fault kinds.
const (
	// FaultFlap is a one-shot link flap (all connections reset, dials
	// refused for DownMS) fired once the run's traffic crosses AtBytes
	// or AtFraction of the scenario's total payload volume.
	FaultFlap = "flap"
	// FaultFlapEvery re-fires a flap every EveryBytes (or EveryFraction
	// of total payload volume), at most Count times.
	FaultFlapEvery = "flap-every"
	// FaultLatencySpike adds LatencyMS of delay to every write for the
	// whole run.
	FaultLatencySpike = "latency-spike"
	// FaultBrokerRestart hard-kills every broker node (SIGKILL semantics:
	// unfsynced data is lost, connections drop without teardown) once the
	// run's consumed-message count crosses AtFraction of the production
	// budget, then restarts the nodes on their original addresses after
	// DownMS. Requires deployment.durability (so queues recover) and
	// deployment.reconnect (so clients survive the outage).
	FaultBrokerRestart = "broker-restart"
	// FaultNodeKill hard-kills ONE broker node — the master of the most
	// queues unless Node picks one — once the run's consumed-message
	// count crosses AtFraction of the production budget, and fails its
	// queues over to surviving nodes. The dead node stays down for the
	// rest of the run: clients ride the failover through seed rotation
	// and master redirects. Requires deployment.cluster_nodes >= 2
	// (placement, federation and redirects), deployment.durability (so
	// moved queues replay their segment logs on the new master) and
	// deployment.reconnect.
	FaultNodeKill = "node-kill"
	// FaultRollingNodeKill hard-kills Count broker nodes one after
	// another: the first (the master of the most queues unless Node picks
	// one) once consumed messages cross AtFraction of the production
	// budget, then another every EveryFraction of the budget — each
	// subsequent victim is the node the previous failover promoted the
	// most queues onto, so the schedule chases the data. Killed nodes stay
	// down. Requires deployment.replication_factor >= 2 (survival without
	// the dead nodes' disks), deployment.cluster_nodes > Count (a survivor
	// must remain), deployment.durability and deployment.reconnect.
	FaultRollingNodeKill = "rolling-node-kill"
)

// Fault is one step of the scripted WAN fault sequence. Byte-triggered
// kinds arm on traffic volume so scenarios stay deterministic regardless
// of how fast a run progresses.
type Fault struct {
	Kind string `json:"kind"`
	// AtBytes / AtFraction position a one-shot flap: an absolute byte
	// threshold, or a fraction (0,1] of the run's total payload bytes.
	AtBytes    int64   `json:"at_bytes,omitempty"`
	AtFraction float64 `json:"at_fraction,omitempty"`
	// EveryBytes / EveryFraction set the recurrence interval of a
	// flap-every fault; Count bounds the number of flaps (required).
	EveryBytes    int64   `json:"every_bytes,omitempty"`
	EveryFraction float64 `json:"every_fraction,omitempty"`
	Count         int     `json:"count,omitempty"`
	// DownMS is the outage duration of each flap, or how long crashed
	// brokers stay down before a broker-restart brings them back
	// (default 50).
	DownMS int64 `json:"down_ms,omitempty"`
	// LatencyMS is the added write delay of a latency spike.
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// Node picks the node-kill victim explicitly; nil kills the node
	// mastering the most queues when the fault fires.
	Node *int `json:"node,omitempty"`
}

// Decode reads one Spec as JSON, rejecting unknown fields so typo'd spec
// keys surface as errors instead of silently-defaulted knobs.
func Decode(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return spec, nil
}

// Load reads and decodes a spec file.
func Load(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	spec, err := Decode(f)
	if err != nil {
		return Spec{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return spec, nil
}

// Validate checks the spec without deploying anything. All reported
// problems wrap ErrBadSpec.
func (s Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if s.Deployment.Architecture != "" {
		known := false
		for _, a := range core.AllArchitectures {
			if string(a) == s.Deployment.Architecture {
				known = true
			}
		}
		if !known {
			return bad("unknown architecture %q (known: %v)", s.Deployment.Architecture, core.AllArchitectures)
		}
	} else {
		return bad("deployment.architecture is required")
	}
	if s.Workload.Name == "" {
		return bad("workload.name is required")
	}
	if _, err := workload.ByName(s.Workload.Name); err != nil {
		return bad("%v", err)
	}
	if s.Workload.PayloadDivisor < 0 || s.Workload.PayloadBytes < 0 {
		return bad("workload payload scaling must be non-negative")
	}
	g, ok := pattern.Lookup(s.Pattern)
	if !ok {
		return bad("unknown pattern %q (registered: %v)", s.Pattern, pattern.Names())
	}
	if d := s.Deployment.Durability; d != nil {
		if _, err := seglog.ParseFsync(d.Fsync); err != nil {
			return bad("durability: %v", err)
		}
		if d.FsyncIntervalMS < 0 || d.SegmentBytes < 0 {
			return bad("durability sizes must be non-negative")
		}
	}
	if g.NeedsDurability {
		if s.Deployment.Durability == nil {
			return bad("pattern %q replays durable history: deployment.durability is required", s.Pattern)
		}
		if !s.Deployment.Durability.RetainAll {
			return bad("pattern %q replays from offset 0: durability.retain_all must be true or compaction may drop the history", s.Pattern)
		}
	}
	if s.Producers < 0 || s.Consumers < 0 {
		return bad("negative client counts (producers=%d consumers=%d)", s.Producers, s.Consumers)
	}
	if s.MessagesPerProducer <= 0 {
		return bad("messages_per_producer must be positive, got %d", s.MessagesPerProducer)
	}
	if s.Runs < 0 {
		return bad("runs must be non-negative, got %d", s.Runs)
	}
	if s.TimeoutMS < 0 {
		return bad("timeout_ms must be non-negative, got %d", s.TimeoutMS)
	}
	if s.Tuning.GoroutineBudget < 0 {
		return bad("tuning.goroutine_budget must be non-negative, got %d", s.Tuning.GoroutineBudget)
	}
	if s.Deployment.Nodes < 0 || s.Deployment.FabricScale < 0 {
		return bad("deployment sizes must be non-negative")
	}
	if s.Deployment.ClusterNodes < 0 {
		return bad("deployment.cluster_nodes must be non-negative")
	}
	if s.Deployment.ClusterNodes > 0 && s.Deployment.Nodes > 0 {
		return bad("deployment.cluster_nodes and deployment.nodes are mutually exclusive")
	}
	switch s.Deployment.Placement {
	case "":
	case "ring":
		if s.Deployment.ClusterNodes <= 0 {
			return bad("deployment.placement requires deployment.cluster_nodes")
		}
	default:
		return bad("unknown placement policy %q (known: ring)", s.Deployment.Placement)
	}
	if rf := s.Deployment.ReplicationFactor; rf != 0 {
		if rf < 2 {
			return bad("deployment.replication_factor must be >= 2 (R-1 mirrors), got %d", rf)
		}
		if s.Deployment.ClusterNodes < rf {
			return bad("deployment.replication_factor %d needs deployment.cluster_nodes >= %d (mirrors live on distinct nodes)", rf, rf)
		}
		if s.Deployment.Durability == nil {
			return bad("deployment.replication_factor mirrors segment logs: deployment.durability is required")
		}
	}
	flaps, restarts, kills := 0, 0, 0
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultFlap:
			if f.AtBytes <= 0 && (f.AtFraction <= 0 || f.AtFraction > 1) {
				return bad("faults[%d]: flap needs at_bytes > 0 or at_fraction in (0,1]", i)
			}
			flaps++
		case FaultFlapEvery:
			if f.EveryBytes <= 0 && (f.EveryFraction <= 0 || f.EveryFraction > 1) {
				return bad("faults[%d]: flap-every needs every_bytes > 0 or every_fraction in (0,1]", i)
			}
			if f.Count <= 0 {
				return bad("faults[%d]: flap-every needs count > 0 (unbounded flap storms are disallowed)", i)
			}
			flaps++
		case FaultLatencySpike:
			if f.LatencyMS <= 0 {
				return bad("faults[%d]: latency-spike needs latency_ms > 0", i)
			}
		case FaultBrokerRestart:
			if f.AtFraction <= 0 || f.AtFraction > 1 {
				return bad("faults[%d]: broker-restart needs at_fraction in (0,1]", i)
			}
			if s.Deployment.Durability == nil {
				return bad("faults[%d]: broker-restart loses in-memory queues: deployment.durability is required", i)
			}
			if s.Deployment.Reconnect == nil {
				return bad("faults[%d]: broker-restart drops every client: deployment.reconnect is required", i)
			}
			restarts++
		case FaultNodeKill:
			if f.AtFraction <= 0 || f.AtFraction > 1 {
				return bad("faults[%d]: node-kill needs at_fraction in (0,1]", i)
			}
			if s.Deployment.ClusterNodes < 2 {
				return bad("faults[%d]: node-kill needs deployment.cluster_nodes >= 2 (failover needs a survivor)", i)
			}
			if s.Deployment.Durability == nil {
				return bad("faults[%d]: node-kill loses in-memory queues: deployment.durability is required", i)
			}
			if s.Deployment.Reconnect == nil {
				return bad("faults[%d]: node-kill drops the node's clients: deployment.reconnect is required", i)
			}
			if f.Node != nil && (*f.Node < 0 || *f.Node >= s.Deployment.ClusterNodes) {
				return bad("faults[%d]: node-kill node %d out of range [0,%d)", i, *f.Node, s.Deployment.ClusterNodes)
			}
			kills++
		case FaultRollingNodeKill:
			if f.AtFraction <= 0 || f.AtFraction > 1 {
				return bad("faults[%d]: rolling-node-kill needs at_fraction in (0,1]", i)
			}
			if f.EveryFraction <= 0 || f.EveryFraction > 1 {
				return bad("faults[%d]: rolling-node-kill needs every_fraction in (0,1]", i)
			}
			if f.Count < 1 {
				return bad("faults[%d]: rolling-node-kill needs count >= 1", i)
			}
			if f.Count >= s.Deployment.ClusterNodes {
				return bad("faults[%d]: rolling-node-kill count %d needs deployment.cluster_nodes > %d (a survivor must remain)", i, f.Count, f.Count)
			}
			if s.Deployment.ReplicationFactor < 2 {
				return bad("faults[%d]: rolling-node-kill survives on mirrors: deployment.replication_factor >= 2 is required", i)
			}
			if s.Deployment.Durability == nil {
				return bad("faults[%d]: rolling-node-kill loses in-memory queues: deployment.durability is required", i)
			}
			if s.Deployment.Reconnect == nil {
				return bad("faults[%d]: rolling-node-kill drops the nodes' clients: deployment.reconnect is required", i)
			}
			if f.Node != nil && (*f.Node < 0 || *f.Node >= s.Deployment.ClusterNodes) {
				return bad("faults[%d]: rolling-node-kill node %d out of range [0,%d)", i, *f.Node, s.Deployment.ClusterNodes)
			}
			kills++
		default:
			return bad("faults[%d]: unknown kind %q", i, f.Kind)
		}
	}
	// One watcher arms one crash/restart cycle per run.
	if restarts > 1 {
		return bad("at most one broker-restart fault per scenario")
	}
	if kills > 1 {
		return bad("at most one node-kill or rolling-node-kill fault per scenario")
	}
	// Both watchers would race on the same nodes (restart resurrecting
	// the killed one mid-failover).
	if restarts > 0 && kills > 0 {
		return bad("broker-restart and node-kill cannot be combined")
	}
	// The injector has one byte-trigger arm slot; a second flap step
	// would silently overwrite the first.
	if flaps > 1 {
		return bad("at most one flap/flap-every fault per scenario")
	}
	for i, r := range s.Health {
		if r.Name == "" {
			return bad("health[%d]: name is required", i)
		}
		if r.Source == "" {
			return bad("health[%d] (%s): source is required", i, r.Name)
		}
		switch r.Kind {
		case "", telemetry.RuleAbove, telemetry.RuleBelow, telemetry.RuleFlap:
		default:
			return bad("health[%d] (%s): unknown kind %q (known: above, below, flap)", i, r.Name, r.Kind)
		}
		if r.For < 0 || r.Clear < 0 {
			return bad("health[%d] (%s): for_ticks/clear_ticks must be non-negative", i, r.Name)
		}
		// Below rules legitimately warn at 0 (a stalled rate); above and
		// flap rules with a zero warn threshold would breach on every tick.
		if r.Kind != telemetry.RuleBelow && r.Warn <= 0 {
			return bad("health[%d] (%s): %s rules need warn > 0", i, r.Name, ruleKindName(r.Kind))
		}
	}
	return nil
}

// ruleKindName renders a health-rule kind for error messages (the empty
// kind defaults to above).
func ruleKindName(kind string) string {
	if kind == "" {
		return telemetry.RuleAbove
	}
	return kind
}

// timeout resolves the run deadline.
func (s Spec) timeout() time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return 120 * time.Second
}

// runs resolves the run count.
func (s Spec) runs() int {
	if s.Runs > 0 {
		return s.Runs
	}
	return 1
}

// workload resolves the declared workload value.
func (s Spec) workload() (workload.Workload, error) {
	w, err := workload.ByName(s.Workload.Name)
	if err != nil {
		return workload.Workload{}, err
	}
	if s.Workload.PayloadDivisor > 1 {
		w = w.Scaled(s.Workload.PayloadDivisor)
	}
	if s.Workload.PayloadBytes > 0 {
		w.PayloadBytes = s.Workload.PayloadBytes
	}
	return w, nil
}

// options builds the core deployment options declared by the spec.
func (s Spec) options() core.Options {
	d := s.Deployment
	scale := d.FabricScale
	if scale == 0 {
		scale = 1.0
	}
	profile := fabric.ACE(scale)
	if d.FastControlPlane {
		profile.LBSetupCost = 0
		profile.RouteLookupLatency = 0
	}
	opts := core.Options{
		Nodes:                d.Nodes,
		Profile:              profile,
		MemoryLimit:          d.MemoryLimitBytes,
		DisableClientShaping: d.DisableClientShaping,
		BypassLB:             d.BypassLB,
	}
	if d.ClusterNodes > 0 {
		opts.Nodes = d.ClusterNodes
		opts.Federation = true
		opts.ReplicationFactor = d.ReplicationFactor
	}
	if r := d.Reconnect; r != nil {
		opts.Reconnect = &amqp.ReconnectPolicy{
			MaxAttempts: r.MaxAttempts,
			Delay:       time.Duration(r.DelayMS) * time.Millisecond,
			MaxDelay:    time.Duration(r.MaxDelayMS) * time.Millisecond,
		}
	}
	return opts
}

// applyDurability resolves the spec's durability declaration onto the
// deployment options. When no data directory is declared, a fresh temp dir
// is created and the returned cleanup removes it (a no-op otherwise).
// Call only on a validated spec.
func (s Spec) applyDurability(opts *core.Options) (cleanup func(), err error) {
	cleanup = func() {}
	d := s.Deployment.Durability
	if d == nil {
		return cleanup, nil
	}
	dir := d.DataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "ds2hpc-durable-")
		if err != nil {
			return cleanup, fmt.Errorf("scenario: durability temp dir: %w", err)
		}
		cleanup = func() { os.RemoveAll(dir) }
	}
	fs, err := seglog.ParseFsync(d.Fsync)
	if err != nil {
		cleanup()
		return func() {}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	opts.DataDir = dir
	opts.Durability = seglog.Options{
		Fsync:        fs,
		FsyncEvery:   time.Duration(d.FsyncIntervalMS) * time.Millisecond,
		SegmentBytes: d.SegmentBytes,
		RetainAll:    d.RetainAll,
	}
	return cleanup, nil
}

// needsInjector reports whether any declared fault runs through the
// transport injector (broker-restart and the node-kill family act on the
// cluster directly).
func (s Spec) needsInjector() bool {
	for _, f := range s.Faults {
		if f.Kind != FaultBrokerRestart && f.Kind != FaultNodeKill && f.Kind != FaultRollingNodeKill {
			return true
		}
	}
	return false
}

// brokerRestart returns the broker-restart fault step, if declared.
func (s Spec) brokerRestart() *Fault {
	for i := range s.Faults {
		if s.Faults[i].Kind == FaultBrokerRestart {
			return &s.Faults[i]
		}
	}
	return nil
}

// nodeKill returns the node-kill fault step, if declared.
func (s Spec) nodeKill() *Fault {
	for i := range s.Faults {
		if s.Faults[i].Kind == FaultNodeKill {
			return &s.Faults[i]
		}
	}
	return nil
}

// rollingNodeKill returns the rolling-node-kill fault step, if declared.
func (s Spec) rollingNodeKill() *Fault {
	for i := range s.Faults {
		if s.Faults[i].Kind == FaultRollingNodeKill {
			return &s.Faults[i]
		}
	}
	return nil
}

// totalMessages is the scenario's per-run production budget, the base of
// the broker-restart fault's consumed-fraction threshold.
func (s Spec) totalMessages() int64 {
	producers := s.Producers
	if g, ok := pattern.Lookup(s.Pattern); ok && g.SingleProducer {
		producers = 1
	}
	if producers <= 0 {
		producers = 1
	}
	return int64(producers) * int64(s.MessagesPerProducer)
}

// totalPayloadBytes is the scenario's per-run payload volume, the base of
// fractional fault thresholds.
func (s Spec) totalPayloadBytes(w workload.Workload) int64 {
	return s.totalMessages() * int64(w.PayloadBytes)
}
