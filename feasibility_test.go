// End-to-end coverage of the Stunnel 16-connection feasibility ceiling
// (§5.3: "a maximum of 16 simultaneous connections in our setup") through
// the full core.Deployment stack — client path → outbound S2DS → mux'd
// TLS tunnel → inbound S2DS → broker — rather than the unit-level mux
// tests in internal/scistream.
package ds2hpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/scistream"
	"ds2hpc/internal/sim"
	"ds2hpc/internal/workload"
)

// feasibilityOptions keeps the deployment fast: small scaled links, no
// client shaping, no LB costs.
func feasibilityOptions() core.Options {
	p := fabric.ACE(0.05)
	p.LBSetupCost = 0
	p.RouteLookupLatency = 0
	return core.Options{Nodes: 3, Profile: p, DisableClientShaping: true}
}

func TestStunnelCeilingEndToEnd(t *testing.T) {
	dep, err := core.Deploy(core.PRSStunnel, feasibilityOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.MaxProducerConns() != scistream.StunnelMaxStreams {
		t.Fatalf("ceiling %d, want %d", dep.MaxProducerConns(), scistream.StunnelMaxStreams)
	}

	// All connections target one queue, so they share one session tunnel
	// (the binding limit for the paper's work-sharing workload).
	const queue = "ws-q-0"
	ep := dep.ProducerEndpoint(queue)
	var conns []*amqp.Connection
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < scistream.StunnelMaxStreams; i++ {
		c, err := ep.Connect()
		if err != nil {
			t.Fatalf("connection %d within the ceiling failed: %v", i+1, err)
		}
		conns = append(conns, c)
	}
	if c, err := ep.Connect(); err == nil {
		c.Close()
		t.Fatalf("connection %d must be refused by the tunnel", scistream.StunnelMaxStreams+1)
	}

	// Closing a connection frees its tunnel stream (after the half-close
	// handshake drains through the relay), so a new client fits again.
	conns[0].Close()
	conns = conns[1:]
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := ep.Connect()
		if err == nil {
			conns = append(conns, c)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream slot never freed after closing a connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStunnelInfeasibleSurfacesThroughPattern pins how the ceiling
// surfaces to experiment code: pattern runs report ErrInfeasible, and the
// sim layer turns that into an Infeasible point (the paper's missing data
// points) instead of an error.
func TestStunnelInfeasibleSurfacesThroughPattern(t *testing.T) {
	dep, err := core.Deploy(core.PRSStunnel, feasibilityOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	w := workload.Dstream
	w.PayloadBytes = 2048
	_, err = pattern.Run(context.Background(), "work-sharing", pattern.Config{
		Deployment:          dep,
		Workload:            w,
		Producers:           scistream.StunnelMaxStreams + 1,
		Consumers:           2,
		MessagesPerProducer: 1,
		Timeout:             10 * time.Second,
	})
	if !errors.Is(err, pattern.ErrInfeasible) {
		t.Fatalf("pattern error = %v, want ErrInfeasible", err)
	}

	pt, err := sim.RunOn(dep, sim.Experiment{
		Architecture:        core.PRSStunnel,
		Workload:            w,
		Pattern:             sim.PatternWorkSharing,
		Producers:           scistream.StunnelMaxStreams + 1,
		Consumers:           2,
		MessagesPerProducer: 1,
		Runs:                1,
		Timeout:             10 * time.Second,
	})
	if err != nil {
		t.Fatalf("sim must absorb infeasibility, got %v", err)
	}
	if !pt.Infeasible {
		t.Fatal("sim point must be marked infeasible")
	}
}
