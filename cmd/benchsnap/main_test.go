package main

import (
	"encoding/json"
	"strings"
	"testing"

	"ds2hpc/internal/telemetry"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ds2hpc
BenchmarkAblationAckBatching/ackbatch=1-8         	       1	  56789012 ns/op	      4567 B/op	      89 allocs/op	     123.4 msgs_per_sec
BenchmarkAblationAckBatching/ackbatch=4-8         	       2	  34567890 ns/op	      2345 B/op	      45 allocs/op	     234.5 msgs_per_sec	       0.9876 bufpool_hit_rate
BenchmarkResilienceFaultRate/DTS/flaps=1-8        	       1	 123456789 ns/op	     345.6 msgs_per_sec	       4.000 reconnects/op
TELEMETRY_SNAPSHOT: {"counters":{"broker.published":128},"watermarks":{"broker.queue_depth_peak":42},"histograms":{"rtt_ns":{"buckets":[{"upper":1007,"count":3}],"count":3,"sum":3000}}}
PASS
ok  	ds2hpc	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[1]
	if b.Name != "BenchmarkAblationAckBatching/ackbatch=4-8" || b.Iters != 2 {
		t.Fatalf("benchmark %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op":            34567890,
		"B/op":             2345,
		"allocs/op":        45,
		"msgs_per_sec":     234.5,
		"bufpool_hit_rate": 0.9876,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	r := snap.Benchmarks[2]
	if r.Metrics["reconnects/op"] != 4 {
		t.Fatalf("reconnects/op = %v", r.Metrics["reconnects/op"])
	}
}

// TestParseEmbedsTelemetrySnapshot checks the harness's final telemetry
// line lands in the JSON artifact and decodes back into a full
// telemetry.Snapshot (histogram buckets and peak queue depth included).
func TestParseEmbedsTelemetrySnapshot(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Telemetry == nil {
		t.Fatal("telemetry snapshot line not embedded")
	}
	var tel telemetry.Snapshot
	if err := json.Unmarshal(snap.Telemetry, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Watermarks["broker.queue_depth_peak"] != 42 {
		t.Fatalf("peak depth = %+v", tel.Watermarks)
	}
	h := tel.Histograms["rtt_ns"]
	if h == nil || h.Count != 3 || len(h.Buckets) != 1 {
		t.Fatalf("rtt histogram = %+v", h)
	}
}

func TestParseIgnoresMalformedTelemetry(t *testing.T) {
	snap, err := parse(strings.NewReader("TELEMETRY_SNAPSHOT: {not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Telemetry != nil {
		t.Fatal("malformed telemetry line must be dropped")
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	snap, err := parse(strings.NewReader("PASS\nok ds2hpc 1.2s\nBenchmarkBroken x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(snap.Benchmarks))
	}
}
