// Package cluster assembles multiple broker nodes into the three-server
// RabbitMQ cluster deployed on the paper's Data Streaming Nodes (RMQS1-3 on
// DSN1-3, §4.2). Classic queues live on exactly one node (the queue master);
// queue placement uses a stable hash of the queue name, and clients are
// directed to the master node for each queue — the same client-side routing
// RabbitMQ documentation recommends for classic queues to avoid intra-cluster
// forwarding hops.
//
// A Shovel component moves messages between queues on different nodes (the
// RabbitMQ shovel plugin equivalent), which the Deleria example uses to link
// its forward buffer and event builder.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
)

// Cluster is a set of broker nodes with deterministic queue placement.
type Cluster struct {
	nodes []*broker.Server
}

// Start launches n broker nodes with the shared configuration. Each node
// gets its own listener; cfg.Addr must be empty or a ":0" pattern.
func Start(n int, cfg broker.Config) (*Cluster, error) {
	return StartWith(n, func(int) broker.Config { return cfg })
}

// StartWith launches n broker nodes, asking configFor for each node's
// configuration — used to give every node its own emulated DSN link.
func StartWith(n int, configFor func(i int) broker.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		nodeCfg := configFor(i)
		if nodeCfg.Addr == "" {
			nodeCfg.Addr = "127.0.0.1:0"
		}
		s, err := broker.Listen(nodeCfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, s)
	}
	return c, nil
}

// Close stops all nodes.
func (c *Cluster) Close() error {
	var first error
	for _, s := range c.nodes {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Size reports the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *broker.Server { return c.nodes[i] }

// Addrs returns every node's listen address.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.nodes))
	for i, s := range c.nodes {
		out[i] = s.Addr()
	}
	return out
}

// OwnerOf returns the index of the node that masters the named queue.
func (c *Cluster) OwnerOf(queue string) int {
	h := fnv.New32a()
	h.Write([]byte(queue))
	return int(h.Sum32() % uint32(len(c.nodes)))
}

// AddrFor returns the listen address of the queue's master node.
func (c *Cluster) AddrFor(queue string) string {
	return c.nodes[c.OwnerOf(queue)].Addr()
}

// Shovel continuously moves messages from a source queue to a destination
// queue, acknowledging each message only after it has been republished —
// the at-least-once contract of the RabbitMQ shovel plugin.
type Shovel struct {
	srcConn *amqp.Connection
	dstConn *amqp.Connection
	done    chan struct{}
	stopped chan struct{}
	moved   chan int64
}

// ShovelConfig names the endpoints and queues to bridge.
type ShovelConfig struct {
	SourceURL  string
	SourceQ    string
	DestURL    string
	DestQ      string
	Prefetch   int // source prefetch; default 32
	DialSource func(network, addr string) (net.Conn, error)
	DialDest   func(network, addr string) (net.Conn, error)
}

// NewShovel starts a shovel. Both queues must already exist.
func NewShovel(cfg ShovelConfig) (*Shovel, error) {
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 32
	}
	srcConn, err := amqp.DialConfig(cfg.SourceURL, amqp.Config{Dial: cfg.DialSource})
	if err != nil {
		return nil, fmt.Errorf("cluster: shovel source dial: %w", err)
	}
	dstConn, err := amqp.DialConfig(cfg.DestURL, amqp.Config{Dial: cfg.DialDest})
	if err != nil {
		srcConn.Close()
		return nil, fmt.Errorf("cluster: shovel dest dial: %w", err)
	}
	srcCh, err := srcConn.Channel()
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	if err := srcCh.Qos(cfg.Prefetch, 0, false); err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	deliveries, err := srcCh.Consume(cfg.SourceQ, "shovel", false, false, false, false, nil)
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	dstCh, err := dstConn.Channel()
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}

	s := &Shovel{
		srcConn: srcConn,
		dstConn: dstConn,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		moved:   make(chan int64, 1),
	}
	go s.run(deliveries, dstCh, cfg.DestQ)
	return s, nil
}

func (s *Shovel) run(deliveries <-chan amqp.Delivery, dstCh *amqp.Channel, destQ string) {
	defer close(s.stopped)
	var moved int64
	for {
		select {
		case <-s.done:
			return
		case d, ok := <-deliveries:
			if !ok {
				return
			}
			err := dstCh.Publish("", destQ, false, false, amqp.Publishing{
				ContentType:   d.ContentType,
				Headers:       d.Headers,
				CorrelationID: d.CorrelationID,
				ReplyTo:       d.ReplyTo,
				MessageID:     d.MessageID,
				Timestamp:     d.Timestamp,
				AppID:         d.AppID,
				Body:          d.Body,
			})
			if err != nil {
				d.Nack(false, true)
				return
			}
			d.Ack(false)
			moved++
			select {
			case <-s.moved:
			default:
			}
			s.moved <- moved
		}
	}
}

// Moved reports how many messages the shovel has transferred so far.
func (s *Shovel) Moved() int64 {
	select {
	case n := <-s.moved:
		s.moved <- n
		return n
	default:
		return 0
	}
}

// Stop terminates the shovel and closes its connections.
func (s *Shovel) Stop() {
	close(s.done)
	s.srcConn.Close()
	s.dstConn.Close()
	select {
	case <-s.stopped:
	case <-time.After(2 * time.Second):
	}
}
