package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/telemetry"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
// Counters are cheap enough for per-message hot paths (one atomic add).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Registry is a process-wide set of named counters. Subsystems register
// counters at init time (e.g. "wire.bufpool_hits", "broker.ack_batches");
// benchmarks and operators snapshot the registry around a run to report
// per-run deltas.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}}
}

// Default is the process-wide registry the broker and wire codec report to.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use. The returned pointer is stable; hot paths should capture it once
// rather than look it up per event.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		// Mirror process-wide hot-path counters into the telemetry
		// registry, so the Prometheus/JSON exporters and the bench
		// snapshot see them without double instrumentation.
		if r == Default {
			telemetry.Default.CounterFunc(name, func() int64 { return int64(c.Load()) })
		}
	}
	return c
}

// Snapshot returns the current value of every registered counter.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Delta subtracts an earlier snapshot from a later one, dropping zero
// deltas, so a benchmark can report only the counters a run moved.
func Delta(before, after map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for name, v := range after {
		if d := v - before[name]; d > 0 {
			out[name] = d
		}
	}
	return out
}
