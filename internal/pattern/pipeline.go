package pattern

import (
	"fmt"

	"ds2hpc/internal/amqp"
)

// PipelineName is a multi-stage pattern the role engine makes cheap to
// declare: edge producers publish raw frames into shared ingest queues, a
// tier of filter workers consumes them and forwards each accepted frame
// into a single fan-in aggregation queue, and one HPC-side aggregator
// drains that queue — the edge → filter → HPC-aggregation motif of
// cross-facility pipelines. Completion is counted at the aggregator, so
// the run covers both hops end to end.
//
// Every stage queue is co-located on one broker node: classic queues live
// on a single master node, and a filter forwards over its existing
// connection, so the forward's routing key must resolve on the node the
// filter is attached to (the same constraint that places feedback reply
// queues next to their work queue).
const PipelineName = "pipeline"

func init() {
	Register(&Graph{Name: PipelineName, Build: buildPipeline})
}

func buildPipeline(cfg *Config) (*Topology, error) {
	total := int64(cfg.Producers) * int64(cfg.MessagesPerProducer)

	ingest := make([]string, cfg.WorkQueues)
	for i := range ingest {
		ingest[i] = nameOnNode(cfg.Deployment, fmt.Sprintf("pl-ingest-%d", i), 0)
	}
	aggQ := nameOnNode(cfg.Deployment, "pl-agg", 0)
	// Filters forward without publisher confirms, so the fan-in queue must
	// hold the whole run even if the aggregator lags.
	aggBytes := total * int64(cfg.Workload.PayloadBytes) * 2
	if aggBytes < cfg.QueueBytes {
		aggBytes = cfg.QueueBytes
	}

	queues := make([]QueueDecl, 0, len(ingest)+1)
	for _, q := range ingest {
		queues = append(queues, QueueDecl{Name: q})
	}
	queues = append(queues, QueueDecl{Name: aggQ, Bytes: aggBytes})

	return &Topology{
		// One group, one connection: everything lives on node 0.
		Declare: []Declarations{{Anchor: aggQ, Queues: queues}},
		Producer: ProducerRole{
			Name: "edge",
			Mode: FlowConfirm,
			Legs: func(p int) []Leg { return []Leg{{Key: ingest[p%len(ingest)]}} },
			Props: func(p int, seq uint64) amqp.Publishing {
				return amqp.Publishing{
					MessageID: fmt.Sprintf("p%d-m%d", p, seq),
					AppID:     "streamsim",
				}
			},
		},
		Consumers: []ConsumerRole{
			{
				Name:  "filter",
				Queue: func(i int) string { return ingest[i%len(ingest)] },
				Reply: &ReplySpec{Key: aggQ, Forward: true},
			},
			{
				Name:   "agg",
				Count:  1,
				Queue:  func(int) string { return aggQ },
				Counts: true,
			},
		},
		WaitConsumed: total,
	}, nil
}
