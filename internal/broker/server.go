package broker

import (
	"crypto/tls"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/netem"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// Process-wide connection telemetry across all broker nodes.
var (
	telConnsAccepted = telemetry.Default.Counter("broker.connections_accepted")
	telConnsOpen     = telemetry.Default.Gauge("broker.connections_open")
)

// Config configures a broker server (one RabbitMQ-like node).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// TLS, if non-nil, serves AMQPS (the DTS deployment's node-exposed
	// TLS port 30671 in the paper).
	TLS *tls.Config
	// Link shapes all accepted connections (the DSN's network interface).
	Link *netem.Link
	// FrameMax is the advertised maximum frame payload size.
	FrameMax uint32
	// Heartbeat is the advertised heartbeat interval; zero disables.
	Heartbeat time.Duration
	// MemoryLimit bounds ready bytes per vhost (80% of broker RAM in the
	// paper's configuration). Zero means unlimited.
	MemoryLimit int64
	// Logger receives connection errors; nil discards them.
	Logger *log.Logger
}

// Stats are server-wide cumulative counters.
type Stats struct {
	ConnectionsAccepted atomic.Uint64
	MessagesIn          atomic.Uint64
	MessagesOut         atomic.Uint64
	BytesIn             atomic.Uint64
	BytesOut            atomic.Uint64
}

// Server is one broker node.
type Server struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	vhosts map[string]*VHost
	conns  map[*srvConn]struct{}
	closed bool

	Stats Stats
	wg    sync.WaitGroup
}

// Listen starts a broker node and its accept loop.
func Listen(cfg Config) (*Server, error) {
	if cfg.FrameMax == 0 {
		cfg.FrameMax = wire.DefaultFrameMax
	}
	var ln net.Listener
	var err error
	if cfg.TLS != nil {
		ln, err = tls.Listen("tcp", cfg.Addr, cfg.TLS)
	} else {
		ln, err = net.Listen("tcp", cfg.Addr)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Link != nil {
		ln = netem.WrapListener(ln, cfg.Link)
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		vhosts: map[string]*VHost{},
		conns:  map[*srvConn]struct{}{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// VHost returns (creating on demand) the named vhost.
func (s *Server) VHost(name string) *VHost {
	s.mu.Lock()
	defer s.mu.Unlock()
	vh, ok := s.vhosts[name]
	if !ok {
		vh = NewVHost(name)
		vh.MemoryLimit = s.cfg.MemoryLimit
		s.vhosts[name] = vh
	}
	return vh
}

// Close stops the listener and terminates all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.Stats.ConnectionsAccepted.Add(1)
		telConnsAccepted.Inc()
		sc := newSrvConn(s, c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		telConnsOpen.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			telConnsOpen.Add(-1)
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}
