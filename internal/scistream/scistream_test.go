package scistream

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ds2hpc/internal/tlsutil"
)

// --- mux tests ---

func muxPair(t *testing.T, maxStreams int) (client, server *Mux) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc := <-done
	client = NewMux(cc, false, maxStreams)
	server = NewMux(sc, true, maxStreams)
	t.Cleanup(func() { client.Close(); server.Close(); ln.Close() })
	return client, server
}

func TestMuxSingleStreamEcho(t *testing.T) {
	client, server := muxPair(t, 0)
	go func() {
		s, err := server.Accept()
		if err != nil {
			return
		}
		io.Copy(s, s)
	}()
	s, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the overlay tunnel")
	if _, err := s.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch %q", buf)
	}
}

func TestMuxManyConcurrentStreams(t *testing.T) {
	client, server := muxPair(t, 0)
	go func() {
		for {
			s, err := server.Accept()
			if err != nil {
				return
			}
			go io.Copy(s, s)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := client.Open()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			msg := []byte(fmt.Sprintf("stream-%d-payload", i))
			if _, err := s.Write(msg); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(s, buf); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("stream %d crosstalk: %q", i, buf)
			}
		}(i)
	}
	wg.Wait()
}

func TestMuxStreamCap(t *testing.T) {
	client, _ := muxPair(t, 3)
	var streams []net.Conn
	for i := 0; i < 3; i++ {
		s, err := client.Open()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	if _, err := client.Open(); err != ErrTooManyStreams {
		t.Fatalf("err = %v, want ErrTooManyStreams", err)
	}
	// Closing one frees a slot.
	streams[0].Close()
	if _, err := client.Open(); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestMuxLargeTransfer(t *testing.T) {
	client, server := muxPair(t, 0)
	go func() {
		s, err := server.Accept()
		if err != nil {
			return
		}
		io.Copy(s, s)
	}()
	s, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go s.Write(payload)
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("1 MiB payload corrupted through mux")
	}
}

func TestMuxCloseDeliversEOF(t *testing.T) {
	client, server := muxPair(t, 0)
	accepted := make(chan net.Conn, 1)
	go func() {
		s, err := server.Accept()
		if err == nil {
			accepted <- s
		}
	}()
	s, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	peer := <-accepted
	s.Close()
	buf := make([]byte, 1)
	if _, err := peer.Read(buf); err != io.EOF {
		t.Fatalf("read after peer close = %v, want EOF", err)
	}
}

// --- end-to-end session over proxies ---

// echoServer is a stand-in streaming service.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func newSessionForTest(t *testing.T, tun Tunnel, numConn int, targets ...string) *Session {
	t.Helper()
	tunnelID, err := tlsutil.SelfSigned("tunnel", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	prodID, err := tlsutil.SelfSigned("ps2cs", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	consID, err := tlsutil.SelfSigned("cs2cs", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	prodCS, err := NewS2CS(S2CSConfig{Identity: prodID, TunnelIdentity: tunnelID, ServerName: "127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prodCS.Close() })
	consCS, err := NewS2CS(S2CSConfig{Identity: consID, TunnelIdentity: tunnelID, ServerName: "127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consCS.Close() })

	uc := &S2UC{}
	sess, err := uc.CreateSession(SessionRequest{
		ProducerS2CS: prodCS.Addr(),
		ConsumerS2CS: consCS.Addr(),
		ProducerCert: prodID.CertPEM,
		ConsumerCert: consID.CertPEM,
		Targets:      targets,
		Tunnel:       tun,
		NumConn:      numConn,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func checkEcho(t *testing.T, addr string, msg string) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestSessionHAProxyEndToEnd(t *testing.T) {
	target := echoServer(t)
	sess := newSessionForTest(t, TunnelHAProxy, 1, target)
	checkEcho(t, sess.ClientAddr, "haproxy tunnel data")
}

func TestSessionStunnelEndToEnd(t *testing.T) {
	target := echoServer(t)
	sess := newSessionForTest(t, TunnelStunnel, 1, target)
	checkEcho(t, sess.ClientAddr, "stunnel tunnel data")
}

func TestSessionHAProxyFourConns(t *testing.T) {
	target := echoServer(t)
	sess := newSessionForTest(t, TunnelHAProxy, 4, target)
	for i := 0; i < 6; i++ {
		checkEcho(t, sess.ClientAddr, fmt.Sprintf("conn-%d", i))
	}
}

func TestSessionStunnelConnectionLimit(t *testing.T) {
	target := echoServer(t)
	sess := newSessionForTest(t, TunnelStunnel, 1, target)

	// Hold 16 concurrent connections open: all must work.
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < StunnelMaxStreams; i++ {
		c, err := net.Dial("tcp", sess.ClientAddr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	// The 17th must be refused (closed without echoing).
	extra, err := net.Dial("tcp", sess.ClientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	extra.Write([]byte("y"))
	extra.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := extra.Read(buf); err == nil {
		t.Fatal("17th concurrent stunnel connection should fail")
	}
}

func TestSessionRoundRobinAcrossTargets(t *testing.T) {
	t1 := echoServer(t)
	t2 := echoServer(t)
	sess := newSessionForTest(t, TunnelHAProxy, 1, t1, t2)
	// Multiple sequential connections should all succeed regardless of
	// which backend they land on.
	for i := 0; i < 4; i++ {
		checkEcho(t, sess.ClientAddr, fmt.Sprintf("rr-%d", i))
	}
}

func TestControlRejectsBadRequests(t *testing.T) {
	id, err := tlsutil.SelfSigned("cs", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewS2CS(S2CSConfig{Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	uc := &S2UC{}
	if _, err := uc.control(cs.Addr(), id.CertPEM, &ControlRequest{Type: "inbound"}); err == nil {
		t.Error("inbound without receiver_ports should fail")
	}
	if _, err := uc.control(cs.Addr(), id.CertPEM, &ControlRequest{Type: "outbound"}); err == nil {
		t.Error("outbound without remote_proxy should fail")
	}
	if _, err := uc.control(cs.Addr(), id.CertPEM, &ControlRequest{Type: "bogus"}); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestInboundRequiresIdentity(t *testing.T) {
	if _, err := NewInbound(InboundConfig{Targets: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("expected error without identity")
	}
	id, _ := tlsutil.SelfSigned("x", "127.0.0.1")
	if _, err := NewInbound(InboundConfig{Identity: id}); err == nil {
		t.Fatal("expected error without targets")
	}
}

func TestTunnelRejectsUntrustedClient(t *testing.T) {
	target := echoServer(t)
	serverID, _ := tlsutil.SelfSigned("tunnel", "127.0.0.1")
	rogueID, _ := tlsutil.SelfSigned("rogue", "127.0.0.1")
	in, err := NewInbound(InboundConfig{
		Targets:  []string{target},
		Tunnel:   TunnelHAProxy,
		Identity: serverID,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	// A client presenting a certificate from a different root must fail
	// the mTLS handshake.
	_, err = NewOutbound(OutboundConfig{
		RemoteProxy: in.Addr(),
		Tunnel:      TunnelHAProxy,
		Identity:    rogueID,
		ServerName:  "127.0.0.1",
	})
	if err != nil {
		return // pre-warm path surfaced the failure, fine
	}
	// Otherwise the failure surfaces on first use.
	c, err := net.Dial("tcp", in.Addr())
	if err != nil {
		t.Skip("inbound listener gone")
	}
	c.Close()
	if in.Relayed() != 0 {
		t.Fatal("untrusted peer relayed data")
	}
}
