// Package ds2hpc reproduces "From Edge to HPC: Investigating Cross-Facility
// Data Streaming Architectures" (George et al., INDIS/SC 2025): three
// streaming architectures (DTS, PRS, MSS) built on a from-scratch AMQP
// broker, SciStream-style proxies, an MSS load-balancer stack, and a
// network-emulation fabric, evaluated with the paper's three workloads and
// messaging patterns.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per table and figure in the paper's evaluation. The library
// lives under internal/; runnable entry points under cmd/ and examples/.
package ds2hpc
