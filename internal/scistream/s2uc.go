package scistream

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"ds2hpc/internal/tlsutil"
)

// SessionRequest describes the streaming session the user client should
// broker between the two facilities' control servers.
type SessionRequest struct {
	// ProducerS2CS and ConsumerS2CS are the control endpoints of the two
	// facility gateway nodes.
	ProducerS2CS string
	ConsumerS2CS string
	// ProducerCert and ConsumerCert are the PEM server certificates used
	// to trust each control endpoint (`--server_cert` in the paper).
	ProducerCert []byte
	ConsumerCert []byte
	// Targets are the streaming-service endpoints behind the consumer
	// side (`--receiver_ports`).
	Targets []string
	// Tunnel selects the overlay driver.
	Tunnel Tunnel
	// NumConn is the parallel-connection option (`--num_conn`).
	NumConn int
}

// Session is an established overlay: applications connect to ClientAddr and
// their bytes arrive at the streaming service through the tunnel.
type Session struct {
	UID string
	// ClientAddr is the producer-facility address applications dial.
	ClientAddr string
	// RemoteProxyAddr is the consumer-side WAN proxy address.
	RemoteProxyAddr string
}

// S2UC is the SciStream user client. It brokers requests and carries the
// short-lived credentials (here: the facility server certificates).
type S2UC struct {
	Timeout time.Duration
}

// CreateSession performs the inbound-request / outbound-request pair from
// the paper's §4.4 and returns the resulting connection map.
func (u *S2UC) CreateSession(req SessionRequest) (*Session, error) {
	if req.NumConn <= 0 {
		req.NumConn = 1
	}
	if req.Tunnel == "" {
		req.Tunnel = TunnelHAProxy
	}
	// Step 1: inbound request to the consumer-side S2CS creates the
	// WAN-facing proxy (PROXY) and the session UID.
	inResp, err := u.control(req.ConsumerS2CS, req.ConsumerCert, &ControlRequest{
		Type:          "inbound",
		Tunnel:        string(req.Tunnel),
		NumConn:       req.NumConn,
		ReceiverPorts: req.Targets,
	})
	if err != nil {
		return nil, fmt.Errorf("scistream: inbound request: %w", err)
	}
	// Step 2: outbound request to the producer-side S2CS creates the
	// application-facing proxy tunneled to PROXY.
	outResp, err := u.control(req.ProducerS2CS, req.ProducerCert, &ControlRequest{
		Type:        "outbound",
		UID:         inResp.UID,
		Tunnel:      string(req.Tunnel),
		NumConn:     req.NumConn,
		RemoteProxy: inResp.ProxyAddr,
	})
	if err != nil {
		return nil, fmt.Errorf("scistream: outbound request: %w", err)
	}
	return &Session{
		UID:             inResp.UID,
		ClientAddr:      outResp.ProxyAddr,
		RemoteProxyAddr: inResp.ProxyAddr,
	}, nil
}

func (u *S2UC) control(addr string, certPEM []byte, req *ControlRequest) (*ControlResponse, error) {
	timeout := u.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	var pool *x509.CertPool
	if certPEM != nil {
		p, err := tlsutil.PoolFromPEM(certPEM)
		if err != nil {
			return nil, err
		}
		pool = p
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	host, _, _ := net.SplitHostPort(addr)
	cfg := &tls.Config{ServerName: host}
	if pool != nil {
		cfg.RootCAs = pool
	} else {
		cfg.InsecureSkipVerify = true
	}
	c := tls.Client(raw, cfg)
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(c).Encode(req); err != nil {
		return nil, err
	}
	var resp ControlResponse
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("scistream: control error: %s", resp.Err)
	}
	return &resp, nil
}
