package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/transport"
	"ds2hpc/internal/wire"
)

// Federation: the inter-node link layer. When a publish (or declare)
// lands on a node that does not master its queue, the node forwards it
// to the master over a fedLink — an ordinary AMQP client connection the
// hub dials lazily per (master address, vhost), carried over whatever
// transport.DialFunc the deployment uses between its broker nodes (plain
// TCP in PRS/MSS, the TLS hop in DTS).
//
// The forward path is zero-copy end to end: the sender holds the
// message's refcount and appends its pooled body to the link's writer as
// borrowed iovec segments (AppendContentFramesZC), so a federated body
// crosses the link with the same zero-copy discipline a local delivery
// uses — no per-hop copy is reintroduced.
//
// Links run in confirm mode and bridge confirms: every forward records
// the origin channel and its publish seq; when the master acks, the
// origin channel relays the verdict to the producer. A link failure
// gives everything outstanding one bounded immediate replay on a freshly
// dialed link (each forward retains its message for exactly this); what
// cannot be replayed — the redial failed, or the forward already rode a
// retry — is nacked, so producers retry through their normal confirm
// machinery. One TCP reset therefore costs one in-process resend instead
// of a producer-visible replay storm.
//
// The replication layer rides the same links: mirror ships are forwards
// whose exchange names a reserved "!mirror.*" operation (see
// replication.go), so forward carries an explicit wire exchange/key pair
// distinct from the message's own envelope.

// fedRPCTimeout bounds synchronous link operations (handshake, remote
// queue declares).
const fedRPCTimeout = 10 * time.Second

// fedHub owns one node's federation links.
type fedHub struct {
	node int
	dir  *Directory
	dial transport.DialFunc

	mu    sync.Mutex
	links map[string]*fedLink // key: addr + "\x00" + vhost
}

func newFedHub(node int, dir *Directory, dial transport.DialFunc) *fedHub {
	if dial == nil {
		dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, fedRPCTimeout)
		}
	}
	return &fedHub{node: node, dir: dir, dial: dial, links: make(map[string]*fedLink)}
}

// link returns a live link to addr for vhost, dialing one if needed.
// The dial happens under the hub lock: link setup is rare (once per
// (sibling, vhost) per topology change), and serializing it keeps two
// racing forwards from opening duplicate links.
func (h *fedHub) link(addr, vhost string) (*fedLink, error) {
	key := addr + "\x00" + vhost
	h.mu.Lock()
	defer h.mu.Unlock()
	if l, ok := h.links[key]; ok && !l.isDead() {
		return l, nil
	}
	nc, err := h.dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: federation dial %s: %w", addr, err)
	}
	l, err := newFedLink(nc, addr, vhost, h)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("cluster: federation handshake %s: %w", addr, err)
	}
	h.links[key] = l
	fedLinks.Add(1)
	return l, nil
}

// closeAll tears down every link (node shutdown).
func (h *fedHub) closeAll() {
	h.mu.Lock()
	links := make([]*fedLink, 0, len(h.links))
	for _, l := range h.links {
		links = append(links, l)
	}
	h.links = make(map[string]*fedLink)
	h.mu.Unlock()
	for _, l := range links {
		// Node shutdown: no replay — nack everything outstanding.
		l.failWith(fmt.Errorf("cluster: federation link closed"), false)
	}
}

// retryOutstanding gives a failed link's outstanding forwards one bounded
// immediate replay on a freshly dialed link, in original seq order so the
// master's confirm frontier stays contiguous. Entries that already rode a
// retry, or that cannot be re-sent because the redial (or re-forward)
// failed, are nacked.
func (h *fedHub) retryOutstanding(addr, vhost string, seqs []uint64, pend map[uint64]fedPending) {
	nl, err := h.link(addr, vhost)
	for _, s := range seqs {
		p := pend[s]
		if err != nil || p.retried {
			resolvePending(p, false)
			continue
		}
		p.retried = true
		if ferr := nl.forwardPending(p); ferr != nil {
			// The fresh link died too; nack this and everything after.
			resolvePending(p, false)
			err = ferr
			continue
		}
		fedRetries.Inc()
	}
}

// fedPending is one outstanding confirm-bridged forward: the origin
// channel and the producer-facing seq to relay the master's verdict to,
// plus a retained message reference and its wire envelope so a link
// failure can replay the forward once before giving up. A zero target
// marks a fire-and-forget forward that still occupies a link seq (the
// remote acks every publish on the confirm channel).
type fedPending struct {
	target   broker.ConfirmTarget
	seq      uint64
	msg      *broker.Message
	exchange string
	key      string
	retried  bool
}

// resolvePending relays a verdict to the pending forward's origin (if
// confirm-bridged) and drops its retained message reference.
func resolvePending(p fedPending, ok bool) {
	if p.target != nil {
		p.target.ClusterConfirm(p.seq, ok)
	}
	if p.msg != nil {
		p.msg.Release()
	}
}

// fedLink is one AMQP connection to a sibling node, channel 1 open in
// confirm mode. Writes serialize on mu; confirms resolve on the read
// loop goroutine.
type fedLink struct {
	nc       net.Conn
	addr     string
	vhost    string
	frameMax uint32
	hub      *fedHub // nil for hub-less links (tests); disables the failure replay

	mu      sync.Mutex
	w       *wire.Writer
	pub     wire.BasicPublish     // reused per forward so the method never escapes
	seq     uint64                // last link-local publish seq issued
	next    uint64                // lowest possibly-outstanding seq
	pending map[uint64]fedPending // link seq -> origin
	dead    bool
	err     error

	rpcMu sync.Mutex       // one synchronous RPC in flight at a time
	rpc   chan wire.Method // declare-ok / channel errors for the RPC waiter

	// Per-sibling tagged series (cluster.federation_link_*{link=addr}),
	// captured once at link setup alongside the untagged cluster totals.
	msgsCtx  *telemetry.Counter
	bytesCtx *telemetry.Counter
}

// newFedLink performs the client-side AMQP handshake on nc, opens
// channel 1 in confirm mode, and starts the read loop. addr tags the
// link's per-sibling telemetry series; the interned context makes the
// tagged counters one map hit at link setup and plain atomic adds on
// the forward path.
func newFedLink(nc net.Conn, addr, vhost string, hub *fedHub) (*fedLink, error) {
	ctx := telemetry.Intern("link=" + addr)
	l := &fedLink{
		nc:       nc,
		addr:     addr,
		vhost:    vhost,
		hub:      hub,
		w:        wire.NewWriter(),
		next:     1,
		pending:  make(map[uint64]fedPending),
		rpc:      make(chan wire.Method, 1),
		msgsCtx:  telemetry.Default.CounterCtx("cluster.federation_link_msgs", ctx),
		bytesCtx: telemetry.Default.CounterCtx("cluster.federation_link_bytes", ctx),
	}
	nc.SetDeadline(time.Now().Add(fedRPCTimeout))
	fr := wire.NewFrameReader(nc, 0)
	if err := l.handshake(fr); err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	go l.readLoop(fr)
	return l, nil
}

func (l *fedLink) handshake(fr *wire.FrameReader) error {
	if err := wire.WriteProtocolHeader(l.nc); err != nil {
		return err
	}
	if _, err := l.expect(fr, &wire.ConnectionStart{}); err != nil {
		return err
	}
	if err := l.send(&wire.ConnectionStartOk{
		ClientProperties: wire.Table{"product": "ds2hpc-federation"},
		Mechanism:        "PLAIN",
		Response:         []byte("\x00guest\x00guest"),
		Locale:           "en_US",
	}); err != nil {
		return err
	}
	m, err := l.expect(fr, &wire.ConnectionTune{})
	if err != nil {
		return err
	}
	tune := m.(*wire.ConnectionTune)
	l.frameMax = tune.FrameMax
	if l.frameMax == 0 {
		l.frameMax = wire.DefaultFrameMax
	}
	fr.SetFrameMax(l.frameMax + 1024)
	// Heartbeat 0: the link detects death by write/read errors; a killed
	// sibling fails the next forward, which is what triggers re-routing.
	if err := l.send(&wire.ConnectionTuneOk{ChannelMax: tune.ChannelMax, FrameMax: l.frameMax}); err != nil {
		return err
	}
	if err := l.send(&wire.ConnectionOpen{VirtualHost: l.vhost}); err != nil {
		return err
	}
	if _, err := l.expect(fr, &wire.ConnectionOpenOk{}); err != nil {
		return err
	}
	if err := l.sendCh(&wire.ChannelOpen{}); err != nil {
		return err
	}
	if _, err := l.expect(fr, &wire.ChannelOpenOk{}); err != nil {
		return err
	}
	if err := l.sendCh(&wire.ConfirmSelect{}); err != nil {
		return err
	}
	if _, err := l.expect(fr, &wire.ConfirmSelectOk{}); err != nil {
		return err
	}
	return nil
}

func (l *fedLink) send(m wire.Method) error   { return l.sendOn(0, m) }
func (l *fedLink) sendCh(m wire.Method) error { return l.sendOn(1, m) }

func (l *fedLink) sendOn(ch uint16, m wire.Method) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return l.err
	}
	l.w.AppendMethodFrame(ch, m)
	return l.w.FlushFrames(l.nc, 1)
}

// expect reads method frames until one matching want's type arrives
// (heartbeats skipped); used only during the synchronous handshake.
func (l *fedLink) expect(fr *wire.FrameReader, want wire.Method) (wire.Method, error) {
	wantC, wantM := want.ID()
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return nil, err
		}
		if f.Type != wire.FrameMethod {
			continue
		}
		m, err := wire.ParseMethod(f.Payload)
		if err != nil {
			return nil, err
		}
		if c, id := m.ID(); c == wantC && id == wantM {
			return m, nil
		}
		if cl, ok := m.(*wire.ConnectionClose); ok {
			return nil, fmt.Errorf("connection.close %d: %s", cl.ReplyCode, cl.ReplyText)
		}
	}
}

func (l *fedLink) isDead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// fail marks the link dead. With a hub attached, the outstanding forwards
// get one bounded immediate replay on a freshly dialed link before being
// nacked (retryOutstanding); hub-less links nack everything right away.
func (l *fedLink) fail(err error) { l.failWith(err, true) }

func (l *fedLink) failWith(err error, retry bool) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	l.dead = true
	l.err = err
	pend := l.pending
	l.pending = make(map[uint64]fedPending)
	l.mu.Unlock()
	l.nc.Close()
	fedLinks.Add(-1)
	if len(pend) == 0 {
		return
	}
	if retry && l.hub != nil {
		seqs := make([]uint64, 0, len(pend))
		for s := range pend {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		// Replay off the read-loop goroutine: the redial and re-forwards
		// must not block whatever failed the link.
		go l.hub.retryOutstanding(l.addr, l.vhost, seqs, pend)
		return
	}
	for _, p := range pend {
		resolvePending(p, false)
	}
}

// forward ships one publish across the link under the wire envelope
// (exchange, key) — "" + queue for an ordinary federated publish, a
// "!mirror.*" pair for replication ships. The borrowed body segments are
// flushed before forward returns; the message itself is retained in the
// pending entry until its confirm resolves, so a link failure can replay
// it. The steady-state path allocates nothing: pooled writer buffer,
// borrowed body iovecs, map slot reuse, refcount adds.
func (l *fedLink) forward(exchange, key string, m *broker.Message, target broker.ConfirmTarget, origSeq uint64) error {
	m.Retain()
	err := l.forwardPending(fedPending{target: target, seq: origSeq, msg: m, exchange: exchange, key: key})
	if err != nil {
		m.Release()
	}
	return err
}

// forwardPending ships one pending entry (fresh or replayed); on success
// the entry's message reference is owned by the pending table.
func (l *fedLink) forwardPending(p fedPending) error {
	l.mu.Lock()
	if l.dead {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.seq++
	l.pending[l.seq] = p
	l.pub = wire.BasicPublish{Exchange: p.exchange, RoutingKey: p.key}
	frames := l.w.AppendContentFramesZC(1, &l.pub, &p.msg.Props, p.msg.Body, l.frameMax)
	err := l.w.FlushFrames(l.nc, frames)
	if err != nil {
		delete(l.pending, l.seq)
		l.mu.Unlock()
		l.fail(err)
		return err
	}
	l.mu.Unlock()
	fedMsgs.Inc()
	fedBytes.Add(int64(len(p.msg.Body)))
	l.msgsCtx.Inc()
	l.bytesCtx.Add(int64(len(p.msg.Body)))
	return nil
}

// declare runs a synchronous queue.declare on the link and waits for the
// declare-ok — the ensure-on-master half of a location-transparent
// declare.
func (l *fedLink) declare(queue string, durable bool) error {
	l.rpcMu.Lock()
	defer l.rpcMu.Unlock()
	if err := l.sendCh(&wire.QueueDeclare{Queue: queue, Durable: durable}); err != nil {
		return err
	}
	select {
	case m := <-l.rpc:
		switch x := m.(type) {
		case *wire.QueueDeclareOk:
			return nil
		case *wire.ChannelClose:
			return fmt.Errorf("cluster: remote declare %q: %d %s", queue, x.ReplyCode, x.ReplyText)
		default:
			return fmt.Errorf("cluster: remote declare %q: unexpected %T", queue, m)
		}
	case <-time.After(fedRPCTimeout):
		return fmt.Errorf("cluster: remote declare %q: timeout", queue)
	}
}

// readLoop drains confirms (and RPC replies) from the master. Acks and
// nacks are decoded in place from the frame payload — the hot path runs
// without a method allocation per confirm.
func (l *fedLink) readLoop(fr *wire.FrameReader) {
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			l.fail(err)
			return
		}
		if f.Type != wire.FrameMethod || len(f.Payload) < 4 {
			continue // heartbeats; content frames (no mandatory returns expected)
		}
		classID := binary.BigEndian.Uint16(f.Payload[0:2])
		methodID := binary.BigEndian.Uint16(f.Payload[2:4])
		if classID == wire.ClassBasic && (methodID == 80 || methodID == 120) && len(f.Payload) >= 13 {
			// basic.ack / basic.nack: tag u64 at [4:12], multiple at [12].
			tag := binary.BigEndian.Uint64(f.Payload[4:12])
			multiple := f.Payload[12] != 0
			l.settle(tag, multiple, methodID == 80)
			continue
		}
		m, err := wire.ParseMethod(f.Payload)
		if err != nil {
			l.fail(err)
			return
		}
		switch x := m.(type) {
		case *wire.QueueDeclareOk:
			select {
			case l.rpc <- m:
			default:
			}
		case *wire.ChannelClose:
			select {
			case l.rpc <- m:
			default:
			}
			l.fail(fmt.Errorf("cluster: federation channel closed: %d %s", x.ReplyCode, x.ReplyText))
			return
		case *wire.ConnectionClose:
			l.fail(fmt.Errorf("cluster: federation connection closed: %d %s", x.ReplyCode, x.ReplyText))
			return
		default:
			// basic.return etc: ignore; forwards are not mandatory.
		}
	}
}

// settle resolves confirmed link seqs and relays verdicts to the origin
// channels. The master acks sequentially, so next tracks the resolution
// frontier and multiple-acks walk a contiguous range.
func (l *fedLink) settle(tag uint64, multiple, ok bool) {
	l.mu.Lock()
	from := l.next
	if !multiple {
		from = tag
	}
	if tag < from {
		l.mu.Unlock()
		return
	}
	// Resolve [from, tag] while holding entries aside; relay (and drop the
	// replay references) after unlock so a confirm write that blocks
	// cannot stall the link's bookkeeping.
	var single fedPending
	var batch []fedPending
	n := 0
	for t := from; t <= tag; t++ {
		p, hit := l.pending[t]
		if !hit {
			continue
		}
		delete(l.pending, t)
		if n == 0 {
			single = p
		} else {
			if batch == nil {
				batch = append(batch, single)
			}
			batch = append(batch, p)
		}
		n++
	}
	if tag >= l.next {
		l.next = tag + 1
	}
	l.mu.Unlock()
	if n == 1 {
		resolvePending(single, ok)
		return
	}
	for _, p := range batch {
		resolvePending(p, ok)
	}
}
