package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterShards(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := c.Shard(i)
			for j := 0; j < 1000; j++ {
				sh.Inc()
			}
		}(i)
	}
	wg.Wait()
	c.Add(5)
	if got := c.Load(); got != 32005 {
		t.Fatalf("counter = %d", got)
	}
}

func TestGaugeAndWatermark(t *testing.T) {
	g := &Gauge{}
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d", g.Load())
	}
	w := &Watermark{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w.Record(int64(i*100 + j))
			}
		}(i)
	}
	wg.Wait()
	if w.Load() != 799 {
		t.Fatalf("watermark = %d", w.Load())
	}
	w.Record(5) // lower values never regress the mark
	if w.Load() != 799 {
		t.Fatalf("watermark regressed to %d", w.Load())
	}
}

func TestRegistryStablePointersAndTags(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a.b") != r.Counter("a.b") {
		t.Fatal("counter pointer not stable")
	}
	if r.Counter("a.b", "q=1") == r.Counter("a.b", "q=2") {
		t.Fatal("tagged counters must be distinct")
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h") != r.Histogram("h") || r.Watermark("w") != r.Watermark("w") {
		t.Fatal("probe pointers not stable")
	}
	r.Counter("a.b", "q=1").Add(3)
	r.GaugeFunc("depth", func() int64 { return 42 }, "q=x")
	r.GaugeFunc("depth", func() int64 { return 7 }, "q=x") // replace
	r.CounterFunc("total", func() int64 { return 9 })
	s := r.Snapshot()
	if s.Counters[`a.b{q=1}`] != 3 {
		t.Fatalf("snapshot counters: %+v", s.Counters)
	}
	if s.Gauges[`depth{q=x}`] != 7 {
		t.Fatalf("gauge func not replaced: %+v", s.Gauges)
	}
	if s.Counters["total"] != 9 {
		t.Fatalf("counter func missing: %+v", s.Counters)
	}
	r.Unregister("depth", "q=x")
	r.Unregister("total")
	r.Unregister("never-registered")
	s = r.Snapshot()
	if _, ok := s.Gauges[`depth{q=x}`]; ok {
		t.Fatal("gauge func not unregistered")
	}
	if _, ok := s.Counters["total"]; ok {
		t.Fatal("counter func not unregistered")
	}
}

func TestAggregatorRatesAndSeries(t *testing.T) {
	base := time.Unix(1000, 0)
	timeNow = func() time.Time { return base }
	defer func() { timeNow = time.Now }()
	a := NewAggregator(time.Second)
	var c Counter
	var g Gauge
	a.ObserveCounter("consumed", c.Load)
	a.ObserveGauge("depth", g.Load)

	c.Add(10)
	g.Set(4)
	a.Tick(base.Add(time.Second)) // 10 events over 1s
	c.Add(30)
	g.Set(2)
	a.Tick(base.Add(3 * time.Second)) // 30 events over 2s

	rates := a.Series("consumed")
	if len(rates) != 2 || rates[0].V != 10 || rates[1].V != 15 {
		t.Fatalf("rates = %+v", rates)
	}
	depth := a.Series("depth")
	if len(depth) != 2 || depth[0].V != 4 || depth[1].V != 2 {
		t.Fatalf("depth = %+v", depth)
	}
	if a.Series("unknown") != nil {
		t.Fatal("unknown series must be nil")
	}
}

func TestAggregatorOnTickAndStopFlush(t *testing.T) {
	a := NewAggregator(time.Hour) // ticker never fires on its own
	var c Counter
	a.ObserveCounter("consumed", c.Load)
	var mu sync.Mutex
	var ticks []Tick
	a.OnTick(func(tk Tick) {
		mu.Lock()
		ticks = append(ticks, tk)
		mu.Unlock()
	})
	a.Start()
	a.Start() // second Start is a no-op
	c.Add(7)
	time.Sleep(10 * time.Millisecond)
	a.Stop() // final flush emits the sub-interval point
	a.Stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) == 0 {
		t.Fatal("Stop did not flush a final tick")
	}
	last := ticks[len(ticks)-1]
	if last.Values["consumed"] <= 0 {
		t.Fatalf("final rollup = %+v", last.Values)
	}
}

func TestAggregatorReplacesSource(t *testing.T) {
	a := NewAggregator(time.Second)
	a.ObserveCounter("c", func() int64 { return 100 })
	// A fresh run re-registers under the same name; the new baseline
	// must not produce a negative rate.
	a.ObserveCounter("c", func() int64 { return 0 })
	a.Tick(time.Now().Add(time.Second))
	pts := a.Series("c")
	if len(pts) != 1 || pts[0].V < 0 {
		t.Fatalf("replaced source series = %+v", pts)
	}
}

func TestSeriesRingWraps(t *testing.T) {
	s := &source{}
	for i := 0; i < seriesCap+10; i++ {
		s.append(Point{V: float64(i)})
	}
	pts := s.points()
	if len(pts) != seriesCap {
		t.Fatalf("ring length = %d", len(pts))
	}
	if pts[0].V != 10 || pts[len(pts)-1].V != float64(seriesCap+9) {
		t.Fatalf("ring order wrong: first=%v last=%v", pts[0].V, pts[len(pts)-1].V)
	}
}

// TestConcurrentProbesUnderRace exercises every probe type from many
// goroutines at once; `go test -race` (a CI job) is the real assertion.
func TestConcurrentProbesUnderRace(t *testing.T) {
	r := NewRegistry()
	a := NewAggregator(time.Millisecond)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	w := r.Watermark("w")
	a.ObserveCounter("c", c.Load)
	a.ObserveGauge("g", g.Load)
	a.Start()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := c.Shard(i)
			for j := 0; j < 500; j++ {
				sh.Inc()
				g.Add(1)
				h.Record(int64(j))
				w.Record(int64(j))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	a.Stop()
	if c.Load() != 4000 || g.Load() != 4000 {
		t.Fatalf("lost updates: c=%d g=%d", c.Load(), g.Load())
	}
	if h.Count() != 4000 {
		t.Fatalf("lost samples: %d", h.Count())
	}
}
