package amqp_test

import (
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
	"ds2hpc/internal/metrics"
)

// redirectHook is a minimal broker.ClusterHook that declares one queue
// remotely mastered at a fixed address, so the broker answers consumes
// for it with a connection-level redirect.
type redirectHook struct {
	queue string
	addr  string
}

func (h *redirectHook) Lookup(vhost, queue string) (string, bool) {
	if queue == h.queue {
		return h.addr, false
	}
	return "", true
}
func (h *redirectHook) RegisterQueue(vhost, queue string, durable bool)           {}
func (h *redirectHook) EnsureRemoteQueue(vhost, queue string, durable bool) error { return nil }
func (h *redirectHook) ForwardPublish(vhost, queue string, m *broker.Message, target broker.ConfirmTarget, seq uint64) error {
	return nil
}
func (h *redirectHook) NoteRedirect(vhost, queue string)       {}
func (h *redirectHook) Replicated(vhost, queue string) bool    { return false }
func (h *redirectHook) ReplicateAppend(vhost, queue string, off uint64, m *broker.Message, target broker.ConfirmTarget, seq uint64) {
}
func (h *redirectHook) ReplicateSettle(vhost, queue string, off uint64, offs []uint64) {}
func (h *redirectHook) ApplyMirror(vhost, exchange, key string, m *broker.Message) error {
	return nil
}

// TestClientFollowsRedirect: a consume on a broker that answers with
// connection.close 302 makes a reconnect-enabled client re-dial the
// address the redirect names and resume there.
func TestClientFollowsRedirect(t *testing.T) {
	master := startBroker(t, broker.Config{})
	wrong := startBroker(t, broker.Config{Cluster: &redirectHook{queue: "redir-q", addr: master.Addr()}})

	// The queue lives on the master only.
	setup, err := amqp.Dial("amqp://" + master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	sch := openChannel(t, setup)
	if _, err := sch.QueueDeclare("redir-q", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}

	followed := metrics.Default.Counter("amqp.redirects")
	base := followed.Load()

	conn, err := amqp.DialConfig("amqp://"+wrong.Addr(), amqp.Config{Reconnect: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch := openChannel(t, conn)
	deliveries, err := ch.Consume("redir-q", "rc", true, false, false, false, nil)
	if err != nil {
		t.Fatalf("consume across redirect: %v", err)
	}
	if followed.Load() == base {
		t.Fatal("amqp.redirects did not increment")
	}
	if conn.Reconnects() == 0 {
		t.Fatal("redirect did not go through the reconnect machinery")
	}

	if err := sch.Publish("", "redir-q", false, false, amqp.Publishing{Body: []byte("on-master")}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if string(d.Body) != "on-master" {
			t.Fatalf("got %q", d.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery on the redirect target")
	}
}

// TestSeedsRotateOnDeadDial: when the connected broker dies for good, a
// client with Config.Seeds rotates its dial target through the seed list
// and resumes on the next live address.
func TestSeedsRotateOnDeadDial(t *testing.T) {
	dead := startBroker(t, broker.Config{})
	alive := startBroker(t, broker.Config{})

	// The queue exists on both, so the replayed consumer finds it after
	// rotation.
	for _, b := range []*broker.Server{dead, alive} {
		c, err := amqp.Dial("amqp://" + b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		ch := openChannel(t, c)
		if _, err := ch.QueueDeclare("seed-q", false, false, false, false, nil); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	conn, err := amqp.DialConfig("amqp://"+dead.Addr(), amqp.Config{
		Reconnect: testPolicy(),
		Seeds:     []string{dead.Addr(), alive.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch := openChannel(t, conn)
	deliveries, err := ch.Consume("seed-q", "sc", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	dead.Crash()

	// Publish via the survivor; the rotated consumer must receive it.
	pub, err := amqp.Dial("amqp://" + alive.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pch := openChannel(t, pub)
	deadline := time.After(10 * time.Second)
	for {
		if err := pch.Publish("", "seed-q", false, false, amqp.Publishing{Body: []byte("rotated")}); err != nil {
			t.Fatal(err)
		}
		select {
		case d := <-deliveries:
			if string(d.Body) != "rotated" {
				t.Fatalf("got %q", d.Body)
			}
			if conn.Reconnects() == 0 {
				t.Fatal("client never reconnected")
			}
			return
		case <-time.After(100 * time.Millisecond):
			// Consumer not re-attached yet; retry.
		case <-deadline:
			t.Fatal("consumer never resumed on the seed survivor")
		}
	}
}
