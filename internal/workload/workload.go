// Package workload defines the three streaming workloads of the paper's
// Table 1 — Dstream (GRETA/Deleria), Lstream (SLAC LCLS), and the generic
// workload — and generates their message payloads.
package workload

import (
	"fmt"
	"math/rand"

	"ds2hpc/internal/payload/deleria"
	"ds2hpc/internal/payload/h5lite"
)

// Format names a payload packaging scheme.
type Format string

// Payload formats from Table 1.
const (
	FormatDeleria Format = "binary-compressed-events" // Deleria event batches
	FormatHDF5    Format = "hdf5"                     // LCLS HDF5 files
	FormatBinary  Format = "binary"                   // generic opaque bytes
)

// Workload is one row of Table 1.
type Workload struct {
	// Name is "Dstream", "Lstream" or "generic".
	Name string
	// PayloadBytes is the nominal message payload size.
	PayloadBytes int
	// EventsPerMsg is the number of payload elements batched per message
	// (1 for one-item-per-message workloads).
	EventsPerMsg int
	// Format selects the payload packaging.
	Format Format
	// DataRateBps is the workload's steady data rate from Table 1
	// (32/30/25 Gbps); used by rate-limited producers.
	DataRateBps int64
	// MPI reports whether producers/consumers launch under the MPI-like
	// rank group (Lstream and generic) or independently (Deleria).
	MPI bool
}

// The paper's three workloads.
var (
	// Dstream models GRETA/Deleria: 16 KiB messages of eight 2 KiB
	// events in compressed binary, 32 Gbps, non-MPI parallel clients.
	Dstream = Workload{
		Name:         "Dstream",
		PayloadBytes: deleria.EventSize * deleria.EventsPerMessage,
		EventsPerMsg: deleria.EventsPerMessage,
		Format:       FormatDeleria,
		DataRateBps:  32_000_000_000,
		MPI:          false,
	}
	// Lstream models SLAC LCLS: 1 MiB HDF5 payloads, 30 Gbps, MPI.
	Lstream = Workload{
		Name:         "Lstream",
		PayloadBytes: 1 << 20,
		EventsPerMsg: 1,
		Format:       FormatHDF5,
		DataRateBps:  30_000_000_000,
		MPI:          true,
	}
	// Generic is the arbitrary 4 MiB one-item-per-message workload.
	Generic = Workload{
		Name:         "generic",
		PayloadBytes: 4 << 20,
		EventsPerMsg: 1,
		Format:       FormatBinary,
		DataRateBps:  25_000_000_000,
		MPI:          true,
	}
)

// All lists the workloads in Table 1 order.
var All = []Workload{Dstream, Lstream, Generic}

// ByName looks a workload up by its Table 1 name.
func ByName(name string) (Workload, error) {
	for _, w := range All {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Scaled returns a copy with the payload shrunk by the given divisor (>= 1),
// used together with fabric scaling so benchmark runs finish quickly while
// keeping the payload-to-bandwidth ratio of the full-size experiment.
func (w Workload) Scaled(divisor int) Workload {
	if divisor <= 1 {
		return w
	}
	out := w
	out.PayloadBytes = w.PayloadBytes / divisor
	if out.PayloadBytes < 1024 {
		out.PayloadBytes = 1024
	}
	return out
}

// Generator produces the per-message payloads for one producer. It is not
// safe for concurrent use; create one per producer.
type Generator struct {
	w   Workload
	rng *rand.Rand
	// cache holds a prebuilt payload for formats whose construction cost
	// would otherwise dominate the send loop (matching how the paper's
	// simulator generates workload up front).
	cache []byte
}

// NewGenerator creates a generator seeded for one producer.
func NewGenerator(w Workload, producerID int) *Generator {
	return &Generator{w: w, rng: rand.New(rand.NewSource(int64(producerID)*7919 + 17))}
}

// Payload returns the message body for sequence number seq.
func (g *Generator) Payload(seq uint64) ([]byte, error) {
	switch g.w.Format {
	case FormatDeleria:
		if g.cache == nil {
			batch := deleria.NewBatch(seq)
			data, err := deleria.EncodeBatch(batch)
			if err != nil {
				return nil, err
			}
			g.cache = data
		}
		return g.cache, nil
	case FormatHDF5:
		if g.cache == nil {
			f, err := h5lite.NewFrameFile(seq, g.w.PayloadBytes)
			if err != nil {
				return nil, err
			}
			data, err := f.Encode()
			if err != nil {
				return nil, err
			}
			g.cache = data
		}
		return g.cache, nil
	case FormatBinary:
		if g.cache == nil {
			g.cache = make([]byte, g.w.PayloadBytes)
			g.rng.Read(g.cache)
		}
		return g.cache, nil
	default:
		return nil, fmt.Errorf("workload: unknown format %q", g.w.Format)
	}
}

// Verify checks that a received payload parses under the workload's format.
func (w Workload) Verify(body []byte) error {
	switch w.Format {
	case FormatDeleria:
		_, err := deleria.DecodeBatch(body)
		return err
	case FormatHDF5:
		_, err := h5lite.Decode(body)
		return err
	case FormatBinary:
		if len(body) == 0 {
			return fmt.Errorf("workload: empty binary payload")
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown format %q", w.Format)
	}
}
