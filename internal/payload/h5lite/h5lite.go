// Package h5lite is a minimal self-describing scientific container format
// standing in for HDF5, which the paper's LCLS workload uses for its 1 MiB
// message payloads ("each message contains an HDF5-formatted file"). It
// supports named datasets with an element type, a shape, and raw chunk
// data, which is the subset the streaming path exercises: pack a detector
// frame, ship it, unpack it.
//
// Layout:
//
//	superblock: magic "\x89H5L\r\n\x1a\n" | version u8 | dataset count u32
//	dataset:    name (u16 len + bytes) | dtype u8 | ndims u8 |
//	            dims []u64 | data length u64 | data bytes
package h5lite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// magic mirrors HDF5's signature structure.
var magic = []byte{0x89, 'H', '5', 'L', '\r', '\n', 0x1a, '\n'}

const version = 1

// DType identifies a dataset element type.
type DType uint8

// Supported element types.
const (
	U8  DType = 1
	I16 DType = 2
	I32 DType = 3
	F32 DType = 4
	F64 DType = 5
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case U8:
		return 1
	case I16:
		return 2
	case I32, F32:
		return 4
	case F64:
		return 8
	default:
		return 0
	}
}

// Dataset is one named array.
type Dataset struct {
	Name string
	Type DType
	Dims []uint64
	Data []byte // raw little-endian element data
}

// Elements returns the number of elements implied by Dims.
func (ds *Dataset) Elements() uint64 {
	n := uint64(1)
	for _, d := range ds.Dims {
		n *= d
	}
	return n
}

// Validate checks that the data length matches the declared shape.
func (ds *Dataset) Validate() error {
	want := ds.Elements() * uint64(ds.Type.Size())
	if uint64(len(ds.Data)) != want {
		return fmt.Errorf("h5lite: dataset %q: %d data bytes, shape wants %d",
			ds.Name, len(ds.Data), want)
	}
	return nil
}

// File is an in-memory container.
type File struct {
	Datasets []Dataset
}

// Dataset returns the named dataset.
func (f *File) Dataset(name string) (*Dataset, bool) {
	for i := range f.Datasets {
		if f.Datasets[i].Name == name {
			return &f.Datasets[i], true
		}
	}
	return nil, false
}

// Encode serializes the container.
func (f *File) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic)
	buf.WriteByte(version)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(f.Datasets)))
	buf.Write(cnt[:])
	for i := range f.Datasets {
		ds := &f.Datasets[i]
		if err := ds.Validate(); err != nil {
			return nil, err
		}
		if len(ds.Name) > 1<<16-1 {
			return nil, fmt.Errorf("h5lite: dataset name too long")
		}
		var l16 [2]byte
		binary.LittleEndian.PutUint16(l16[:], uint16(len(ds.Name)))
		buf.Write(l16[:])
		buf.WriteString(ds.Name)
		buf.WriteByte(byte(ds.Type))
		buf.WriteByte(byte(len(ds.Dims)))
		for _, d := range ds.Dims {
			var l64 [8]byte
			binary.LittleEndian.PutUint64(l64[:], d)
			buf.Write(l64[:])
		}
		var dl [8]byte
		binary.LittleEndian.PutUint64(dl[:], uint64(len(ds.Data)))
		buf.Write(dl[:])
		buf.Write(ds.Data)
	}
	return buf.Bytes(), nil
}

// Decode parses a container.
func Decode(data []byte) (*File, error) {
	r := bytes.NewReader(data)
	sig := make([]byte, len(magic))
	if _, err := io.ReadFull(r, sig); err != nil {
		return nil, err
	}
	if !bytes.Equal(sig, magic) {
		return nil, errors.New("h5lite: bad signature")
	}
	ver, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("h5lite: unsupported version %d", ver)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 1<<16 {
		return nil, fmt.Errorf("h5lite: implausible dataset count %d", n)
	}
	f := &File{}
	for i := uint32(0); i < n; i++ {
		var l16 [2]byte
		if _, err := io.ReadFull(r, l16[:]); err != nil {
			return nil, err
		}
		name := make([]byte, binary.LittleEndian.Uint16(l16[:]))
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		dt, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		ndims, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		dims := make([]uint64, ndims)
		for j := range dims {
			var l64 [8]byte
			if _, err := io.ReadFull(r, l64[:]); err != nil {
				return nil, err
			}
			dims[j] = binary.LittleEndian.Uint64(l64[:])
		}
		var dl [8]byte
		if _, err := io.ReadFull(r, dl[:]); err != nil {
			return nil, err
		}
		dataLen := binary.LittleEndian.Uint64(dl[:])
		if dataLen > uint64(len(data)) {
			return nil, fmt.Errorf("h5lite: dataset %q longer than container", name)
		}
		payload := make([]byte, dataLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		ds := Dataset{Name: string(name), Type: DType(dt), Dims: dims, Data: payload}
		if err := ds.Validate(); err != nil {
			return nil, err
		}
		f.Datasets = append(f.Datasets, ds)
	}
	return f, nil
}

// NewFrameFile synthesizes an LCLS-style detector frame container of
// approximately totalBytes: a 2D I16 image dataset plus small metadata
// datasets, seeded deterministically by seq.
func NewFrameFile(seq uint64, totalBytes int) (*File, error) {
	if totalBytes < 4096 {
		totalBytes = 4096
	}
	rng := rand.New(rand.NewSource(int64(seq)))
	// Reserve a little for metadata; the image dominates.
	imgBytes := totalBytes - 512
	pixels := imgBytes / 2
	side := 1
	for side*side*2 < imgBytes {
		side++
	}
	side--
	if side < 1 {
		side = 1
	}
	pixels = side * side
	img := make([]byte, pixels*2)
	rng.Read(img)

	ts := make([]byte, 8)
	binary.LittleEndian.PutUint64(ts, seq)
	energy := make([]byte, 8)
	binary.LittleEndian.PutUint64(energy, uint64(rng.Int63()))

	f := &File{Datasets: []Dataset{
		{Name: "entry/data/frame", Type: I16, Dims: []uint64{uint64(side), uint64(side)}, Data: img},
		{Name: "entry/timestamp", Type: F64, Dims: []uint64{1}, Data: ts},
		{Name: "entry/beam_energy", Type: F64, Dims: []uint64{1}, Data: energy},
	}}
	return f, nil
}
