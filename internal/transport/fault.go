package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/metrics"
)

var (
	injectedResets = metrics.Default.Counter("transport.injected_resets")
	refusedDials   = metrics.Default.Counter("transport.refused_dials")
	injectedFlaps  = metrics.Default.Counter("transport.injected_flaps")
	spikedWrites   = metrics.Default.Counter("transport.spiked_writes")
	faultDials     = metrics.Default.Counter("transport.fault_dials")
)

// ErrInjected is the error surfaced by connections and dials that an
// Injector has faulted.
var ErrInjected = errors.New("transport: injected fault")

// Injector scripts the WAN failures a cross-facility link actually sees
// into every connection dialed through its Hop: link flaps (all live
// connections reset, new dials refused until the link heals), mid-stream
// connection resets, latency spikes, and hard partitions. Deployments
// compose it as the outermost hop of a client path, so a single Flap
// models a facility-spanning outage across every client at once.
//
// Faults can be triggered manually (Flap, Partition/Heal, ResetConns,
// SetLatencySpike) or armed on traffic volume (FlapAfterBytes,
// FlapEveryBytes) so scripted scenarios stay deterministic regardless of
// how fast the run progresses.
type Injector struct {
	mu       sync.Mutex
	conns    map[*faultConn]struct{}
	down     bool
	extraLat time.Duration
	armNext  int64 // byte threshold arming the next flap; 0 = disarmed
	armEvery int64 // re-arm interval; 0 = one-shot
	armLeft  int   // flaps remaining before disarm; <0 = unlimited
	armDown  time.Duration

	bytes   atomic.Int64
	dials   atomic.Uint64
	refused atomic.Uint64
	resets  atomic.Uint64
	flaps   atomic.Uint64
}

// NewInjector builds an idle injector (no faults until scripted).
func NewInjector() *Injector {
	return &Injector{conns: map[*faultConn]struct{}{}}
}

// Hop returns the path hop that routes connections through the injector.
func (in *Injector) Hop() Hop {
	return HopFunc("fault", func(next DialFunc) DialFunc {
		return func(network, addr string) (net.Conn, error) {
			if in.isDown() {
				in.refused.Add(1)
				refusedDials.Inc()
				return nil, ErrInjected
			}
			c, err := next(network, addr)
			if err != nil {
				return nil, err
			}
			fc := &faultConn{Conn: c, in: in}
			in.mu.Lock()
			in.conns[fc] = struct{}{}
			in.mu.Unlock()
			in.dials.Add(1)
			faultDials.Inc()
			return fc, nil
		}
	})
}

func (in *Injector) isDown() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down
}

// Partition hard-partitions the path: every live connection is reset and
// new dials are refused until Heal.
func (in *Injector) Partition() {
	in.mu.Lock()
	in.down = true
	conns := make([]*faultConn, 0, len(in.conns))
	for fc := range in.conns {
		conns = append(conns, fc)
	}
	in.mu.Unlock()
	for _, fc := range conns {
		fc.kill()
	}
}

// Heal ends a partition; new dials succeed again.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.down = false
	in.mu.Unlock()
}

// Flap partitions the path now and heals it after down elapses — one
// WAN link flap. It returns immediately.
func (in *Injector) Flap(down time.Duration) {
	in.flaps.Add(1)
	injectedFlaps.Inc()
	in.Partition()
	time.AfterFunc(down, in.Heal)
}

// ResetConns resets every live connection mid-stream without refusing
// new dials (a transient middlebox reset rather than a link outage).
func (in *Injector) ResetConns() {
	in.mu.Lock()
	conns := make([]*faultConn, 0, len(in.conns))
	for fc := range in.conns {
		conns = append(conns, fc)
	}
	in.mu.Unlock()
	for _, fc := range conns {
		fc.kill()
	}
}

// SetLatencySpike adds d of extra delay to every write until cleared
// with SetLatencySpike(0) — congestion or a rerouted path.
func (in *Injector) SetLatencySpike(d time.Duration) {
	in.mu.Lock()
	in.extraLat = d
	in.mu.Unlock()
}

// FlapAfterBytes arms a one-shot link flap that fires once n total bytes
// have crossed the injector, keeping fault timing deterministic relative
// to run progress rather than wall time.
func (in *Injector) FlapAfterBytes(n int64, down time.Duration) {
	in.mu.Lock()
	in.armNext = in.bytes.Load() + n
	in.armEvery = 0
	in.armLeft = 1
	in.armDown = down
	in.mu.Unlock()
}

// FlapEveryBytes arms a recurring flap every n bytes, at most limit
// times (limit <= 0 means unlimited) — the fault-rate knob the
// resilience benchmarks sweep. Note the byte meter keeps counting the
// retransmission traffic each outage causes (requeued redeliveries,
// replayed publishes), so an unlimited low-interval arm on a small run
// degenerates into a flap storm; bound it.
func (in *Injector) FlapEveryBytes(n int64, down time.Duration, limit int) {
	in.mu.Lock()
	in.armNext = in.bytes.Load() + n
	in.armEvery = n
	if limit <= 0 {
		limit = -1
	}
	in.armLeft = limit
	in.armDown = down
	in.mu.Unlock()
}

// count charges traversed bytes and fires any armed byte-triggered flap.
func (in *Injector) count(n int) {
	if n <= 0 {
		return
	}
	total := in.bytes.Add(int64(n))
	in.mu.Lock()
	fire := in.armNext > 0 && total >= in.armNext && in.armLeft != 0
	var down time.Duration
	if fire {
		down = in.armDown
		if in.armLeft > 0 {
			in.armLeft--
		}
		if in.armEvery > 0 && in.armLeft != 0 {
			in.armNext = total + in.armEvery
		} else {
			in.armNext = 0
		}
	}
	in.mu.Unlock()
	if fire {
		go in.Flap(down)
	}
}

func (in *Injector) latency() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.extraLat
}

func (in *Injector) drop(fc *faultConn) {
	in.mu.Lock()
	delete(in.conns, fc)
	in.mu.Unlock()
}

// Stats is a snapshot of injector activity.
type Stats struct {
	// Dials counts connections admitted through the injector.
	Dials uint64
	// Refused counts dials rejected while partitioned.
	Refused uint64
	// Resets counts live connections killed mid-stream.
	Resets uint64
	// Flaps counts link flaps fired.
	Flaps uint64
	// Bytes is the total traffic that traversed injected connections.
	Bytes int64
}

// Stats reports injector activity so scenarios can assert the scripted
// faults actually fired.
func (in *Injector) Stats() Stats {
	return Stats{
		Dials:   in.dials.Load(),
		Refused: in.refused.Load(),
		Resets:  in.resets.Load(),
		Flaps:   in.flaps.Load(),
		Bytes:   in.bytes.Load(),
	}
}

// faultConn wraps one injected connection.
type faultConn struct {
	net.Conn
	in     *Injector
	killed atomic.Bool
}

// kill resets the connection mid-stream: blocked reads and writes fail
// immediately, like a TCP RST from a dead middlebox.
func (fc *faultConn) kill() {
	if fc.killed.CompareAndSwap(false, true) {
		fc.in.resets.Add(1)
		injectedResets.Inc()
		fc.Conn.Close()
	}
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.killed.Load() {
		return 0, ErrInjected
	}
	n, err := fc.Conn.Read(p)
	fc.in.count(n)
	if err != nil && fc.killed.Load() {
		err = ErrInjected
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.killed.Load() {
		return 0, ErrInjected
	}
	if d := fc.in.latency(); d > 0 {
		spikedWrites.Inc()
		time.Sleep(d)
	}
	n, err := fc.Conn.Write(p)
	fc.in.count(n)
	if err != nil && fc.killed.Load() {
		err = ErrInjected
	}
	return n, err
}

func (fc *faultConn) Close() error {
	fc.in.drop(fc)
	return fc.Conn.Close()
}

// Unwrap exposes the inner connection for half-close propagation.
func (fc *faultConn) Unwrap() net.Conn { return fc.Conn }
