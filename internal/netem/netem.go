// Package netem emulates wide-area and facility network links on top of real
// net.Conn connections. The paper's testbed bottleneck — a 1 Gbps Ethernet
// path between Andes compute nodes and the Data Streaming Nodes — is modeled
// with a token-bucket rate limiter shared by every connection traversing a
// Link, plus one-way propagation latency and optional jitter.
//
// All experiments in this repository run over loopback TCP; netem restores
// the network characteristics that make the paper's architecture comparison
// meaningful (shared bottlenecks, per-hop latency, TLS hop costs).
package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Link describes one emulated network segment. A single Link instance may be
// shared by many connections; they then contend for its bandwidth the way
// flows share a physical wire.
type Link struct {
	// Name identifies the link in logs and metrics (e.g. "andes-dsn").
	Name string
	// RateBps is the line rate in bits per second. Zero means unshaped.
	RateBps int64
	// Latency is the one-way propagation delay added to each write.
	Latency time.Duration
	// Jitter, if non-zero, adds a uniformly distributed extra delay in
	// [0, Jitter) to each write.
	Jitter time.Duration
	// MTU is the segment size used for pacing. Writes are paced in MTU
	// chunks so one large message cannot monopolize the wire. Zero means
	// 64 KiB.
	MTU int

	mu      sync.Mutex
	tokens  float64   // available bytes
	last    time.Time // last refill
	rng     *rand.Rand
	rngInit sync.Once
}

// DefaultMTU is the pacing chunk size when Link.MTU is zero.
const DefaultMTU = 64 * 1024

// Gbps converts gigabits per second to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }

// Mbps converts megabits per second to bits per second.
func Mbps(m float64) int64 { return int64(m * 1e6) }

// NewLink builds a link with the given name, rate and one-way latency.
func NewLink(name string, rateBps int64, latency time.Duration) *Link {
	return &Link{Name: name, RateBps: rateBps, Latency: latency}
}

// mtu returns the pacing chunk size.
func (l *Link) mtu() int {
	if l.MTU > 0 {
		return l.MTU
	}
	return DefaultMTU
}

// take charges n bytes against the link's token bucket, sleeping off any
// accumulated debt to enforce the line rate. The bucket may go negative
// (pay-ahead accounting): tiny charges coalesce and are slept off in one
// millisecond-granularity pause, which keeps pacing accurate without
// issuing sub-millisecond sleeps the OS timer cannot honour.
func (l *Link) take(n int) {
	if l.RateBps <= 0 || n <= 0 {
		return
	}
	bytesPerSec := float64(l.RateBps) / 8
	// Cap positive burst credit at ~8 ms of line rate (at least one MTU)
	// so idle periods cannot defeat the bottleneck.
	burst := bytesPerSec / 128
	if burst < float64(l.mtu()) {
		burst = float64(l.mtu())
	}
	l.mu.Lock()
	now := time.Now()
	if l.last.IsZero() {
		l.last = now
	}
	l.tokens += now.Sub(l.last).Seconds() * bytesPerSec
	l.last = now
	if l.tokens > burst {
		l.tokens = burst
	}
	l.tokens -= float64(n)
	debt := -l.tokens
	l.mu.Unlock()
	if debt > 0 {
		sleep := time.Duration(debt / bytesPerSec * float64(time.Second))
		// Debts shorter than a millisecond ride along with the next
		// charge; the bucket remembers them.
		if sleep >= time.Millisecond {
			time.Sleep(sleep)
		}
	}
}

// delay sleeps for the link's propagation latency plus jitter.
func (l *Link) delay() {
	d := l.Latency
	if l.Jitter > 0 {
		l.rngInit.Do(func() { l.rng = rand.New(rand.NewSource(time.Now().UnixNano())) })
		l.mu.Lock()
		j := time.Duration(l.rng.Int63n(int64(l.Jitter)))
		l.mu.Unlock()
		d += j
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Conn wraps a net.Conn with link emulation. Writes are paced against the
// link's token bucket and delayed by its latency; reads pass through (the
// peer's writes already paid the cost, so shaping both sides would double
// count).
//
// Propagation latency is charged per flow restart, not per write: a write
// that follows the previous one within the latency window rides the
// already-full pipe (packets in flight back to back), while a write after
// an idle gap pays the full propagation delay. This keeps request-response
// exchanges honest about RTT without serializing bulk streams.
type Conn struct {
	net.Conn
	link *Link

	mu        sync.Mutex
	lastWrite time.Time
}

// Wrap attaches link emulation to an existing connection. A nil link returns
// the connection unchanged.
func Wrap(c net.Conn, l *Link) net.Conn {
	if l == nil {
		return c
	}
	return &Conn{Conn: c, link: l}
}

// Write paces the payload through the link in MTU-sized chunks.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	idle := time.Since(c.lastWrite) >= c.link.Latency
	c.mu.Unlock()
	if idle {
		c.link.delay()
	}
	defer func() {
		c.mu.Lock()
		c.lastWrite = time.Now()
		c.mu.Unlock()
	}()
	mtu := c.link.mtu()
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > mtu {
			n = mtu
		}
		c.link.take(n)
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Unwrap returns the underlying connection.
func (c *Conn) Unwrap() net.Conn { return c.Conn }

// Listener wraps an accept loop so every accepted connection is shaped by
// the same link, emulating a node interface behind a shared uplink.
type Listener struct {
	net.Listener
	link *Link
}

// WrapListener attaches link emulation to accepted connections.
func WrapListener(ln net.Listener, l *Link) net.Listener {
	if l == nil {
		return ln
	}
	return &Listener{Listener: ln, link: l}
}

// Accept waits for a connection and wraps it in the listener's link.
func (ln *Listener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, ln.link), nil
}

// Dialer dials TCP connections shaped by a link.
type Dialer struct {
	Link    *Link
	Timeout time.Duration
}

// Dial connects to addr and wraps the connection in the dialer's link.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return Wrap(c, d.Link), nil
}
