// Client-scale contract tests: the budgeted client runtime must hold a
// whole work-sharing fleet — producers, consumers, pooled connections,
// plus the in-process brokers serving them — inside one configured
// goroutine budget, while still delivering every message. This is the
// asserted counterpart of BenchmarkClientScale (internal/amqp), which
// reports the same runtime's per-message cost and bytes/client.
package ds2hpc

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/scenario"
)

// scaleSpec is a work-sharing spec tuned for fleet-size runs: client NIC
// shaping and LB control-plane costs are disabled (the runtime, not the
// simulated fabric, is under test), payloads are small, and every role
// channel multiplexes onto pooled connections under the goroutine budget.
func scaleSpec(clients, budget int) scenario.Spec {
	half := clients / 2
	return scenario.Spec{
		Deployment: scenario.Deployment{
			Architecture:         string(core.DTS),
			Nodes:                3,
			FabricScale:          benchScale,
			MemoryLimitBytes:     1 << 30,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            scenario.Workload{Name: "Dstream", PayloadBytes: 256},
		Pattern:             "work-sharing",
		Producers:           half,
		Consumers:           half,
		MessagesPerProducer: 1,
		Runs:                1,
		Tuning: scenario.Tuning{
			WorkQueues:      8,
			Prefetch:        8,
			Window:          4,
			GoroutineBudget: budget,
		},
		TimeoutMS: (2 * time.Minute).Milliseconds(),
	}
}

// TestClientScaleGoroutineBudget runs thousands of logical clients and
// asserts the process-wide goroutine peak stays within the configured
// budget — not just at the end, but sampled throughout the run.
func TestClientScaleGoroutineBudget(t *testing.T) {
	clients, budget := 2000, 96
	if testing.Short() {
		clients = 400
	}
	baseline := runtime.NumGoroutine()

	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	rep, err := scenario.Run(context.Background(), scaleSpec(clients, budget))
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(clients / 2); rep.Result.Consumed != want {
		t.Fatalf("consumed %d messages, want %d", rep.Result.Consumed, want)
	}
	// The sampler itself is one goroutine over baseline; everything else
	// above baseline belongs to the run and must fit the budget.
	if over := peak.Load() - int64(baseline) - 1; over > int64(budget) {
		t.Fatalf("goroutine peak %d (baseline %d) exceeds budget %d for %d clients",
			peak.Load(), baseline, budget, clients)
	}
}

// TestClientScaleLegacyEquivalence pins the budgeted runtime to the
// goroutine-per-client engine's observable results: same spec, same
// delivered count, with and without a budget.
func TestClientScaleLegacyEquivalence(t *testing.T) {
	spec := scaleSpec(64, 0) // zero budget = legacy runtime
	legacy, err := scenario.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Tuning.GoroutineBudget = 48
	budgeted, err := scenario.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Result.Consumed != budgeted.Result.Consumed {
		t.Fatalf("legacy consumed %d, budgeted consumed %d — runtimes disagree",
			legacy.Result.Consumed, budgeted.Result.Consumed)
	}
}

// TestParallelSweepMatchesSequential locks the WithParallel sweep to the
// sequential contract: same cells, same per-point consumed counts, points
// in grid order.
func TestParallelSweepMatchesSequential(t *testing.T) {
	spec := scaleSpec(32, 48)
	counts := []int{2, 4, 8}
	seq, err := scenario.Sweep(context.Background(), spec, counts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenario.Sweep(context.Background(), spec, counts, scenario.WithParallel(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(counts) || len(par) != len(counts) {
		t.Fatalf("got %d sequential / %d parallel points, want %d", len(seq), len(par), len(counts))
	}
	for i := range counts {
		if seq[i].Spec.Consumers != counts[i] || par[i].Spec.Consumers != counts[i] {
			t.Fatalf("point %d out of grid order: seq=%d par=%d want %d",
				i, seq[i].Spec.Consumers, par[i].Spec.Consumers, counts[i])
		}
		if seq[i].Result.Consumed != par[i].Result.Consumed {
			t.Fatalf("point %d: sequential consumed %d, parallel consumed %d",
				i, seq[i].Result.Consumed, par[i].Result.Consumed)
		}
	}
}
