// Package ds2hpc reproduces "From Edge to HPC: Investigating Cross-Facility
// Data Streaming Architectures" (George et al., INDIS/SC 2025): three
// streaming architectures (DTS, PRS, MSS) built on a from-scratch AMQP
// broker, SciStream-style proxies, an MSS load-balancer stack, and a
// network-emulation fabric, evaluated with the paper's three workloads and
// messaging patterns.
//
// The root package holds the paper-figure harness: bench_test.go has one
// benchmark per table and figure in the paper's evaluation, and
// figures_test.go has a short deterministic Test* counterpart for each
// scenario so `go test ./...` regression-guards the whole stack.
//
// # Module layout
//
//	internal/wire       AMQP 0-9-1 framing codec: pooled frame/body
//	                    buffers, coalescing frame builder, method and
//	                    content-header encodings
//	internal/broker     the broker: sharded exchange routing and queue
//	                    registries, prefetch-aware queues, batched
//	                    delivery writers and multiple-ack resolution
//	internal/amqp       client library (connections, channels, confirms)
//	                    with bounded auto-reconnect and publish replay
//	internal/transport  the client→service hop stack: Path/Hop dial
//	                    composition, shared half-close-correct Relay,
//	                    admission gates, and the WAN fault injector
//	internal/telemetry  live observability: lock-free probes (sharded
//	                    counters, gauges, watermarks, streaming
//	                    histogram), tick aggregator with ring-buffered
//	                    time series, Prometheus/JSON exporters and the
//	                    opt-in HTTP endpoint
//	internal/metrics    experiment metrics (throughput, RTT CDFs) built
//	                    on telemetry probes, plus the hot-path counter
//	                    registry
//	internal/core       architecture deployments (DTS, PRS variants,
//	                    MSS), each a transport.Path hop composition
//	internal/pattern    messaging patterns as declarative role graphs
//	                    (work sharing, feedback, broadcast,
//	                    broadcast-gather, pipeline) executed by one
//	                    shared role engine
//	internal/scenario   the declarative experiment surface: a
//	                    JSON-serializable Spec per data point, executed
//	                    by scenario.Run
//	internal/sim        Experiment adapter over scenario, plus the
//	                    distributed coordinator
//	internal/fabric     emulated ACE testbed capacities
//	internal/netem      link shaping (rate, latency)
//	internal/workload   Table 1 payload generators (Dstream, Lstream,
//	                    generic)
//	internal/scistream  SciStream-style control/data proxies
//	internal/mss        MSS load balancer and S3M control plane
//	internal/cluster    clustered broker data plane: consistent-hash
//	                    queue placement, inter-node federation links,
//	                    synchronous queue mirrors with in-sync
//	                    promotion, queue-master failover, and the
//	                    Shovel mover
//	cmd/                rmq-server, streamsim, scistream, s3m,
//	                    expdriver, benchsnap
//	examples/           runnable end-to-end scenarios
//
// # Connection paths
//
// A client→service connection is an ordered transport.Path of hops,
// matching the paper's Figure 3: DTS is fault→link→TLS straight to a
// broker NodePort; PRS inserts the SciStream S2DS pair and its mTLS
// overlay tunnel; MSS redirects to the load balancer's front door with
// the service FQDN as SNI, through LB admission and the ingress. The
// deployments in internal/core only compose hops — there is no
// per-architecture dial or relay code — and resilience scenarios
// (resilience_test.go) script WAN faults into the same paths while
// clients ride them out via amqp.Config.Reconnect.
//
// # The Scenario API
//
// One experiment data point — deployment, workload, pattern, client
// counts, tuning knobs, fault script, run count — is one declarative
// scenario.Spec value, JSON-serializable end to end:
//
//	rep, err := scenario.Run(ctx, scenario.Spec{
//	    Deployment: scenario.Deployment{Architecture: "PRS(HAProxy)", FabricScale: 0.2,
//	        Reconnect: &scenario.Reconnect{MaxAttempts: 60, DelayMS: 5, MaxDelayMS: 50}},
//	    Workload:            scenario.Workload{Name: "Dstream", PayloadBytes: 8192},
//	    Pattern:             "work-sharing",
//	    Producers:           2,
//	    Consumers:           2,
//	    MessagesPerProducer: 16,
//	    Faults:              []scenario.Fault{{Kind: scenario.FaultFlap, AtFraction: 0.5, DownMS: 80}},
//	})
//
// The same document in a .json file runs via `streamsim scenario
// <spec.json>` (see examples/scenario). Under the spec, every pattern is
// a pattern.Graph: a declarative role graph (queues and exchanges to
// declare, producer/consumer roles with publish, reply and flow-control
// behaviors) executed by one shared producer loop and one shared consumer
// loop, with confirm windows, batch acks, prefetch and channel-signaled
// completion counting implemented exactly once. Adding a pattern is a
// ~50-line Build function — the multi-stage pipeline pattern
// (edge → filter → HPC fan-in aggregation) is registered that way.
//
// # Telemetry
//
// internal/telemetry is the live observability subsystem, a
// probe → aggregator → exporter pipeline. Probes are lock-free and
// alloc-free on the hot path — sharded atomic counters, gauges,
// watermarks, and a bounded log-scale streaming histogram — and are
// wired through the broker (per-queue depth/publish/ack/requeue rates,
// peak depth, connection counts), the transport layer (relayed bytes,
// dial/fault-injection events), and the pattern role engine (per-role
// produced/consumed/in-flight, publish→confirm latency). The
// aggregator rolls observed sources into per-second time series; every
// scenario.Report carries P50/P95/P99 latency percentiles and a
// consumer-throughput Timeline from it.
//
// metrics.Collector records RTTs into the streaming histogram instead
// of an unbounded sample slice, so collector memory is constant at any
// message volume and the Figure 5/8 CDFs are derived from histogram
// buckets (within one bucket width, ~3%, of the exact sorted-sample
// statistics).
//
// Live access: `streamsim scenario -watch <spec.json>` prints
// per-second rollups (rates, errors, flaps, reconnects);
// `-telemetry <addr>` serves GET /metrics (Prometheus text) and
// GET /snapshot.json for the duration of a run.
//
// # Memory model & zero-copy ownership
//
// The broker data plane copies a message body exactly once: ingest
// assembles the frame payloads into a wire-pool buffer presized from
// the content header's BodySize. From there the body is borrowed, never
// copied — fanout/topic routing shares one refcounted broker.Message
// across all matched queues (per-queue redelivered state lives in the
// queue's chunked ring-deque entry, not the message), and delivery
// writes splice the body into a vectored write straight from the shared
// buffer. Whichever owner resolves last — ack, nack/reject discard,
// drop-head eviction, purge, queue delete, or connection teardown —
// returns the buffer to the pool; the wire.loaned_bytes gauge and
// broker.body_releases counter make the lifecycle observable.
//
// Retention contract: broker embedders must balance Retain/Release on
// managed messages (Message.Body is invalid after the final release).
// Client applications must not hold a manual-ack amqp.Delivery.Body
// past its acknowledgement — copy first to retain; autoAck deliveries,
// gets, and returns own their bodies outright.
//
// # Durability model
//
// Durable storage is opt-in and per-queue: with broker.Config.DataDir
// set (rmq-server -data-dir, or a durability block in a scenario
// spec's deployment), each durable-declared queue is backed by an
// append-only CRC-framed segment log (internal/broker/seglog).
// Publishes append data records — properties reuse the AMQP
// content-header encoding, bodies spill zero-copy from the wire-loan
// buffer — and acks append retirement records; fully-acked head
// segments are compacted unless retain_all keeps them for replay. The
// fsync policy (never, interval, always) picks the durability/latency
// trade-off; always upgrades publisher confirms to confirm-implies-
// durable.
//
// Recovery on restart truncates a torn tail to the longest intact
// record prefix and requeues everything unacked (redelivered=true):
// with fsync always, confirmed messages survive a hard kill and
// settled ones never resurrect, while delivery stays at-least-once —
// in-flight unacked messages are redelivered as duplicates. Consumers
// passing the x-stream-offset consume argument replay retained history
// from any offset and then follow the live tail (the cold-replay
// pattern). The broker-restart scenario fault hard-kills every node
// mid-run and restarts them on the same addresses; reconnecting
// clients ride it out with zero acked-message loss.
//
// # Client runtime & scaling
//
// Fleet-scale runs (10⁴–10⁵ logical clients) ride a multiplexed client
// runtime: amqp.ClientPool owns a few physical connections and hands
// out Session handles mapped onto channels (least-loaded placement,
// soft SessionsPerConn target, hard cap at the negotiated channel-max),
// ConsumeFunc consumers are dispatched from the connection read loop
// (zero goroutines when idle), and a shared Pacer replaces per-client
// timers. A physical-connection flap resumes every session mapped onto
// it — consumers and unconfirmed publishes replay — without touching
// sessions on sibling connections. With Tuning.GoroutineBudget set, the
// pattern engine multiplexes all roles over a bounded worker set and
// the deployment's total goroutine count stays under the budget
// (asserted in TestClientScaleGoroutineBudget; BenchmarkClientScale
// tracks ns/op per delivered message and bytes/client up to 100k).
// Entry points: `streamsim scenario -clients N`, `expdriver -fig
// scale`, and scenario.Sweep's WithParallel option for concurrent grid
// cells.
//
// # Cluster model
//
// A clustered deployment (scenario: deployment.cluster_nodes ≥ 2) runs
// the broker as N nodes behind one data plane (internal/cluster). Queue
// placement is a consistent-hash ring over virtual nodes — deterministic
// for a given member set, topology-versioned on every join and leave —
// and a metadata directory any node can answer maps a queue name to its
// current master. A client talking to the wrong node is handled two
// ways: publishes are forwarded to the master over an inter-node
// federation link (an AMQP connection in confirm mode; bodies cross it
// zero-copy as borrowed refcounted buffers and the master's ack is
// bridged back to the origin producer), while consumes redirect the
// whole connection — the broker answers connection.close 302 with the
// master's address, and amqp.Config.Reconnect re-dials it and replays
// channel state there. Config.Seeds gives clients the full node list so
// a dead dial target rotates instead of dead-ending.
//
// Failover, in sequence: a queue-master dies → the ring drops the node
// (version bump) and every queue it mastered is reassigned to surviving
// nodes → the new master recovers each durable queue from its segment
// log (confirm-implies-durable under fsync always; transient queues
// restart empty) → displaced clients reconnect via seeds, land anywhere,
// and are redirected or federated to the new master. Nothing confirmed
// is lost; delivery stays at-least-once. The node-kill scenario fault
// scripts exactly this (examples/scenario/failover.json,
// TestClusterFailoverScenario), and cluster.* telemetry probes
// (federation_msgs/bytes/links, redirects, ownership_changes) make the
// rebalance observable; BenchmarkFederationForward pins the forward
// path at 0 allocs/op.
//
// With deployment.replication_factor R ≥ 2, each durable queue
// additionally keeps R−1 synchronous mirrors on distinct ring nodes:
// the master streams every publish and settle to its mirrors over
// confirm-mode federation links, and withholds the producer's confirm
// until the in-sync mirror set has appended (a lagging mirror is
// evicted after a bounded window rather than stalling confirms
// forever, surfacing as the under-replicated health rule). Killing a
// replicated master then promotes the most-advanced in-sync mirror in
// place — zero segment-log relocation, nothing read from the dead
// node's disk — and a restarted node re-enters as a catching-up mirror
// that resyncs from the live master before rejoining the in-sync set.
// The rolling-node-kill fault chases the promoted masters across the
// cluster (examples/scenario/failover_replicated.json,
// TestRollingNodeKillScenario); cluster.promotions, mirror_catchups,
// mirror_lag, insync_mirrors and underreplicated_queues trace it, and
// BenchmarkMirroredPublishDeliver prices the confirm path at R=1 vs
// R=2.
//
// # Running the suite
//
// Tier-1 verification is `go build ./... && go test ./...`; CI runs
// -race over the whole module as a dedicated job (the telemetry probes
// are deliberately lock-free hot-path code).
// Reproduce a paper figure by running its benchmark, e.g.
//
//	go test -bench BenchmarkFig4aDstreamWorkSharing -benchmem .
//
// See README.md for the figure-to-benchmark map.
package ds2hpc
