// Package tlsutil generates self-signed certificates and TLS configurations
// for the streaming deployments. It stands in for the openssl-based
// certificate generation performed by SciStream S2CS pods on startup and for
// the auto-generated certificates of the Bitnami RabbitMQ chart (paper §4.3,
// §4.4).
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Identity bundles a certificate, its private key, and a pool trusting it.
type Identity struct {
	Cert tls.Certificate
	Pool *x509.CertPool
	// PEM-encoded certificate, as handed out by `s2uc --server_cert`.
	CertPEM []byte
}

// SelfSigned creates a fresh self-signed server identity for the given
// common name and SANs. It mirrors the "generate a self-signed TLS
// certificate using openssl" step of the S2CS container startup.
func SelfSigned(commonName string, hosts ...string) (*Identity, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: key generation: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("tlsutil: serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"ds2hpc"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	if len(hosts) == 0 {
		hosts = []string{"127.0.0.1", "localhost"}
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: create certificate: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: marshal key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: key pair: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, fmt.Errorf("tlsutil: pool append failed")
	}
	return &Identity{Cert: cert, Pool: pool, CertPEM: certPEM}, nil
}

// ServerConfig returns a TLS config that serves this identity.
func (id *Identity) ServerConfig() *tls.Config {
	return &tls.Config{Certificates: []tls.Certificate{id.Cert}}
}

// MutualServerConfig returns a server config that also requires and
// verifies client certificates signed by this identity (mTLS as used on the
// SciStream overlay tunnel).
func (id *Identity) MutualServerConfig() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.Cert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    id.Pool,
	}
}

// ClientConfig returns a TLS config that trusts this identity for the given
// server name.
func (id *Identity) ClientConfig(serverName string) *tls.Config {
	return &tls.Config{RootCAs: id.Pool, ServerName: serverName}
}

// MutualClientConfig returns a client config that presents this identity
// and trusts it as CA (proxy-certificate authentication between S2DS peers).
func (id *Identity) MutualClientConfig(serverName string) *tls.Config {
	return &tls.Config{
		RootCAs:      id.Pool,
		ServerName:   serverName,
		Certificates: []tls.Certificate{id.Cert},
	}
}

// PoolFromPEM builds a cert pool from a PEM-encoded certificate, as a client
// would from the file passed via `--server_cert`.
func PoolFromPEM(certPEM []byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, fmt.Errorf("tlsutil: invalid certificate PEM")
	}
	return pool, nil
}
