package seglog

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ds2hpc/internal/wire"
)

// The crash/corruption property: apply a random stream of append/ack
// operations, damage the on-disk state at a random byte — either truncate
// there or flip one bit — reopen, and recovery must keep exactly the
// prefix of intact records: every record wholly before the damaged one
// survives, the damaged record and everything after it (including whole
// later segments) is gone.
//
// The model reads the record extents back from the files BEFORE the
// damage with a minimal length-hopping parser, so the expectation is
// computed from the format spec, not from the recovery code under test.

// scannedRec is one record located by the model's parser.
type scannedRec struct {
	file string
	pos  int64 // start of the record header within the file
	end  int64
	typ  byte
	off  uint64
	body []byte // data records only
}

// scanExtents walks a pre-corruption segment file trusting length fields
// (valid by construction) and records every record's extent.
func scanExtents(t *testing.T, path string) []scannedRec {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < fileHeaderSize {
		t.Fatalf("%s: short header", path)
	}
	var out []scannedRec
	pos := int64(fileHeaderSize)
	for pos < int64(len(raw)) {
		plen := int64(binary.BigEndian.Uint32(raw[pos+4 : pos+8]))
		typ := raw[pos+8]
		off := binary.BigEndian.Uint64(raw[pos+17 : pos+25])
		end := pos + recHeaderSize + plen
		if end > int64(len(raw)) {
			t.Fatalf("%s: pre-corruption file has torn record at %d", path, pos)
		}
		sr := scannedRec{file: path, pos: pos, end: end, typ: typ, off: off}
		if typ == recData {
			rec, err := decodeDataPayload(off, raw[pos+recHeaderSize:end])
			if err != nil {
				t.Fatalf("%s: pre-corruption record at %d: %v", path, pos, err)
			}
			sr.body = append([]byte(nil), rec.Body...)
		}
		out = append(out, sr)
		pos = end
	}
	return out
}

// boundaryBefore returns at if it coincides with a record boundary (or
// the end of the file header) in the victim file, else -1.
func boundaryBefore(all []scannedRec, victim string, at int64) int64 {
	if at == fileHeaderSize {
		return at
	}
	for _, r := range all {
		if r.file == victim && r.end == at {
			return at
		}
	}
	return -1
}

func TestCrashCorruptionProperty(t *testing.T) {
	const iterations = 600
	seed := int64(20260807)
	if testing.Short() {
		t.Skip("600-iteration property suite")
	}
	root := t.TempDir()
	for it := 0; it < iterations; it++ {
		it := it
		rng := rand.New(rand.NewSource(seed + int64(it)))
		t.Run(fmt.Sprintf("iter-%03d", it), func(t *testing.T) {
			runCorruptionIteration(t, rng, filepath.Join(root, fmt.Sprintf("it-%d", it)))
		})
	}
}

func runCorruptionIteration(t *testing.T, rng *rand.Rand, dir string) {
	// Small segments force multi-segment logs; RetainAll keeps the whole
	// history so the model sees every record.
	opts := Options{SegmentBytes: int64(128 + rng.Intn(512)), RetainAll: true}
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	nOps := 5 + rng.Intn(40)
	var outstanding []uint64
	for i := 0; i < nOps; i++ {
		if len(outstanding) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(outstanding))
			off := outstanding[j]
			outstanding = append(outstanding[:j], outstanding[j+1:]...)
			if err := l.Ack(off); err != nil {
				t.Fatalf("ack %d: %v", off, err)
			}
			continue
		}
		body := make([]byte, rng.Intn(200))
		rng.Read(body)
		props := &wire.Properties{DeliveryMode: wire.Persistent, MessageID: fmt.Sprintf("id-%d", i)}
		off, err := l.Append("ex", fmt.Sprintf("rk-%d", i%4), props, body)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		outstanding = append(outstanding, off)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Model: locate every record across the segment chain, in order.
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	var all []scannedRec
	fileIdx := map[string]int{}
	for i, f := range files {
		fileIdx[f] = i
		all = append(all, scanExtents(t, f)...)
	}

	// Pick a corruption point: a random byte of a random segment file
	// (the file header included — damaging it forfeits the segment).
	victim := files[rng.Intn(len(files))]
	st, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatalf("%s: empty segment", victim)
	}
	at := rng.Int63n(st.Size())
	truncate := rng.Intn(2) == 0
	if truncate {
		if err := os.Truncate(victim, at); err != nil {
			t.Fatal(err)
		}
	} else {
		raw, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		raw[at] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(victim, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Expected survivors: records in files before the victim, plus the
	// victim's records wholly before the damaged byte. For a truncation
	// landing exactly on a record boundary nothing in flight is damaged,
	// but later records in the victim and all later files still die.
	damagedHeader := at < fileHeaderSize
	var survive []scannedRec
	for _, r := range all {
		switch {
		case fileIdx[r.file] < fileIdx[victim]:
			survive = append(survive, r)
		case r.file == victim && !damagedHeader && r.end <= at:
			survive = append(survive, r)
		}
	}
	wantAcked := map[uint64]bool{}
	var wantData []scannedRec
	for _, r := range survive {
		if r.typ == recData {
			wantData = append(wantData, r)
		} else if r.typ == recAck {
			wantAcked[r.off] = true
		}
	}
	var wantUnacked []scannedRec
	var wantNext uint64
	for _, r := range wantData {
		if !wantAcked[r.off] {
			wantUnacked = append(wantUnacked, r)
		}
		if r.off >= wantNext {
			wantNext = r.off + 1
		}
	}

	l2, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after corruption (truncate=%v at=%d of %s): %v", truncate, at, filepath.Base(victim), err)
	}
	defer l2.Close()

	ctx := fmt.Sprintf("truncate=%v at=%d victim=%s", truncate, at, filepath.Base(victim))
	if rec.Records != len(wantData) {
		t.Fatalf("%s: recovered %d data records, want %d", ctx, rec.Records, len(wantData))
	}
	if len(rec.Unacked) != len(wantUnacked) {
		t.Fatalf("%s: %d unacked survivors, want %d", ctx, len(rec.Unacked), len(wantUnacked))
	}
	for i, got := range rec.Unacked {
		want := wantUnacked[i]
		if got.Offset != want.off {
			t.Fatalf("%s: survivor %d has offset %d, want %d", ctx, i, got.Offset, want.off)
		}
		if string(got.Body) != string(want.body) {
			t.Fatalf("%s: survivor %d (offset %d) body mismatch", ctx, i, got.Offset)
		}
	}
	if got := l2.NextOffset(); got != wantNext {
		t.Fatalf("%s: NextOffset=%d, want %d", ctx, got, wantNext)
	}
	// Truncated must be reported whenever damage is detectable. The one
	// legitimately silent case: a truncation landing exactly on a record
	// boundary of the LAST file — indistinguishable from those records
	// never having been written (nothing after them contradicts it).
	boundary := truncate && !damagedHeader && at == boundaryBefore(all, victim, at)
	lastFile := victim == files[len(files)-1]
	dropped := len(survive) != len(all) || damagedHeader
	if !rec.Truncated && dropped && !(boundary && lastFile) {
		t.Fatalf("%s: %d of %d records dropped but Truncated not reported", ctx, len(all)-len(survive), len(all))
	}
	if rec.Truncated && !dropped {
		t.Fatalf("%s: Truncated reported but every record survived", ctx)
	}
}
