// Package deleria implements the GRETA/Deleria event payload format from
// the paper's Table 1: messages carry a variable number of experimental
// events batched together in a compressed binary format, while control
// messages are encoded in JSON. The evaluation fixes events at 2 KiB and
// batches eight per message, yielding 16 KiB payloads.
package deleria

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// EventSize is the fixed per-event size used by the paper's evaluation.
const EventSize = 2048

// EventsPerMessage is the fixed batch size used by the paper's evaluation.
const EventsPerMessage = 8

// Event is one gamma-ray interaction record: identification, energy, 3D
// position (GRETA's tracking output), and the digitized waveform segment
// that pads the record to EventSize.
type Event struct {
	ID        uint64
	Timestamp uint64 // detector clock ticks
	Detector  uint16 // crystal id
	Energy    float64
	Position  [3]float32
	Waveform  []int16
}

// waveformSamples pads the fixed header up to EventSize bytes.
const headerBytes = 8 + 8 + 2 + 8 + 12 + 4 // fields + waveform length prefix
const waveformSamples = (EventSize - headerBytes) / 2

// NewEvent synthesizes a deterministic event for the given sequence number.
func NewEvent(seq uint64) Event {
	rng := rand.New(rand.NewSource(int64(seq)))
	ev := Event{
		ID:        seq,
		Timestamp: seq * 100,
		Detector:  uint16(seq % 120), // the paper's 120 simulated detectors
		Energy:    rng.Float64() * 10_000,
		Position: [3]float32{
			rng.Float32() * 80, rng.Float32() * 80, rng.Float32() * 80,
		},
		Waveform: make([]int16, waveformSamples),
	}
	for i := range ev.Waveform {
		ev.Waveform[i] = int16(rng.Intn(1 << 14))
	}
	return ev
}

// marshalTo writes the fixed-size binary encoding of the event.
func (e *Event) marshalTo(w io.Writer) error {
	var scratch [headerBytes]byte
	binary.BigEndian.PutUint64(scratch[0:8], e.ID)
	binary.BigEndian.PutUint64(scratch[8:16], e.Timestamp)
	binary.BigEndian.PutUint16(scratch[16:18], e.Detector)
	binary.BigEndian.PutUint64(scratch[18:26], uint64(float64bits(e.Energy)))
	for i, p := range e.Position {
		binary.BigEndian.PutUint32(scratch[26+4*i:], float32bits(p))
	}
	binary.BigEndian.PutUint32(scratch[38:42], uint32(len(e.Waveform)))
	if _, err := w.Write(scratch[:]); err != nil {
		return err
	}
	buf := make([]byte, 2*len(e.Waveform))
	for i, s := range e.Waveform {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(s))
	}
	_, err := w.Write(buf)
	return err
}

func unmarshalEvent(r io.Reader) (Event, error) {
	var scratch [headerBytes]byte
	if _, err := io.ReadFull(r, scratch[:]); err != nil {
		return Event{}, err
	}
	e := Event{
		ID:        binary.BigEndian.Uint64(scratch[0:8]),
		Timestamp: binary.BigEndian.Uint64(scratch[8:16]),
		Detector:  binary.BigEndian.Uint16(scratch[16:18]),
		Energy:    float64frombits(binary.BigEndian.Uint64(scratch[18:26])),
	}
	for i := range e.Position {
		e.Position[i] = float32frombits(binary.BigEndian.Uint32(scratch[26+4*i:]))
	}
	n := binary.BigEndian.Uint32(scratch[38:42])
	if n > 1<<20 {
		return Event{}, fmt.Errorf("deleria: implausible waveform length %d", n)
	}
	buf := make([]byte, 2*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Event{}, err
	}
	e.Waveform = make([]int16, n)
	for i := range e.Waveform {
		e.Waveform[i] = int16(binary.BigEndian.Uint16(buf[2*i:]))
	}
	return e, nil
}

// EncodeBatch packs events into the compressed binary message format.
func EncodeBatch(events []Event) ([]byte, error) {
	var raw bytes.Buffer
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(events)))
	raw.Write(count[:])
	for i := range events {
		if err := events[i].marshalTo(&raw); err != nil {
			return nil, err
		}
	}
	var out bytes.Buffer
	zw := zlib.NewWriter(&out)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// DecodeBatch unpacks a compressed event batch.
func DecodeBatch(data []byte) ([]Event, error) {
	zr, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("deleria: decompress: %w", err)
	}
	defer zr.Close()
	var count [4]byte
	if _, err := io.ReadFull(zr, count[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(count[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("deleria: implausible batch size %d", n)
	}
	events := make([]Event, 0, n)
	for i := uint32(0); i < n; i++ {
		e, err := unmarshalEvent(zr)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}

// NewBatch synthesizes the paper's fixed-shape batch (8 × 2 KiB events)
// for message seq.
func NewBatch(seq uint64) []Event {
	events := make([]Event, EventsPerMessage)
	for i := range events {
		events[i] = NewEvent(seq*EventsPerMessage + uint64(i))
	}
	return events
}

// Control is a Deleria control message; these are JSON-encoded (Table 1).
type Control struct {
	Type     string `json:"type"` // "start", "stop", "configure"
	RunID    uint64 `json:"run_id"`
	Detector uint16 `json:"detector,omitempty"`
	Param    string `json:"param,omitempty"`
	Value    string `json:"value,omitempty"`
}

// EncodeControl marshals a control message.
func EncodeControl(c *Control) ([]byte, error) { return json.Marshal(c) }

// DecodeControl unmarshals a control message.
func DecodeControl(data []byte) (*Control, error) {
	var c Control
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
