// Broadcast-and-gather example: the generic AI-HPC collective motif from
// the paper's §5.1/§5.5 — a fan-out of model weights followed by a gather
// of per-worker metrics, run over each streaming architecture in turn to
// compare their behaviour (the experiment behind Figures 7 and 8).
package main

import (
	"fmt"
	"log"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/workload"
)

func main() {
	profile := fabric.ACE(0.1)
	w := workload.Generic.Scaled(16) // 256 KiB broadcast payloads

	fmt.Println("broadcast+gather: 1 producer -> 6 consumers, per architecture")
	fmt.Printf("%-22s %14s %12s %12s\n", "architecture", "msgs/sec", "median RTT", "p95 RTT")
	for _, arch := range []core.ArchitectureName{core.DTS, core.PRSHAProxy, core.MSS} {
		dep, err := core.Deploy(arch, core.Options{
			Nodes:       3,
			Profile:     profile,
			MemoryLimit: 1 << 30,
		})
		if err != nil {
			log.Fatalf("%s: %v", arch, err)
		}
		res, err := pattern.BroadcastGather(pattern.Config{
			Deployment:          dep,
			Workload:            w,
			Consumers:           6,
			MessagesPerProducer: 6,
			Window:              2,
			Timeout:             2 * time.Minute,
		})
		dep.Close()
		if err != nil {
			log.Fatalf("%s: %v", arch, err)
		}
		fmt.Printf("%-22s %14.1f %12v %12v\n", arch, res.Throughput,
			res.MedianRTT().Round(time.Millisecond),
			res.PercentileRTT(95).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("expected shape (paper §5.5): PRS tracks DTS closely; MSS trails")
	fmt.Println("with higher RTTs until high consumer counts, where the single")
	fmt.Println("producer becomes the shared bottleneck and the curves converge.")
}
