// Quickstart: start an in-process broker, publish a message, consume it.
// This is the smallest end-to-end use of the ds2hpc public pieces: the
// broker (RabbitMQ substitute) and the amqp client (amqp091-go substitute).
package main

import (
	"fmt"
	"log"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
)

func main() {
	// 1. Start a broker node (one DSN's streaming service).
	srv, err := broker.Listen(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("broker listening on", srv.Addr())

	// 2. Connect a producer and declare a work queue with the paper's
	// reject-publish overflow policy.
	conn, err := amqp.Dial("amqp://" + srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		log.Fatal(err)
	}
	q, err := ch.QueueDeclare("quickstart", true, false, false, false, amqp.Table{
		"x-overflow":         "reject-publish",
		"x-max-length-bytes": int64(64 << 20),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Consume, then publish with publisher confirms.
	deliveries, err := ch.Consume(q.Name, "", false, false, false, false, nil)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := conn.Channel()
	if err != nil {
		log.Fatal(err)
	}
	if err := pub.Confirm(false); err != nil {
		log.Fatal(err)
	}
	confirms := pub.NotifyPublish(make(chan amqp.Confirmation, 1))
	if err := pub.Publish("", q.Name, false, false, amqp.Publishing{
		ContentType: "text/plain",
		MessageID:   "msg-1",
		Timestamp:   uint64(time.Now().UnixNano()),
		Body:        []byte("bytes moved straight from edge DRAM into an HPC job"),
	}); err != nil {
		log.Fatal(err)
	}
	if conf := <-confirms; !conf.Ack {
		log.Fatal("broker rejected the publish")
	}
	fmt.Println("publish confirmed by broker")

	select {
	case d := <-deliveries:
		fmt.Printf("received %q (message id %s)\n", d.Body, d.MessageID)
		d.Ack(false)
	case <-time.After(5 * time.Second):
		log.Fatal("no delivery")
	}
	fmt.Println("quickstart complete")
}
