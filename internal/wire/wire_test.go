package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripPrimitives(t *testing.T) {
	w := NewWriter()
	w.Octet(0xAB)
	w.Short(0x1234)
	w.Long(0xDEADBEEF)
	w.LongLong(0x0123456789ABCDEF)
	w.Float64(math.Pi)
	w.Bool(true)
	w.Bool(false)
	w.ShortStr("hello")
	w.LongStr([]byte("world-longer-string"))
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	r := NewReader(w.Bytes())
	if got := r.Octet(); got != 0xAB {
		t.Errorf("Octet = %x", got)
	}
	if got := r.Short(); got != 0x1234 {
		t.Errorf("Short = %x", got)
	}
	if got := r.Long(); got != 0xDEADBEEF {
		t.Errorf("Long = %x", got)
	}
	if got := r.LongLong(); got != 0x0123456789ABCDEF {
		t.Errorf("LongLong = %x", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.ShortStr(); got != "hello" {
		t.Errorf("ShortStr = %q", got)
	}
	if got := string(r.LongStr()); got != "world-longer-string" {
		t.Errorf("LongStr = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestShortStrTooLong(t *testing.T) {
	w := NewWriter()
	w.ShortStr(strings.Repeat("x", 300))
	if w.Err() != ErrShortStrTooLong {
		t.Fatalf("err = %v, want ErrShortStrTooLong", w.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Long()
	if r.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", r.Err())
	}
}

func TestTableRoundTrip(t *testing.T) {
	in := Table{
		"bool":   true,
		"int8":   int8(-3),
		"int16":  int16(-1000),
		"int32":  int32(1 << 20),
		"int64":  int64(1 << 40),
		"float":  2.5,
		"string": "streaming",
		"bytes":  []byte{1, 2, 3},
		"nested": Table{"x-overflow": "reject-publish"},
		"nil":    nil,
	}
	w := NewWriter()
	w.WriteTable(in)
	if err := w.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := NewReader(w.Bytes())
	out := r.ReadTable()
	if err := r.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in, out)
	}
}

func TestTableDeterministicEncoding(t *testing.T) {
	in := Table{"b": int32(2), "a": int32(1), "c": int32(3)}
	w1, w2 := NewWriter(), NewWriter()
	w1.WriteTable(in)
	w2.WriteTable(in)
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("table encoding is not deterministic")
	}
}

func TestTableAccessors(t *testing.T) {
	tb := Table{"s": "v", "i": int32(7), "b": true}
	if tb.String("s", "d") != "v" || tb.String("missing", "d") != "d" {
		t.Error("String accessor failed")
	}
	if tb.Int("i", 0) != 7 || tb.Int("missing", 42) != 42 {
		t.Error("Int accessor failed")
	}
	if !tb.Bool("b", false) || tb.Bool("missing", true) != true {
		t.Error("Bool accessor failed")
	}
}

func TestTableUnsupportedValue(t *testing.T) {
	w := NewWriter()
	w.WriteTable(Table{"bad": struct{}{}})
	if w.Err() == nil {
		t.Fatal("expected error for unsupported value type")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: FrameMethod, Channel: 42, Payload: []byte("payload")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf, 0)
	out, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Channel != in.Channel || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("frame mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameMaxEnforced(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: FrameBody, Channel: 1, Payload: make([]byte, 2048)}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf, 1024)
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("expected frame-max violation")
	}
}

func TestFrameBadEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FrameHeartbeat}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] = 0x00
	fr := NewFrameReader(bytes.NewReader(b), 0)
	if _, err := fr.ReadFrame(); err != ErrBadFrameEnd {
		t.Fatalf("err = %v, want ErrBadFrameEnd", err)
	}
}

func TestProtocolHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProtocolHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadProtocolHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadProtocolHeader(bytes.NewReader([]byte("HTTP/1.1"))); err == nil {
		t.Fatal("expected bad header error")
	}
}

func TestMethodRoundTripAll(t *testing.T) {
	methods := []Method{
		&ConnectionStart{VersionMajor: 0, VersionMinor: 9,
			ServerProperties: Table{"product": "ds2hpc-broker"},
			Mechanisms:       "PLAIN", Locales: "en_US"},
		&ConnectionStartOk{ClientProperties: Table{"product": "ds2hpc-client"},
			Mechanism: "PLAIN", Response: []byte("\x00guest\x00guest"), Locale: "en_US"},
		&ConnectionTune{ChannelMax: 2047, FrameMax: 131072, Heartbeat: 60},
		&ConnectionTuneOk{ChannelMax: 2047, FrameMax: 131072, Heartbeat: 60},
		&ConnectionOpen{VirtualHost: "/"},
		&ConnectionOpenOk{},
		&ConnectionClose{ReplyCode: ReplySuccess, ReplyText: "bye", ClassID: 0, MethodID: 0},
		&ConnectionCloseOk{},
		&ChannelOpen{},
		&ChannelOpenOk{},
		&ChannelFlow{Active: true},
		&ChannelFlowOk{Active: true},
		&ChannelClose{ReplyCode: ReplyNotFound, ReplyText: "no queue", ClassID: 50, MethodID: 10},
		&ChannelCloseOk{},
		&ExchangeDeclare{Exchange: "bcast", Type: "fanout", Durable: true,
			Arguments: Table{"alternate-exchange": "alt"}},
		&ExchangeDeclareOk{},
		&ExchangeDelete{Exchange: "bcast", IfUnused: true},
		&ExchangeDeleteOk{},
		&QueueDeclare{Queue: "work-0", Durable: true,
			Arguments: Table{"x-overflow": "reject-publish", "x-max-length-bytes": int64(1 << 30)}},
		&QueueDeclareOk{Queue: "work-0", MessageCount: 7, ConsumerCount: 3},
		&QueueBind{Queue: "work-0", Exchange: "bcast", RoutingKey: "rk"},
		&QueueBindOk{},
		&QueueUnbind{Queue: "work-0", Exchange: "bcast", RoutingKey: "rk"},
		&QueueUnbindOk{},
		&QueuePurge{Queue: "work-0"},
		&QueuePurgeOk{MessageCount: 12},
		&QueueDelete{Queue: "work-0", IfEmpty: true},
		&QueueDeleteOk{MessageCount: 4},
		&BasicQos{PrefetchSize: 0, PrefetchCount: 100, Global: false},
		&BasicQosOk{},
		&BasicConsume{Queue: "work-0", ConsumerTag: "ctag-1", NoAck: false},
		&BasicConsumeOk{ConsumerTag: "ctag-1"},
		&BasicCancel{ConsumerTag: "ctag-1"},
		&BasicCancelOk{ConsumerTag: "ctag-1"},
		&BasicPublish{Exchange: "", RoutingKey: "work-0", Mandatory: true},
		&BasicReturn{ReplyCode: ReplyNoRoute, ReplyText: "NO_ROUTE", Exchange: "e", RoutingKey: "rk"},
		&BasicDeliver{ConsumerTag: "ctag-1", DeliveryTag: 99, Redelivered: true,
			Exchange: "e", RoutingKey: "rk"},
		&BasicGet{Queue: "work-0", NoAck: true},
		&BasicGetOk{DeliveryTag: 5, Exchange: "e", RoutingKey: "rk", MessageCount: 2},
		&BasicGetEmpty{},
		&BasicAck{DeliveryTag: 10, Multiple: true},
		&BasicReject{DeliveryTag: 11, Requeue: true},
		&BasicNack{DeliveryTag: 12, Multiple: true, Requeue: true},
		&ConfirmSelect{},
		&ConfirmSelectOk{},
	}
	for _, in := range methods {
		payload, err := EncodeMethod(in)
		if err != nil {
			t.Fatalf("%T encode: %v", in, err)
		}
		out, err := ParseMethod(payload)
		if err != nil {
			t.Fatalf("%T parse: %v", in, err)
		}
		// Normalize nil tables: an absent table decodes as empty Table.
		normalize(in)
		normalize(out)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T mismatch:\n in=%#v\nout=%#v", in, in, out)
		}
	}
}

// normalize replaces nil Table fields with empty tables for comparison.
func normalize(m Method) {
	v := reflect.ValueOf(m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Type() == reflect.TypeOf(Table{}) && f.IsNil() {
			f.Set(reflect.ValueOf(Table{}))
		}
	}
}

func TestParseMethodUnknown(t *testing.T) {
	w := NewWriter()
	w.Short(999)
	w.Short(1)
	if _, err := ParseMethod(w.Bytes()); err == nil {
		t.Fatal("expected unknown method error")
	}
}

func TestContentHeaderRoundTrip(t *testing.T) {
	in := &ContentHeader{
		ClassID:  ClassBasic,
		BodySize: 1 << 20,
		Properties: Properties{
			ContentType:   "application/octet-stream",
			Headers:       Table{"seq": int64(17)},
			DeliveryMode:  Transient,
			Priority:      4,
			CorrelationID: "corr-1",
			ReplyTo:       "reply-q-3",
			MessageID:     "msg-0001",
			Timestamp:     123456789,
			AppID:         "streamsim",
		},
	}
	payload, err := EncodeContentHeader(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseContentHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestContentHeaderEmptyProperties(t *testing.T) {
	in := &ContentHeader{ClassID: ClassBasic, BodySize: 0}
	payload, err := EncodeContentHeader(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseContentHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

// Property-based tests.

func TestQuickShortStrRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 255 {
			s = s[:200]
		}
		w := NewWriter()
		w.ShortStr(s)
		r := NewReader(w.Bytes())
		return r.ShortStr() == s && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLongStrRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		w := NewWriter()
		w.LongStr(b)
		r := NewReader(w.Bytes())
		return bytes.Equal(r.LongStr(), b) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(channel uint16, payload []byte) bool {
		if len(payload) > DefaultFrameMax {
			payload = payload[:DefaultFrameMax]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: FrameBody, Channel: channel, Payload: payload}); err != nil {
			return false
		}
		fr := NewFrameReader(&buf, 0)
		out, err := fr.ReadFrame()
		return err == nil && out.Channel == channel && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTableStringValues(t *testing.T) {
	f := func(m map[string]string) bool {
		in := Table{}
		for k, v := range m {
			if len(k) > 255 {
				k = k[:255]
			}
			in[k] = v
		}
		w := NewWriter()
		w.WriteTable(in)
		r := NewReader(w.Bytes())
		out := r.ReadTable()
		return r.Err() == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
