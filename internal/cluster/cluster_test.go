package cluster

import (
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
)

func TestStartAndClose(t *testing.T) {
	c, err := Start(3, broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	addrs := c.Addrs()
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		seen[a] = true
	}
}

func TestStartRejectsZeroNodes(t *testing.T) {
	if _, err := Start(0, broker.Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlacementIsStableAndSpread(t *testing.T) {
	c, err := Start(3, broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	counts := map[int]int{}
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("queue-%d", i)
		o1 := c.OwnerOf(name)
		o2 := c.OwnerOf(name)
		if o1 != o2 {
			t.Fatalf("placement unstable for %s", name)
		}
		if got := c.AddrFor(name); got != c.Node(o1).Addr() {
			t.Fatalf("AddrFor mismatch")
		}
		counts[o1]++
	}
	for n := 0; n < 3; n++ {
		if counts[n] == 0 {
			t.Errorf("node %d received no queues: %v", n, counts)
		}
	}
}

func TestClusterEndToEndAcrossNodes(t *testing.T) {
	c, err := Start(3, broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Producer and consumer both attach to the queue's master node.
	qname := "cross-node-q"
	addr := c.AddrFor(qname)
	prod, err := amqp.Dial("amqp://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	pch, _ := prod.Channel()
	pch.QueueDeclare(qname, false, false, false, false, nil)

	cons, err := amqp.Dial("amqp://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	cch, _ := cons.Channel()
	dc, err := cch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	pch.Publish("", qname, false, false, amqp.Publishing{Body: []byte("hi")})
	select {
	case d := <-dc:
		if string(d.Body) != "hi" {
			t.Fatalf("got %q", d.Body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestShovelMovesMessages(t *testing.T) {
	c, err := Start(2, broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srcAddr, dstAddr := c.Node(0).Addr(), c.Node(1).Addr()
	src, _ := amqp.Dial("amqp://" + srcAddr)
	defer src.Close()
	sch, _ := src.Channel()
	sch.QueueDeclare("forward-buffer", false, false, false, false, nil)

	dst, _ := amqp.Dial("amqp://" + dstAddr)
	defer dst.Close()
	dch, _ := dst.Channel()
	dch.QueueDeclare("event-builder", false, false, false, false, nil)

	sh, err := NewShovel(ShovelConfig{
		SourceURL: "amqp://" + srcAddr, SourceQ: "forward-buffer",
		DestURL: "amqp://" + dstAddr, DestQ: "event-builder",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	const n = 20
	for i := 0; i < n; i++ {
		sch.Publish("", "forward-buffer", false, false, amqp.Publishing{
			MessageID: fmt.Sprintf("ev-%d", i),
			Body:      []byte("event-batch"),
		})
	}
	dc, err := dch.Consume("event-builder", "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	timeout := time.After(10 * time.Second)
	for got < n {
		select {
		case d := <-dc:
			if string(d.Body) != "event-batch" {
				t.Fatalf("body %q", d.Body)
			}
			got++
		case <-timeout:
			t.Fatalf("shovel moved %d of %d (Moved=%d)", got, n, sh.Moved())
		}
	}
	if sh.Moved() != int64(n) {
		t.Errorf("Moved = %d, want %d", sh.Moved(), n)
	}
}

func TestShovelSourceMissingQueue(t *testing.T) {
	c, err := Start(1, broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = NewShovel(ShovelConfig{
		SourceURL: "amqp://" + c.Node(0).Addr(), SourceQ: "missing",
		DestURL: "amqp://" + c.Node(0).Addr(), DestQ: "also-missing",
	})
	if err == nil {
		t.Fatal("expected error for missing source queue")
	}
}
