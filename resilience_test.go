// Resilience scenarios: the paper's architectures under injected
// cross-facility path faults. TestResilience* checks that a pattern run
// completes across an injected link flap via client auto-reconnect (the
// companion messaging study's point that resilience of the
// facility-spanning path, not just raw overhead, decides architecture
// choice); BenchmarkResilienceFaultRate sweeps fault rate × architecture
// so the throughput cost of outages is a measurable figure.
//
// The flap scenario is fully declarative: the scripted fault is part of
// the scenario.Spec, so the same run is reproducible from a JSON file via
// `streamsim scenario`.
package ds2hpc

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/scenario"
	"ds2hpc/internal/transport"
	"ds2hpc/internal/workload"
)

// resilienceWorkload keeps payloads small so runs are fast but still
// span many fault-hop writes.
func resilienceWorkload() workload.Workload {
	w := workload.Dstream
	w.PayloadBytes = 8192
	return w
}

// resiliencePolicy retries fast enough to outlast the injected outages.
func resiliencePolicy() *amqp.ReconnectPolicy {
	return &amqp.ReconnectPolicy{MaxAttempts: 60, Delay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// resilienceOptions wires a fault injector and reconnect policy into the
// deployment's client paths.
func resilienceOptions(inj *transport.Injector) core.Options {
	p := fabric.ACE(0.2)
	p.LBSetupCost = 0
	p.RouteLookupLatency = 0
	return core.Options{
		Nodes:                3,
		Profile:              p,
		DisableClientShaping: true,
		Faults:               inj,
		Reconnect:            resiliencePolicy(),
	}
}

// resilienceSpec is the declarative form of the same scenario: deployment,
// reconnect policy, and the scripted mid-run flap in one Spec value.
func resilienceSpec(arch core.ArchitectureName, producers, consumers, messages int) scenario.Spec {
	return scenario.Spec{
		Name: "link-flap-resilience",
		Deployment: scenario.Deployment{
			Architecture:         string(arch),
			Nodes:                3,
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Reconnect:            &scenario.Reconnect{MaxAttempts: 60, DelayMS: 5, MaxDelayMS: 50},
		},
		Workload:            scenario.Workload{Name: "Dstream", PayloadBytes: 8192},
		Pattern:             "work-sharing",
		Producers:           producers,
		Consumers:           consumers,
		MessagesPerProducer: messages,
		// Fire the flap once roughly half the payload traffic has crossed
		// the faulted path: deterministically mid-run.
		Faults:    []scenario.Fault{{Kind: scenario.FaultFlap, AtFraction: 0.5, DownMS: 80}},
		TimeoutMS: (60 * time.Second).Milliseconds(),
	}
}

// resilienceArchitectures are the variants exercised under faults.
// Stunnel is excluded (its ceiling dominates; §5.4 drops it as well).
var resilienceArchitectures = []core.ArchitectureName{core.DTS, core.PRSHAProxy, core.MSS}

// TestResilienceWorkSharingAcrossLinkFlap is the acceptance scenario: a
// work-sharing run whose facility-spanning path flaps mid-run — every
// live client connection reset and redials refused for the outage
// window — must still complete, with clients reconnecting and replaying
// unconfirmed publishes.
func TestResilienceWorkSharingAcrossLinkFlap(t *testing.T) {
	archs := resilienceArchitectures
	if testing.Short() {
		archs = archs[:1]
	}
	for _, arch := range archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			const producers, consumers, messages = 2, 2, 16
			before := metrics.Default.Snapshot()
			rep, err := scenario.Run(context.Background(), resilienceSpec(arch, producers, consumers, messages))
			if err != nil {
				t.Fatalf("run did not survive the flap: %v", err)
			}
			want := int64(producers * messages)
			if rep.Result.Consumed < want {
				t.Fatalf("consumed %d < %d", rep.Result.Consumed, want)
			}
			if rep.Faults.Flaps == 0 {
				t.Fatal("scripted flap never fired")
			}
			d := metrics.Delta(before, metrics.Default.Snapshot())
			if d["amqp.reconnects"] == 0 {
				t.Fatal("no client reconnected across the flap")
			}
		})
	}
}

// TestResilienceMidStreamResets injects bare connection resets (no dial
// outage): reconnects should be immediate and the run must complete. The
// resets are triggered manually mid-run (not a byte-armed script), so this
// test drives the injector and pattern engine directly.
func TestResilienceMidStreamResets(t *testing.T) {
	inj := transport.NewInjector()
	dep, err := core.Deploy(core.DTS, resilienceOptions(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	const producers, consumers, messages = 2, 2, 12
	w := resilienceWorkload()
	done := make(chan struct{})
	go func() {
		// Two reset rounds spread across the run.
		for i := 0; i < 2; i++ {
			select {
			case <-done:
				return
			case <-time.After(30 * time.Millisecond):
				inj.ResetConns()
			}
		}
	}()
	res, err := pattern.Run(context.Background(), "work-sharing", pattern.Config{
		Deployment:          dep,
		Workload:            w,
		Producers:           producers,
		Consumers:           consumers,
		MessagesPerProducer: messages,
		Timeout:             60 * time.Second,
	})
	close(done)
	if err != nil {
		t.Fatalf("run did not survive resets: %v", err)
	}
	if want := int64(producers * messages); res.Consumed < want {
		t.Fatalf("consumed %d < %d", res.Consumed, want)
	}
}

// BenchmarkResilienceFaultRate sweeps fault rate × architecture: flaps
// per run from 0 (baseline) to 2, reporting throughput alongside the
// reconnects each run needed. This is the resilience counterpart of the
// Figure 4 throughput comparison, driven entirely by declarative specs.
func BenchmarkResilienceFaultRate(b *testing.B) {
	const producers, consumers, messages = 2, 2, 16
	for _, arch := range resilienceArchitectures {
		for _, flaps := range []int{0, 1, 2} {
			b.Run(fmt.Sprintf("%s/flaps=%d", arch, flaps), func(b *testing.B) {
				spec := resilienceSpec(arch, producers, consumers, messages)
				spec.Faults = nil
				if flaps > 0 {
					spec.Faults = []scenario.Fault{{
						Kind:          scenario.FaultFlapEvery,
						EveryFraction: 1 / float64(flaps+1),
						Count:         flaps,
						DownMS:        50,
					}}
				}
				var reconnects uint64
				var last float64
				for i := 0; i < b.N; i++ {
					before := metrics.Default.Snapshot()
					rep, err := scenario.Run(context.Background(), spec)
					if err != nil {
						b.Fatal(err)
					}
					last = rep.Result.Throughput
					d := metrics.Delta(before, metrics.Default.Snapshot())
					reconnects += d["amqp.reconnects"]
				}
				b.ReportMetric(last, "msgs_per_sec")
				b.ReportMetric(float64(reconnects)/float64(b.N), "reconnects/op")
			})
		}
	}
}
