package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"ds2hpc/internal/metrics"
)

// The coordinator mirrors the component described in §5.2: "it informs
// producers and consumers about which queues to use [and] collects metrics
// from individual consumers/producers and reports the aggregate results".
// Remote producers/consumers (separate streamsim processes) speak a
// JSON-lines protocol over TCP.

// HelloMsg registers a participant with the coordinator.
type HelloMsg struct {
	Role string `json:"role"` // "producer" or "consumer"
	ID   int    `json:"id"`
}

// AssignMsg tells a participant what to do.
type AssignMsg struct {
	Queue    string `json:"queue"`
	ReplyTo  string `json:"reply_to,omitempty"`
	Endpoint string `json:"endpoint"` // AMQP URL
	Messages int    `json:"messages"`
	Err      string `json:"err,omitempty"`
}

// ReportMsg carries a participant's metrics back to the coordinator.
type ReportMsg struct {
	Role     string  `json:"role"`
	ID       int     `json:"id"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	RTTNanos []int64 `json:"rtt_nanos,omitempty"`
}

// Coordinator runs the control endpoint of a distributed simulation.
type Coordinator struct {
	ln net.Listener

	mu          sync.Mutex
	readTimeout time.Duration
	assign      func(h HelloMsg) AssignMsg
	col         *metrics.Collector
	reports     int
	expected    int
	done        chan struct{}
	once        sync.Once
	stopOnce    sync.Once
}

// SetReadTimeout bounds each read from a participant (hello and report).
// A hung streamsim process then drops its connection instead of pinning a
// serve goroutine forever; Wait still decides the overall run deadline.
// The default is 60s.
func (c *Coordinator) SetReadTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readTimeout = d
}

func (c *Coordinator) readTimeoutNow() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readTimeout
}

// NewCoordinator starts a coordinator that assigns work via the given
// function and waits for `expected` participant reports.
func NewCoordinator(addr string, expected int, assign func(h HelloMsg) AssignMsg) (*Coordinator, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		ln:          ln,
		readTimeout: 60 * time.Second,
		assign:      assign,
		col:         metrics.NewCollector(),
		expected:    expected,
		done:        make(chan struct{}),
	}
	c.col.Start()
	go c.acceptLoop()
	return c, nil
}

// Addr is the coordinator's control address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the coordinator.
func (c *Coordinator) Close() error { return c.ln.Close() }

// Wait blocks until all expected reports arrive, then returns the
// aggregate result. On timeout the metrics collector is stopped as well,
// so an aborted run does not leave it marking time (and a later Snapshot
// reflects the abort moment, not some arbitrary later instant).
func (c *Coordinator) Wait(timeout time.Duration) (*metrics.Result, error) {
	select {
	case <-c.done:
		c.stopOnce.Do(c.col.Stop)
		return c.col.Snapshot(), nil
	case <-time.After(timeout):
		c.stopOnce.Do(c.col.Stop)
		return nil, fmt.Errorf("sim: coordinator timed out with %d/%d reports",
			c.reportCount(), c.expected)
	}
}

func (c *Coordinator) reportCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.serve(conn)
	}
}

func (c *Coordinator) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	var hello HelloMsg
	conn.SetReadDeadline(time.Now().Add(c.readTimeoutNow()))
	line, err := br.ReadBytes('\n')
	if err != nil {
		return
	}
	if err := json.Unmarshal(line, &hello); err != nil {
		enc.Encode(AssignMsg{Err: err.Error()})
		return
	}
	if err := enc.Encode(c.assign(hello)); err != nil {
		return
	}
	// The participant runs, then sends its report on the same connection.
	// The fresh deadline covers the run itself.
	conn.SetReadDeadline(time.Now().Add(c.readTimeoutNow()))
	line, err = br.ReadBytes('\n')
	if err != nil {
		return
	}
	var report ReportMsg
	if err := json.Unmarshal(line, &report); err != nil {
		return
	}
	c.mu.Lock()
	if report.Role == "consumer" {
		c.col.AddConsumed(report.Count)
	} else {
		c.col.AddProduced(report.Count)
	}
	for i := int64(0); i < report.Errors; i++ {
		c.col.AddError()
	}
	for _, ns := range report.RTTNanos {
		c.col.AddRTT(time.Duration(ns))
	}
	c.reports++
	finished := c.reports >= c.expected
	c.mu.Unlock()
	if finished {
		c.once.Do(func() { close(c.done) })
	}
}

// Participant is the client side of the coordinator protocol.
type Participant struct {
	conn net.Conn
	br   *bufio.Reader
	enc  *json.Encoder
}

// Join connects to a coordinator and registers, returning the assignment.
func Join(coordAddr string, hello HelloMsg) (*Participant, AssignMsg, error) {
	conn, err := net.DialTimeout("tcp", coordAddr, 10*time.Second)
	if err != nil {
		return nil, AssignMsg{}, err
	}
	p := &Participant{conn: conn, br: bufio.NewReader(conn), enc: json.NewEncoder(conn)}
	if err := p.enc.Encode(hello); err != nil {
		conn.Close()
		return nil, AssignMsg{}, err
	}
	line, err := p.br.ReadBytes('\n')
	if err != nil {
		conn.Close()
		return nil, AssignMsg{}, err
	}
	var assign AssignMsg
	if err := json.Unmarshal(line, &assign); err != nil {
		conn.Close()
		return nil, AssignMsg{}, err
	}
	if assign.Err != "" {
		conn.Close()
		return nil, AssignMsg{}, fmt.Errorf("sim: coordinator refused: %s", assign.Err)
	}
	return p, assign, nil
}

// Report sends the participant's metrics and closes the connection.
func (p *Participant) Report(r ReportMsg) error {
	defer p.conn.Close()
	return p.enc.Encode(r)
}
