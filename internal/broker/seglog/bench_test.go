package seglog

import (
	"fmt"
	"testing"

	"ds2hpc/internal/wire"
)

// BenchmarkSeglogAppend measures the raw segment-log append path —
// CRC-framed record encode into the buffered writer, no fsync — at the
// payload sizes the broker actually spills (the Dstream detector frames
// and their divided-down test variants). This is the incremental cost a
// durable queue pays per publish before any policy knob is turned.
func BenchmarkSeglogAppend(b *testing.B) {
	for _, size := range []int{512, 4096, 65536} {
		b.Run(fmt.Sprintf("body=%d", size), func(b *testing.B) {
			l, _, err := Open(b.TempDir(), Options{Fsync: FsyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Crash()
			body := make([]byte, size)
			props := &wire.Properties{DeliveryMode: 2}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append("", "bench-q", props, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeglogReplay measures sequential replay throughput: a reader
// attached at offset 0 scanning a fully retained log, the cold-consumer
// catch-up path. Decode cost (header parse, CRC verify, body copy into a
// caller-owned buffer) bounds how fast a late consumer can drain history.
func BenchmarkSeglogReplay(b *testing.B) {
	const size = 4096
	l, _, err := Open(b.TempDir(), Options{Fsync: FsyncNever, RetainAll: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Crash()
	body := make([]byte, size)
	props := &wire.Properties{DeliveryMode: 2}
	for i := 0; i < b.N; i++ {
		if _, err := l.Append("", "bench-q", props, body); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	r := l.NewReader(0)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(stop); err != nil {
			b.Fatal(err)
		}
	}
}
