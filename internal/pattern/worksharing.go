package pattern

import (
	"fmt"

	"ds2hpc/internal/amqp"
)

// WorkSharingName is the work-sharing pattern (§5.3): producers publish
// into shared work queues and messages are distributed nearly evenly
// across the consumers. Aggregate consumer throughput is the metric.
const WorkSharingName = "work-sharing"

func init() {
	Register(&Graph{Name: WorkSharingName, Build: buildWorkSharing})
}

func buildWorkSharing(cfg *Config) (*Topology, error) {
	queues := make([]string, cfg.WorkQueues)
	decls := make([]Declarations, cfg.WorkQueues)
	for i := range queues {
		queues[i] = fmt.Sprintf("ws-q-%d", i)
		decls[i] = Declarations{
			Anchor: queues[i],
			Queues: []QueueDecl{{Name: queues[i]}},
		}
	}
	return &Topology{
		Declare: decls,
		Producer: ProducerRole{
			Name: "prod",
			Mode: FlowConfirm,
			Legs: func(p int) []Leg { return []Leg{{Key: queues[p%len(queues)]}} },
			Props: func(p int, seq uint64) amqp.Publishing {
				return amqp.Publishing{
					MessageID: fmt.Sprintf("p%d-m%d", p, seq),
					AppID:     "streamsim",
				}
			},
		},
		Consumers: []ConsumerRole{{
			Name:   "cons",
			Queue:  func(i int) string { return queues[i%len(queues)] },
			Counts: true,
		}},
		WaitConsumed: int64(cfg.Producers) * int64(cfg.MessagesPerProducer),
	}, nil
}
