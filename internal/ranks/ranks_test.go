package ranks

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllRanks(t *testing.T) {
	g := NewGroup(8)
	var count atomic.Int32
	seen := make([]bool, 8)
	err := g.Run(func(r *Rank) error {
		count.Add(1)
		seen[r.ID()] = true
		if r.Size() != 8 {
			return errors.New("bad size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
	for i, s := range seen {
		if !s {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	g := NewGroup(4)
	err := g.Run(func(r *Rank) error {
		if r.ID() == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	g := NewGroup(4)
	var before, after atomic.Int32
	err := g.Run(func(r *Rank) error {
		if r.ID() == 0 {
			time.Sleep(50 * time.Millisecond)
		}
		before.Add(1)
		r.Barrier()
		// At this point every rank must have passed "before".
		if before.Load() != 4 {
			return fmt.Errorf("rank %d passed barrier with before=%d", r.ID(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	g := NewGroup(3)
	err := g.Run(func(r *Rank) error {
		for i := 0; i < 50; i++ {
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastDeliversRootData(t *testing.T) {
	g := NewGroup(5)
	payload := []byte("model weights shard")
	err := g.Run(func(r *Rank) error {
		var mine []byte
		if r.ID() == 2 {
			mine = payload
		}
		got := r.Broadcast(2, mine)
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d got %q", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSequential(t *testing.T) {
	g := NewGroup(3)
	err := g.Run(func(r *Rank) error {
		for i := 0; i < 20; i++ {
			want := []byte(fmt.Sprintf("iter-%d", i))
			var mine []byte
			if r.ID() == 0 {
				mine = want
			}
			got := r.Broadcast(0, mine)
			if !bytes.Equal(got, want) {
				return fmt.Errorf("rank %d iter %d got %q", r.ID(), i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCollectsAtRoot(t *testing.T) {
	g := NewGroup(6)
	err := g.Run(func(r *Rank) error {
		data := []byte(fmt.Sprintf("metrics-from-%d", r.ID()))
		got := r.Gather(0, data)
		if r.ID() == 0 {
			if len(got) != 6 {
				return fmt.Errorf("root gathered %d", len(got))
			}
			for i, b := range got {
				want := fmt.Sprintf("metrics-from-%d", i)
				if string(b) != want {
					return fmt.Errorf("slot %d = %q", i, b)
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root rank %d got data", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherSequentialEpochs(t *testing.T) {
	g := NewGroup(4)
	err := g.Run(func(r *Rank) error {
		for i := 0; i < 25; i++ {
			got := r.Gather(1, []byte{byte(r.ID()), byte(i)})
			if r.ID() == 1 {
				for j, b := range got {
					if int(b[0]) != j || int(b[1]) != i {
						return fmt.Errorf("epoch %d slot %d corrupt", i, j)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewGroupPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroup(0)
}
