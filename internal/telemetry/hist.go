package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram is log-linear (HdrHistogram-style): values below
// 2^histSubBits land in unit-width linear buckets; every power-of-two
// range above that is split into histSubBuckets equal sub-buckets. The
// relative bucket width is therefore at most 1/histSubBuckets (~3%),
// and the whole int64 range fits in a fixed array — bounded memory no
// matter how many samples are recorded.
// histRegions counts the linear region plus one region per exponent
// from histSubBits to 62 (int64 values never set bit 63), so the last
// bucket's upper bound is exactly math.MaxInt64.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	histRegions    = 64 - histSubBits
	histBucketLen  = histSubBuckets * histRegions
)

// Histogram is a lock-free streaming histogram of non-negative int64
// values (nanoseconds, bytes). Record is two atomic adds; Snapshot
// freezes the buckets into a mergeable, queryable HistSnapshot. The
// zero value is ready to use.
type Histogram struct {
	buckets [histBucketLen]atomic.Int64
	sum     atomic.Int64
}

// bucketIdx maps a value to its bucket.
func bucketIdx(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	mant := int(u>>(uint(exp)-histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits+1)<<histSubBits + mant
}

// bucketUpper returns the largest value that maps to bucket idx.
func bucketUpper(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	region := idx >> histSubBits
	exp := uint(region + histSubBits - 1)
	mant := int64(idx & (histSubBuckets - 1))
	low := int64(1)<<exp + mant<<(exp-histSubBits)
	width := int64(1) << (exp - histSubBits)
	return low + width - 1
}

// BucketWidth reports the width of the bucket containing v — the
// histogram's resolution at that magnitude, and the error bound of
// quantiles extracted near it.
func BucketWidth(v int64) int64 {
	idx := bucketIdx(v)
	if idx < histSubBuckets {
		return 1
	}
	exp := uint(idx>>histSubBits + histSubBits - 1)
	return int64(1) << (exp - histSubBits)
}

// Record adds one sample. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot freezes the histogram into a sparse, queryable snapshot.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
			s.Count += n
		}
	}
	s.Sum = h.sum.Load()
	return s
}

// Bucket is one non-empty histogram bucket: Count samples at or below
// Upper (and above the previous bucket's Upper).
type Bucket struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistSnapshot is a frozen histogram: sparse non-cumulative buckets in
// ascending order plus sample count and sum. It is JSON-serializable
// and mergeable, and all distribution queries (quantiles, CDF) read
// from it.
type HistSnapshot struct {
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
}

// Merge pools other's buckets into s (bucket boundaries are shared by
// construction, so merging is exact).
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil || other.Count == 0 {
		return
	}
	merged := make([]Bucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Upper < other.Buckets[j].Upper):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Upper < s.Buckets[i].Upper:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, Bucket{Upper: s.Buckets[i].Upper, Count: s.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns the p-th percentile (p in [0,100]) as the upper
// bound of the bucket holding the nearest-rank sample — within one
// bucket width above the exact order statistic. Zero when empty.
func (s *HistSnapshot) Quantile(p float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// Max returns the upper bound of the highest non-empty bucket.
func (s *HistSnapshot) Max() int64 {
	if s == nil || len(s.Buckets) == 0 {
		return 0
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// Mean returns the exact sample mean (the sum is tracked exactly).
func (s *HistSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// FractionAtOrBelow reports the fraction of samples whose bucket lies
// entirely at or below v (conservative: the bucket straddling v is
// excluded).
func (s *HistSnapshot) FractionAtOrBelow(v int64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	var cum int64
	for _, b := range s.Buckets {
		if b.Upper > v {
			break
		}
		cum += b.Count
	}
	return float64(cum) / float64(s.Count)
}

// CDFPoint is one point of an empirical CDF read from the buckets.
type CDFPoint struct {
	V int64   // bucket upper bound
	P float64 // cumulative probability in (0, 1]
}

// CDF returns up to points evenly rank-spaced CDF points, ending at
// P=1. Mirrors the sorted-slice CDF the figures were originally
// derived from, but reads bucket boundaries instead of raw samples.
func (s *HistSnapshot) CDF(points int) []CDFPoint {
	if s == nil || s.Count == 0 || points <= 0 {
		return nil
	}
	if int64(points) > s.Count {
		points = int(s.Count)
	}
	out := make([]CDFPoint, 0, points)
	bi, cum := 0, int64(0)
	for i := 1; i <= points; i++ {
		rank := int64(i) * s.Count / int64(points)
		for bi < len(s.Buckets) && cum+s.Buckets[bi].Count < rank {
			cum += s.Buckets[bi].Count
			bi++
		}
		b := s.Buckets[min(bi, len(s.Buckets)-1)]
		cumAt := cum + b.Count
		out = append(out, CDFPoint{V: b.Upper, P: float64(cumAt) / float64(s.Count)})
	}
	return out
}
