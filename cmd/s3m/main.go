// Command s3m runs the Managed Service Streaming front door: route
// controller, ingress controller, TLS-terminating load balancer, and the
// S3M provisioning API from the paper's §4.5. Clients provision a broker
// cluster with a POST (exactly the curl shown in the paper) and then dial
// the returned FQDN through the load balancer.
//
// Usage:
//
//	s3m [-api 127.0.0.1:8443] [-token TOKEN] [-workers 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ds2hpc/internal/mss"
	"ds2hpc/internal/tlsutil"
)

func main() {
	var (
		apiAddr = flag.String("api", "127.0.0.1:0", "S3M API listen address")
		lbAddr  = flag.String("lb", "127.0.0.1:0", "load balancer listen address")
		token   = flag.String("token", "TOKEN", "authorization token for the API")
		workers = flag.Int("workers", 16, "LB connection-setup worker pool size")
	)
	flag.Parse()

	routes := mss.NewRouteController()
	ingress, err := mss.NewIngress(mss.IngressConfig{Routes: routes})
	if err != nil {
		die(err)
	}
	defer ingress.Close()

	id, err := tlsutil.SelfSigned("mss-lb", "127.0.0.1", "*.apps.olivine.local")
	if err != nil {
		die(err)
	}
	lb, err := mss.NewLoadBalancer(mss.LBConfig{
		Addr:        *lbAddr,
		Identity:    id,
		IngressAddr: ingress.Addr(),
		Workers:     *workers,
	})
	if err != nil {
		die(err)
	}
	defer lb.Close()
	if err := os.WriteFile("mss-lb-ca.pem", id.CertPEM, 0o644); err == nil {
		fmt.Println("wrote mss-lb-ca.pem (client trust root)")
	}

	api, err := mss.NewS3M(mss.S3MConfig{
		Addr:   *apiAddr,
		Token:  *token,
		Routes: routes,
		LBAddr: lb.Addr(),
	})
	if err != nil {
		die(err)
	}
	defer api.Close()

	fmt.Printf("S3M API:       http://%s\n", api.Addr())
	fmt.Printf("load balancer: %s (TLS, SNI-routed)\n", lb.Addr())
	fmt.Printf("ingress:       %s\n", ingress.Addr())
	fmt.Println()
	fmt.Println("provision a cluster with:")
	fmt.Printf(`  curl -X POST "http://%s/olcf/v1alpha/streaming/rabbitmq/provision_cluster" \
    -H "Authorization: %s" -H "Content-Type: application/json" \
    -d '{"kind":"general","name":"rabbitmq","resourceSettings":{"cpus":12,"ram-gbs":32,"nodes":3,"max-msg-size":536870912}}'
`, api.Addr(), *token)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "s3m:", err)
	os.Exit(1)
}
