package broker_test

// Protocol-level tests drive the broker with raw frames rather than the
// client library, checking the negotiation sequence and the broker's
// behaviour under protocol violations.

import (
	"net"
	"testing"
	"time"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/wire"
)

func rawConn(t *testing.T) (net.Conn, *wire.FrameReader, *broker.Server) {
	t.Helper()
	s, err := broker.Listen(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := net.DialTimeout("tcp", s.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	return c, wire.NewFrameReader(c, 0), s
}

func sendMethod(t *testing.T, c net.Conn, channel uint16, m wire.Method) {
	t.Helper()
	payload, err := wire.EncodeMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, wire.Frame{Type: wire.FrameMethod, Channel: channel, Payload: payload}); err != nil {
		t.Fatal(err)
	}
}

func readMethod(t *testing.T, fr *wire.FrameReader) wire.Method {
	t.Helper()
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if f.Type == wire.FrameHeartbeat {
			continue
		}
		m, err := wire.ParseMethod(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
}

// handshake completes the negotiation and returns the ready connection.
func handshake(t *testing.T) (net.Conn, *wire.FrameReader) {
	t.Helper()
	c, fr, _ := rawConn(t)
	if err := wire.WriteProtocolHeader(c); err != nil {
		t.Fatal(err)
	}
	start, ok := readMethod(t, fr).(*wire.ConnectionStart)
	if !ok {
		t.Fatal("expected connection.start")
	}
	if start.VersionMajor != 0 || start.VersionMinor != 9 {
		t.Fatalf("version %d.%d", start.VersionMajor, start.VersionMinor)
	}
	if start.ServerProperties.String("product", "") != "ds2hpc-broker" {
		t.Fatalf("server properties %v", start.ServerProperties)
	}
	sendMethod(t, c, 0, &wire.ConnectionStartOk{Mechanism: "PLAIN", Locale: "en_US"})
	tune, ok := readMethod(t, fr).(*wire.ConnectionTune)
	if !ok {
		t.Fatal("expected connection.tune")
	}
	sendMethod(t, c, 0, &wire.ConnectionTuneOk{
		ChannelMax: tune.ChannelMax, FrameMax: tune.FrameMax,
	})
	sendMethod(t, c, 0, &wire.ConnectionOpen{VirtualHost: "/"})
	if _, ok := readMethod(t, fr).(*wire.ConnectionOpenOk); !ok {
		t.Fatal("expected connection.open-ok")
	}
	return c, fr
}

func TestHandshakeSequence(t *testing.T) {
	c, fr := handshake(t)
	sendMethod(t, c, 1, &wire.ChannelOpen{})
	if _, ok := readMethod(t, fr).(*wire.ChannelOpenOk); !ok {
		t.Fatal("expected channel.open-ok")
	}
}

func TestBadProtocolHeaderDropsConnection(t *testing.T) {
	c, fr, _ := rawConn(t)
	if _, err := c.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("broker answered a non-AMQP client")
	}
}

func TestMethodOnUnopenedChannelFailsConnection(t *testing.T) {
	c, fr := handshake(t)
	// queue.declare on channel 5 without channel.open is a hard error.
	sendMethod(t, c, 5, &wire.QueueDeclare{Queue: "x"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return // connection torn down, as expected
		}
		if f.Type == wire.FrameHeartbeat {
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("broker kept the connection alive after the violation")
		}
	}
}

func TestOrderlyConnectionClose(t *testing.T) {
	c, fr := handshake(t)
	sendMethod(t, c, 0, &wire.ConnectionClose{ReplyCode: wire.ReplySuccess, ReplyText: "done"})
	if _, ok := readMethod(t, fr).(*wire.ConnectionCloseOk); !ok {
		t.Fatal("expected connection.close-ok")
	}
}

func TestPublishViaRawFrames(t *testing.T) {
	c, fr := handshake(t)
	sendMethod(t, c, 1, &wire.ChannelOpen{})
	readMethod(t, fr) // open-ok
	sendMethod(t, c, 1, &wire.QueueDeclare{Queue: "raw-q"})
	readMethod(t, fr) // declare-ok

	// Publish = method + header + body frames.
	sendMethod(t, c, 1, &wire.BasicPublish{RoutingKey: "raw-q"})
	body := []byte("raw frame publish")
	header, err := wire.EncodeContentHeader(&wire.ContentHeader{
		ClassID: wire.ClassBasic, BodySize: uint64(len(body)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, wire.Frame{Type: wire.FrameHeader, Channel: 1, Payload: header}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, wire.Frame{Type: wire.FrameBody, Channel: 1, Payload: body}); err != nil {
		t.Fatal(err)
	}

	// Fetch it back with basic.get.
	sendMethod(t, c, 1, &wire.BasicGet{Queue: "raw-q", NoAck: true})
	if _, ok := readMethod(t, fr).(*wire.BasicGetOk); !ok {
		t.Fatal("expected get-ok")
	}
	f, err := fr.ReadFrame()
	if err != nil || f.Type != wire.FrameHeader {
		t.Fatalf("expected header frame, got type %d err %v", f.Type, err)
	}
	f, err = fr.ReadFrame()
	if err != nil || f.Type != wire.FrameBody {
		t.Fatalf("expected body frame, got type %d err %v", f.Type, err)
	}
	if string(f.Payload) != string(body) {
		t.Fatalf("body %q", f.Payload)
	}
}

func TestBodyWithoutHeaderIsViolation(t *testing.T) {
	c, fr := handshake(t)
	sendMethod(t, c, 1, &wire.ChannelOpen{})
	readMethod(t, fr)
	// A body frame with no preceding publish/header must kill the
	// connection (frame sequencing violation).
	if err := wire.WriteFrame(c, wire.Frame{Type: wire.FrameBody, Channel: 1, Payload: []byte("orphan")}); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return // dropped, as expected
		}
		if f.Type == wire.FrameHeartbeat {
			continue
		}
	}
}
