// Deterministic test wrappers around the paper-figure benchmark harness.
// Every Benchmark* scenario in bench_test.go has a short single-iteration
// Test* counterpart here, so `go test ./...` exercises the full
// publish→route→deliver plumbing behind each figure (architectures,
// patterns, workloads, ablation knobs) and guards it against regressions.
//
// Budgets are deliberately small — a handful of messages and two consumers
// per point — so the whole suite stays well under a minute; `-short` trims
// the architecture sweeps to the DTS baseline.
package ds2hpc

import (
	"testing"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/sim"
	"ds2hpc/internal/workload"
)

// testMessages is the per-producer message budget of one test data point.
const testMessages = 4

// testConsumers is the consumer (and, outside broadcast, producer) count.
const testConsumers = 2

// testExperiment shrinks a benchmark experiment to test size.
func testExperiment(arch core.ArchitectureName, w workload.Workload, pat sim.PatternName, consumers int) sim.Experiment {
	exp := baseExperiment(arch, w, pat, consumers)
	exp.MessagesPerProducer = testMessages
	exp.Timeout = 30 * time.Second
	return exp
}

// testPoint runs one data point, failing the test on error and skipping
// configurations the architecture cannot run (the paper's missing points).
func testPoint(t *testing.T, exp sim.Experiment) *metrics.Result {
	t.Helper()
	pt, err := sim.Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Infeasible {
		t.Skip("infeasible for this architecture (paper: no data point)")
	}
	r := pt.Result
	if r.Consumed == 0 {
		t.Fatal("no messages consumed")
	}
	if r.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
	return r
}

// shortArchs trims an architecture sweep to its first entry (the DTS
// baseline) under -short.
func shortArchs(archs []core.ArchitectureName) []core.ArchitectureName {
	if testing.Short() {
		return archs[:1]
	}
	return archs
}

// --------------------------------------------------------------- Table 1

func TestTable1Workloads(t *testing.T) {
	for _, w := range workload.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			gen := workload.NewGenerator(w, 0)
			for seq := uint64(0); seq < 2; seq++ {
				body, err := gen.Payload(seq)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(body); err != nil {
					t.Fatalf("payload %d: %v", seq, err)
				}
			}
		})
	}
}

// --------------------------------------------------------------- Figure 4

func testWorkSharing(t *testing.T, w workload.Workload) {
	for _, arch := range shortArchs(core.AllArchitectures) {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, w, sim.PatternWorkSharing, testConsumers))
			want := int64(testConsumers * testMessages)
			if res.Consumed != want {
				t.Fatalf("consumed %d, want %d", res.Consumed, want)
			}
		})
	}
}

func TestFig4aDstreamWorkSharing(t *testing.T) { testWorkSharing(t, workload.Dstream) }

func TestFig4bLstreamWorkSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("Lstream sweep covered by Fig6b in short mode")
	}
	testWorkSharing(t, workload.Lstream)
}

// --------------------------------------------------------------- Figure 5

func TestFig5RTTCDF(t *testing.T) {
	for _, arch := range shortArchs(fig56Architectures) {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, workload.Dstream, sim.PatternFeedback, testConsumers))
			want := testConsumers * testMessages
			if len(res.RTTs) != want {
				t.Fatalf("RTT samples = %d, want %d", len(res.RTTs), want)
			}
			cdf := res.CDF(4)
			if len(cdf) == 0 {
				t.Fatal("empty CDF")
			}
			for i := 1; i < len(cdf); i++ {
				if cdf[i].P < cdf[i-1].P || cdf[i].RTT < cdf[i-1].RTT {
					t.Fatalf("CDF not monotonic at %d: %+v", i, cdf)
				}
			}
			if last := cdf[len(cdf)-1].P; last != 1 {
				t.Fatalf("CDF must end at 1, got %v", last)
			}
		})
	}
}

// --------------------------------------------------------------- Figure 6

func testFeedback(t *testing.T, w workload.Workload) {
	for _, arch := range shortArchs(fig56Architectures) {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, w, sim.PatternFeedback, testConsumers))
			if res.MedianRTT() <= 0 {
				t.Fatal("median RTT must be positive")
			}
			if res.PercentileRTT(99) < res.MedianRTT() {
				t.Fatal("p99 < median")
			}
		})
	}
}

func TestFig6aDstreamFeedbackRTT(t *testing.T) { testFeedback(t, workload.Dstream) }

func TestFig6bLstreamFeedbackRTT(t *testing.T) { testFeedback(t, workload.Lstream) }

// --------------------------------------------------------------- Figure 7

func TestFig7aBroadcastThroughput(t *testing.T) {
	for _, arch := range shortArchs(fig78Architectures) {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, workload.Generic, sim.PatternBroadcast, testConsumers))
			// Every consumer receives every broadcast message.
			want := int64(testConsumers * testMessages)
			if res.Consumed != want {
				t.Fatalf("consumed %d, want %d", res.Consumed, want)
			}
		})
	}
}

func TestFig7bBroadcastGatherRTT(t *testing.T) {
	for _, arch := range shortArchs(fig78Architectures) {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, workload.Generic, sim.PatternBroadcastGather, testConsumers))
			// One gathered reply (and one RTT sample) per consumer per msg.
			want := testConsumers * testMessages
			if len(res.RTTs) != want {
				t.Fatalf("RTT samples = %d, want %d", len(res.RTTs), want)
			}
		})
	}
}

// --------------------------------------------------------------- Figure 8

func TestFig8BroadcastGatherCDF(t *testing.T) {
	res := testPoint(t, testExperiment(core.DTS, workload.Generic, sim.PatternBroadcastGather, testConsumers))
	if res.FractionUnder(res.PercentileRTT(80)) < 0.75 {
		t.Fatalf("p80 fraction inconsistent: %v", res.FractionUnder(res.PercentileRTT(80)))
	}
}

// --------------------------------------------------------------- ablations

func TestAblationWorkQueues(t *testing.T) {
	for _, queues := range []int{1, 2} {
		queues := queues
		t.Run("queues="+itoa(queues), func(t *testing.T) {
			exp := testExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, testConsumers)
			exp.WorkQueues = queues
			res := testPoint(t, exp)
			if want := int64(testConsumers * testMessages); res.Consumed != want {
				t.Fatalf("consumed %d, want %d", res.Consumed, want)
			}
		})
	}
}

func TestAblationAckBatching(t *testing.T) {
	for _, batch := range []int{1, 4} {
		batch := batch
		t.Run("ackbatch="+itoa(batch), func(t *testing.T) {
			exp := testExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, testConsumers)
			exp.AckBatch = batch
			exp.Prefetch = 2 * batch
			res := testPoint(t, exp)
			if want := int64(testConsumers * testMessages); res.Consumed != want {
				t.Fatalf("consumed %d, want %d", res.Consumed, want)
			}
		})
	}
}

func TestAblationPrefetch(t *testing.T) {
	for _, prefetch := range []int{1, 8} {
		prefetch := prefetch
		t.Run("prefetch="+itoa(prefetch), func(t *testing.T) {
			exp := testExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, testConsumers)
			exp.Prefetch = prefetch
			testPoint(t, exp)
		})
	}
}

func TestAblationMSSBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("MSS deploys are the slowest; skipped under -short")
	}
	for _, bypass := range []bool{false, true} {
		bypass := bypass
		name := "front-door"
		if bypass {
			name = "bypass-lb"
		}
		t.Run(name, func(t *testing.T) {
			exp := testExperiment(core.MSS, workload.Dstream, sim.PatternWorkSharing, testConsumers)
			exp.Options.BypassLB = bypass
			testPoint(t, exp)
		})
	}
}

func TestOverheadVsDTS(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-architecture comparison skipped under -short")
	}
	base := testPoint(t, testExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, testConsumers))
	for _, arch := range []core.ArchitectureName{core.PRSHAProxy, core.MSS} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			res := testPoint(t, testExperiment(arch, workload.Dstream, sim.PatternWorkSharing, testConsumers))
			ov := metrics.Overhead(base.Throughput, res.Throughput)
			if ov <= 0 {
				t.Fatalf("overhead %v must be positive", ov)
			}
		})
	}
}

// TestHotPathCounters locks in that one experiment moves the tentpole's
// wire/broker instrumentation: buffers recycle through the pool, frame
// writes coalesce, and deliveries batch.
func TestHotPathCounters(t *testing.T) {
	before := metrics.Default.Snapshot()
	testPoint(t, testExperiment(core.DTS, workload.Dstream, sim.PatternWorkSharing, testConsumers))
	d := metrics.Delta(before, metrics.Default.Snapshot())
	if d["wire.bufpool_hits"] == 0 {
		t.Error("buffer pool recorded no hits")
	}
	if d["wire.coalesced_writes"] == 0 {
		t.Error("no coalesced frame writes recorded")
	}
	if d["wire.frames_coalesced"] == 0 {
		t.Error("no frames coalesced into shared writes")
	}
	if d["broker.delivery_batches"] == 0 {
		t.Error("no delivery batches recorded")
	}
}
