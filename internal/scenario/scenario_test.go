package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/telemetry/forwarder"
)

// goldenSpec is the in-memory form of testdata/spec_golden.json: every
// field of the Spec exercised, including the fault script.
func goldenSpec() Spec {
	return Spec{
		Name: "golden-full",
		Deployment: Deployment{
			Architecture:         "PRS(HAProxy)",
			Nodes:                3,
			FabricScale:          0.2,
			MemoryLimitBytes:     1 << 30,
			DisableClientShaping: true,
			FastControlPlane:     true,
			BypassLB:             true,
			Reconnect:            &Reconnect{MaxAttempts: 60, DelayMS: 5, MaxDelayMS: 50},
		},
		Workload:            Workload{Name: "Dstream", PayloadDivisor: 8, PayloadBytes: 8192},
		Pattern:             "work-sharing",
		Producers:           4,
		Consumers:           8,
		MessagesPerProducer: 64,
		Runs:                3,
		Tuning: Tuning{
			WorkQueues: 2,
			Prefetch:   8,
			AckBatch:   4,
			Window:     4,
			QueueBytes: 32 << 20,
		},
		Faults: []Fault{
			{Kind: FaultFlap, AtFraction: 0.5, DownMS: 80},
			{Kind: FaultLatencySpike, LatencyMS: 2},
		},
		TimeoutMS: 60000,
	}
}

// TestSpecGoldenDecode pins the wire format: the checked-in golden file
// must decode (strictly, no unknown fields) into exactly goldenSpec.
func TestSpecGoldenDecode(t *testing.T) {
	data, err := os.ReadFile("testdata/spec_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if want := goldenSpec(); !reflect.DeepEqual(got, want) {
		t.Fatalf("golden decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("golden spec must validate: %v", err)
	}
}

// TestSpecGoldenEncode pins the encoder side: marshaling goldenSpec must
// reproduce the golden file byte for byte (so the JSON field names and
// layout are a stable public format).
func TestSpecGoldenEncode(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(goldenSpec()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/spec_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("golden encode mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestSpecRoundTrip checks encode→decode identity for a minimal spec
// (omitempty must not drop anything that matters).
func TestSpecRoundTrip(t *testing.T) {
	spec := Spec{
		Deployment:          Deployment{Architecture: "DTS"},
		Workload:            Workload{Name: "generic"},
		Pattern:             "broadcast",
		Consumers:           2,
		MessagesPerProducer: 4,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spec)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	valid := func() Spec {
		return Spec{
			Deployment:          Deployment{Architecture: "DTS"},
			Workload:            Workload{Name: "Dstream"},
			Pattern:             "work-sharing",
			Producers:           1,
			Consumers:           1,
			MessagesPerProducer: 4,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline spec must validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing architecture", func(s *Spec) { s.Deployment.Architecture = "" }},
		{"unknown architecture", func(s *Spec) { s.Deployment.Architecture = "FTL" }},
		{"missing workload", func(s *Spec) { s.Workload.Name = "" }},
		{"unknown workload", func(s *Spec) { s.Workload.Name = "Xstream" }},
		{"unknown pattern", func(s *Spec) { s.Pattern = "round-robin" }},
		{"negative producers", func(s *Spec) { s.Producers = -1 }},
		{"negative consumers", func(s *Spec) { s.Consumers = -2 }},
		{"zero messages", func(s *Spec) { s.MessagesPerProducer = 0 }},
		{"negative runs", func(s *Spec) { s.Runs = -1 }},
		{"negative timeout", func(s *Spec) { s.TimeoutMS = -1 }},
		{"unknown fault kind", func(s *Spec) { s.Faults = []Fault{{Kind: "meteor"}} }},
		{"flap without position", func(s *Spec) { s.Faults = []Fault{{Kind: FaultFlap}} }},
		{"flap fraction out of range", func(s *Spec) {
			s.Faults = []Fault{{Kind: FaultFlap, AtFraction: 1.5}}
		}},
		{"flap-every without count", func(s *Spec) {
			s.Faults = []Fault{{Kind: FaultFlapEvery, EveryFraction: 0.3}}
		}},
		{"latency spike without delay", func(s *Spec) { s.Faults = []Fault{{Kind: FaultLatencySpike}} }},
		{"two flap steps", func(s *Spec) {
			s.Faults = []Fault{
				{Kind: FaultFlap, AtFraction: 0.3},
				{Kind: FaultFlapEvery, EveryFraction: 0.5, Count: 1},
			}
		}},
		{"bad fsync policy", func(s *Spec) {
			s.Deployment.Durability = &Durability{Fsync: "sometimes"}
		}},
		{"broker-restart without durability", func(s *Spec) {
			s.Deployment.Reconnect = &Reconnect{MaxAttempts: 10}
			s.Faults = []Fault{{Kind: FaultBrokerRestart, AtFraction: 0.5}}
		}},
		{"broker-restart without reconnect", func(s *Spec) {
			s.Deployment.Durability = &Durability{}
			s.Faults = []Fault{{Kind: FaultBrokerRestart, AtFraction: 0.5}}
		}},
		{"broker-restart bad fraction", func(s *Spec) {
			s.Deployment.Durability = &Durability{}
			s.Deployment.Reconnect = &Reconnect{MaxAttempts: 10}
			s.Faults = []Fault{{Kind: FaultBrokerRestart}}
		}},
		{"two broker restarts", func(s *Spec) {
			s.Deployment.Durability = &Durability{}
			s.Deployment.Reconnect = &Reconnect{MaxAttempts: 10}
			s.Faults = []Fault{
				{Kind: FaultBrokerRestart, AtFraction: 0.3},
				{Kind: FaultBrokerRestart, AtFraction: 0.6},
			}
		}},
		{"replay pattern without durability", func(s *Spec) {
			s.Pattern = "cold-replay"
		}},
		{"replay pattern without retention", func(s *Spec) {
			s.Pattern = "cold-replay"
			s.Deployment.Durability = &Durability{}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

// TestRunRejectsInvalidSpec checks Run fails fast (no deploy) on a bad
// spec.
func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run(context.Background(), Spec{})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

// TestRunOnRejectsFaultScript pins that fault scripts are only available
// through Run: the injector must be composed at deploy time.
func TestRunOnRejectsFaultScript(t *testing.T) {
	dep, err := core.Deploy(core.DTS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	spec := Spec{
		Deployment:          Deployment{Architecture: "DTS"},
		Workload:            Workload{Name: "Dstream"},
		Pattern:             "work-sharing",
		MessagesPerProducer: 1,
		Faults:              []Fault{{Kind: FaultFlap, AtFraction: 0.5}},
	}
	if _, err := RunOn(context.Background(), dep, spec); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

// TestRunExecutesSpec is the end-to-end smoke of the declarative path: a
// small work-sharing spec must deploy, run, and report.
func TestRunExecutesSpec(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Name: "unit-smoke",
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 6,
		TimeoutMS:           30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Infeasible {
		t.Fatal("DTS must be feasible")
	}
	if rep.Result.Consumed != 12 {
		t.Fatalf("consumed %d, want 12", rep.Result.Consumed)
	}
}

// TestRunMarksInfeasible checks the Stunnel ceiling surfaces as an
// Infeasible report, not an error.
func TestRunMarksInfeasible(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Deployment: Deployment{
			Architecture:         "PRS(Stunnel)",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           32,
		Consumers:           32,
		MessagesPerProducer: 1,
		TimeoutMS:           10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infeasible {
		t.Fatal("32 producers over Stunnel must be infeasible")
	}
}

// TestSweepScalesProducers checks sweep semantics (equal producer and
// consumer counts except single-producer patterns).
func TestSweepScalesProducers(t *testing.T) {
	spec := Spec{
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		MessagesPerProducer: 2,
		TimeoutMS:           30000,
	}
	points, err := Sweep(context.Background(), spec, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	for _, pt := range points {
		if pt.Spec.Producers != pt.Spec.Consumers {
			t.Fatalf("producers %d != consumers %d", pt.Spec.Producers, pt.Spec.Consumers)
		}
	}
}

// TestBrokerRestartScenario is the headline crash scenario through the
// declarative surface: durable queues (fsync=always, confirm implies
// durable), reconnecting clients, and a broker-restart fault that
// hard-kills the whole broker tier a quarter of the way through. The run
// must complete with every produced message consumed — zero acked-message
// loss across the crash — and the report must show the restart happened.
func TestBrokerRestartScenario(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Name: "crash-restart-smoke",
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Reconnect:            &Reconnect{MaxAttempts: 400, DelayMS: 5, MaxDelayMS: 25},
			Durability:           &Durability{Fsync: "always"},
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 40,
		Faults:              []Fault{{Kind: FaultBrokerRestart, AtFraction: 0.25, DownMS: 60}},
		TimeoutMS:           60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BrokerRestarts != 1 {
		t.Fatalf("BrokerRestarts = %d, want 1", rep.BrokerRestarts)
	}
	// At-least-once across a crash: nothing acked is lost, and messages
	// unacked at the kill point are redelivered after recovery, so the
	// consumed count can exceed the budget but never fall short.
	if want := int64(80); rep.Result.Consumed < want {
		t.Fatalf("consumed %d, want at least %d (acked messages lost across the crash)", rep.Result.Consumed, want)
	}
}

// TestColdReplayScenario runs the cold-replay pattern declaratively: the
// hot pool consumes and acks everything, then the cold consumer replays
// the full retained history, doubling the delivery count.
func TestColdReplayScenario(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Name: "cold-replay-smoke",
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Durability:           &Durability{RetainAll: true},
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "cold-replay",
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 8,
		TimeoutMS:           60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(32); rep.Result.Consumed != want {
		t.Fatalf("consumed %d, want %d (16 hot + 16 replayed)", rep.Result.Consumed, want)
	}
}

// TestReportTelemetry covers the live-telemetry surface of a report:
// latency percentiles from the streaming histogram and a throughput
// timeline with at least the final-flush point, plus live watch ticks.
func TestReportTelemetry(t *testing.T) {
	var mu sync.Mutex
	var ticks []telemetry.Tick
	rep, err := Run(context.Background(), Spec{
		Name: "telemetry-smoke",
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing-feedback",
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 6,
		Tuning:              Tuning{Window: 2},
		TimeoutMS:           30000,
	},
		WithTickInterval(5*time.Millisecond),
		WithWatch(func(tk telemetry.Tick) {
			mu.Lock()
			ticks = append(ticks, tk)
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", rep.P50, rep.P95, rep.P99)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no throughput timeline")
	}
	var total float64
	for i, p := range rep.Timeline {
		if p.V < 0 {
			t.Fatalf("negative rate at %d: %+v", i, p)
		}
		total += p.V
	}
	if total <= 0 {
		t.Fatal("timeline recorded no throughput")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) == 0 {
		t.Fatal("watch callback never fired")
	}
	last := ticks[len(ticks)-1]
	for _, key := range []string{"consumed", "produced", "errors", "reconnects"} {
		if _, ok := last.Values[key]; !ok {
			t.Fatalf("rollup missing %q: %+v", key, last.Values)
		}
	}
}

// TestReportTimelineWithoutOptions checks the default path (no watch,
// one-second ticks): a sub-second run still yields a final-flush point.
func TestReportTimelineWithoutOptions(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           1,
		Consumers:           1,
		MessagesPerProducer: 4,
		TimeoutMS:           30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("sub-second run must still produce a timeline point")
	}
	if rep.Timeline[len(rep.Timeline)-1].V <= 0 {
		t.Fatalf("final flush rate = %v", rep.Timeline[len(rep.Timeline)-1].V)
	}
}

// TestClusterFailoverScenario is the headline failover scenario through
// the declarative surface: a 3-node clustered data plane (ring placement,
// federation, redirects), durable work-sharing queues (fsync=always), and
// a node-kill fault that hard-kills the busiest queue master 40% of the
// way through and leaves it dead. The run must complete with every
// confirmed message consumed — zero confirmed-message loss across the
// failover — and clients must have followed at least one master redirect
// while riding their reconnect policies to the surviving nodes.
func TestClusterFailoverScenario(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Name: "cluster-failover-smoke",
		Deployment: Deployment{
			Architecture:         "DTS",
			ClusterNodes:         3,
			Placement:            "ring",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Reconnect:            &Reconnect{MaxAttempts: 400, DelayMS: 5, MaxDelayMS: 25},
			Durability:           &Durability{Fsync: "always"},
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           6,
		Consumers:           6,
		MessagesPerProducer: 20,
		Tuning:              Tuning{WorkQueues: 6},
		Faults:              []Fault{{Kind: FaultNodeKill, AtFraction: 0.4}},
		TimeoutMS:           60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeKills != 1 {
		t.Fatalf("NodeKills = %d, want 1", rep.NodeKills)
	}
	// At-least-once across the failover: nothing confirmed is lost, and
	// messages unacked at the kill are redelivered by the new master, so
	// the consumed count can exceed the budget but never fall short.
	if want := int64(120); rep.Result.Consumed < want {
		t.Fatalf("consumed %d, want at least %d (confirmed messages lost across the failover)", rep.Result.Consumed, want)
	}
	// Clients of the dead master must have reached the new master via a
	// survivor's redirect, not luck: seed rotation lands some of them on
	// a node that no longer masters their queue.
	if rep.Redirects < 1 {
		t.Fatalf("Redirects = %d, want >= 1 (no client followed a master redirect)", rep.Redirects)
	}
}

// TestClusterFailoverHealthEvents re-runs the failover scenario with a
// fast tick and asserts the health monitor narrates the outage: killing
// a queue master must surface as a redirect-followed or reconnect-storm
// transition in Report.HealthEvents (the rollup-driven health checks
// seeing the same failover the Redirects counter proves happened).
func TestClusterFailoverHealthEvents(t *testing.T) {
	var live []telemetry.HealthEvent
	var liveMu sync.Mutex
	rep, err := Run(context.Background(), Spec{
		Name: "cluster-failover-health",
		Deployment: Deployment{
			Architecture:         "DTS",
			ClusterNodes:         3,
			Placement:            "ring",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Reconnect:            &Reconnect{MaxAttempts: 400, DelayMS: 5, MaxDelayMS: 25},
			Durability:           &Durability{Fsync: "always"},
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           6,
		Consumers:           6,
		MessagesPerProducer: 20,
		Tuning:              Tuning{WorkQueues: 6},
		Faults:              []Fault{{Kind: FaultNodeKill, AtFraction: 0.4}},
		TimeoutMS:           60000,
	},
		// A sub-second tick so the failover window spans several rollups
		// (the default rules evaluate deltas per tick).
		WithTickInterval(100*time.Millisecond),
		WithHealthWatch(func(e telemetry.HealthEvent) {
			liveMu.Lock()
			live = append(live, e)
			liveMu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeKills != 1 {
		t.Fatalf("NodeKills = %d, want 1", rep.NodeKills)
	}
	failoverRules := map[string]bool{"redirect-followed": true, "reconnect-storm": true}
	found := false
	for _, ev := range rep.HealthEvents {
		if failoverRules[ev.Rule] && ev.To > telemetry.HealthOK {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no redirect-followed/reconnect-storm health event across a node kill; log: %v", rep.HealthEvents)
	}
	// The live watch callback saw the same transitions the report logs.
	liveMu.Lock()
	defer liveMu.Unlock()
	if len(live) != len(rep.HealthEvents) {
		t.Fatalf("health watch saw %d events, report logs %d", len(live), len(rep.HealthEvents))
	}
}

// TestScenarioForwarderEndToEnd runs a tiny scenario with an off-box
// forwarder attached and checks the sink received the whole telemetry
// stream: at least one tick rollup (the aggregator's final flush) and
// the end-of-run registry snapshot, in valid frames.
func TestScenarioForwarderEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.dstl")
	sink, err := forwarder.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := forwarder.New(forwarder.Config{Sink: sink, Probes: telemetry.NewRegistry()})

	_, err = Run(context.Background(), Spec{
		Deployment: Deployment{
			Architecture:         "DTS",
			FabricScale:          0.2,
			DisableClientShaping: true,
			FastControlPlane:     true,
		},
		Workload:            Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           1,
		Consumers:           1,
		MessagesPerProducer: 4,
		TimeoutMS:           30000,
	}, WithForwarder(fw))
	if err != nil {
		t.Fatal(err)
	}
	fw.Stop()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if st := fw.Stats(); st.Dropped != 0 || st.Sent == 0 {
		t.Fatalf("forwarder stats after healthy run: %+v", st)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(data)
	ticks, snapshots := 0, 0
	for {
		body, err := forwarder.ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p, err := forwarder.Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		switch p.Kind {
		case forwarder.KindTick:
			ticks++
			if _, ok := p.Values["consumed"]; !ok {
				t.Fatalf("tick payload missing consumed source: %+v", p.Values)
			}
		case forwarder.KindSnapshot:
			snapshots++
			if p.Snapshot == nil || p.Snapshot.Counters["broker.published"] == 0 {
				t.Fatalf("snapshot payload missing broker counters")
			}
		}
	}
	if ticks == 0 || snapshots != 1 {
		t.Fatalf("sink saw %d ticks and %d snapshots, want >=1 and exactly 1", ticks, snapshots)
	}
}
