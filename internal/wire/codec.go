// Package wire implements the binary framing protocol spoken between the
// ds2hpc broker and its clients. The protocol is modeled on AMQP 0-9-1 (the
// wire protocol of RabbitMQ, which the paper uses as its streaming service):
// octet-aligned frames carrying class/method payloads, content headers and
// body segments, with shortstr/longstr/field-table value encodings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Encoding errors.
var (
	ErrShortStrTooLong = errors.New("wire: short string exceeds 255 bytes")
	ErrBadFrameEnd     = errors.New("wire: missing frame-end octet")
	ErrFrameTooLarge   = errors.New("wire: frame exceeds negotiated frame-max")
)

// Writer encodes protocol primitives into an in-memory buffer which is then
// emitted as a single frame payload. It never fails mid-stream; errors such
// as oversized short strings are reported by the Err method and by Flush.
//
// Large body payloads appended through AppendContentFramesZC are not
// copied into the buffer: the Writer records a borrow segment instead and
// FlushFrames emits buffer ranges and borrowed slices as one vectored
// write. Borrowed slices must stay valid and unmodified until the flush.
type Writer struct {
	buf []byte
	err error

	// segs are the borrow points for vectored flushes: emit buf[:cut],
	// then ext, then continue from cut. Cuts are non-decreasing.
	segs   []borrowSeg
	extLen int
	iov    [][]byte // flush scratch, reused across batches
	nb     netBufs  // vectored-write scratch; a field so WriteTo's pointer receiver never escapes a local
}

// borrowSeg is one zero-copy splice point in the Writer's output.
type borrowSeg struct {
	cut int // offset into buf after which ext is emitted
	ext []byte
}

// NewWriter returns a Writer with a small pre-allocated buffer.
func NewWriter() *Writer { return &Writer{buf: make([]byte, 0, 64)} }

// Bytes returns the encoded payload. It is only meaningful when no borrow
// segments are pending (method/property encoding never borrows).
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes the next flush will emit, including
// borrowed body segments.
func (w *Writer) Len() int { return len(w.buf) + w.extLen }

// Err returns the first encoding error, if any.
func (w *Writer) Err() error { return w.err }

// Reset clears the buffer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.err = nil
	w.dropBorrows()
}

// dropBorrows clears borrow segments and the flush scratch without
// pinning the borrowed slices.
func (w *Writer) dropBorrows() {
	for i := range w.segs {
		w.segs[i].ext = nil
	}
	w.segs = w.segs[:0]
	w.extLen = 0
	for i := range w.iov {
		w.iov[i] = nil
	}
	w.iov = w.iov[:0]
}

// Octet appends a single byte.
func (w *Writer) Octet(b byte) { w.buf = append(w.buf, b) }

// Short appends a big-endian uint16.
func (w *Writer) Short(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// Long appends a big-endian uint32.
func (w *Writer) Long(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// LongLong appends a big-endian uint64.
func (w *Writer) LongLong(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.LongLong(math.Float64bits(v))
}

// Bool appends a boolean as a single octet.
func (w *Writer) Bool(v bool) {
	if v {
		w.Octet(1)
	} else {
		w.Octet(0)
	}
}

// ShortStr appends a length-prefixed string of at most 255 bytes.
func (w *Writer) ShortStr(s string) {
	if len(s) > 255 {
		w.err = ErrShortStrTooLong
		s = s[:255]
	}
	w.Octet(byte(len(s)))
	w.buf = append(w.buf, s...)
}

// LongStr appends a 32-bit length-prefixed byte string.
func (w *Writer) LongStr(s []byte) {
	w.Long(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes protocol primitives from a frame payload.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps a payload slice.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

// Octet reads a single byte.
func (r *Reader) Octet() byte {
	if !r.need(1) {
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Short reads a big-endian uint16.
func (r *Reader) Short() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

// Long reads a big-endian uint32.
func (r *Reader) Long() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// LongLong reads a big-endian uint64.
func (r *Reader) LongLong() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.LongLong()) }

// Bool reads a boolean octet.
func (r *Reader) Bool() bool { return r.Octet() != 0 }

// internTable maps well-known protocol strings to canonical instances so
// per-message parsing of constant values (content types, exchange kinds,
// standard exchange names) does not allocate. The keyed-by-conversion map
// lookup itself is allocation-free.
var internTable = map[string]string{
	"application/octet-stream": "application/octet-stream",
	"text/plain":               "text/plain",
	"application/json":         "application/json",
	"amq.direct":               "amq.direct",
	"amq.fanout":               "amq.fanout",
	"amq.topic":                "amq.topic",
	"direct":                   "direct",
	"fanout":                   "fanout",
	"topic":                    "topic",
	"PLAIN":                    "PLAIN",
	"en_US":                    "en_US",
}

// ShortStr reads a length-prefixed string of at most 255 bytes.
func (r *Reader) ShortStr() string {
	n := int(r.Octet())
	if !r.need(n) {
		return ""
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}

// LongStr reads a 32-bit length-prefixed byte string. The returned slice
// aliases the frame payload; callers that retain it must copy.
func (r *Reader) LongStr() []byte {
	n := int(r.Long())
	if !r.need(n) {
		return nil
	}
	s := r.buf[r.pos : r.pos+n]
	r.pos += n
	return s
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}
