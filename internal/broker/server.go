package broker

import (
	"crypto/tls"
	"fmt"
	"log"
	"net"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/netem"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// Process-wide connection telemetry across all broker nodes.
var (
	telConnsAccepted = telemetry.Default.Counter("broker.connections_accepted")
	telConnsOpen     = telemetry.Default.Gauge("broker.connections_open")
)

// Config configures a broker server (one RabbitMQ-like node).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// TLS, if non-nil, serves AMQPS (the DTS deployment's node-exposed
	// TLS port 30671 in the paper).
	TLS *tls.Config
	// Link shapes all accepted connections (the DSN's network interface).
	Link *netem.Link
	// FrameMax is the advertised maximum frame payload size.
	FrameMax uint32
	// Heartbeat is the advertised heartbeat interval; zero disables.
	Heartbeat time.Duration
	// MemoryLimit bounds ready bytes per vhost (80% of broker RAM in the
	// paper's configuration). Zero means unlimited.
	MemoryLimit int64
	// DataDir enables durable queue storage: every durable queue declare
	// opens a segment log under DataDir/<vhost>/<queue> (path components
	// query-escaped), and Listen recovers whatever a previous incarnation
	// left there before accepting connections. Empty disables durability
	// — durable declares are accepted but stay memory-only.
	DataDir string
	// Durability tunes the per-queue segment logs when DataDir is set
	// (segment size, fsync policy, retention).
	Durability seglog.Options
	// Cluster, when non-nil, makes this node one member of a clustered
	// data plane: queue declares, consumes, and default-exchange
	// publishes for queues mastered elsewhere are ensured, redirected,
	// or federated through the hook (see ClusterHook). Nil keeps the
	// node standalone.
	Cluster ClusterHook
	// Logger receives connection errors; nil discards them.
	Logger *log.Logger
}

// Stats are server-wide cumulative counters.
type Stats struct {
	ConnectionsAccepted atomic.Uint64
	MessagesIn          atomic.Uint64
	MessagesOut         atomic.Uint64
	BytesIn             atomic.Uint64
	BytesOut            atomic.Uint64
}

// Server is one broker node.
type Server struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	vhosts map[string]*VHost
	conns  map[*srvConn]struct{}
	closed bool

	Stats Stats
	wg    sync.WaitGroup
}

// Listen starts a broker node and its accept loop.
func Listen(cfg Config) (*Server, error) {
	if cfg.FrameMax == 0 {
		cfg.FrameMax = wire.DefaultFrameMax
	}
	var ln net.Listener
	var err error
	if cfg.TLS != nil {
		ln, err = tls.Listen("tcp", cfg.Addr, cfg.TLS)
	} else {
		ln, err = net.Listen("tcp", cfg.Addr)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Link != nil {
		ln = netem.WrapListener(ln, cfg.Link)
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		vhosts: map[string]*VHost{},
		conns:  map[*srvConn]struct{}{},
	}
	if cfg.DataDir != "" {
		// Recover durable state before the first connection can observe
		// it: re-declaring each queue found on disk replays its segment
		// log and re-enqueues unacked records.
		if err := s.recoverDurable(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// recoverDurable walks DataDir (vhost directories holding queue
// directories, names query-escaped) and re-declares every durable queue it
// finds, which opens each segment log and restores its unacked records.
func (s *Server) recoverDurable() error {
	vhDirs, err := os.ReadDir(s.cfg.DataDir)
	if os.IsNotExist(err) {
		return nil // first boot: nothing to recover
	}
	if err != nil {
		return fmt.Errorf("broker: recover %s: %w", s.cfg.DataDir, err)
	}
	for _, vd := range vhDirs {
		if !vd.IsDir() {
			continue
		}
		vhName, err := url.QueryUnescape(vd.Name())
		if err != nil {
			continue // not a directory this broker wrote
		}
		vh := s.VHost(vhName)
		qDirs, err := os.ReadDir(filepath.Join(s.cfg.DataDir, vd.Name()))
		if err != nil {
			return fmt.Errorf("broker: recover vhost %q: %w", vhName, err)
		}
		for _, qd := range qDirs {
			if !qd.IsDir() {
				continue
			}
			qName, err := url.QueryUnescape(qd.Name())
			if err != nil {
				continue
			}
			if _, err := os.Stat(filepath.Join(s.cfg.DataDir, vd.Name(), qd.Name(), MirrorMarker)); err == nil {
				// A standby mirror replica, not a queue this node mastered:
				// leave it for the replication layer (promotion removes the
				// marker; re-mirroring wipes and re-seeds the directory).
				continue
			}
			if _, err := vh.DeclareQueue(qName, true, false, false, false, nil); err != nil {
				return fmt.Errorf("broker: recover queue %q: %w", qName, err)
			}
			if s.cfg.Cluster != nil {
				// A recovered queue is mastered here again; re-pin it so
				// the directory routes to this node after a restart.
				s.cfg.Cluster.RegisterQueue(vhName, qName, true)
			}
		}
	}
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// VHost returns (creating on demand) the named vhost.
func (s *Server) VHost(name string) *VHost {
	s.mu.Lock()
	defer s.mu.Unlock()
	vh, ok := s.vhosts[name]
	if !ok {
		vh = NewVHost(name)
		vh.MemoryLimit = s.cfg.MemoryLimit
		vh.cluster = s.cfg.Cluster
		if s.cfg.DataDir != "" {
			vh.logDir = filepath.Join(s.cfg.DataDir, url.QueryEscape(name))
			vh.logOpts = s.cfg.Durability
		}
		s.vhosts[name] = vh
	}
	return vh
}

// Close stops the listener, terminates all connections, and cleanly
// closes every durable queue's segment log (flush + fsync), so a restart
// recovers without truncation.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	vhosts := make([]*VHost, 0, len(s.vhosts))
	for _, vh := range s.vhosts {
		vhosts = append(vhosts, vh)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
	for _, vh := range vhosts {
		vh.closeLogs()
	}
	return err
}

// Crash hard-stops the node as a SIGKILL would: the listener closes,
// every durable queue's log is crashed first — its unflushed write buffer
// dies, leaving on disk exactly what the OS had received at the kill
// point — and only then are connections dropped without protocol
// teardown niceties. In-memory message bodies are still released back to
// the pool (the host process lives on; only the simulated node dies), so
// wire-loan accounting stays balanced across a crash/restart cycle. The
// on-disk state is what a subsequent Listen with the same DataDir
// recovers.
func (s *Server) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	vhosts := make([]*VHost, 0, len(s.vhosts))
	for _, vh := range s.vhosts {
		vhosts = append(vhosts, vh)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, vh := range vhosts {
		vh.crash()
	}
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.Stats.ConnectionsAccepted.Add(1)
		telConnsAccepted.Inc()
		sc := newSrvConn(s, c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		telConnsOpen.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			telConnsOpen.Add(-1)
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}
