// Command streamsim is the Golang streaming simulator of the paper's §5.2.
// It runs in three modes:
//
//   - scenario: execute a declarative scenario spec from a JSON file — the
//     whole data point (deployment, workload, pattern, client counts,
//     tuning, fault script, runs) in one document. See internal/scenario
//     and examples/scenario for the spec format.
//
//   - local: deploy an architecture in-process and run a full experiment
//     (pattern × workload × producer/consumer counts), printing throughput
//     and RTT statistics. This is the flag-driven equivalent of a spec.
//
//   - distributed: a `coordinator` role assigns queues to remote `producer`
//     and `consumer` processes (which may run on other hosts against a
//     shared broker started with rmq-server) and aggregates their metrics,
//     matching the coordinator component described in the paper.
//
//   - telemetry-sink: a standalone off-box telemetry collector. A scenario
//     run on another host (or process) ships its rollups, health
//     transitions, and final snapshot to it with `scenario -forward`.
//
// Examples:
//
//	streamsim scenario examples/scenario/worksharing.json
//	streamsim telemetry-sink -addr 127.0.0.1:9191 &
//	streamsim scenario -watch -forward 127.0.0.1:9191 examples/scenario/worksharing.json
//	streamsim local -arch DTS -workload Dstream -pattern work-sharing \
//	    -producers 4 -consumers 4 -msgs 64 -scale 0.1
//	streamsim coordinator -participants 4 -endpoint amqp://127.0.0.1:5672 -msgs 100
//	streamsim producer -coord 127.0.0.1:9000 -id 0
//	streamsim consumer -coord 127.0.0.1:9000 -id 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/scenario"
	"ds2hpc/internal/sim"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/telemetry/forwarder"
	"ds2hpc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "scenario":
		err = runScenario(os.Args[2:])
	case "local":
		err = runLocal(os.Args[2:])
	case "coordinator":
		err = runCoordinator(os.Args[2:])
	case "producer":
		err = runParticipant(os.Args[2:], "producer")
	case "consumer":
		err = runParticipant(os.Args[2:], "consumer")
	case "telemetry-sink":
		err = runTelemetrySink(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		die(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: streamsim {scenario|local|coordinator|producer|consumer|telemetry-sink} [flags]")
	os.Exit(2)
}

// runScenario executes a declarative scenario spec from a JSON file.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "print live per-second telemetry rollups and health transitions while the scenario runs")
	clients := fs.Int("clients", 0, "override total client count (split across producers and consumers) without editing the spec")
	telemetryAddr := fs.String("telemetry", "", "serve /metrics and /snapshot.json on this address while the scenario runs (e.g. 127.0.0.1:9090)")
	forward := fs.String("forward", "", "ship telemetry (rollups, health transitions, final snapshot) to an off-box collector at this address, e.g. 127.0.0.1:9191 or http://host:9191/ingest (see `streamsim telemetry-sink`)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: streamsim scenario [-watch] [-clients n] [-telemetry addr] [-forward addr] <spec.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("scenario: exactly one spec file required")
	}
	spec, err := scenario.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *clients != 0 {
		if err := applyClientsOverride(&spec, *clients); err != nil {
			return err
		}
		fmt.Printf("clients:        %d (-clients override: %d producers, %d consumers)\n",
			*clients, spec.Producers, spec.Consumers)
	}
	stop, err := serveTelemetry(*telemetryAddr)
	if err != nil {
		return err
	}
	defer stop()
	var opts []scenario.Option
	if *watch {
		opts = append(opts, scenario.WithWatch(printRollup))
		opts = append(opts, scenario.WithHealthWatch(func(e telemetry.HealthEvent) {
			fmt.Printf("health %s  %s\n", e.T.Format("15:04:05"), e)
		}))
	}
	var fw *forwarder.Forwarder
	if *forward != "" {
		sink := forwarder.NewHTTPSink(forwardURL(*forward))
		defer sink.Close()
		fw = forwarder.New(forwarder.Config{Sink: sink})
		opts = append(opts, scenario.WithForwarder(fw))
	}
	rep, err := scenario.Run(context.Background(), spec, opts...)
	if fw != nil {
		fw.Stop() // flush the tail even when the run failed
		st := fw.Stats()
		fmt.Printf("forwarded:      %d payload(s), %d bytes to %s (%d retried, %d dropped)\n",
			st.Sent, st.SentBytes, *forward, st.Retried, st.Dropped)
	}
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

// forwardURL turns a bare host:port into the collector ingest URL;
// explicit http(s) URLs pass through.
func forwardURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr + "/ingest"
}

// applyClientsOverride rescales a spec's role counts to n total clients:
// an even producer/consumer split, except single-producer patterns
// (broadcast/gather) which keep one producer and give the rest to
// consumers. The rewritten spec is re-validated so an override can never
// smuggle in counts the spec format forbids.
func applyClientsOverride(spec *scenario.Spec, n int) error {
	if n < 2 {
		return fmt.Errorf("scenario: -clients %d: need at least 2 (one producer, one consumer)", n)
	}
	single := false
	if g, ok := pattern.Lookup(spec.Pattern); ok {
		single = g.SingleProducer
	}
	if single {
		spec.Producers = 1
		spec.Consumers = n - 1
	} else {
		spec.Producers = n / 2
		spec.Consumers = n - n/2
	}
	return spec.Validate()
}

// serveTelemetry optionally exposes the process-wide telemetry registry
// over HTTP for the duration of the command; the returned stop function
// is always safe to call.
func serveTelemetry(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := telemetry.Serve(addr, telemetry.Default)
	if err != nil {
		return nil, fmt.Errorf("telemetry endpoint: %w", err)
	}
	fmt.Printf("telemetry:      http://%s/metrics (and /snapshot.json)\n", srv.Addr())
	return func() {
		// Graceful first: let an in-flight final scrape finish, then
		// hard-close whatever remains.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}, nil
}

// printRollup writes one live per-second telemetry line.
func printRollup(tk telemetry.Tick) {
	line := fmt.Sprintf("watch %s  consumed %7.1f/s  produced %7.1f/s  errors %.0f",
		tk.T.Format("15:04:05"), tk.Values["consumed"], tk.Values["produced"], tk.Values["errors"])
	if v, ok := tk.Values["flaps"]; ok {
		line += fmt.Sprintf("  flaps %.0f  resets %.0f", v, tk.Values["resets"])
	}
	if v := tk.Values["reconnects"]; v > 0 {
		line += fmt.Sprintf("  reconnects %.0f", v)
	}
	if v := tk.Values["redirects"]; v > 0 {
		line += fmt.Sprintf("  redirects %.0f", v)
	}
	if v := tk.Values["federated"]; v > 0 {
		line += fmt.Sprintf("  federated %.0f", v)
	}
	if v := tk.Values["sessions"]; v > 0 {
		line += fmt.Sprintf("  sessions %.0f/%.0f conns", v, tk.Values["conns"])
	}
	if v, ok := tk.Values["goroutines"]; ok {
		line += fmt.Sprintf("  goroutines %.0f", v)
	}
	fmt.Println(line)
}

// printReport writes the human-readable result of one scenario.
func printReport(rep *scenario.Report) {
	spec := rep.Spec
	if spec.Name != "" {
		fmt.Printf("scenario:       %s\n", spec.Name)
	}
	fmt.Printf("architecture:   %s\n", spec.Deployment.Architecture)
	if n := spec.Deployment.ClusterNodes; n > 0 {
		placement := spec.Deployment.Placement
		if placement == "" {
			placement = "ring"
		}
		fmt.Printf("cluster:        nodes=%d placement=%s\n", n, placement)
	}
	fmt.Printf("workload:       %s\n", spec.Workload.Name)
	fmt.Printf("pattern:        %s\n", spec.Pattern)
	if rep.Infeasible {
		fmt.Printf("infeasible:     %s with %d producers (tunnel connection limit)\n",
			spec.Deployment.Architecture, spec.Producers)
		return
	}
	printResult(rep.Result, max(spec.Runs, 1))
	if rep.P50 > 0 {
		fmt.Printf("p50/p95/p99:    %v / %v / %v\n", rep.P50, rep.P95, rep.P99)
	}
	if n := len(rep.Timeline); n > 0 {
		peak := rep.Timeline[0].V
		for _, p := range rep.Timeline {
			if p.V > peak {
				peak = p.V
			}
		}
		fmt.Printf("timeline:       %d point(s), peak %.1f msgs/sec\n", n, peak)
	}
	if len(spec.Faults) > 0 {
		fmt.Printf("faults:         %d flaps, %d resets, %d refused dials\n",
			rep.Faults.Flaps, rep.Faults.Resets, rep.Faults.Refused)
	}
	if rep.BrokerRestarts > 0 {
		fmt.Printf("broker kills:   %d hard restart(s) survived, durable queues replayed\n",
			rep.BrokerRestarts)
	}
	if rep.NodeKills > 0 {
		fmt.Printf("node kills:     %d queue-master(s) failed over\n", rep.NodeKills)
	}
	if rep.Promotions > 0 || rep.MirrorCatchups > 0 {
		fmt.Printf("replication:    %d mirror promotion(s), %d mirror catchup(s)\n",
			rep.Promotions, rep.MirrorCatchups)
	}
	if rep.Redirects > 0 || rep.FederatedMsgs > 0 {
		fmt.Printf("cluster plane:  %d redirect(s) followed, %d federated publish(es)\n",
			rep.Redirects, rep.FederatedMsgs)
	}
	if n := len(rep.HealthEvents); n > 0 {
		fmt.Printf("health:         %d transition(s)\n", n)
		for _, e := range rep.HealthEvents {
			fmt.Printf("  %s  %s\n", e.T.Format("15:04:05"), e)
		}
	}
}

// printResult writes the shared result block of the scenario and local
// modes.
func printResult(r *metrics.Result, runs int) {
	fmt.Printf("consumed:       %d msgs over %d run(s)\n", r.Consumed, runs)
	fmt.Printf("throughput:     %.1f msgs/sec (aggregate)\n", r.Throughput)
	if r.RTTCount() > 0 {
		fmt.Printf("median RTT:     %v\n", r.MedianRTT())
		fmt.Printf("p80 / p95 RTT:  %v / %v\n", r.PercentileRTT(80), r.PercentileRTT(95))
	}
	if r.Errors > 0 {
		fmt.Printf("backpressure:   %d rejected publishes retried\n", r.Errors)
	}
}

func runLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ContinueOnError)
	arch := fs.String("arch", "DTS", "architecture: DTS, PRS(Stunnel), PRS(HAProxy), PRS(HAProxy,4conns), MSS")
	wl := fs.String("workload", "Dstream", "workload: Dstream, Lstream, generic")
	pat := fs.String("pattern", "work-sharing", "pattern: "+strings.Join(pattern.Names(), ", "))
	producers := fs.Int("producers", 2, "producer count")
	consumers := fs.Int("consumers", 2, "consumer count")
	msgs := fs.Int("msgs", 32, "messages per producer")
	runs := fs.Int("runs", 3, "runs per data point")
	scale := fs.Float64("scale", 0.1, "fabric scale (1.0 = paper rates)")
	payloadDiv := fs.Int("payload-div", 8, "payload shrink divisor (1 = full size)")
	telemetryAddr := fs.String("telemetry", "", "serve /metrics and /snapshot.json on this address while the experiment runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stop, err := serveTelemetry(*telemetryAddr)
	if err != nil {
		return err
	}
	defer stop()
	w, err := workload.ByName(*wl)
	if err != nil {
		return err
	}
	exp := sim.Experiment{
		Architecture:        core.ArchitectureName(*arch),
		Workload:            w.Scaled(*payloadDiv),
		Pattern:             sim.PatternName(*pat),
		Producers:           *producers,
		Consumers:           *consumers,
		MessagesPerProducer: *msgs,
		Runs:                *runs,
		Options: core.Options{
			Nodes:       3,
			Profile:     fabric.ACE(*scale),
			MemoryLimit: 1 << 30,
		},
		// One deadline covers the whole run (production plus drain).
		Timeout: 15 * time.Minute,
	}
	pt, err := sim.Run(exp)
	if err != nil {
		return err
	}
	if pt.Infeasible {
		fmt.Printf("%s with %d producers is infeasible (tunnel connection limit)\n",
			*arch, *producers)
		return nil
	}
	fmt.Printf("architecture:   %s\n", *arch)
	fmt.Printf("workload:       %s (%d B payloads)\n", w.Name, exp.Workload.PayloadBytes)
	fmt.Printf("pattern:        %s\n", *pat)
	printResult(pt.Result, *runs)
	return nil
}

func runCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "coordinator listen address")
	participants := fs.Int("participants", 2, "number of producers+consumers to expect")
	endpoint := fs.String("endpoint", "amqp://127.0.0.1:5672", "broker URL participants should use")
	msgs := fs.Int("msgs", 100, "messages per producer")
	queues := fs.Int("queues", 2, "shared work queues")
	timeout := fs.Duration("timeout", 10*time.Minute, "experiment deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	coord, err := sim.NewCoordinator(*addr, *participants, func(h sim.HelloMsg) sim.AssignMsg {
		return sim.AssignMsg{
			Queue:    fmt.Sprintf("ws-q-%d", h.ID%*queues),
			Endpoint: *endpoint,
			Messages: *msgs,
		}
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	// Participants legitimately stay silent between hello and report for
	// as long as the experiment runs; the per-participant read deadline
	// must cover the whole deadline, not its 60s default.
	coord.SetReadTimeout(*timeout)
	fmt.Printf("coordinator listening on %s (expecting %d participants)\n",
		coord.Addr(), *participants)
	res, err := coord.Wait(*timeout)
	if err != nil {
		return err
	}
	fmt.Printf("aggregate: %s\n", res)
	return nil
}

func runParticipant(args []string, role string) error {
	fs := flag.NewFlagSet(role, flag.ContinueOnError)
	coord := fs.String("coord", "", "coordinator address")
	id := fs.Int("id", 0, "participant id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		fs.Usage()
		return fmt.Errorf("%s: -coord is required", role)
	}
	p, assign, err := sim.Join(*coord, sim.HelloMsg{Role: role, ID: *id})
	if err != nil {
		return err
	}
	conn, err := amqp.Dial(assign.Endpoint)
	if err != nil {
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		return err
	}
	if _, err := ch.QueueDeclare(assign.Queue, true, false, false, false, nil); err != nil {
		return err
	}

	report := sim.ReportMsg{Role: role, ID: *id}
	switch role {
	case "producer":
		gen := workload.NewGenerator(workload.Dstream, *id)
		for seq := 0; seq < assign.Messages; seq++ {
			body, err := gen.Payload(uint64(seq))
			if err != nil {
				return err
			}
			if err := ch.Publish("", assign.Queue, false, false, amqp.Publishing{
				Timestamp: uint64(time.Now().UnixNano()),
				Body:      body,
			}); err != nil {
				return err
			}
			report.Count++
		}
	case "consumer":
		if err := ch.Qos(8, 0, false); err != nil {
			return err
		}
		deliveries, err := ch.Consume(assign.Queue, "", false, false, false, false, nil)
		if err != nil {
			return err
		}
		for report.Count < int64(assign.Messages) {
			select {
			case d := <-deliveries:
				if d.Timestamp > 0 {
					report.RTTNanos = append(report.RTTNanos,
						time.Now().UnixNano()-int64(d.Timestamp))
				}
				d.Ack(false)
				report.Count++
			case <-time.After(time.Minute):
				fmt.Fprintf(os.Stderr, "%s %d: timed out at %d/%d\n",
					role, *id, report.Count, assign.Messages)
				report.Errors++
				goto done
			}
		}
	}
done:
	if err := p.Report(report); err != nil {
		return err
	}
	fmt.Printf("%s %d: done (%d messages)\n", role, *id, report.Count)
	return nil
}

// runTelemetrySink is the off-box collector: it accepts forwarder
// frames POSTed to /ingest, prints one line per payload, and optionally
// appends the raw frames to a file for offline decoding. With -n it
// exits after that many payloads (smoke tests); otherwise it serves
// until killed.
func runTelemetrySink(args []string) error {
	fs := flag.NewFlagSet("telemetry-sink", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9191", "collector listen address")
	out := fs.String("out", "", "append received frames to this file (decodable with the forwarder frame format)")
	count := fs.Int("n", 0, "exit after receiving this many payloads (0 = serve forever)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: streamsim telemetry-sink [-addr host:port] [-out frames.dstl] [-n count]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var file *forwarder.FileSink
	if *out != "" {
		var err error
		if file, err = forwarder.NewFileSink(*out); err != nil {
			return err
		}
		defer file.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	received := make(chan struct{}, 1)
	var total atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		// One frame per POST body, the way HTTPSink ships them.
		body, err := forwarder.ReadFrame(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := forwarder.Decode(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if file != nil {
			if err := file.Send(forwarder.EncodeFrame(body)); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		printPayload(p)
		w.WriteHeader(http.StatusNoContent)
		if n := total.Add(1); *count > 0 && n >= int64(*count) {
			select {
			case received <- struct{}{}:
			default:
			}
		}
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("telemetry-sink: listening on http://%s/ingest\n", ln.Addr())
	if *count > 0 {
		<-received
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		fmt.Printf("telemetry-sink: %d payload(s) received, exiting\n", total.Load())
		return nil
	}
	select {} // serve until killed
}

// printPayload writes one line per collected payload.
func printPayload(p forwarder.Payload) {
	switch p.Kind {
	case forwarder.KindTick:
		fmt.Printf("tick     seq=%d %s consumed=%.1f/s produced=%.1f/s sources=%d\n",
			p.Seq, p.T.Format("15:04:05"), p.Values["consumed"], p.Values["produced"], len(p.Values))
	case forwarder.KindHealth:
		if p.Health != nil {
			fmt.Printf("health   seq=%d %s %s %s→%s (%s=%.1f)\n",
				p.Seq, p.T.Format("15:04:05"), p.Health.Rule,
				p.Health.FromState, p.Health.ToState, p.Health.Source, p.Health.Value)
		}
	case forwarder.KindSnapshot:
		var counters, gauges int
		if p.Snapshot != nil {
			counters, gauges = len(p.Snapshot.Counters), len(p.Snapshot.Gauges)
		}
		fmt.Printf("snapshot seq=%d %s %d counter(s), %d gauge(s)\n",
			p.Seq, p.T.Format("15:04:05"), counters, gauges)
	default:
		fmt.Printf("payload  seq=%d kind=%q\n", p.Seq, p.Kind)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "streamsim:", err)
	os.Exit(1)
}
