package pattern

import (
	"fmt"
	"sync/atomic"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/workload"
)

// WorkSharingFeedback runs the work-sharing-with-feedback pattern (§5.4):
// requests flow through shared work queues; each producer owns a dedicated
// reply queue (direct routing) so replies reach the producer that issued
// the request. The per-message RTT is measured at the producer.
func WorkSharingFeedback(cfg Config) (*metrics.Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if max := cfg.Deployment.MaxProducerConns(); max > 0 && cfg.Producers > max {
		return nil, fmt.Errorf("%w: %d producers > %d tunnel connections",
			ErrInfeasible, cfg.Producers, max)
	}

	// The request window is the flow control in this closed-loop pattern:
	// at most Producers*Window requests exist at once. Size the queues so
	// the reject-publish limit never fires mid-flight (the paper gives
	// payload queues 80% of broker RAM for the same reason).
	if need := int64(cfg.Producers) * int64(cfg.Window) * int64(cfg.Workload.PayloadBytes) * 2; cfg.QueueBytes < need {
		cfg.QueueBytes = need
	}

	queues := make([]string, cfg.WorkQueues)
	for i := range queues {
		queues[i] = fmt.Sprintf("wsf-q-%d", i)
		if err := declareQueue(cfg.Deployment.ConsumerEndpoint(queues[i]), queues[i], cfg.queueArgs()); err != nil {
			return nil, err
		}
	}
	// Reply queues are placed on the same node as their work queue so
	// consumers can publish replies over their existing connection.
	replyQ := make([]string, cfg.Producers)
	for p := range replyQ {
		work := queues[p%len(queues)]
		replyQ[p] = nameOnSameNode(cfg.Deployment, fmt.Sprintf("wsf-reply-%d", p), work)
		if err := declareQueue(cfg.Deployment.ConsumerEndpoint(replyQ[p]), replyQ[p], cfg.queueArgs()); err != nil {
			return nil, err
		}
	}

	col := metrics.NewCollector()
	var replies atomic.Int64
	total := int64(cfg.Producers) * int64(cfg.MessagesPerProducer)

	stop := make(chan struct{})
	consumerErr := make(chan error, cfg.Consumers)
	var ready atomic.Int64
	for i := 0; i < cfg.Consumers; i++ {
		go func(i int) {
			consumerErr <- runFeedbackConsumer(cfg, queues[i%len(queues)], i, col, &ready, stop)
		}(i)
	}
	deadline := time.Now().Add(cfg.Timeout)
	for ready.Load() < int64(cfg.Consumers) {
		if time.Now().After(deadline) {
			close(stop)
			return nil, fmt.Errorf("pattern: consumers not ready")
		}
		time.Sleep(time.Millisecond)
	}

	col.Start()
	err := runClients(cfg.Producers, cfg.Workload.MPI, func(p int) error {
		return runFeedbackProducer(cfg, queues[p%len(queues)], replyQ[p], p, col, &replies)
	})
	col.Stop()
	close(stop)
	if err != nil {
		return nil, err
	}
	if replies.Load() < total {
		return nil, fmt.Errorf("pattern: only %d/%d replies", replies.Load(), total)
	}
	return col.Snapshot(), nil
}

// runFeedbackConsumer consumes requests and routes a reply back to the
// originating producer's reply queue via the default (direct) exchange.
func runFeedbackConsumer(cfg Config, queue string, id int, col *metrics.Collector,
	ready *atomic.Int64, stop <-chan struct{}) error {
	conn, err := cfg.Deployment.ConsumerEndpoint(queue).Connect()
	if err != nil {
		ready.Add(1)
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		ready.Add(1)
		return err
	}
	if err := ch.Qos(cfg.Prefetch, 0, false); err != nil {
		ready.Add(1)
		return err
	}
	deliveries, err := ch.Consume(queue, fmt.Sprintf("fcons-%d", id), false, false, false, false, nil)
	if err != nil {
		ready.Add(1)
		return err
	}
	ready.Add(1)
	acker := &batchAcker{n: cfg.AckBatch}
	for {
		select {
		case <-stop:
			acker.flush()
			return nil
		case d, ok := <-deliveries:
			if !ok {
				return nil
			}
			if err := cfg.Workload.Verify(d.Body); err != nil {
				col.AddError()
			}
			col.AddConsumed(1)
			if d.ReplyTo != "" {
				// The reply echoes the request timestamp so the
				// producer can compute the round-trip time.
				err := ch.Publish("", d.ReplyTo, false, false, amqp.Publishing{
					CorrelationID: d.CorrelationID,
					Timestamp:     d.Timestamp,
					Body:          []byte("ok"),
				})
				if err != nil {
					return err
				}
			}
			if err := acker.add(d); err != nil {
				return err
			}
		}
	}
}

// runFeedbackProducer publishes requests with a bounded in-flight window
// and measures each reply's round-trip time.
func runFeedbackProducer(cfg Config, workQ, replyQ string, p int,
	col *metrics.Collector, replies *atomic.Int64) error {
	conn, err := cfg.Deployment.ProducerEndpoint(workQ).Connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	pch, err := conn.Channel()
	if err != nil {
		return err
	}
	// Reply consumption happens over the same connection (the reply queue
	// shares the work queue's master node by construction).
	rch, err := conn.Channel()
	if err != nil {
		return err
	}
	repliesCh, err := rch.Consume(replyQ, fmt.Sprintf("prod-%d", p), true, false, false, false, nil)
	if err != nil {
		return err
	}

	gen := workload.NewGenerator(cfg.Workload, p)
	window := make(chan struct{}, cfg.Window)
	done := make(chan error, 1)
	budget := int64(cfg.MessagesPerProducer)

	// Reply drain loop.
	go func() {
		var got int64
		for d := range repliesCh {
			rtt := time.Duration(time.Now().UnixNano() - int64(d.Timestamp))
			if rtt > 0 {
				col.AddRTT(rtt)
			}
			replies.Add(1)
			got++
			<-window
			if got >= budget {
				done <- nil
				return
			}
		}
		done <- fmt.Errorf("pattern: producer %d reply stream closed after %d", p, got)
	}()

	for seq := uint64(0); seq < uint64(cfg.MessagesPerProducer); seq++ {
		body, err := gen.Payload(seq)
		if err != nil {
			return err
		}
		window <- struct{}{} // cap outstanding requests
		err = pch.Publish("", workQ, false, false, amqp.Publishing{
			ContentType:   "application/octet-stream",
			CorrelationID: fmt.Sprintf("p%d-m%d", p, seq),
			ReplyTo:       replyQ,
			Timestamp:     uint64(time.Now().UnixNano()),
			Body:          body,
		})
		if err != nil {
			return err
		}
		col.AddProduced(1)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(cfg.Timeout):
		return fmt.Errorf("pattern: producer %d timed out awaiting replies", p)
	}
}
