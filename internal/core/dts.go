package core

import (
	"fmt"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/cluster"
	"ds2hpc/internal/tlsutil"
	"ds2hpc/internal/transport"
)

// dtsDeployment exposes the broker cluster's node ports directly with TLS
// (AMQPS), matching the paper's §4.3: NodePorts 30672/30671 opened on each
// DSN, producers and consumers connecting straight to them.
type dtsDeployment struct {
	opts     Options
	cl       *cluster.Cluster
	identity *tlsutil.Identity
}

// DeployDTS starts the Direct Streaming architecture.
func DeployDTS(opts Options) (Deployment, error) {
	opts.defaults()
	identity, err := tlsutil.SelfSigned("dts-broker", "127.0.0.1", "localhost")
	if err != nil {
		return nil, fmt.Errorf("core: dts certificates: %w", err)
	}
	// Federation links between DTS nodes cross the same AMQPS NodePorts
	// clients use, so the hub dials with the cluster's client TLS config.
	clOpts := cluster.Options{
		Federation:        opts.Federation,
		ReplicationFactor: opts.ReplicationFactor,
		FedDial:           transport.Path{transport.TLSClient(identity.ClientConfig("127.0.0.1"))}.Dial(),
	}
	cl, err := cluster.StartWithOptions(opts.Nodes, clOpts, func(i int) broker.Config {
		return broker.Config{
			TLS:         identity.ServerConfig(),
			Link:        opts.Profile.DSNLink(fmt.Sprintf("dsn-%d", i)),
			MemoryLimit: opts.MemoryLimit,
			DataDir:     opts.DataDir,
			Durability:  opts.Durability,
		}
	})
	if err != nil {
		return nil, err
	}
	return &dtsDeployment{opts: opts, cl: cl, identity: identity}, nil
}

func (d *dtsDeployment) Name() ArchitectureName { return DTS }
func (d *dtsDeployment) Cluster() *cluster.Cluster {
	return d.cl
}
func (d *dtsDeployment) MaxProducerConns() int { return 0 }
func (d *dtsDeployment) Durable() bool         { return d.opts.DataDir != "" }
func (d *dtsDeployment) Close() error          { return d.cl.Close() }

// endpoint composes the DTS hop chain of Figure 3a: client NIC link, then
// TLS-originate straight to the queue master's AMQPS NodePort. The TLS
// hop carries the AMQPS leg, so the URL scheme stays amqp. With
// federation on, every node's address rides along as a reconnect seed so
// clients of a killed master can re-dial a survivor and follow its
// redirect to the queue's new master.
func (d *dtsDeployment) endpoint(queue string) Endpoint {
	e := d.opts.endpoint(
		"amqp://"+d.cl.AddrFor(queue),
		transport.TLSClient(d.identity.ClientConfig("127.0.0.1")),
	)
	if d.opts.Federation {
		e.Seeds = d.cl.Addrs()
	}
	return e
}

func (d *dtsDeployment) ProducerEndpoint(queue string) Endpoint { return d.endpoint(queue) }
func (d *dtsDeployment) ConsumerEndpoint(queue string) Endpoint { return d.endpoint(queue) }
