package pattern

import (
	"fmt"
	"sync/atomic"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/workload"
)

// Broadcast runs the broadcast phase of §5.5: a single producer publishes
// each message to fanout exchanges delivering to every consumer's queue
// (the pub-sub model). Aggregate consumer throughput is reported.
//
// Subscriber queues are spread across the broker nodes (consumer i's queue
// lives on node i mod N), as RabbitMQ places queues on the node the
// declaring client is connected to; the producer publishes one copy per
// node, so every DSN's link participates in the fan-out.
func Broadcast(cfg Config) (*metrics.Result, error) {
	return broadcastGather(cfg, false)
}

// BroadcastGather runs the full broadcast-and-gather pattern: alongside
// the broadcast, every consumer replies to a gather exchange whose
// per-node queues the single producer drains; per-reply RTTs are measured
// at the producer.
func BroadcastGather(cfg Config) (*metrics.Result, error) {
	return broadcastGather(cfg, true)
}

// bgNode is the per-broker-node slice of the broadcast topology.
type bgNode struct {
	anchor  string // queue-name anchor hashing to this node
	gatherQ string
	subs    []string // subscriber queues of consumers on this node
}

func broadcastGather(cfg Config, gather bool) (*metrics.Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cfg.Producers = 1 // the pattern is single-producer by definition

	const bcastX = "bg-bcast"
	const gatherX = "bg-gather-x"
	nodes := cfg.Deployment.Cluster().Size()
	if nodes > cfg.Consumers {
		nodes = cfg.Consumers
	}
	topo := make([]*bgNode, nodes)
	for j := range topo {
		topo[j] = &bgNode{
			anchor:  nameOnNode(cfg.Deployment, fmt.Sprintf("bg-anchor-%d", j), j),
			gatherQ: nameOnNode(cfg.Deployment, fmt.Sprintf("bg-gather-%d", j), j),
		}
	}
	subQ := make([]string, cfg.Consumers)
	for i := range subQ {
		j := i % nodes
		subQ[i] = nameOnNode(cfg.Deployment, fmt.Sprintf("bg-sub-%d", i), j)
		topo[j].subs = append(topo[j].subs, subQ[i])
	}
	// Bound queues for the producer's in-flight window (plus prefetch
	// slack); the producer paces itself so these are never exceeded.
	if need := int64(cfg.Window+cfg.Prefetch+4) * int64(cfg.Workload.PayloadBytes) * 2; cfg.QueueBytes < need {
		cfg.QueueBytes = need
	}

	// Declare exchanges and queues on each participating node.
	for _, n := range topo {
		if err := declareBGNode(cfg, n, bcastX, gatherX); err != nil {
			return nil, err
		}
	}

	col := metrics.NewCollector()
	var consumed, replied atomic.Int64
	totalDeliveries := int64(cfg.MessagesPerProducer) * int64(cfg.Consumers)

	stop := make(chan struct{})
	var ready atomic.Int64
	consumerErr := make(chan error, cfg.Consumers)
	launch := func(i int) error {
		return runBGConsumer(cfg, subQ[i], gatherX, i, gather, col, &consumed, &ready, stop)
	}
	// The generic workload is MPI-launched (Table 1).
	go func() {
		consumerErr <- runClients(cfg.Consumers, cfg.Workload.MPI, launch)
	}()
	deadline := time.Now().Add(cfg.Timeout)
	for ready.Load() < int64(cfg.Consumers) {
		if time.Now().After(deadline) {
			close(stop)
			return nil, fmt.Errorf("pattern: consumers not ready")
		}
		time.Sleep(time.Millisecond)
	}

	col.Start()
	err := runBroadcastProducer(cfg, topo, bcastX, gather, col, &consumed, &replied)
	if err == nil && !gather {
		err = waitCount(&consumed, totalDeliveries, cfg.Timeout)
	}
	col.Stop()
	close(stop)
	if err != nil {
		return nil, err
	}
	return col.Snapshot(), nil
}

func declareBGNode(cfg Config, n *bgNode, bcastX, gatherX string) error {
	conn, err := cfg.Deployment.ConsumerEndpoint(n.anchor).Connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		return err
	}
	if err := ch.ExchangeDeclare(bcastX, "fanout", true, false, false, false, nil); err != nil {
		return err
	}
	if err := ch.ExchangeDeclare(gatherX, "fanout", true, false, false, false, nil); err != nil {
		return err
	}
	if _, err := ch.QueueDeclare(n.gatherQ, true, false, false, false, cfg.queueArgs()); err != nil {
		return err
	}
	if err := ch.QueueBind(n.gatherQ, "", gatherX, false, nil); err != nil {
		return err
	}
	for _, q := range n.subs {
		if _, err := ch.QueueDeclare(q, true, false, false, false, cfg.queueArgs()); err != nil {
			return err
		}
		if err := ch.QueueBind(q, "", bcastX, false, nil); err != nil {
			return err
		}
	}
	return nil
}

func runBGConsumer(cfg Config, queue, gatherX string, id int, gather bool,
	col *metrics.Collector, consumed *atomic.Int64, ready *atomic.Int64, stop <-chan struct{}) error {
	conn, err := cfg.Deployment.ConsumerEndpoint(queue).Connect()
	if err != nil {
		ready.Add(1)
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		ready.Add(1)
		return err
	}
	if err := ch.Qos(cfg.Prefetch, 0, false); err != nil {
		ready.Add(1)
		return err
	}
	deliveries, err := ch.Consume(queue, fmt.Sprintf("bg-%d", id), false, false, false, false, nil)
	if err != nil {
		ready.Add(1)
		return err
	}
	ready.Add(1)
	acker := &batchAcker{n: cfg.AckBatch}
	for {
		select {
		case <-stop:
			acker.flush()
			return nil
		case d, ok := <-deliveries:
			if !ok {
				return nil
			}
			if err := cfg.Workload.Verify(d.Body); err != nil {
				col.AddError()
			}
			col.AddConsumed(1)
			consumed.Add(1)
			if gather {
				// The gather exchange on this consumer's node routes to
				// the node-local gather queue the producer drains.
				err := ch.Publish(gatherX, "", false, false, amqp.Publishing{
					CorrelationID: d.CorrelationID,
					Timestamp:     d.Timestamp,
					Body:          []byte(fmt.Sprintf("reply-from-%d", id)),
				})
				if err != nil {
					return err
				}
			}
			if err := acker.add(d); err != nil {
				return err
			}
		}
	}
}

// runBroadcastProducer broadcasts the message budget (one publish per
// participating node) and, when gathering, drains one reply per consumer
// per message across the per-node gather queues, measuring RTTs.
func runBroadcastProducer(cfg Config, topo []*bgNode, bcastX string, gather bool,
	col *metrics.Collector, consumed, replied *atomic.Int64) error {
	type nodeConn struct {
		conn *amqp.Connection
		ch   *amqp.Channel
	}
	conns := make([]*nodeConn, len(topo))
	for j, n := range topo {
		conn, err := cfg.Deployment.ProducerEndpoint(n.anchor).Connect()
		if err != nil {
			return err
		}
		defer conn.Close()
		ch, err := conn.Channel()
		if err != nil {
			return err
		}
		conns[j] = &nodeConn{conn: conn, ch: ch}
	}

	window := make(chan struct{}, cfg.Window)
	wantReplies := int64(cfg.MessagesPerProducer) * int64(cfg.Consumers)
	done := make(chan error, 1)
	if gather {
		// One drain goroutine per node feeding a shared tally.
		replyEvents := make(chan uint64, 4*cfg.Window)
		for j, n := range topo {
			rch, err := conns[j].conn.Channel()
			if err != nil {
				return err
			}
			repliesCh, err := rch.Consume(n.gatherQ, fmt.Sprintf("bg-prod-%d", j), true, false, false, false, nil)
			if err != nil {
				return err
			}
			go func() {
				for d := range repliesCh {
					replyEvents <- d.Timestamp
				}
			}()
		}
		go func() {
			var got int64
			for ts := range replyEvents {
				rtt := time.Duration(time.Now().UnixNano() - int64(ts))
				if rtt > 0 {
					col.AddRTT(rtt)
				}
				replied.Add(1)
				got++
				if got%int64(cfg.Consumers) == 0 {
					<-window
				}
				if got >= wantReplies {
					done <- nil
					return
				}
			}
		}()
	}

	gen := workload.NewGenerator(cfg.Workload, 0)
	for seq := uint64(0); seq < uint64(cfg.MessagesPerProducer); seq++ {
		body, err := gen.Payload(seq)
		if err != nil {
			return err
		}
		if gather {
			window <- struct{}{}
		} else if seq >= uint64(cfg.Window) {
			// Broadcast-only flow control: stay at most Window
			// broadcasts ahead of the slowest consumers in aggregate,
			// so no subscriber queue ever overflows.
			floor := int64(seq-uint64(cfg.Window)+1) * int64(cfg.Consumers)
			deadline := time.Now().Add(cfg.Timeout)
			for consumed.Load() < floor {
				if time.Now().After(deadline) {
					return fmt.Errorf("pattern: broadcast stalled at %d/%d deliveries",
						consumed.Load(), floor)
				}
				time.Sleep(time.Millisecond)
			}
		}
		ts := uint64(time.Now().UnixNano())
		for _, nc := range conns {
			err = nc.ch.Publish(bcastX, "", false, false, amqp.Publishing{
				ContentType:   "application/octet-stream",
				CorrelationID: fmt.Sprintf("bcast-%d", seq),
				Timestamp:     ts,
				Body:          body,
			})
			if err != nil {
				return err
			}
		}
		col.AddProduced(1)
	}
	if !gather {
		return nil
	}
	select {
	case err := <-done:
		return err
	case <-time.After(cfg.Timeout):
		return fmt.Errorf("pattern: timed out gathering replies (%d/%d)", replied.Load(), wantReplies)
	}
}
