// Command expdriver reruns the paper's complete evaluation (§5) and prints
// one table per figure: throughput for the work-sharing pattern (Figure 4),
// median RTT and CDF probes for work sharing with feedback (Figures 5-6),
// and broadcast / broadcast-and-gather results (Figures 7-8), plus the
// derived overhead-vs-DTS numbers quoted in the text.
//
// Every data point is one declarative scenario.Spec executed by the shared
// scenario engine — the same specs `streamsim scenario` runs from JSON.
//
// Usage:
//
//	expdriver [-scale 0.1] [-cons 1,4,16] [-msgs 48] [-runs 1] [-fig all]
//
// Larger -scale and -msgs approach the paper's full-size configuration at
// the cost of wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/scenario"
	"ds2hpc/internal/workload"
)

var (
	scaleFlag   = flag.Float64("scale", 0.1, "fabric scale factor (1.0 = paper testbed rates)")
	consFlag    = flag.String("cons", "1,4,16", "comma-separated consumer counts")
	msgsFlag    = flag.Int("msgs", 48, "messages per producer (Dstream; others scaled down)")
	runsFlag    = flag.Int("runs", 1, "runs per data point (paper: 3)")
	figFlag     = flag.String("fig", "all", "which figure to run: 4a,4b,5,6a,6b,7a,7b,8,overhead,all, or scale/failover (not in all)")
	clientsFlag = flag.String("clients", "1000,10000", "comma-separated total client counts for -fig scale (10⁴–10⁵ range supported)")
	budgetFlag  = flag.Int("budget", 128, "goroutine budget per cell for -fig scale (see tuning.goroutine_budget)")
	parFlag     = flag.Int("par", 2, "concurrent sweep cells for -fig scale (each cell deploys its own broker)")
)

func main() {
	flag.Parse()
	counts, err := parseCounts(*consFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expdriver:", err)
		os.Exit(1)
	}
	d := &driver{counts: counts}
	want := func(f string) bool { return *figFlag == "all" || *figFlag == f }

	if want("4a") {
		d.figure("Figure 4a: Dstream throughput, work sharing (msgs/sec)",
			workload.Dstream, "work-sharing", core.AllArchitectures, false)
	}
	if want("4b") {
		d.figure("Figure 4b: Lstream throughput, work sharing (msgs/sec)",
			workload.Lstream, "work-sharing", core.AllArchitectures, false)
	}
	if want("5") {
		d.cdf("Figure 5: RTT CDF probes, work sharing with feedback")
	}
	if want("6a") {
		d.figure("Figure 6a: Dstream median RTT, work sharing with feedback (ms)",
			workload.Dstream, "work-sharing-feedback", fig56Archs, true)
	}
	if want("6b") {
		d.figure("Figure 6b: Lstream median RTT, work sharing with feedback (ms)",
			workload.Lstream, "work-sharing-feedback", fig56Archs, true)
	}
	if want("7a") {
		d.figure("Figure 7a: generic broadcast throughput (msgs/sec)",
			workload.Generic, "broadcast", fig78Archs, false)
	}
	if want("7b") {
		d.figure("Figure 7b: generic broadcast+gather median RTT (ms)",
			workload.Generic, "broadcast-gather", fig78Archs, true)
	}
	if want("8") {
		d.fig8()
	}
	if want("overhead") {
		d.overhead()
	}
	// The client-scale sweep reaches 10⁴–10⁵ clients per cell; it runs
	// only when asked for, never as part of -fig all.
	if *figFlag == "scale" {
		d.clientScale()
	}
	// The failover drill kills a queue-master mid-run on a clustered
	// deployment; like scale, it runs only when asked for.
	if *figFlag == "failover" {
		d.failover()
	}
	if d.failed {
		os.Exit(1)
	}
}

var fig56Archs = []core.ArchitectureName{core.DTS, core.PRSHAProxy, core.PRSHAProxy4Conns, core.MSS}
var fig78Archs = []core.ArchitectureName{core.DTS, core.PRSHAProxy, core.MSS}

type driver struct {
	counts []int
	failed bool
}

func (d *driver) spec(w workload.Workload, pat string, arch core.ArchitectureName) scenario.Spec {
	msgs := *msgsFlag
	switch w.Name {
	case "Lstream":
		msgs = max(2, msgs/6)
	case "generic":
		msgs = max(2, msgs/8)
	}
	spec := scenario.Spec{
		Deployment: scenario.Deployment{
			Architecture:     string(arch),
			Nodes:            3,
			FabricScale:      *scaleFlag,
			MemoryLimitBytes: 1 << 30,
		},
		Workload:            scenario.Workload{Name: w.Name, PayloadDivisor: 8},
		Pattern:             pat,
		MessagesPerProducer: msgs,
		Runs:                *runsFlag,
		Tuning:              scenario.Tuning{Window: 4},
		// One deadline covers the whole run (production plus drain), so
		// allow what the old per-phase 5-minute budgets added up to.
		TimeoutMS: (15 * time.Minute).Milliseconds(),
	}
	if pat == "work-sharing-feedback" {
		spec.Tuning.Window = 2
	}
	return spec
}

// figure runs one throughput or RTT sweep and prints the paper-style table:
// architectures as rows, consumer counts as columns.
func (d *driver) figure(title string, w workload.Workload, pat string,
	archs []core.ArchitectureName, rtt bool) {
	fmt.Println("==", title)
	header := []string{"architecture"}
	for _, n := range d.counts {
		header = append(header, fmt.Sprintf("cons=%d", n))
	}
	rows := [][]string{header}
	for _, arch := range archs {
		row := []string{string(arch)}
		points, err := scenario.Sweep(context.Background(), d.spec(w, pat, arch), d.counts)
		for _, pt := range points {
			switch {
			case pt.Infeasible:
				row = append(row, "-")
			case rtt:
				row = append(row, fmt.Sprintf("%.1f", float64(pt.Result.MedianRTT())/1e6))
			default:
				row = append(row, fmt.Sprintf("%.0f", pt.Result.Throughput))
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %s/%s: %v\n", title, arch, err)
			d.failed = true
			for len(row) < len(header) {
				row = append(row, "ERR")
			}
		}
		rows = append(rows, row)
		printHealth(string(arch), points)
	}
	printTable(rows)
	fmt.Println()
}

// printHealth surfaces any health transitions a sweep's cells recorded,
// one line per event, labeled with the cell's consumer count. Healthy
// sweeps print nothing.
func printHealth(label string, points []*scenario.Report) {
	for _, pt := range points {
		for _, e := range pt.HealthEvents {
			fmt.Printf("   health %s cons=%d: %s\n", label, pt.Spec.Consumers, e)
		}
	}
}

// cdf prints Figure 5's distribution probes at a high consumer count.
func (d *driver) cdf(title string) {
	fmt.Println("==", title)
	n := d.counts[len(d.counts)-1]
	rows := [][]string{{"workload", "architecture", "p50_ms", "p80_ms", "p95_ms", "frac<2*p50"}}
	for _, w := range []workload.Workload{workload.Dstream, workload.Lstream} {
		for _, arch := range fig56Archs {
			spec := d.spec(w, "work-sharing-feedback", arch)
			spec.Consumers = n
			spec.Producers = n
			rep, err := scenario.Run(context.Background(), spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: fig5 %s/%s: %v\n", w.Name, arch, err)
				d.failed = true
				continue
			}
			r := rep.Result
			rows = append(rows, []string{
				w.Name, string(arch),
				fmt.Sprintf("%.1f", float64(r.PercentileRTT(50))/1e6),
				fmt.Sprintf("%.1f", float64(r.PercentileRTT(80))/1e6),
				fmt.Sprintf("%.1f", float64(r.PercentileRTT(95))/1e6),
				fmt.Sprintf("%.2f", r.FractionUnder(2*r.MedianRTT())),
			})
		}
	}
	printTable(rows)
	fmt.Println()
}

func (d *driver) fig8() {
	fmt.Println("== Figure 8: broadcast+gather RTT CDF probes")
	n := d.counts[len(d.counts)-1]
	rows := [][]string{{"architecture", "p50_ms", "p80_ms", "p95_ms"}}
	for _, arch := range fig78Archs {
		spec := d.spec(workload.Generic, "broadcast-gather", arch)
		spec.Consumers = n
		spec.Producers = 1
		rep, err := scenario.Run(context.Background(), spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: fig8 %s: %v\n", arch, err)
			d.failed = true
			continue
		}
		r := rep.Result
		rows = append(rows, []string{
			string(arch),
			fmt.Sprintf("%.1f", float64(r.PercentileRTT(50))/1e6),
			fmt.Sprintf("%.1f", float64(r.PercentileRTT(80))/1e6),
			fmt.Sprintf("%.1f", float64(r.PercentileRTT(95))/1e6),
		})
	}
	printTable(rows)
	fmt.Println()
}

// overhead prints the §5.3 derived metric at the mid consumer count.
func (d *driver) overhead() {
	fmt.Println("== Streaming overhead vs DTS (work sharing, Dstream)")
	n := d.counts[len(d.counts)/2]
	base := d.point(core.DTS, n)
	if base == nil {
		return
	}
	rows := [][]string{{"architecture", "throughput", "overhead_x"}}
	rows = append(rows, []string{"DTS", fmt.Sprintf("%.0f", base.Throughput), "1.00"})
	for _, arch := range []core.ArchitectureName{core.PRSHAProxy, core.MSS} {
		r := d.point(arch, n)
		if r == nil {
			continue
		}
		rows = append(rows, []string{string(arch),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", metrics.Overhead(base.Throughput, r.Throughput))})
	}
	printTable(rows)
	fmt.Println()
}

// scaleArchs are the rows of the client-scale grid; Stunnel variants are
// excluded because their connection limit makes every large cell
// infeasible by construction.
var scaleArchs = []core.ArchitectureName{core.DTS, core.PRSHAProxy, core.MSS}

// clientScale runs the clients×architecture grid (-fig scale): each cell
// is a work-sharing run with c/2 producers and c/2 consumers multiplexed
// onto pooled connections under a goroutine budget, and independent cells
// run -par at a time on their own deployments. Client NIC shaping and LB
// control-plane costs are disabled so the grid measures the client
// runtime, not the simulated fabric.
func (d *driver) clientScale() {
	clients, err := parseCounts(*clientsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expdriver:", err)
		d.failed = true
		return
	}
	fmt.Printf("== Client scale: work-sharing throughput (msgs/sec), goroutine budget %d\n", *budgetFlag)
	header := []string{"architecture"}
	halves := make([]int, len(clients))
	for i, c := range clients {
		header = append(header, fmt.Sprintf("clients=%d", c))
		halves[i] = max(1, c/2)
	}
	rows := [][]string{header}
	for _, arch := range scaleArchs {
		spec := scenario.Spec{
			Deployment: scenario.Deployment{
				Architecture:         string(arch),
				Nodes:                3,
				FabricScale:          *scaleFlag,
				MemoryLimitBytes:     1 << 30,
				DisableClientShaping: true,
				FastControlPlane:     true,
			},
			Workload:            scenario.Workload{Name: "Dstream", PayloadBytes: 256},
			Pattern:             "work-sharing",
			MessagesPerProducer: 1,
			Runs:                1,
			Tuning: scenario.Tuning{
				WorkQueues:      8,
				Prefetch:        8,
				Window:          4,
				GoroutineBudget: *budgetFlag,
			},
			TimeoutMS: (15 * time.Minute).Milliseconds(),
		}
		row := []string{string(arch)}
		points, err := scenario.Sweep(context.Background(), spec, halves,
			scenario.WithParallel(*parFlag))
		for _, pt := range points {
			if pt.Infeasible {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0f", pt.Result.Throughput))
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: scale/%s: %v\n", arch, err)
			d.failed = true
			for len(row) < len(header) {
				row = append(row, "ERR")
			}
		}
		rows = append(rows, row)
	}
	printTable(rows)
	fmt.Println()
}

// failover runs the clustered node-kill drill (-fig failover): a 3-node
// ring-placed DTS deployment, durable work-sharing queues, and a fault
// that hard-kills the busiest queue master 40% of the way through. The
// table shows the failover counters next to the delivered count — zero
// confirmed loss means consumed >= the message budget.
func (d *driver) failover() {
	fmt.Println("== Cluster failover: node-kill on the busiest queue master (DTS, 3 nodes, ring placement)")
	spec := scenario.Spec{
		Deployment: scenario.Deployment{
			Architecture:         string(core.DTS),
			ClusterNodes:         3,
			Placement:            "ring",
			FabricScale:          *scaleFlag,
			DisableClientShaping: true,
			FastControlPlane:     true,
			Reconnect:            &scenario.Reconnect{MaxAttempts: 400, DelayMS: 5, MaxDelayMS: 25},
			Durability:           &scenario.Durability{Fsync: "always"},
		},
		Workload:            scenario.Workload{Name: "Dstream", PayloadBytes: 2048},
		Pattern:             "work-sharing",
		Producers:           6,
		Consumers:           6,
		MessagesPerProducer: *msgsFlag,
		Runs:                *runsFlag,
		Tuning:              scenario.Tuning{WorkQueues: 6},
		Faults:              []scenario.Fault{{Kind: scenario.FaultNodeKill, AtFraction: 0.4}},
		TimeoutMS:           (15 * time.Minute).Milliseconds(),
	}
	rep, err := scenario.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: failover: %v\n", err)
		d.failed = true
		return
	}
	printTable([][]string{
		{"consumed", "node_kills", "redirects", "federated", "health_events", "throughput"},
		{
			fmt.Sprintf("%d", rep.Result.Consumed),
			fmt.Sprintf("%d", rep.NodeKills),
			fmt.Sprintf("%d", rep.Redirects),
			fmt.Sprintf("%d", rep.FederatedMsgs),
			fmt.Sprintf("%d", len(rep.HealthEvents)),
			fmt.Sprintf("%.0f", rep.Result.Throughput),
		},
	})
	printHealth("failover", []*scenario.Report{rep})
	fmt.Println()
}

func (d *driver) point(arch core.ArchitectureName, consumers int) *metrics.Result {
	spec := d.spec(workload.Dstream, "work-sharing", arch)
	spec.Consumers = consumers
	spec.Producers = consumers
	rep, err := scenario.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: overhead %s: %v\n", arch, err)
		d.failed = true
		return nil
	}
	return rep.Result
}

func printTable(rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad consumer count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
