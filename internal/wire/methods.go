package wire

import "fmt"

// Class identifiers, following the AMQP 0-9-1 numbering that RabbitMQ uses.
const (
	ClassConnection uint16 = 10
	ClassChannel    uint16 = 20
	ClassExchange   uint16 = 40
	ClassQueue      uint16 = 50
	ClassBasic      uint16 = 60
	ClassConfirm    uint16 = 85
)

// Reply codes used in connection.close / channel.close and basic.return.
const (
	ReplySuccess            uint16 = 200
	ReplyRedirect           uint16 = 302
	ReplyContentTooLarge    uint16 = 311
	ReplyNoRoute            uint16 = 312
	ReplyNoConsumers        uint16 = 313
	ReplyAccessRefused      uint16 = 403
	ReplyNotFound           uint16 = 404
	ReplyResourceLocked     uint16 = 405
	ReplyPreconditionFailed uint16 = 406
	ReplyFrameError         uint16 = 501
	ReplySyntaxError        uint16 = 502
	ReplyCommandInvalid     uint16 = 503
	ReplyChannelError       uint16 = 504
	ReplyResourceError      uint16 = 506
	ReplyNotAllowed         uint16 = 530
	ReplyNotImplemented     uint16 = 540
	ReplyInternalError      uint16 = 541
)

// Method is a protocol method carried in a method frame.
type Method interface {
	// ID returns the class and method identifiers.
	ID() (classID, methodID uint16)
	// Marshal appends the method arguments (after class/method ids).
	Marshal(w *Writer)
	// Unmarshal parses the method arguments.
	Unmarshal(r *Reader)
}

// EncodeMethod serializes m into a method-frame payload.
func EncodeMethod(m Method) ([]byte, error) {
	w := NewWriter()
	c, id := m.ID()
	w.Short(c)
	w.Short(id)
	m.Marshal(w)
	return w.Bytes(), w.Err()
}

// ParseMethod decodes a method-frame payload into a typed Method.
func ParseMethod(payload []byte) (Method, error) {
	r := NewReader(payload)
	classID := r.Short()
	methodID := r.Short()
	if r.Err() != nil {
		return nil, r.Err()
	}
	m := newMethod(classID, methodID)
	if m == nil {
		return nil, fmt.Errorf("wire: unknown method %d.%d", classID, methodID)
	}
	m.Unmarshal(r)
	return m, r.Err()
}

func newMethod(classID, methodID uint16) Method {
	switch classID {
	case ClassConnection:
		switch methodID {
		case 10:
			return &ConnectionStart{}
		case 11:
			return &ConnectionStartOk{}
		case 30:
			return &ConnectionTune{}
		case 31:
			return &ConnectionTuneOk{}
		case 40:
			return &ConnectionOpen{}
		case 41:
			return &ConnectionOpenOk{}
		case 50:
			return &ConnectionClose{}
		case 51:
			return &ConnectionCloseOk{}
		}
	case ClassChannel:
		switch methodID {
		case 10:
			return &ChannelOpen{}
		case 11:
			return &ChannelOpenOk{}
		case 20:
			return &ChannelFlow{}
		case 21:
			return &ChannelFlowOk{}
		case 40:
			return &ChannelClose{}
		case 41:
			return &ChannelCloseOk{}
		}
	case ClassExchange:
		switch methodID {
		case 10:
			return &ExchangeDeclare{}
		case 11:
			return &ExchangeDeclareOk{}
		case 20:
			return &ExchangeDelete{}
		case 21:
			return &ExchangeDeleteOk{}
		}
	case ClassQueue:
		switch methodID {
		case 10:
			return &QueueDeclare{}
		case 11:
			return &QueueDeclareOk{}
		case 20:
			return &QueueBind{}
		case 21:
			return &QueueBindOk{}
		case 30:
			return &QueuePurge{}
		case 31:
			return &QueuePurgeOk{}
		case 40:
			return &QueueDelete{}
		case 41:
			return &QueueDeleteOk{}
		case 50:
			return &QueueUnbind{}
		case 51:
			return &QueueUnbindOk{}
		}
	case ClassBasic:
		switch methodID {
		case 10:
			return &BasicQos{}
		case 11:
			return &BasicQosOk{}
		case 20:
			return &BasicConsume{}
		case 21:
			return &BasicConsumeOk{}
		case 30:
			return &BasicCancel{}
		case 31:
			return &BasicCancelOk{}
		case 40:
			return &BasicPublish{}
		case 50:
			return &BasicReturn{}
		case 60:
			return &BasicDeliver{}
		case 70:
			return &BasicGet{}
		case 71:
			return &BasicGetOk{}
		case 72:
			return &BasicGetEmpty{}
		case 80:
			return &BasicAck{}
		case 90:
			return &BasicReject{}
		case 120:
			return &BasicNack{}
		}
	case ClassConfirm:
		switch methodID {
		case 10:
			return &ConfirmSelect{}
		case 11:
			return &ConfirmSelectOk{}
		}
	}
	return nil
}

// ---------------------------------------------------------------- connection

// ConnectionStart opens protocol negotiation (server → client).
type ConnectionStart struct {
	VersionMajor     byte
	VersionMinor     byte
	ServerProperties Table
	Mechanisms       string
	Locales          string
}

func (m *ConnectionStart) ID() (uint16, uint16) { return ClassConnection, 10 }
func (m *ConnectionStart) Marshal(w *Writer) {
	w.Octet(m.VersionMajor)
	w.Octet(m.VersionMinor)
	w.WriteTable(m.ServerProperties)
	w.LongStr([]byte(m.Mechanisms))
	w.LongStr([]byte(m.Locales))
}
func (m *ConnectionStart) Unmarshal(r *Reader) {
	m.VersionMajor = r.Octet()
	m.VersionMinor = r.Octet()
	m.ServerProperties = r.ReadTable()
	m.Mechanisms = string(r.LongStr())
	m.Locales = string(r.LongStr())
}

// ConnectionStartOk answers negotiation (client → server).
type ConnectionStartOk struct {
	ClientProperties Table
	Mechanism        string
	Response         []byte
	Locale           string
}

func (m *ConnectionStartOk) ID() (uint16, uint16) { return ClassConnection, 11 }
func (m *ConnectionStartOk) Marshal(w *Writer) {
	w.WriteTable(m.ClientProperties)
	w.ShortStr(m.Mechanism)
	w.LongStr(m.Response)
	w.ShortStr(m.Locale)
}
func (m *ConnectionStartOk) Unmarshal(r *Reader) {
	m.ClientProperties = r.ReadTable()
	m.Mechanism = r.ShortStr()
	m.Response = append([]byte(nil), r.LongStr()...)
	m.Locale = r.ShortStr()
}

// ConnectionTune proposes connection limits (server → client).
type ConnectionTune struct {
	ChannelMax uint16
	FrameMax   uint32
	Heartbeat  uint16
}

func (m *ConnectionTune) ID() (uint16, uint16) { return ClassConnection, 30 }
func (m *ConnectionTune) Marshal(w *Writer) {
	w.Short(m.ChannelMax)
	w.Long(m.FrameMax)
	w.Short(m.Heartbeat)
}
func (m *ConnectionTune) Unmarshal(r *Reader) {
	m.ChannelMax = r.Short()
	m.FrameMax = r.Long()
	m.Heartbeat = r.Short()
}

// ConnectionTuneOk accepts connection limits (client → server).
type ConnectionTuneOk struct {
	ChannelMax uint16
	FrameMax   uint32
	Heartbeat  uint16
}

func (m *ConnectionTuneOk) ID() (uint16, uint16) { return ClassConnection, 31 }
func (m *ConnectionTuneOk) Marshal(w *Writer) {
	w.Short(m.ChannelMax)
	w.Long(m.FrameMax)
	w.Short(m.Heartbeat)
}
func (m *ConnectionTuneOk) Unmarshal(r *Reader) {
	m.ChannelMax = r.Short()
	m.FrameMax = r.Long()
	m.Heartbeat = r.Short()
}

// ConnectionOpen selects a virtual host.
type ConnectionOpen struct {
	VirtualHost string
}

func (m *ConnectionOpen) ID() (uint16, uint16) { return ClassConnection, 40 }
func (m *ConnectionOpen) Marshal(w *Writer) {
	w.ShortStr(m.VirtualHost)
	w.ShortStr("") // reserved
	w.Bool(false)  // reserved
}
func (m *ConnectionOpen) Unmarshal(r *Reader) {
	m.VirtualHost = r.ShortStr()
	r.ShortStr()
	r.Bool()
}

// ConnectionOpenOk confirms virtual host selection.
type ConnectionOpenOk struct{}

func (m *ConnectionOpenOk) ID() (uint16, uint16) { return ClassConnection, 41 }
func (m *ConnectionOpenOk) Marshal(w *Writer)    { w.ShortStr("") }
func (m *ConnectionOpenOk) Unmarshal(r *Reader)  { r.ShortStr() }

// ConnectionClose initiates orderly shutdown.
type ConnectionClose struct {
	ReplyCode uint16
	ReplyText string
	ClassID   uint16
	MethodID  uint16
}

func (m *ConnectionClose) ID() (uint16, uint16) { return ClassConnection, 50 }
func (m *ConnectionClose) Marshal(w *Writer) {
	w.Short(m.ReplyCode)
	w.ShortStr(m.ReplyText)
	w.Short(m.ClassID)
	w.Short(m.MethodID)
}
func (m *ConnectionClose) Unmarshal(r *Reader) {
	m.ReplyCode = r.Short()
	m.ReplyText = r.ShortStr()
	m.ClassID = r.Short()
	m.MethodID = r.Short()
}

// ConnectionCloseOk confirms shutdown.
type ConnectionCloseOk struct{}

func (m *ConnectionCloseOk) ID() (uint16, uint16) { return ClassConnection, 51 }
func (m *ConnectionCloseOk) Marshal(*Writer)      {}
func (m *ConnectionCloseOk) Unmarshal(*Reader)    {}

// ------------------------------------------------------------------- channel

// ChannelOpen opens a channel.
type ChannelOpen struct{}

func (m *ChannelOpen) ID() (uint16, uint16) { return ClassChannel, 10 }
func (m *ChannelOpen) Marshal(w *Writer)    { w.ShortStr("") }
func (m *ChannelOpen) Unmarshal(r *Reader)  { r.ShortStr() }

// ChannelOpenOk confirms channel open.
type ChannelOpenOk struct{}

func (m *ChannelOpenOk) ID() (uint16, uint16) { return ClassChannel, 11 }
func (m *ChannelOpenOk) Marshal(w *Writer)    { w.LongStr(nil) }
func (m *ChannelOpenOk) Unmarshal(r *Reader)  { r.LongStr() }

// ChannelFlow pauses or resumes delivery on a channel.
type ChannelFlow struct{ Active bool }

func (m *ChannelFlow) ID() (uint16, uint16) { return ClassChannel, 20 }
func (m *ChannelFlow) Marshal(w *Writer)    { w.Bool(m.Active) }
func (m *ChannelFlow) Unmarshal(r *Reader)  { m.Active = r.Bool() }

// ChannelFlowOk confirms a flow change.
type ChannelFlowOk struct{ Active bool }

func (m *ChannelFlowOk) ID() (uint16, uint16) { return ClassChannel, 21 }
func (m *ChannelFlowOk) Marshal(w *Writer)    { w.Bool(m.Active) }
func (m *ChannelFlowOk) Unmarshal(r *Reader)  { m.Active = r.Bool() }

// ChannelClose closes a channel with a reason.
type ChannelClose struct {
	ReplyCode uint16
	ReplyText string
	ClassID   uint16
	MethodID  uint16
}

func (m *ChannelClose) ID() (uint16, uint16) { return ClassChannel, 40 }
func (m *ChannelClose) Marshal(w *Writer) {
	w.Short(m.ReplyCode)
	w.ShortStr(m.ReplyText)
	w.Short(m.ClassID)
	w.Short(m.MethodID)
}
func (m *ChannelClose) Unmarshal(r *Reader) {
	m.ReplyCode = r.Short()
	m.ReplyText = r.ShortStr()
	m.ClassID = r.Short()
	m.MethodID = r.Short()
}

// ChannelCloseOk confirms channel close.
type ChannelCloseOk struct{}

func (m *ChannelCloseOk) ID() (uint16, uint16) { return ClassChannel, 41 }
func (m *ChannelCloseOk) Marshal(*Writer)      {}
func (m *ChannelCloseOk) Unmarshal(*Reader)    {}

// ------------------------------------------------------------------ exchange

// ExchangeDeclare creates an exchange.
type ExchangeDeclare struct {
	Exchange   string
	Type       string
	Passive    bool
	Durable    bool
	AutoDelete bool
	Internal   bool
	NoWait     bool
	Arguments  Table
}

func (m *ExchangeDeclare) ID() (uint16, uint16) { return ClassExchange, 10 }
func (m *ExchangeDeclare) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.Type)
	w.Bool(m.Passive)
	w.Bool(m.Durable)
	w.Bool(m.AutoDelete)
	w.Bool(m.Internal)
	w.Bool(m.NoWait)
	w.WriteTable(m.Arguments)
}
func (m *ExchangeDeclare) Unmarshal(r *Reader) {
	r.Short()
	m.Exchange = r.ShortStr()
	m.Type = r.ShortStr()
	m.Passive = r.Bool()
	m.Durable = r.Bool()
	m.AutoDelete = r.Bool()
	m.Internal = r.Bool()
	m.NoWait = r.Bool()
	m.Arguments = r.ReadTable()
}

// ExchangeDeclareOk confirms exchange declaration.
type ExchangeDeclareOk struct{}

func (m *ExchangeDeclareOk) ID() (uint16, uint16) { return ClassExchange, 11 }
func (m *ExchangeDeclareOk) Marshal(*Writer)      {}
func (m *ExchangeDeclareOk) Unmarshal(*Reader)    {}

// ExchangeDelete removes an exchange.
type ExchangeDelete struct {
	Exchange string
	IfUnused bool
	NoWait   bool
}

func (m *ExchangeDelete) ID() (uint16, uint16) { return ClassExchange, 20 }
func (m *ExchangeDelete) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Exchange)
	w.Bool(m.IfUnused)
	w.Bool(m.NoWait)
}
func (m *ExchangeDelete) Unmarshal(r *Reader) {
	r.Short()
	m.Exchange = r.ShortStr()
	m.IfUnused = r.Bool()
	m.NoWait = r.Bool()
}

// ExchangeDeleteOk confirms exchange deletion.
type ExchangeDeleteOk struct{}

func (m *ExchangeDeleteOk) ID() (uint16, uint16) { return ClassExchange, 21 }
func (m *ExchangeDeleteOk) Marshal(*Writer)      {}
func (m *ExchangeDeleteOk) Unmarshal(*Reader)    {}

// --------------------------------------------------------------------- queue

// QueueDeclare creates a queue.
type QueueDeclare struct {
	Queue      string
	Passive    bool
	Durable    bool
	Exclusive  bool
	AutoDelete bool
	NoWait     bool
	Arguments  Table
}

func (m *QueueDeclare) ID() (uint16, uint16) { return ClassQueue, 10 }
func (m *QueueDeclare) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.Bool(m.Passive)
	w.Bool(m.Durable)
	w.Bool(m.Exclusive)
	w.Bool(m.AutoDelete)
	w.Bool(m.NoWait)
	w.WriteTable(m.Arguments)
}
func (m *QueueDeclare) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.Passive = r.Bool()
	m.Durable = r.Bool()
	m.Exclusive = r.Bool()
	m.AutoDelete = r.Bool()
	m.NoWait = r.Bool()
	m.Arguments = r.ReadTable()
}

// QueueDeclareOk reports the declared queue and its counters.
type QueueDeclareOk struct {
	Queue         string
	MessageCount  uint32
	ConsumerCount uint32
}

func (m *QueueDeclareOk) ID() (uint16, uint16) { return ClassQueue, 11 }
func (m *QueueDeclareOk) Marshal(w *Writer) {
	w.ShortStr(m.Queue)
	w.Long(m.MessageCount)
	w.Long(m.ConsumerCount)
}
func (m *QueueDeclareOk) Unmarshal(r *Reader) {
	m.Queue = r.ShortStr()
	m.MessageCount = r.Long()
	m.ConsumerCount = r.Long()
}

// QueueBind binds a queue to an exchange.
type QueueBind struct {
	Queue      string
	Exchange   string
	RoutingKey string
	NoWait     bool
	Arguments  Table
}

func (m *QueueBind) ID() (uint16, uint16) { return ClassQueue, 20 }
func (m *QueueBind) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
	w.Bool(m.NoWait)
	w.WriteTable(m.Arguments)
}
func (m *QueueBind) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
	m.NoWait = r.Bool()
	m.Arguments = r.ReadTable()
}

// QueueBindOk confirms a binding.
type QueueBindOk struct{}

func (m *QueueBindOk) ID() (uint16, uint16) { return ClassQueue, 21 }
func (m *QueueBindOk) Marshal(*Writer)      {}
func (m *QueueBindOk) Unmarshal(*Reader)    {}

// QueueUnbind removes a binding.
type QueueUnbind struct {
	Queue      string
	Exchange   string
	RoutingKey string
	Arguments  Table
}

func (m *QueueUnbind) ID() (uint16, uint16) { return ClassQueue, 50 }
func (m *QueueUnbind) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
	w.WriteTable(m.Arguments)
}
func (m *QueueUnbind) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
	m.Arguments = r.ReadTable()
}

// QueueUnbindOk confirms unbinding.
type QueueUnbindOk struct{}

func (m *QueueUnbindOk) ID() (uint16, uint16) { return ClassQueue, 51 }
func (m *QueueUnbindOk) Marshal(*Writer)      {}
func (m *QueueUnbindOk) Unmarshal(*Reader)    {}

// QueuePurge drops all ready messages from a queue.
type QueuePurge struct {
	Queue  string
	NoWait bool
}

func (m *QueuePurge) ID() (uint16, uint16) { return ClassQueue, 30 }
func (m *QueuePurge) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.Bool(m.NoWait)
}
func (m *QueuePurge) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.NoWait = r.Bool()
}

// QueuePurgeOk reports how many messages were purged.
type QueuePurgeOk struct{ MessageCount uint32 }

func (m *QueuePurgeOk) ID() (uint16, uint16) { return ClassQueue, 31 }
func (m *QueuePurgeOk) Marshal(w *Writer)    { w.Long(m.MessageCount) }
func (m *QueuePurgeOk) Unmarshal(r *Reader)  { m.MessageCount = r.Long() }

// QueueDelete removes a queue.
type QueueDelete struct {
	Queue    string
	IfUnused bool
	IfEmpty  bool
	NoWait   bool
}

func (m *QueueDelete) ID() (uint16, uint16) { return ClassQueue, 40 }
func (m *QueueDelete) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.Bool(m.IfUnused)
	w.Bool(m.IfEmpty)
	w.Bool(m.NoWait)
}
func (m *QueueDelete) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.IfUnused = r.Bool()
	m.IfEmpty = r.Bool()
	m.NoWait = r.Bool()
}

// QueueDeleteOk reports how many messages were dropped with the queue.
type QueueDeleteOk struct{ MessageCount uint32 }

func (m *QueueDeleteOk) ID() (uint16, uint16) { return ClassQueue, 41 }
func (m *QueueDeleteOk) Marshal(w *Writer)    { w.Long(m.MessageCount) }
func (m *QueueDeleteOk) Unmarshal(r *Reader)  { m.MessageCount = r.Long() }

// --------------------------------------------------------------------- basic

// BasicQos sets the prefetch window for a channel (or connection if Global).
type BasicQos struct {
	PrefetchSize  uint32
	PrefetchCount uint16
	Global        bool
}

func (m *BasicQos) ID() (uint16, uint16) { return ClassBasic, 10 }
func (m *BasicQos) Marshal(w *Writer) {
	w.Long(m.PrefetchSize)
	w.Short(m.PrefetchCount)
	w.Bool(m.Global)
}
func (m *BasicQos) Unmarshal(r *Reader) {
	m.PrefetchSize = r.Long()
	m.PrefetchCount = r.Short()
	m.Global = r.Bool()
}

// BasicQosOk confirms a QoS change.
type BasicQosOk struct{}

func (m *BasicQosOk) ID() (uint16, uint16) { return ClassBasic, 11 }
func (m *BasicQosOk) Marshal(*Writer)      {}
func (m *BasicQosOk) Unmarshal(*Reader)    {}

// BasicConsume starts a consumer on a queue.
type BasicConsume struct {
	Queue       string
	ConsumerTag string
	NoLocal     bool
	NoAck       bool
	Exclusive   bool
	NoWait      bool
	Arguments   Table
}

func (m *BasicConsume) ID() (uint16, uint16) { return ClassBasic, 20 }
func (m *BasicConsume) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.ShortStr(m.ConsumerTag)
	w.Bool(m.NoLocal)
	w.Bool(m.NoAck)
	w.Bool(m.Exclusive)
	w.Bool(m.NoWait)
	w.WriteTable(m.Arguments)
}
func (m *BasicConsume) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.ConsumerTag = r.ShortStr()
	m.NoLocal = r.Bool()
	m.NoAck = r.Bool()
	m.Exclusive = r.Bool()
	m.NoWait = r.Bool()
	m.Arguments = r.ReadTable()
}

// BasicConsumeOk confirms consumer registration.
type BasicConsumeOk struct{ ConsumerTag string }

func (m *BasicConsumeOk) ID() (uint16, uint16) { return ClassBasic, 21 }
func (m *BasicConsumeOk) Marshal(w *Writer)    { w.ShortStr(m.ConsumerTag) }
func (m *BasicConsumeOk) Unmarshal(r *Reader)  { m.ConsumerTag = r.ShortStr() }

// BasicCancel stops a consumer.
type BasicCancel struct {
	ConsumerTag string
	NoWait      bool
}

func (m *BasicCancel) ID() (uint16, uint16) { return ClassBasic, 30 }
func (m *BasicCancel) Marshal(w *Writer) {
	w.ShortStr(m.ConsumerTag)
	w.Bool(m.NoWait)
}
func (m *BasicCancel) Unmarshal(r *Reader) {
	m.ConsumerTag = r.ShortStr()
	m.NoWait = r.Bool()
}

// BasicCancelOk confirms consumer cancellation.
type BasicCancelOk struct{ ConsumerTag string }

func (m *BasicCancelOk) ID() (uint16, uint16) { return ClassBasic, 31 }
func (m *BasicCancelOk) Marshal(w *Writer)    { w.ShortStr(m.ConsumerTag) }
func (m *BasicCancelOk) Unmarshal(r *Reader)  { m.ConsumerTag = r.ShortStr() }

// BasicPublish carries a message to an exchange; followed by header+body.
type BasicPublish struct {
	Exchange   string
	RoutingKey string
	Mandatory  bool
	Immediate  bool
}

func (m *BasicPublish) ID() (uint16, uint16) { return ClassBasic, 40 }
func (m *BasicPublish) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
	w.Bool(m.Mandatory)
	w.Bool(m.Immediate)
}
func (m *BasicPublish) Unmarshal(r *Reader) {
	r.Short()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
	m.Mandatory = r.Bool()
	m.Immediate = r.Bool()
}

// BasicReturn bounces an unroutable mandatory message back to the publisher.
type BasicReturn struct {
	ReplyCode  uint16
	ReplyText  string
	Exchange   string
	RoutingKey string
}

func (m *BasicReturn) ID() (uint16, uint16) { return ClassBasic, 50 }
func (m *BasicReturn) Marshal(w *Writer) {
	w.Short(m.ReplyCode)
	w.ShortStr(m.ReplyText)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
}
func (m *BasicReturn) Unmarshal(r *Reader) {
	m.ReplyCode = r.Short()
	m.ReplyText = r.ShortStr()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
}

// BasicDeliver pushes a message to a consumer; followed by header+body.
type BasicDeliver struct {
	ConsumerTag string
	DeliveryTag uint64
	Redelivered bool
	Exchange    string
	RoutingKey  string
}

func (m *BasicDeliver) ID() (uint16, uint16) { return ClassBasic, 60 }
func (m *BasicDeliver) Marshal(w *Writer) {
	w.ShortStr(m.ConsumerTag)
	w.LongLong(m.DeliveryTag)
	w.Bool(m.Redelivered)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
}
func (m *BasicDeliver) Unmarshal(r *Reader) {
	m.ConsumerTag = r.ShortStr()
	m.DeliveryTag = r.LongLong()
	m.Redelivered = r.Bool()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
}

// BasicGet synchronously fetches one message.
type BasicGet struct {
	Queue string
	NoAck bool
}

func (m *BasicGet) ID() (uint16, uint16) { return ClassBasic, 70 }
func (m *BasicGet) Marshal(w *Writer) {
	w.Short(0)
	w.ShortStr(m.Queue)
	w.Bool(m.NoAck)
}
func (m *BasicGet) Unmarshal(r *Reader) {
	r.Short()
	m.Queue = r.ShortStr()
	m.NoAck = r.Bool()
}

// BasicGetOk returns a message for BasicGet; followed by header+body.
type BasicGetOk struct {
	DeliveryTag  uint64
	Redelivered  bool
	Exchange     string
	RoutingKey   string
	MessageCount uint32
}

func (m *BasicGetOk) ID() (uint16, uint16) { return ClassBasic, 71 }
func (m *BasicGetOk) Marshal(w *Writer) {
	w.LongLong(m.DeliveryTag)
	w.Bool(m.Redelivered)
	w.ShortStr(m.Exchange)
	w.ShortStr(m.RoutingKey)
	w.Long(m.MessageCount)
}
func (m *BasicGetOk) Unmarshal(r *Reader) {
	m.DeliveryTag = r.LongLong()
	m.Redelivered = r.Bool()
	m.Exchange = r.ShortStr()
	m.RoutingKey = r.ShortStr()
	m.MessageCount = r.Long()
}

// BasicGetEmpty reports that the queue had no messages.
type BasicGetEmpty struct{}

func (m *BasicGetEmpty) ID() (uint16, uint16) { return ClassBasic, 72 }
func (m *BasicGetEmpty) Marshal(w *Writer)    { w.ShortStr("") }
func (m *BasicGetEmpty) Unmarshal(r *Reader)  { r.ShortStr() }

// BasicAck acknowledges one or more deliveries.
type BasicAck struct {
	DeliveryTag uint64
	Multiple    bool
}

func (m *BasicAck) ID() (uint16, uint16) { return ClassBasic, 80 }
func (m *BasicAck) Marshal(w *Writer) {
	w.LongLong(m.DeliveryTag)
	w.Bool(m.Multiple)
}
func (m *BasicAck) Unmarshal(r *Reader) {
	m.DeliveryTag = r.LongLong()
	m.Multiple = r.Bool()
}

// BasicReject rejects a single delivery.
type BasicReject struct {
	DeliveryTag uint64
	Requeue     bool
}

func (m *BasicReject) ID() (uint16, uint16) { return ClassBasic, 90 }
func (m *BasicReject) Marshal(w *Writer) {
	w.LongLong(m.DeliveryTag)
	w.Bool(m.Requeue)
}
func (m *BasicReject) Unmarshal(r *Reader) {
	m.DeliveryTag = r.LongLong()
	m.Requeue = r.Bool()
}

// BasicNack negatively acknowledges one or more deliveries.
type BasicNack struct {
	DeliveryTag uint64
	Multiple    bool
	Requeue     bool
}

func (m *BasicNack) ID() (uint16, uint16) { return ClassBasic, 120 }
func (m *BasicNack) Marshal(w *Writer) {
	w.LongLong(m.DeliveryTag)
	w.Bool(m.Multiple)
	w.Bool(m.Requeue)
}
func (m *BasicNack) Unmarshal(r *Reader) {
	m.DeliveryTag = r.LongLong()
	m.Multiple = r.Bool()
	m.Requeue = r.Bool()
}

// ------------------------------------------------------------------- confirm

// ConfirmSelect puts the channel into publisher-confirm mode.
type ConfirmSelect struct{ NoWait bool }

func (m *ConfirmSelect) ID() (uint16, uint16) { return ClassConfirm, 10 }
func (m *ConfirmSelect) Marshal(w *Writer)    { w.Bool(m.NoWait) }
func (m *ConfirmSelect) Unmarshal(r *Reader)  { m.NoWait = r.Bool() }

// ConfirmSelectOk confirms confirm mode.
type ConfirmSelectOk struct{}

func (m *ConfirmSelectOk) ID() (uint16, uint16) { return ClassConfirm, 11 }
func (m *ConfirmSelectOk) Marshal(*Writer)      {}
func (m *ConfirmSelectOk) Unmarshal(*Reader)    {}
