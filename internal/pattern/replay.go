package pattern

import (
	"fmt"

	"ds2hpc/internal/amqp"
)

// ColdReplayName is the durable cold-replay pattern: producers stream into
// one durable work queue consumed (and acked) live by a hot consumer pool,
// and once the hot phase has drained everything, a single cold consumer
// attaches at offset 0 and replays the entire retained history from the
// queue's segment log — the late-joining analysis reader the paper's
// streaming workflows assume the broker tier can serve. Run it on a
// durability-enabled deployment with full retention (retain_all), or the
// acked prefix may be compacted away before the cold consumer attaches.
const ColdReplayName = "cold-replay"

func init() {
	Register(&Graph{Name: ColdReplayName, NeedsDurability: true, Build: buildColdReplay})
}

func buildColdReplay(cfg *Config) (*Topology, error) {
	const q = "replay-q"
	total := int64(cfg.Producers) * int64(cfg.MessagesPerProducer)
	from := int64(0)
	return &Topology{
		Declare: []Declarations{{Anchor: q, Queues: []QueueDecl{{Name: q}}}},
		Producer: ProducerRole{
			Name: "rp-prod",
			Mode: FlowConfirm,
			// Each message is counted twice: once by the hot pool, once by
			// the cold replayer.
			PacePerMsg: 2,
			Legs:       func(p int) []Leg { return []Leg{{Key: q}} },
			Props: func(p int, seq uint64) amqp.Publishing {
				return amqp.Publishing{
					MessageID:    fmt.Sprintf("p%d-m%d", p, seq),
					AppID:        "streamsim",
					DeliveryMode: 2,
				}
			},
		},
		Consumers: []ConsumerRole{
			{
				Name:   "hot",
				Queue:  func(i int) string { return q },
				Counts: true,
			},
			{
				Name:       "cold",
				Count:      1,
				Queue:      func(i int) string { return q },
				Counts:     true,
				ReplayFrom: &from,
				StartAfter: total,
			},
		},
		WaitConsumed: 2 * total,
	}, nil
}
