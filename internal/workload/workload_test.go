package workload

import (
	"testing"

	"ds2hpc/internal/payload/deleria"
)

func TestTable1Characteristics(t *testing.T) {
	// The three rows of Table 1.
	if Dstream.PayloadBytes != 16*1024 {
		t.Errorf("Dstream payload = %d, want 16 KiB", Dstream.PayloadBytes)
	}
	if Dstream.EventsPerMsg != 8 {
		t.Errorf("Dstream events/msg = %d, want 8", Dstream.EventsPerMsg)
	}
	if Dstream.MPI {
		t.Error("Dstream must be non-MPI")
	}
	if Dstream.DataRateBps != 32_000_000_000 {
		t.Errorf("Dstream rate = %d, want 32 Gbps", Dstream.DataRateBps)
	}
	if Lstream.PayloadBytes != 1<<20 {
		t.Errorf("Lstream payload = %d, want 1 MiB", Lstream.PayloadBytes)
	}
	if !Lstream.MPI || Lstream.Format != FormatHDF5 {
		t.Error("Lstream must be MPI with HDF5 payloads")
	}
	if Lstream.DataRateBps != 30_000_000_000 {
		t.Errorf("Lstream rate = %d, want 30 Gbps", Lstream.DataRateBps)
	}
	if Generic.PayloadBytes != 4<<20 || Generic.EventsPerMsg != 1 {
		t.Errorf("Generic = %d bytes x%d, want 4 MiB x1", Generic.PayloadBytes, Generic.EventsPerMsg)
	}
	if Generic.DataRateBps != 25_000_000_000 {
		t.Errorf("Generic rate = %d, want 25 Gbps", Generic.DataRateBps)
	}
}

func TestByName(t *testing.T) {
	for _, w := range All {
		got, err := ByName(w.Name)
		if err != nil || got.Name != w.Name {
			t.Errorf("ByName(%s): %v", w.Name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestGeneratorDstream(t *testing.T) {
	g := NewGenerator(Dstream, 0)
	body, err := g.Payload(0)
	if err != nil {
		t.Fatal(err)
	}
	events, err := deleria.DecodeBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 {
		t.Fatalf("events = %d", len(events))
	}
	if err := Dstream.Verify(body); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorLstream(t *testing.T) {
	g := NewGenerator(Lstream, 1)
	body, err := g.Payload(5)
	if err != nil {
		t.Fatal(err)
	}
	// Encoded HDF5-lite container should be ~1 MiB.
	if len(body) < Lstream.PayloadBytes*8/10 || len(body) > Lstream.PayloadBytes*11/10 {
		t.Fatalf("payload = %d bytes", len(body))
	}
	if err := Lstream.Verify(body); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorGeneric(t *testing.T) {
	g := NewGenerator(Generic, 2)
	body, err := g.Payload(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != Generic.PayloadBytes {
		t.Fatalf("payload = %d", len(body))
	}
	if err := Generic.Verify(body); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	if err := Dstream.Verify([]byte("junk")); err == nil {
		t.Error("Dstream should reject junk")
	}
	if err := Lstream.Verify([]byte("junk")); err == nil {
		t.Error("Lstream should reject junk")
	}
	if err := Generic.Verify(nil); err == nil {
		t.Error("Generic should reject empty")
	}
}

func TestScaled(t *testing.T) {
	s := Lstream.Scaled(16)
	if s.PayloadBytes != (1<<20)/16 {
		t.Fatalf("scaled payload = %d", s.PayloadBytes)
	}
	if s.Name != Lstream.Name {
		t.Fatal("scaling must preserve identity")
	}
	if Lstream.Scaled(0).PayloadBytes != Lstream.PayloadBytes {
		t.Fatal("divisor<=1 must be identity")
	}
	// Floor at 1 KiB.
	if tiny := Dstream.Scaled(1 << 20); tiny.PayloadBytes != 1024 {
		t.Fatalf("floor = %d", tiny.PayloadBytes)
	}
}

func TestGeneratorCachesPayload(t *testing.T) {
	g := NewGenerator(Generic, 3)
	a, _ := g.Payload(0)
	b, _ := g.Payload(1)
	if &a[0] != &b[0] {
		t.Error("generic generator should reuse its payload buffer")
	}
}
