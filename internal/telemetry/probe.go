package telemetry

import "sync/atomic"

// CounterShards is the number of independently padded slots a Counter
// spreads its increments across. Power of two.
const CounterShards = 16

// CounterShard is one cache-line-padded slot of a Counter. Hot
// goroutines capture their shard once (Counter.Shard) and add to it
// directly, so concurrent instances never contend on one cache line.
type CounterShard struct {
	v atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// Add adds n to the shard.
func (s *CounterShard) Add(n int64) { s.v.Add(n) }

// Inc adds one.
func (s *CounterShard) Inc() { s.v.Add(1) }

// Counter is a monotonically increasing, lock-free event counter,
// sharded to keep concurrent hot paths off each other's cache lines.
// The zero value is ready to use.
type Counter struct {
	shards [CounterShards]CounterShard
}

// Shard returns the shard for instance i (stable for a given i). Role
// loops and per-connection goroutines capture their shard at setup so
// the per-event cost is a single uncontended atomic add.
func (c *Counter) Shard(i int) *CounterShard {
	return &c.shards[uint(i)%CounterShards]
}

// Add adds n on shard 0 — the convenience path for call sites without
// an instance identity. Hot concurrent paths should use Shard.
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the shards.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous level — queue depth, in-flight messages,
// open connections. Updates are single atomic operations.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Watermark tracks a monotonic maximum (peak queue depth, largest
// message). Record is a lock-free compare-and-swap loop that almost
// always completes in one attempt.
type Watermark struct {
	v atomic.Int64
}

// Record raises the watermark to v if v exceeds it.
func (w *Watermark) Record(v int64) {
	for {
		cur := w.v.Load()
		if v <= cur || w.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (w *Watermark) Load() int64 { return w.v.Load() }
