// Package seglog is the broker's durable queue storage: an append-only,
// CRC-framed segment log with fsync policy knobs, head compaction of
// fully-acked segments, and tail-following replay readers.
//
// One Log backs one durable queue. Publishes append data records (the
// message envelope, properties and body, framed per record.go) and are
// assigned monotonically increasing offsets; acknowledgements append ack
// records naming the offset they retire. Recovery on Open scans the
// segment chain, truncates a torn or corrupt tail to the longest prefix of
// intact records, and hands back every data record without a matching ack
// so the broker can rebuild queue state. Appends spill the broker's
// refcounted wire-loan bodies straight into the buffered segment writer —
// no intermediate heap copy — so durable publishing stays within the
// zero-copy data plane budget.
//
// Crash consistency: with FsyncAlways an append is on stable storage
// before it returns, which is what gives the broker confirm-implies-
// durable. FsyncNever and FsyncInterval trade that for throughput: a
// process crash loses at most the unflushed write buffer (and, for a host
// crash, the OS page cache); recovery still finds a clean record prefix.
// What is never guaranteed: records past the first damaged byte are
// discarded, even if later bytes look intact — replay is a prefix, not a
// patchwork.
package seglog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// ErrClosed reports use of a closed (or crashed) log.
var ErrClosed = errors.New("seglog: log closed")

// Telemetry probes, shared by every log in the process (the figure-grid
// durability axis reads these):
//
//	seglog.appended_bytes   record bytes appended (counter)
//	seglog.segment_bytes    on-disk bytes across live logs (gauge)
//	seglog.segments         live segment files (gauge)
//	seglog.fsync_ns         fsync latency (histogram)
var (
	telAppendedBytes = telemetry.Default.Counter("seglog.appended_bytes")
	telSegmentBytes  = telemetry.Default.Gauge("seglog.segment_bytes")
	telSegments      = telemetry.Default.Gauge("seglog.segments")
	telFsyncNs       = telemetry.Default.Histogram("seglog.fsync_ns")
)

// Fsync selects when appended records are forced to stable storage.
type Fsync int

const (
	// FsyncNever leaves syncing to the OS: fastest, and a process crash
	// loses at most the unflushed write buffer.
	FsyncNever Fsync = iota
	// FsyncAlways syncs before every append returns — the policy behind
	// confirm-implies-durable.
	FsyncAlways
	// FsyncInterval syncs on a timer (Options.FsyncEvery).
	FsyncInterval
)

// ParseFsync maps the scenario/CLI spellings to a policy.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "", "never":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("seglog: unknown fsync policy %q (want never, always or interval)", s)
}

func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// Options tune one log.
type Options struct {
	// SegmentBytes seals the active segment once it reaches this size
	// (default 8 MiB).
	SegmentBytes int64
	// Fsync is the sync policy (default FsyncNever).
	Fsync Fsync
	// FsyncEvery is the FsyncInterval period (default 50ms).
	FsyncEvery time.Duration
	// RetainAll keeps fully-acked sealed segments instead of compacting
	// them away, so replay readers can attach at any offset back to 0.
	RetainAll bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 50 * time.Millisecond
	}
	return o
}

// segment is the in-memory accounting for one segment file.
type segment struct {
	seq      uint64 // file sequence, append order
	base     uint64 // log's next offset when the segment was created
	path     string
	size     int64 // bytes written, flushed or buffered
	data     int   // data records
	unacked  int   // data records without a matching ack
	firstOff uint64
	lastOff  uint64 // valid when data > 0
	sealed   bool
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%012d.log", seq) }

func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "seg-%012d.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != segName(seq) {
		return 0, false
	}
	return seq, true
}

// Recovery summarizes what Open found on disk.
type Recovery struct {
	// Unacked holds every intact data record without a matching ack, in
	// offset order — the queue contents to rebuild.
	Unacked []*Record
	// Records counts intact data records scanned, acked or not.
	Records int
	// Truncated reports that a torn or corrupt tail (and any segments
	// after it) was discarded to restore a clean prefix.
	Truncated bool
	// TruncatedBytes is how many bytes the cleanup dropped.
	TruncatedBytes int64
}

// Log is one durable queue's segment log. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	segs      []*segment // append order; the last one is active
	f         *os.File   // active segment
	w         *bufio.Writer
	next      uint64 // next data offset
	recSeq    uint64 // next record sequence (data and ack records alike)
	diskBytes int64
	closed    bool
	hdrBuf    [recHeaderSize]byte // reused record header (avoids per-append escape)
	tail      chan struct{}       // closed and replaced on append; reader wakeup
	done      chan struct{}       // closed on Close/Crash
	syncStop  chan struct{}
	syncWG    sync.WaitGroup
}

// Open opens (creating if needed) the log in dir, runs recovery over any
// existing segments, and starts a fresh active segment. The Recovery
// carries the unacked records the owner must re-enqueue.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("seglog: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), done: make(chan struct{})}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.mu.Lock()
	err = l.rotateLocked()
	l.mu.Unlock()
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	if l.opts.Fsync == FsyncInterval {
		l.syncStop = make(chan struct{})
		l.syncWG.Add(1)
		go l.syncLoop(l.syncStop)
	}
	return l, rec, nil
}

// Append writes one data record — exchange/key envelope, properties
// encoded as an AMQP content header, and the body — and returns its
// offset. The body may be a refcounted wire loan; it is fully consumed
// before Append returns and never retained.
func (l *Log) Append(exchange, key string, props *wire.Properties, body []byte) (uint64, error) {
	return l.append(0, false, exchange, key, props, body)
}

// AppendAt writes one data record at an explicit offset instead of the
// log's own counter — the mirror-replica path, where the master assigns
// offsets and replicas must reproduce them. The log's next offset
// advances to off+1 when off is at or past it, so interleaved catch-up
// and live streams converge on the master's numbering. Offsets may
// arrive out of order; callers are responsible for not appending the
// same offset twice.
func (l *Log) AppendAt(off uint64, exchange, key string, props *wire.Properties, body []byte) error {
	_, err := l.append(off, true, exchange, key, props, body)
	return err
}

func (l *Log) append(at uint64, explicit bool, exchange, key string, props *wire.Properties, body []byte) (uint64, error) {
	hw := wire.GetWriter()
	defer wire.PutWriter(hw)
	wire.MarshalContentHeader(hw, wire.ClassBasic, uint64(len(body)), props)
	mw := wire.GetWriter()
	defer wire.PutWriter(mw)
	mw.ShortStr(exchange)
	mw.ShortStr(key)
	mw.Long(uint32(len(hw.Bytes())))
	if err := mw.Err(); err != nil {
		return 0, fmt.Errorf("seglog: encode envelope: %w", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	off := l.next
	if explicit {
		off = at
	}
	if err := l.appendLocked(recData, off, mw.Bytes(), hw.Bytes(), body); err != nil {
		return 0, err
	}
	if off >= l.next {
		l.next = off + 1
	}
	seg := l.segs[len(l.segs)-1]
	if seg.data == 0 {
		seg.firstOff = off
		seg.lastOff = off
	}
	seg.data++
	seg.unacked++
	if off < seg.firstOff {
		seg.firstOff = off
	}
	if off > seg.lastOff {
		seg.lastOff = off
	}
	if err := l.syncRotateLocked(seg); err != nil {
		return 0, err
	}
	l.wakeLocked()
	return off, nil
}

// Ack appends an ack record retiring the data record at off. Fully-acked
// sealed segments at the head of the log are compacted away unless
// Options.RetainAll is set.
func (l *Log) Ack(off uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ackLocked(off)
}

// AckAll appends ack records for every offset with a single sync/rotation
// check — the broker's batched-ack path.
func (l *Log) AckAll(offs []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, off := range offs {
		if err := l.ackLocked(off); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) ackLocked(off uint64) error {
	if l.closed {
		return ErrClosed
	}
	if err := l.appendLocked(recAck, off, nil, nil, nil); err != nil {
		return err
	}
	l.retireLocked(off)
	l.compactLocked()
	return l.syncRotateLocked(l.segs[len(l.segs)-1])
}

// retireLocked decrements the unacked count of the segment holding off.
func (l *Log) retireLocked(off uint64) {
	for i := len(l.segs) - 1; i >= 0; i-- {
		seg := l.segs[i]
		if seg.data > 0 && seg.firstOff <= off && off <= seg.lastOff {
			if seg.unacked > 0 {
				seg.unacked--
			}
			return
		}
	}
}

// compactLocked deletes the longest prefix of sealed, fully-acked
// segments. Head-only compaction keeps recovery sound: a deleted
// segment's ack records can only reference data that is deleted with it,
// so no acked record is ever resurrected by a later recovery.
func (l *Log) compactLocked() {
	if l.opts.RetainAll {
		return
	}
	for len(l.segs) > 0 {
		seg := l.segs[0]
		if !seg.sealed || seg.unacked != 0 {
			return
		}
		l.removeSegLocked(0)
	}
}

func (l *Log) removeSegLocked(i int) {
	seg := l.segs[i]
	os.Remove(seg.path)
	l.segs = append(l.segs[:i], l.segs[i+1:]...)
	l.diskBytes -= seg.size
	telSegments.Add(-1)
	telSegmentBytes.Add(-seg.size)
}

// appendLocked frames and buffers one record.
func (l *Log) appendLocked(typ byte, off uint64, meta, hdr, body []byte) error {
	if l.w == nil {
		return ErrClosed
	}
	plen := len(meta) + len(hdr) + len(body)
	rh := &l.hdrBuf
	binary.BigEndian.PutUint32(rh[4:8], uint32(plen))
	rh[8] = typ
	binary.BigEndian.PutUint64(rh[9:17], l.recSeq)
	binary.BigEndian.PutUint64(rh[17:], off)
	l.recSeq++
	crc := crc32.Update(0, castagnoli, rh[4:])
	crc = crc32.Update(crc, castagnoli, meta)
	crc = crc32.Update(crc, castagnoli, hdr)
	crc = crc32.Update(crc, castagnoli, body)
	binary.BigEndian.PutUint32(rh[:4], crc)
	if _, err := l.w.Write(rh[:]); err != nil {
		return err
	}
	for _, part := range [3][]byte{meta, hdr, body} {
		if len(part) == 0 {
			continue
		}
		if _, err := l.w.Write(part); err != nil {
			return err
		}
	}
	n := int64(recHeaderSize + plen)
	seg := l.segs[len(l.segs)-1]
	seg.size += n
	l.diskBytes += n
	telAppendedBytes.Add(n)
	telSegmentBytes.Add(n)
	return nil
}

// syncRotateLocked applies the fsync policy and rotates a full segment.
func (l *Log) syncRotateLocked(seg *segment) error {
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if seg.size >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment (if any) and opens the next one.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		cur := l.segs[len(l.segs)-1]
		cur.sealed = true
		l.f.Close()
		l.f, l.w = nil, nil
		l.compactLocked()
	}
	seq := uint64(1)
	if n := len(l.segs); n > 0 {
		seq = l.segs[n-1].seq + 1
	}
	seg := &segment{seq: seq, base: l.next, path: filepath.Join(l.dir, segName(seq))}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	hdr := encodeFileHeader(seg.base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("seglog: %w", err)
	}
	seg.size = fileHeaderSize
	l.segs = append(l.segs, seg)
	l.f = f
	l.w = bufio.NewWriterSize(f, 64<<10)
	l.diskBytes += fileHeaderSize
	telSegments.Add(1)
	telSegmentBytes.Add(fileHeaderSize)
	return nil
}

func (l *Log) flushLocked() error {
	if l.w == nil {
		return nil
	}
	return l.w.Flush()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	telFsyncNs.Record(time.Since(start).Nanoseconds())
	return nil
}

// Flush drains the write buffer to the OS (no fsync).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// Sync flushes and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLoop(stop <-chan struct{}) {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked()
			}
			l.mu.Unlock()
		case <-stop:
			return
		}
	}
}

func (l *Log) stopSyncer() {
	l.mu.Lock()
	ch := l.syncStop
	l.syncStop = nil
	l.mu.Unlock()
	if ch != nil {
		close(ch)
		l.syncWG.Wait()
	}
}

// wakeLocked signals tail-following readers that new records may be
// available.
func (l *Log) wakeLocked() {
	if l.tail != nil {
		close(l.tail)
		l.tail = nil
	}
}

func (l *Log) tailWaitLocked() chan struct{} {
	if l.tail == nil {
		l.tail = make(chan struct{})
	}
	return l.tail
}

// Scan walks every retained record — data and ack alike — in log order,
// calling data for each data record and ack for each ack record (either
// may be nil to skip that kind). It is the mirror catch-up feed: a master
// replays its whole retained history to a joining replica, acks included,
// so the replica converges on the same unacked set. Record bodies alias a
// per-segment read buffer and must be copied if kept.
//
// Scan flushes the write buffer, snapshots the segment list, then reads
// segment files without holding the log lock, so appends proceed
// concurrently. Records appended after the snapshot may or may not be
// seen; segments compacted away mid-scan are skipped. The callbacks'
// error, if any, aborts the scan and is returned.
func (l *Log) Scan(data func(*Record) error, ack func(off uint64) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	paths := make([]string, len(l.segs))
	for i, seg := range l.segs {
		paths[i] = seg.path
	}
	l.mu.Unlock()

	for _, path := range paths {
		buf, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue // compacted away mid-scan
		}
		if err != nil {
			return fmt.Errorf("seglog: scan: %w", err)
		}
		if len(buf) < fileHeaderSize {
			continue
		}
		if _, err := parseFileHeader(buf); err != nil {
			return err
		}
		rest := buf[fileHeaderSize:]
		for len(rest) >= recHeaderSize {
			crc, plen, typ, _, off := parseRecHeader(rest[:recHeaderSize])
			if plen < 0 || plen > maxRecordBytes || len(rest) < recHeaderSize+plen {
				break // torn tail racing a concurrent append; post-snapshot
			}
			payload := rest[recHeaderSize : recHeaderSize+plen]
			if recCRC(rest[4:recHeaderSize], payload) != crc {
				break
			}
			switch typ {
			case recData:
				if data != nil {
					rec, err := decodeDataPayload(off, payload)
					if err != nil {
						return err
					}
					if err := data(rec); err != nil {
						return err
					}
				}
			case recAck:
				if ack != nil {
					if err := ack(off); err != nil {
						return err
					}
				}
			}
			rest = rest[recHeaderSize+plen:]
		}
	}
	return nil
}

// NextOffset is the offset the next appended data record will get.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// DiskBytes is the log's on-disk footprint (flushed or buffered).
func (l *Log) DiskBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.diskBytes
}

// SegmentCount is the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes, syncs and closes the log. Further use returns ErrClosed.
func (l *Log) Close() error {
	l.stopSyncer()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.flushLocked()
	if l.f != nil {
		if e := l.f.Sync(); err == nil {
			err = e
		}
		l.f.Close()
		l.f, l.w = nil, nil
	}
	l.dropAccountingLocked()
	l.wakeLocked()
	close(l.done)
	return err
}

// Crash simulates a hard kill for crash tests and fault scripts: the
// write buffer is dropped without flushing and descriptors are closed
// without syncing, leaving on disk exactly what the OS had already
// received. The log object refuses further use.
func (l *Log) Crash() {
	l.stopSyncer()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.w = nil // unflushed bytes die here, as in a real SIGKILL
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.dropAccountingLocked()
	l.wakeLocked()
	close(l.done)
}

// dropAccountingLocked retires this log's contribution to the process-wide
// gauges; a later Open re-adds what recovery actually finds on disk.
func (l *Log) dropAccountingLocked() {
	telSegments.Add(-int64(len(l.segs)))
	telSegmentBytes.Add(-l.diskBytes)
}

// Remove closes the log and deletes its directory — queue deletion.
func (l *Log) Remove() error {
	l.Close()
	return os.RemoveAll(l.dir)
}
