package seglog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ds2hpc/internal/wire"
)

// On-disk framing. Every segment file starts with a fixed 20-byte header:
//
//	magic "DSLG" | version 0x01 | 3 reserved zero bytes | base offset u64 |
//	header crc u32
//
// followed by a sequence of CRC-framed records:
//
//	crc u32 | payload length u32 | type u8 | seq u64 | offset u64 | payload
//
// All integers are big-endian. The record CRC is CRC-32C (Castagnoli) over
// everything after the crc field: the length, type, seq and offset fields
// plus the payload bytes, so a torn or damaged record is detected no
// matter which byte was hit; the header CRC covers the 16 bytes before it.
// seq numbers every record (data and ack) consecutively per log; recovery
// insists the retained chain is seq-contiguous, which is how a cleanly
// truncated tail whose CRCs all still check out — say a whole record
// sliced off a sealed segment — is still detected. A data record's
// payload is
//
//	shortstr exchange | shortstr routing key | u32 header length |
//	AMQP content-header bytes | body bytes
//
// reusing the basic-class content-header encoding for message properties,
// so the log never grows a second properties codec and a replayed message
// round-trips byte-identically. An ack record has an empty payload; its
// offset names the data record it retires. Offsets number data records
// only, monotonically from zero per log.

const (
	// Version is the record-format version byte carried in every segment
	// file header. Bump it only with a deliberate format change; the
	// golden-file test pins the current encoding.
	Version = 0x01

	fileHeaderSize = 20
	recHeaderSize  = 4 + 4 + 1 + 8 + 8

	recData byte = 1
	recAck  byte = 2

	// maxRecordBytes guards length fields read back from damaged files:
	// anything larger is treated as corruption, not an allocation request.
	maxRecordBytes = 1 << 28
)

var magic = [4]byte{'D', 'S', 'L', 'G'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one data record read back from the log: the routing envelope,
// properties and body the broker appended. Body aliases the read buffer;
// callers that keep it past the next read must copy.
type Record struct {
	Offset   uint64
	Exchange string
	Key      string
	Props    wire.Properties
	Body     []byte
}

// encodeFileHeader builds a segment file header for the given base offset.
func encodeFileHeader(base uint64) [fileHeaderSize]byte {
	var h [fileHeaderSize]byte
	copy(h[:4], magic[:])
	h[4] = Version
	binary.BigEndian.PutUint64(h[8:16], base)
	binary.BigEndian.PutUint32(h[16:], crc32.Checksum(h[:16], castagnoli))
	return h
}

// parseFileHeader validates a segment file header and returns its base
// offset.
func parseFileHeader(h []byte) (uint64, error) {
	if len(h) < fileHeaderSize || !bytes.Equal(h[:4], magic[:]) {
		return 0, fmt.Errorf("seglog: bad segment magic")
	}
	if h[4] != Version {
		return 0, fmt.Errorf("seglog: unsupported segment version %d (want %d)", h[4], Version)
	}
	if binary.BigEndian.Uint32(h[16:fileHeaderSize]) != crc32.Checksum(h[:16], castagnoli) {
		return 0, fmt.Errorf("seglog: segment header CRC mismatch")
	}
	return binary.BigEndian.Uint64(h[8:16]), nil
}

// parseRecHeader splits a record header into its fields without validating
// the CRC (the payload is needed for that).
func parseRecHeader(h []byte) (crc uint32, plen int, typ byte, seq, off uint64) {
	crc = binary.BigEndian.Uint32(h[:4])
	plen = int(binary.BigEndian.Uint32(h[4:8]))
	typ = h[8]
	seq = binary.BigEndian.Uint64(h[9:17])
	off = binary.BigEndian.Uint64(h[17:])
	return
}

// recCRC computes the record CRC over a header tail and payload.
func recCRC(hdrTail, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdrTail)
	return crc32.Update(crc, castagnoli, payload)
}

// decodeDataPayload parses a data record payload into a Record. The body
// aliases payload.
func decodeDataPayload(off uint64, payload []byte) (*Record, error) {
	r := wire.NewReader(payload)
	rec := &Record{Offset: off}
	rec.Exchange = r.ShortStr()
	rec.Key = r.ShortStr()
	hlen := int(r.Long())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("seglog: record %d: bad envelope: %w", off, err)
	}
	if hlen < 0 || hlen > r.Remaining() {
		return nil, fmt.Errorf("seglog: record %d: header length %d exceeds payload", off, hlen)
	}
	rest := payload[len(payload)-r.Remaining():]
	hdr, err := wire.ParseContentHeader(rest[:hlen])
	if err != nil {
		return nil, fmt.Errorf("seglog: record %d: bad content header: %w", off, err)
	}
	rec.Props = hdr.Properties
	body := rest[hlen:]
	if uint64(len(body)) != hdr.BodySize {
		return nil, fmt.Errorf("seglog: record %d: body is %d bytes, header says %d", off, len(body), hdr.BodySize)
	}
	rec.Body = body
	return rec, nil
}
