package broker

import "sync"

// ringChunkSize is the number of queue entries per ring chunk. 64 entries
// keep a chunk around one cache page and make chunk turnover rare at
// streaming depths while bounding the memory a drained queue pins.
const ringChunkSize = 64

// qitem is one ready-queue entry: the shared message plus the per-queue
// delivery state. The redelivered flag lives here rather than on the
// Message because fanout routing shares one message instance across every
// matched queue — requeueing on one queue must not flag the others. The
// segment-log offset lives here for the same reason: the same message
// fanned out to two durable queues has a distinct offset in each queue's
// log (offNone on non-durable queues).
type qitem struct {
	msg         *Message
	off         uint64
	redelivered bool
}

// ringChunk is one fixed block of queue slots, occupied in [start, end).
// Chunks are singly linked head to tail and never contain holes.
type ringChunk struct {
	next       *ringChunk
	start, end int
	items      [ringChunkSize]qitem
}

// ringChunkPool recycles chunks across queues so drop-head churn and
// depth oscillation run without heap growth.
var ringChunkPool = sync.Pool{New: func() any { return new(ringChunk) }}

func newRingChunk(at int) *ringChunk {
	c := ringChunkPool.Get().(*ringChunk)
	c.next = nil
	c.start, c.end = at, at
	return c
}

// msgRing is a chunked ring deque of queue entries: O(1) pushFront (nack
// and teardown requeues), pushBack (publishes), and popFront (delivery,
// drop-head eviction), with stable memory under churn — the slice-based
// predecessor front-inserted in O(n) and re-compacted its whole backing
// array under drop-head pressure. The last chunk stays resident so a
// queue oscillating around empty reuses it without touching the pool.
type msgRing struct {
	head, tail *ringChunk
	n          int
}

func (r *msgRing) len() int { return r.n }

// pushBack appends an entry at the tail.
func (r *msgRing) pushBack(it qitem) {
	t := r.tail
	switch {
	case t == nil:
		t = newRingChunk(0)
		r.head, r.tail = t, t
	case t.start == t.end:
		// Empty resident chunk (ring is empty): reposition for back growth.
		t.start, t.end = 0, 0
	case t.end == ringChunkSize:
		nc := newRingChunk(0)
		t.next = nc
		r.tail, t = nc, nc
	}
	t.items[t.end] = it
	t.end++
	r.n++
}

// pushFront prepends an entry at the head (requeue: the entry must be the
// next one delivered).
func (r *msgRing) pushFront(it qitem) {
	h := r.head
	switch {
	case h == nil:
		h = newRingChunk(ringChunkSize)
		r.head, r.tail = h, h
	case h.start == h.end:
		// Empty resident chunk: reposition for front growth.
		h.start, h.end = ringChunkSize, ringChunkSize
	case h.start == 0:
		nc := newRingChunk(ringChunkSize)
		nc.next = h
		r.head, h = nc, nc
	}
	h.start--
	h.items[h.start] = it
	r.n++
}

// popFront removes and returns the head entry. The ring must be
// non-empty (callers check len, as the slice predecessor's callers did).
func (r *msgRing) popFront() qitem {
	h := r.head
	it := h.items[h.start]
	h.items[h.start] = qitem{} // don't pin the message
	h.start++
	r.n--
	if h.start == h.end && h.next != nil {
		// Drained interior chunk: advance and recycle. The final chunk
		// stays resident for the next push.
		r.head = h.next
		ringChunkPool.Put(h)
	}
	return it
}
