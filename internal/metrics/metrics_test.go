package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.Start()
	c.AddConsumed(10)
	c.AddProduced(12)
	c.AddError()
	c.AddRTT(30 * time.Millisecond)
	c.AddRTT(10 * time.Millisecond)
	c.AddRTT(20 * time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	r := c.Snapshot()
	if r.Consumed != 10 || r.Produced != 12 || r.Errors != 1 {
		t.Fatalf("counters %+v", r)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if r.MedianRTT() != 20*time.Millisecond {
		t.Fatalf("median = %v", r.MedianRTT())
	}
	// RTTs must be sorted.
	for i := 1; i < len(r.RTTs); i++ {
		if r.RTTs[i] < r.RTTs[i-1] {
			t.Fatal("RTTs not sorted")
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	c.Start()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddConsumed(1)
				c.AddRTT(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	r := c.Snapshot()
	if r.Consumed != 800 || len(r.RTTs) != 800 {
		t.Fatalf("lost samples: %d %d", r.Consumed, len(r.RTTs))
	}
}

func TestPercentiles(t *testing.T) {
	r := &Result{}
	for i := 1; i <= 100; i++ {
		r.RTTs = append(r.RTTs, time.Duration(i)*time.Millisecond)
	}
	if got := r.PercentileRTT(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.PercentileRTT(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := r.PercentileRTT(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := r.PercentileRTT(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	r := &Result{}
	if r.MedianRTT() != 0 {
		t.Fatal("empty median should be zero")
	}
	if r.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	r := &Result{}
	for i := 0; i < 1000; i++ {
		r.RTTs = append(r.RTTs, time.Duration(i)*time.Microsecond)
	}
	cdf := r.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P < cdf[i-1].P || cdf[i].RTT < cdf[i-1].RTT {
			t.Fatal("CDF not monotonic")
		}
	}
	if last := cdf[len(cdf)-1]; last.P != 1.0 {
		t.Fatalf("CDF must reach 1.0, got %f", last.P)
	}
}

func TestFractionUnder(t *testing.T) {
	r := &Result{RTTs: []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 400 * time.Millisecond,
	}}
	if got := r.FractionUnder(250 * time.Millisecond); got != 0.5 {
		t.Fatalf("FractionUnder = %f", got)
	}
	if got := r.FractionUnder(time.Second); got != 1.0 {
		t.Fatalf("FractionUnder(max) = %f", got)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(39000, 19000); math.Abs(got-2.05) > 0.01 {
		t.Errorf("overhead = %f", got)
	}
	if !math.IsInf(Overhead(100, 0), 1) {
		t.Error("zero throughput should be infinite overhead")
	}
	if got := RTTOverhead(100*time.Millisecond, 690*time.Millisecond); math.Abs(got-6.9) > 0.01 {
		t.Errorf("rtt overhead = %f", got)
	}
}

func TestMergeAveragesThroughput(t *testing.T) {
	runs := []*Result{
		{Throughput: 100, Consumed: 10, Duration: time.Second,
			RTTs: []time.Duration{3 * time.Millisecond}},
		{Throughput: 200, Consumed: 20, Duration: 3 * time.Second,
			RTTs: []time.Duration{time.Millisecond, 2 * time.Millisecond}},
	}
	m := Merge(runs)
	if m.Throughput != 150 {
		t.Errorf("avg throughput = %f", m.Throughput)
	}
	if m.Consumed != 30 {
		t.Errorf("consumed = %d", m.Consumed)
	}
	if m.Duration != 2*time.Second {
		t.Errorf("duration = %v", m.Duration)
	}
	if len(m.RTTs) != 3 || m.RTTs[0] != time.Millisecond {
		t.Errorf("pooled RTTs = %v", m.RTTs)
	}
	if Merge(nil).Throughput != 0 {
		t.Error("empty merge should be zero")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(samples []int16, p uint8) bool {
		if len(samples) == 0 {
			return true
		}
		r := &Result{}
		for _, s := range samples {
			d := time.Duration(int(s)+40000) * time.Microsecond
			r.RTTs = append(r.RTTs, d)
		}
		// Percentile must always return one of the samples.
		c := NewCollector()
		c.Start()
		for _, d := range r.RTTs {
			c.AddRTT(d)
		}
		got := c.Snapshot().PercentileRTT(float64(p % 101))
		for _, d := range r.RTTs {
			if got == d {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
