package broker

import (
	"strings"
	"sync"
)

// Exchange kinds.
const (
	KindDirect = "direct"
	KindFanout = "fanout"
	KindTopic  = "topic"
)

// binding associates a queue with a routing pattern on an exchange.
type binding struct {
	queue *Queue
	key   string
}

// Exchange routes published messages to bound queues.
type Exchange struct {
	Name string
	Kind string

	mu       sync.RWMutex
	bindings []binding
}

// NewExchange creates an exchange of the given kind.
func NewExchange(name, kind string) *Exchange {
	return &Exchange{Name: name, Kind: kind}
}

// Bind adds a queue binding. Duplicate (queue, key) pairs are idempotent.
func (e *Exchange) Bind(q *Queue, key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range e.bindings {
		if b.queue == q && b.key == key {
			return
		}
	}
	e.bindings = append(e.bindings, binding{queue: q, key: key})
}

// Unbind removes a queue binding.
func (e *Exchange) Unbind(q *Queue, key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.bindings[:0]
	for _, b := range e.bindings {
		if !(b.queue == q && b.key == key) {
			out = append(out, b)
		}
	}
	e.bindings = out
}

// UnbindQueue removes every binding that targets q (used on queue delete).
func (e *Exchange) UnbindQueue(q *Queue) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.bindings[:0]
	for _, b := range e.bindings {
		if b.queue != q {
			out = append(out, b)
		}
	}
	e.bindings = out
}

// BindingCount reports the number of bindings (for IfUnused checks).
func (e *Exchange) BindingCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.bindings)
}

// Route returns the set of queues a message with the given routing key
// should be delivered to. Duplicates are removed so a queue bound twice
// receives one copy, matching AMQP semantics.
func (e *Exchange) Route(routingKey string) []*Queue {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Queue
	seen := map[*Queue]bool{}
	for _, b := range e.bindings {
		var match bool
		switch e.Kind {
		case KindFanout:
			match = true
		case KindDirect:
			match = b.key == routingKey
		case KindTopic:
			match = topicMatch(b.key, routingKey)
		}
		if match && !seen[b.queue] {
			seen[b.queue] = true
			out = append(out, b.queue)
		}
	}
	return out
}

// topicMatch implements AMQP topic matching: patterns are dot-separated
// words where "*" matches exactly one word and "#" matches zero or more.
func topicMatch(pattern, key string) bool {
	return topicMatchWords(splitTopic(pattern), splitTopic(key))
}

func splitTopic(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

func topicMatchWords(pat, key []string) bool {
	if len(pat) == 0 {
		return len(key) == 0
	}
	switch pat[0] {
	case "#":
		// "#" can match zero words…
		if topicMatchWords(pat[1:], key) {
			return true
		}
		// …or one-or-more words.
		if len(key) > 0 {
			return topicMatchWords(pat, key[1:])
		}
		return false
	case "*":
		return len(key) > 0 && topicMatchWords(pat[1:], key[1:])
	default:
		return len(key) > 0 && pat[0] == key[0] && topicMatchWords(pat[1:], key[1:])
	}
}
