package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// HealthState is one level of a health rule's traffic light.
type HealthState int8

// Health levels, ordered by severity.
const (
	HealthOK HealthState = iota
	HealthWarn
	HealthCritical
)

func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthWarn:
		return "warn"
	case HealthCritical:
		return "critical"
	}
	return fmt.Sprintf("HealthState(%d)", int8(s))
}

// Health-rule kinds. A rule watches one aggregator tick source and
// maps its value (or per-tick change) to a severity.
const (
	// RuleAbove alerts when the value rises to the thresholds — queue
	// depth watermarks, error rates, reconnect storms (with Delta).
	RuleAbove = "above"
	// RuleBelow alerts when the value falls to the thresholds — a
	// consume rate stalling at zero while the run is live.
	RuleBelow = "below"
	// RuleFlap counts downward movements of the value (a federation
	// link dropping, a gauge sawtoothing) and alerts on the count;
	// Clear consecutive non-decreasing ticks reset it.
	RuleFlap = "flap"
)

// HealthRule is one declarative rollup check, evaluated against every
// aggregator tick. The zero Kind is RuleAbove. Critical is enabled
// only when it is strictly tighter than Warn (greater for above/flap,
// lower for below); equal thresholds make the rule warn-only.
type HealthRule struct {
	// Name labels the rule in events ("queue-depth-watermark").
	Name string `json:"name"`
	// Source is the Tick.Values key the rule watches. Ticks missing
	// the source leave the rule's state untouched.
	Source string `json:"source"`
	// Kind is above (default), below, or flap.
	Kind string `json:"kind,omitempty"`
	// Delta evaluates the per-tick change of the source instead of its
	// level — this is how a cumulative reconnect count becomes a storm
	// detector. The first observed tick only seeds the baseline.
	Delta bool `json:"delta,omitempty"`
	// Warn and Critical are the severity thresholds (flap rules count
	// downward movements against them).
	Warn     float64 `json:"warn,omitempty"`
	Critical float64 `json:"critical,omitempty"`
	// For is how many consecutive breaching ticks escalate the state
	// (default 1: immediately). Stall rules use it so one idle tick at
	// a run boundary is not an alert.
	For int `json:"for_ticks,omitempty"`
	// Clear is how many consecutive recovered ticks de-escalate
	// (default 1). Flap rules also use it as the stability window that
	// resets the flap count.
	Clear int `json:"clear_ticks,omitempty"`
}

func (r HealthRule) forTicks() int {
	if r.For > 0 {
		return r.For
	}
	return 1
}

func (r HealthRule) clearTicks() int {
	if r.Clear > 0 {
		return r.Clear
	}
	return 1
}

// breach reports whether v crosses the threshold in the rule's
// direction.
func (r HealthRule) breach(v, threshold float64) bool {
	if r.Kind == RuleBelow {
		return v <= threshold
	}
	return v >= threshold
}

// criticalEnabled reports whether the rule has a distinct critical
// tier: a critical threshold strictly tighter than warn.
func (r HealthRule) criticalEnabled() bool {
	if r.Kind == RuleBelow {
		return r.Critical < r.Warn
	}
	return r.Critical > r.Warn
}

// severity maps a value (level, delta, or flap count) to the rule's
// target state.
func (r HealthRule) severity(v float64) HealthState {
	if r.criticalEnabled() && r.breach(v, r.Critical) {
		return HealthCritical
	}
	if r.breach(v, r.Warn) {
		return HealthWarn
	}
	return HealthOK
}

// HealthEvent is one state transition of one rule — the typed entries
// of the health log scenario Reports carry and tests assert on.
type HealthEvent struct {
	T        time.Time   `json:"t"`
	Rule     string      `json:"rule"`
	Source   string      `json:"source"`
	From, To HealthState `json:"-"`
	// FromState/ToState are the JSON renderings (HealthState marshals
	// as its name via these fields so forwarded payloads stay
	// readable).
	FromState string `json:"from"`
	ToState   string `json:"to"`
	// Value is what the rule evaluated: the source level, its per-tick
	// delta, or the flap count.
	Value float64 `json:"value"`
}

// String renders a transition the way `streamsim scenario -watch`
// prints it.
func (e HealthEvent) String() string {
	return fmt.Sprintf("%s %s→%s (%s=%.1f)", e.Rule, e.From, e.To, e.Source, e.Value)
}

// ruleState is one rule plus its evaluation state.
type ruleState struct {
	rule HealthRule
	cur  HealthState

	// pending/streak implement the For/Clear hysteresis: a transition
	// fires only after `streak` consecutive ticks agree on `pending`.
	pending HealthState
	streak  int

	// last/seen baseline Delta and flap comparisons.
	last float64
	seen bool

	// flap bookkeeping.
	flapCount int
	stable    int
}

// HealthMonitor evaluates a rule set against aggregator ticks and
// keeps the transition log. It is safe for concurrent use; Eval is
// expected to run on the aggregator's tick goroutine.
type HealthMonitor struct {
	mu      sync.Mutex
	rules   []*ruleState
	events  []HealthEvent
	onEvent func(HealthEvent)
}

// NewHealthMonitor builds a monitor over the rule set. Rules with an
// empty Kind are RuleAbove.
func NewHealthMonitor(rules []HealthRule) *HealthMonitor {
	m := &HealthMonitor{}
	for _, r := range rules {
		if r.Kind == "" {
			r.Kind = RuleAbove
		}
		m.rules = append(m.rules, &ruleState{rule: r})
	}
	return m
}

// OnEvent installs a callback invoked (on the Eval caller's goroutine)
// for every transition, after it is logged.
func (m *HealthMonitor) OnEvent(fn func(HealthEvent)) {
	m.mu.Lock()
	m.onEvent = fn
	m.mu.Unlock()
}

// Eval runs every rule against one tick and returns the transitions it
// produced (nil for a quiet tick). Transitions are appended to the
// monitor's log and delivered to the OnEvent callback.
func (m *HealthMonitor) Eval(t Tick) []HealthEvent {
	m.mu.Lock()
	var fired []HealthEvent
	for _, s := range m.rules {
		v, ok := t.Values[s.rule.Source]
		if !ok {
			continue
		}
		ev, ok := s.eval(t.T, v)
		if ok {
			fired = append(fired, ev)
			m.events = append(m.events, ev)
		}
	}
	fn := m.onEvent
	m.mu.Unlock()
	if fn != nil {
		for _, ev := range fired {
			fn(ev)
		}
	}
	return fired
}

// eval advances one rule by one sample and reports a transition, if
// any.
func (s *ruleState) eval(now time.Time, v float64) (HealthEvent, bool) {
	r := s.rule
	switch {
	case r.Kind == RuleFlap:
		if !s.seen {
			s.seen, s.last = true, v
			return HealthEvent{}, false
		}
		if v < s.last {
			s.flapCount++
			s.stable = 0
		} else {
			s.stable++
			if s.stable >= r.clearTicks() {
				s.flapCount = 0
			}
		}
		s.last = v
		v = float64(s.flapCount)
	case r.Delta:
		if !s.seen {
			s.seen, s.last = true, v
			return HealthEvent{}, false
		}
		v, s.last = v-s.last, v
	}

	target := r.severity(v)
	if target == s.cur {
		s.pending, s.streak = s.cur, 0
		return HealthEvent{}, false
	}
	if target != s.pending {
		s.pending, s.streak = target, 0
	}
	s.streak++
	need := r.forTicks()
	if target < s.cur {
		need = r.clearTicks()
	}
	if s.streak < need {
		return HealthEvent{}, false
	}
	ev := HealthEvent{
		T: now, Rule: r.Name, Source: r.Source,
		From: s.cur, To: target,
		FromState: s.cur.String(), ToState: target.String(),
		Value: v,
	}
	s.cur, s.pending, s.streak = target, target, 0
	return ev, true
}

// Events returns a copy of the transition log so far.
func (m *HealthMonitor) Events() []HealthEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]HealthEvent(nil), m.events...)
}

// State reports a rule's current level (HealthOK for unknown rules).
func (m *HealthMonitor) State(rule string) HealthState {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.rules {
		if s.rule.Name == rule {
			return s.cur
		}
	}
	return HealthOK
}
