package pattern

import (
	"fmt"

	"ds2hpc/internal/amqp"
)

// FeedbackName is the work-sharing-with-feedback pattern (§5.4): requests
// flow through shared work queues; each producer owns a dedicated reply
// queue (direct routing) so replies reach the producer that issued the
// request. The per-message RTT is measured at the producer.
const FeedbackName = "work-sharing-feedback"

func init() {
	Register(&Graph{Name: FeedbackName, Build: buildFeedback})
}

func buildFeedback(cfg *Config) (*Topology, error) {
	// The request window is the flow control in this closed-loop pattern:
	// at most Producers*Window requests exist at once. Size the queues so
	// the reject-publish limit never fires mid-flight (the paper gives
	// payload queues 80% of broker RAM for the same reason).
	if need := int64(cfg.Producers) * int64(cfg.Window) * int64(cfg.Workload.PayloadBytes) * 2; cfg.QueueBytes < need {
		cfg.QueueBytes = need
	}

	queues := make([]string, cfg.WorkQueues)
	var decls []Declarations
	for i := range queues {
		queues[i] = fmt.Sprintf("wsf-q-%d", i)
		decls = append(decls, Declarations{
			Anchor: queues[i],
			Queues: []QueueDecl{{Name: queues[i]}},
		})
	}
	// Reply queues are placed on the same node as their work queue so
	// consumers can publish replies over their existing connection.
	replyQ := make([]string, cfg.Producers)
	for p := range replyQ {
		work := queues[p%len(queues)]
		replyQ[p] = nameOnSameNode(cfg.Deployment, fmt.Sprintf("wsf-reply-%d", p), work)
		decls = append(decls, Declarations{
			Anchor: replyQ[p],
			Queues: []QueueDecl{{Name: replyQ[p]}},
		})
	}
	return &Topology{
		Declare: decls,
		Producer: ProducerRole{
			Name: "prod",
			Mode: FlowClosedLoop,
			Legs: func(p int) []Leg { return []Leg{{Key: queues[p%len(queues)]}} },
			Replies: func(p int) []ReplySource {
				// The reply queue shares the work queue's master node by
				// construction, so it is drained over the same connection.
				return []ReplySource{{Leg: 0, Queue: replyQ[p]}}
			},
			RepliesPerMsg: 1,
			Props: func(p int, seq uint64) amqp.Publishing {
				return amqp.Publishing{
					CorrelationID: fmt.Sprintf("p%d-m%d", p, seq),
					ReplyTo:       replyQ[p],
				}
			},
		},
		Consumers: []ConsumerRole{{
			Name:  "fcons",
			Queue: func(i int) string { return queues[i%len(queues)] },
			// The reply echoes the request timestamp so the producer can
			// compute the round-trip time.
			Reply: &ReplySpec{ToReplyTo: true},
		}},
	}, nil
}
