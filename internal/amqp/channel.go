package amqp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ds2hpc/internal/wire"
)

// Channel is a client channel: the unit of declaration, publishing, and
// consuming. One outstanding synchronous call is allowed at a time; content
// flows (deliveries, confirms, returns) are asynchronous.
type Channel struct {
	conn *Connection
	id   uint16

	callMu sync.Mutex
	rpc    chan wire.Method
	gets   chan getResult

	mu            sync.Mutex
	consumers     map[string]*clientConsumer
	consumerSeq   int
	confirms      []chan Confirmation
	returns       []chan Return
	notifyCls     []chan *Error
	confirmMode   bool
	publishSeq    uint64
	confirmExpect uint64
	closed        bool

	// Reconnect replay state (nil maps on legacy connections). pending
	// holds confirm-mode publishes the broker has not yet resolved,
	// keyed by client sequence number; pubMap maps the current
	// transport's broker confirm tags back onto those sequence numbers;
	// qosSpec and consumeSpecs record declarations to re-apply.
	pending   map[uint64]*pendingPublish
	pubMap    map[uint64]uint64
	brokerSeq uint64
	mapEpoch  uint64 // transport epoch pubMap/brokerSeq are valid for
	// replayedThrough is the highest client sequence number covered by a
	// resume's replay: every publish at or below it was either already
	// resolved or republished by the replay, so its own (blocked) write
	// must not also reach the wire.
	replayedThrough uint64
	qosSpec         *wire.BasicQos
	consumeSpecs    map[string]*wire.BasicConsume
	// consumeEpochs records, per consumer tag, the transport epoch its
	// basic.consume last landed on, so overlapping replay passes never
	// subscribe a tag twice on the same transport.
	consumeEpochs map[string]uint64
	acker         Acknowledger // epoch-scoped acker; nil = the channel itself

	// incoming content assembly
	pendKind    pendKind
	pendDeliver *wire.BasicDeliver
	pendGetOk   *wire.BasicGetOk
	pendReturn  *wire.BasicReturn
	pendHeader  *wire.ContentHeader
	pendBody    []byte
	// pendLoan backs pendBody with a wire-pool buffer when the content
	// under assembly is a manual-ack consumer delivery; nil otherwise.
	pendLoan *[]byte

	// loans maps outstanding delivery tags to the pooled buffers backing
	// their bodies, for the transport epoch loansEpoch. Resolving a
	// delivery (ack/nack/reject, including multiple) returns the buffer
	// to the pool; a reconnect abandons the epoch's loans to the garbage
	// collector, since the application may still hold those bodies.
	loans      map[uint64]*[]byte
	loansEpoch uint64
}

// clientConsumer is one registered consumer: its delivery stream plus the
// ack mode, which decides whether delivery bodies may live on pooled
// buffers (manual ack has a resolution point to release at; autoAck hands
// body ownership to the application outright). Exactly one of deliveries
// and fn is set: channel consumers get a buffered stream drained by their
// own goroutine; callback consumers (ConsumeFunc) are invoked straight
// from the connection read loop and cost no goroutine while idle.
type clientConsumer struct {
	deliveries chan Delivery
	fn         func(Delivery)
	noAck      bool
}

type pendKind int

const (
	pendNone pendKind = iota
	pendDeliverKind
	pendGetOkKind
	pendReturnKind
)

type getResult struct {
	d     *Delivery
	empty bool
}

func newChannel(c *Connection, id uint16) *Channel {
	ch := &Channel{
		conn:      c,
		id:        id,
		rpc:       make(chan wire.Method, 8),
		gets:      make(chan getResult, 1),
		consumers: map[string]*clientConsumer{},
		loans:     map[uint64]*[]byte{},
	}
	if c.reconnectEnabled() {
		ch.consumeSpecs = map[string]*wire.BasicConsume{}
		ch.consumeEpochs = map[string]uint64{}
		// The caller (Connection.Channel) holds c.mu, so read the epoch
		// field directly rather than through currentEpoch.
		ch.acker = &epochAcker{ch: ch, epoch: c.epoch}
		ch.mapEpoch = c.epoch
	}
	return ch
}

// pendingPublish is one confirm-mode publish awaiting broker resolution,
// retained so a reconnect can replay it.
type pendingPublish struct {
	exchange, key        string
	mandatory, immediate bool
	msg                  Publishing
}

// retriable reports whether a synchronous method is safe to re-issue
// after a transport loss that may or may not have executed it. Deletes
// and purges are not: a retried delete of an already-deleted queue
// raises a channel-closing NOT_FOUND on the broker.
func retriable(m wire.Method) bool {
	switch m.(type) {
	case *wire.QueueDelete, *wire.ExchangeDelete, *wire.QueuePurge:
		return false
	}
	return true
}

// call sends a synchronous method and waits for its -ok response. On a
// reconnecting connection a call interrupted by a transport loss waits
// for the resume and re-issues itself — for idempotent methods only
// (declarations re-apply cleanly, a freshly-created channel re-opens
// empty, consume specs are only recorded — and hence only auto-replayed
// — after a successful call; deletes and purges instead surface the
// interruption). Without a policy the call fails fast, as before.
func (ch *Channel) call(m wire.Method) (wire.Method, error) {
	resp, _, err := ch.callE(m)
	return resp, err
}

// callE is call, additionally reporting the transport epoch the
// successful attempt landed on.
func (ch *Channel) callE(m wire.Method) (wire.Method, uint64, error) {
	for {
		resp, epoch, err := ch.callOnce(m)
		if err == nil || !ch.conn.reconnectEnabled() ||
			!errors.Is(err, errSuspended) || !retriable(m) {
			return resp, epoch, err
		}
		// Transport loss mid-call: wait out the reconnect and re-issue.
		if !ch.conn.awaitResume() {
			return nil, 0, ErrClosed
		}
	}
}

// callOnce is a single call attempt; it fails with errSuspended when a
// transport loss interrupts it, and on success reports the transport
// epoch the method landed on (the write is generation-validated, so the
// captured epoch is exact).
func (ch *Channel) callOnce(m wire.Method) (wire.Method, uint64, error) {
	ch.callMu.Lock()
	defer ch.callMu.Unlock()
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil, 0, ErrClosed
	}
	ch.mu.Unlock()
	gen, suspended, epoch := ch.conn.genState()
	if suspended {
		return nil, 0, errSuspended
	}
	if err := ch.conn.writeMethodGen(gen, ch.id, m); err != nil {
		if err == errSuspended {
			// The read loop may not have noticed the dead socket yet;
			// don't spin against it.
			time.Sleep(time.Millisecond)
		}
		return nil, 0, err
	}
	select {
	case resp, ok := <-ch.rpc:
		if !ok {
			return nil, 0, ErrClosed
		}
		return resp, epoch, nil
	case <-gen:
		// The transport died mid-call. The reply may have raced in just
		// before the read loop exited; prefer it if so.
		select {
		case resp, ok := <-ch.rpc:
			if !ok {
				return nil, 0, ErrClosed
			}
			return resp, epoch, nil
		default:
			return nil, 0, errSuspended
		}
	}
}

// shutdown terminates the channel, notifying consumers and listeners.
func (ch *Channel) shutdown(err *Error) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	ch.closed = true
	consumers := ch.consumers
	ch.consumers = map[string]*clientConsumer{}
	confirms := ch.confirms
	ch.confirms = nil
	returns := ch.returns
	ch.returns = nil
	notify := ch.notifyCls
	ch.notifyCls = nil
	// Unresolved delivery bodies: the application may still drain and
	// read buffered deliveries after shutdown, so abandon their loans to
	// the garbage collector rather than recycling under the holder. The
	// half-assembled body (if any) was never handed out — recycle it.
	for t, p := range ch.loans {
		delete(ch.loans, t)
		wire.AbandonBuf(p)
	}
	pendLoan := ch.pendLoan
	ch.pendLoan = nil
	ch.pendBody = nil
	ch.mu.Unlock()
	wire.ReleaseBuf(pendLoan)

	close(ch.rpc)
	for _, cc := range consumers {
		if cc.deliveries != nil {
			close(cc.deliveries)
		}
	}
	for _, cc := range confirms {
		close(cc)
	}
	for _, rc := range returns {
		close(rc)
	}
	for _, n := range notify {
		if err != nil {
			select {
			case n <- err:
			default:
			}
		}
		close(n)
	}
}

// Close performs an orderly channel shutdown.
func (ch *Channel) Close() error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	ch.mu.Unlock()
	_, err := ch.call(&wire.ChannelClose{ReplyCode: wire.ReplySuccess, ReplyText: "bye"})
	ch.conn.removeChannel(ch.id)
	ch.shutdown(nil)
	return err
}

// NotifyClose registers a listener for channel exceptions.
func (ch *Channel) NotifyClose(c chan *Error) chan *Error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		close(c)
		return c
	}
	ch.notifyCls = append(ch.notifyCls, c)
	return c
}

// --- reader-side dispatch (called from the connection read loop) ---

func (ch *Channel) onMethod(m wire.Method) {
	switch x := m.(type) {
	case *wire.ChannelClose:
		ch.conn.writeMethod(ch.id, &wire.ChannelCloseOk{})
		ch.conn.removeChannel(ch.id)
		ch.shutdown(&Error{Code: x.ReplyCode, Reason: x.ReplyText})
	case *wire.BasicDeliver:
		ch.mu.Lock()
		ch.pendKind = pendDeliverKind
		ch.pendDeliver = x
		ch.mu.Unlock()
	case *wire.BasicGetOk:
		ch.mu.Lock()
		ch.pendKind = pendGetOkKind
		ch.pendGetOk = x
		ch.mu.Unlock()
	case *wire.BasicGetEmpty:
		select {
		case ch.gets <- getResult{empty: true}:
		default:
		}
	case *wire.BasicReturn:
		ch.mu.Lock()
		ch.pendKind = pendReturnKind
		ch.pendReturn = x
		ch.mu.Unlock()
	case *wire.BasicAck:
		ch.dispatchConfirm(x.DeliveryTag, x.Multiple, true)
	case *wire.BasicNack:
		ch.dispatchConfirm(x.DeliveryTag, x.Multiple, false)
	default:
		select {
		case ch.rpc <- m:
		default:
			// No waiter; drop (e.g. late -ok after timeout).
		}
	}
}

func (ch *Channel) dispatchConfirm(tag uint64, multiple, ack bool) {
	ch.mu.Lock()
	if ch.pending != nil {
		// Reconnect-tracked channel: broker tags are per-transport, so
		// translate them through pubMap back to client sequence numbers
		// and release the resolved publishes from the replay set.
		from := tag
		if multiple {
			from = ch.confirmExpect + 1
		}
		if tag > ch.confirmExpect {
			ch.confirmExpect = tag
		}
		var seqs []uint64
		for t := from; t <= tag; t++ {
			if s, ok := ch.pubMap[t]; ok {
				delete(ch.pubMap, t)
				delete(ch.pending, s)
				seqs = append(seqs, s)
			}
		}
		listeners := append([]chan Confirmation(nil), ch.confirms...)
		ch.mu.Unlock()
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			for _, l := range listeners {
				l <- Confirmation{DeliveryTag: s, Ack: ack}
			}
		}
		return
	}
	from := tag
	if multiple {
		from = ch.confirmExpect + 1
	}
	if tag > ch.confirmExpect {
		ch.confirmExpect = tag
	}
	if len(ch.confirms) == 0 {
		// No listeners registered: nothing to fan out (the common
		// fire-and-forget publisher), skip the listener-slice copy.
		ch.mu.Unlock()
		return
	}
	listeners := append([]chan Confirmation(nil), ch.confirms...)
	ch.mu.Unlock()
	for t := from; t <= tag; t++ {
		for _, l := range listeners {
			l <- Confirmation{DeliveryTag: t, Ack: ack}
		}
	}
}

func (ch *Channel) onHeader(h *wire.ContentHeader) {
	ch.mu.Lock()
	ch.pendHeader = h
	if ch.pendLoan != nil {
		// A previous assembly was cut off before completing; recycle it.
		wire.ReleaseBuf(ch.pendLoan)
		ch.pendLoan = nil
	}
	// Manual-ack consumer deliveries assemble into a pooled buffer
	// presized from BodySize; the ack is the release point. Everything
	// else (autoAck, gets, returns) gets a plain heap body whose
	// ownership passes to the receiver.
	if ch.pendKind == pendDeliverKind && ch.pendDeliver != nil {
		if cc := ch.consumers[ch.pendDeliver.ConsumerTag]; cc != nil && !cc.noAck {
			ch.pendLoan = wire.LoanBuf(int(h.BodySize))
		}
	}
	if ch.pendLoan != nil {
		ch.pendBody = (*ch.pendLoan)[:0]
	} else {
		ch.pendBody = make([]byte, 0, h.BodySize)
	}
	complete := h.BodySize == 0
	ch.mu.Unlock()
	if complete {
		ch.completeContent()
	}
}

func (ch *Channel) onBody(b []byte) {
	ch.mu.Lock()
	if ch.pendHeader == nil {
		ch.mu.Unlock()
		return
	}
	ch.pendBody = append(ch.pendBody, b...)
	complete := uint64(len(ch.pendBody)) >= ch.pendHeader.BodySize
	ch.mu.Unlock()
	if complete {
		ch.completeContent()
	}
}

func (ch *Channel) completeContent() {
	ch.mu.Lock()
	kind := ch.pendKind
	header := ch.pendHeader
	body := ch.pendBody
	loan := ch.pendLoan
	deliver := ch.pendDeliver
	getOk := ch.pendGetOk
	ret := ch.pendReturn
	ch.pendKind = pendNone
	ch.pendHeader = nil
	ch.pendBody = nil
	ch.pendLoan = nil
	ch.pendDeliver = nil
	ch.pendGetOk = nil
	ch.pendReturn = nil
	ch.mu.Unlock()
	if header == nil {
		wire.ReleaseBuf(loan)
		return
	}

	switch kind {
	case pendDeliverKind:
		d := deliveryFromProps(&header.Properties)
		d.Acknowledger = ch.currentAcker()
		d.ConsumerTag = deliver.ConsumerTag
		d.DeliveryTag = deliver.DeliveryTag
		d.Redelivered = deliver.Redelivered
		d.Exchange = deliver.Exchange
		d.RoutingKey = deliver.RoutingKey
		d.Body = body
		ch.mu.Lock()
		var dc chan Delivery
		var fn func(Delivery)
		if cc := ch.consumers[deliver.ConsumerTag]; cc != nil {
			dc, fn = cc.deliveries, cc.fn
		}
		if loan != nil {
			if (dc != nil || fn != nil) && !ch.closed {
				// The resolution of this tag releases the body buffer.
				ch.loans[deliver.DeliveryTag] = loan
			} else {
				// Undeliverable: nobody will ever see the body; recycle.
				wire.ReleaseBuf(loan)
				loan = nil
			}
		}
		ch.mu.Unlock()
		switch {
		case fn != nil:
			// Callback consumers run on the connection read loop: no
			// goroutine per idle consumer, and a slow handler throttles
			// the socket exactly like a full delivery channel would. The
			// handler must not issue synchronous calls on this connection
			// (the reply could never be read); async publishes and acks
			// are safe.
			fn(d)
		case dc != nil:
			// Blocking here applies natural backpressure to the socket,
			// like a TCP receive window filling up.
			func() {
				defer func() { recover() }() // tolerate a channel closed mid-send
				dc <- d
			}()
		}
	case pendGetOkKind:
		d := deliveryFromProps(&header.Properties)
		d.Acknowledger = ch.currentAcker()
		d.DeliveryTag = getOk.DeliveryTag
		d.Redelivered = getOk.Redelivered
		d.Exchange = getOk.Exchange
		d.RoutingKey = getOk.RoutingKey
		d.MessageCount = getOk.MessageCount
		d.Body = body
		select {
		case ch.gets <- getResult{d: &d}:
		default:
		}
	case pendReturnKind:
		ch.mu.Lock()
		listeners := append([]chan Return(nil), ch.returns...)
		ch.mu.Unlock()
		for _, l := range listeners {
			l <- Return{
				ReplyCode:  ret.ReplyCode,
				ReplyText:  ret.ReplyText,
				Exchange:   ret.Exchange,
				RoutingKey: ret.RoutingKey,
				Body:       body,
			}
		}
	}
}

// --- declarations ---

// QueueDeclare declares a queue.
func (ch *Channel) QueueDeclare(name string, durable, autoDelete, exclusive, noWait bool, args Table) (Queue, error) {
	m := &wire.QueueDeclare{
		Queue: name, Durable: durable, AutoDelete: autoDelete,
		Exclusive: exclusive, NoWait: noWait, Arguments: args,
	}
	if noWait {
		ch.callMu.Lock()
		err := ch.conn.writeMethod(ch.id, m)
		ch.callMu.Unlock()
		return Queue{Name: name}, err
	}
	resp, err := ch.call(m)
	if err != nil {
		return Queue{}, err
	}
	ok, good := resp.(*wire.QueueDeclareOk)
	if !good {
		return Queue{}, fmt.Errorf("amqp: unexpected response %T", resp)
	}
	return Queue{Name: ok.Queue, Messages: int(ok.MessageCount), Consumers: int(ok.ConsumerCount)}, nil
}

// QueueBind binds a queue to an exchange.
func (ch *Channel) QueueBind(name, key, exchange string, noWait bool, args Table) error {
	_, err := ch.call(&wire.QueueBind{Queue: name, Exchange: exchange, RoutingKey: key, Arguments: args})
	return err
}

// QueueUnbind removes a binding.
func (ch *Channel) QueueUnbind(name, key, exchange string, args Table) error {
	_, err := ch.call(&wire.QueueUnbind{Queue: name, Exchange: exchange, RoutingKey: key, Arguments: args})
	return err
}

// QueuePurge drops all ready messages, reporting how many.
func (ch *Channel) QueuePurge(name string, noWait bool) (int, error) {
	resp, err := ch.call(&wire.QueuePurge{Queue: name})
	if err != nil {
		return 0, err
	}
	ok, good := resp.(*wire.QueuePurgeOk)
	if !good {
		return 0, fmt.Errorf("amqp: unexpected response %T", resp)
	}
	return int(ok.MessageCount), nil
}

// QueueDelete removes a queue.
func (ch *Channel) QueueDelete(name string, ifUnused, ifEmpty, noWait bool) (int, error) {
	resp, err := ch.call(&wire.QueueDelete{Queue: name, IfUnused: ifUnused, IfEmpty: ifEmpty})
	if err != nil {
		return 0, err
	}
	ok, good := resp.(*wire.QueueDeleteOk)
	if !good {
		return 0, fmt.Errorf("amqp: unexpected response %T", resp)
	}
	return int(ok.MessageCount), nil
}

// ExchangeDeclare declares an exchange of the given kind.
func (ch *Channel) ExchangeDeclare(name, kind string, durable, autoDelete, internal, noWait bool, args Table) error {
	_, err := ch.call(&wire.ExchangeDeclare{
		Exchange: name, Type: kind, Durable: durable,
		AutoDelete: autoDelete, Internal: internal, Arguments: args,
	})
	return err
}

// ExchangeDelete removes an exchange.
func (ch *Channel) ExchangeDelete(name string, ifUnused, noWait bool) error {
	_, err := ch.call(&wire.ExchangeDelete{Exchange: name, IfUnused: ifUnused})
	return err
}

// --- QoS / confirm ---

// Qos sets the prefetch window applied to subsequent consumers.
func (ch *Channel) Qos(prefetchCount, prefetchSize int, global bool) error {
	m := &wire.BasicQos{
		PrefetchSize: uint32(prefetchSize), PrefetchCount: uint16(prefetchCount), Global: global,
	}
	_, err := ch.call(m)
	if err == nil && ch.conn.reconnectEnabled() {
		spec := *m
		ch.mu.Lock()
		ch.qosSpec = &spec
		ch.mu.Unlock()
	}
	return err
}

// Confirm puts the channel into publisher-confirm mode.
func (ch *Channel) Confirm(noWait bool) error {
	if noWait {
		ch.mu.Lock()
		ch.confirmMode = true
		if ch.conn.reconnectEnabled() && ch.pending == nil {
			ch.pending = map[uint64]*pendingPublish{}
			ch.pubMap = map[uint64]uint64{}
		}
		ch.mu.Unlock()
		ch.callMu.Lock()
		defer ch.callMu.Unlock()
		return ch.conn.writeMethod(ch.id, &wire.ConfirmSelect{NoWait: true})
	}
	_, err := ch.call(&wire.ConfirmSelect{})
	if err == nil {
		ch.mu.Lock()
		ch.confirmMode = true
		if ch.conn.reconnectEnabled() && ch.pending == nil {
			ch.pending = map[uint64]*pendingPublish{}
			ch.pubMap = map[uint64]uint64{}
		}
		ch.mu.Unlock()
	}
	return err
}

// NotifyPublish registers a confirm listener. The channel must be in
// confirm mode. Listeners must be drained promptly.
func (ch *Channel) NotifyPublish(c chan Confirmation) chan Confirmation {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		close(c)
		return c
	}
	ch.confirms = append(ch.confirms, c)
	return c
}

// NotifyReturn registers a listener for unroutable mandatory messages.
func (ch *Channel) NotifyReturn(c chan Return) chan Return {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		close(c)
		return c
	}
	ch.returns = append(ch.returns, c)
	return c
}

// GetNextPublishSeqNo returns the sequence number the next Publish will use
// in confirm mode.
func (ch *Channel) GetNextPublishSeqNo() uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.publishSeq + 1
}

// --- publish / consume ---

// Publish sends a message to an exchange. On a reconnecting connection
// in confirm mode the publish is tracked until the broker resolves it:
// if the transport dies first, the message is queued and replayed by the
// reconnect, so Publish reports success and the confirm (or the closed
// confirm channel, if the reconnect budget runs out) carries the final
// verdict — the same contract as a confirm-mode publish that made it
// onto the wire.
func (ch *Channel) Publish(exchange, key string, mandatory, immediate bool, msg Publishing) error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return ErrClosed
	}
	track := false
	var seq uint64
	if ch.confirmMode {
		ch.publishSeq++
		if ch.pending != nil {
			track = true
			seq = ch.publishSeq
			ch.pending[seq] = &pendingPublish{
				exchange: exchange, key: key,
				mandatory: mandatory, immediate: immediate, msg: msg,
			}
		}
	}
	ch.mu.Unlock()
	props := msg.properties()
	m := &wire.BasicPublish{
		Exchange: exchange, RoutingKey: key, Mandatory: mandatory, Immediate: immediate,
	}
	if track {
		// The broker confirm tag is assigned inside the write lock
		// (writeContentTracked), so tag order always matches wire order
		// even with concurrent publishers on this channel; a publish that
		// cannot reach the live transport stays in pending for the
		// reconnect replay, and the confirm (or the closed confirm
		// channel, if the reconnect budget runs out) carries the final
		// verdict.
		return ch.conn.writeContentTracked(ch, seq, m, &props, msg.Body)
	}
	return ch.conn.writeContent(ch.id, m, &props, msg.Body)
}

// Consume starts a consumer and returns its delivery channel.
func (ch *Channel) Consume(queue, consumerTag string, autoAck, exclusive, noLocal, noWait bool, args Table) (<-chan Delivery, error) {
	cc := &clientConsumer{deliveries: make(chan Delivery, 16), noAck: autoAck}
	if _, err := ch.consume(queue, consumerTag, cc, exclusive, noLocal, args); err != nil {
		return nil, err
	}
	return cc.deliveries, nil
}

// ConsumeFunc starts a callback consumer: fn runs for every delivery,
// invoked directly from the connection's read loop, so an idle consumer
// costs a map entry instead of a goroutine parked on a channel. This is
// what lets one multiplexed connection carry thousands of logical
// consumers (see ClientPool). It returns the (possibly generated)
// consumer tag for Cancel.
//
// Because fn runs on the read loop, it must not make synchronous calls
// (declares, Qos, Consume, Get, Close) on any channel of the same
// connection — the response could never be read. Asynchronous operations
// (Publish, Ack/Nack/Reject) are safe, as is anything on a different
// connection. A slow fn exerts backpressure on the whole shared
// connection, exactly like an undrained Consume channel. On reconnecting
// connections the subscription is replayed like any other consumer; fn
// is retained across transport epochs.
func (ch *Channel) ConsumeFunc(queue, consumerTag string, autoAck, exclusive, noLocal bool, args Table, fn func(Delivery)) (string, error) {
	if fn == nil {
		return "", errors.New("amqp: ConsumeFunc requires a handler")
	}
	return ch.consume(queue, consumerTag, &clientConsumer{fn: fn, noAck: autoAck}, exclusive, noLocal, args)
}

// consume registers cc under consumerTag (generating one if empty) and
// issues basic.consume, recording the replay spec on reconnecting
// connections. It is the shared body of Consume and ConsumeFunc.
func (ch *Channel) consume(queue, consumerTag string, cc *clientConsumer, exclusive, noLocal bool, args Table) (string, error) {
	ch.mu.Lock()
	if consumerTag == "" {
		ch.consumerSeq++
		consumerTag = fmt.Sprintf("ctag-%d-%d", ch.id, ch.consumerSeq)
	}
	if _, dup := ch.consumers[consumerTag]; dup {
		ch.mu.Unlock()
		return "", fmt.Errorf("amqp: duplicate consumer tag %q", consumerTag)
	}
	ch.consumers[consumerTag] = cc
	ch.mu.Unlock()

	m := &wire.BasicConsume{
		Queue: queue, ConsumerTag: consumerTag,
		NoAck: cc.noAck, Exclusive: exclusive, NoLocal: noLocal, Arguments: args,
	}
	_, epoch, err := ch.callE(m)
	if err != nil {
		ch.mu.Lock()
		delete(ch.consumers, consumerTag)
		ch.mu.Unlock()
		return "", err
	}
	if ch.conn.reconnectEnabled() {
		spec := *m
		ch.mu.Lock()
		ch.consumeSpecs[consumerTag] = &spec
		ch.consumeEpochs[consumerTag] = epoch
		ch.mu.Unlock()
	}
	return consumerTag, nil
}

// Cancel stops a consumer and closes its delivery channel (if any).
func (ch *Channel) Cancel(consumerTag string, noWait bool) error {
	_, err := ch.call(&wire.BasicCancel{ConsumerTag: consumerTag})
	ch.mu.Lock()
	cc, ok := ch.consumers[consumerTag]
	delete(ch.consumers, consumerTag)
	delete(ch.consumeSpecs, consumerTag)
	delete(ch.consumeEpochs, consumerTag)
	ch.mu.Unlock()
	if ok && cc.deliveries != nil {
		close(cc.deliveries)
	}
	return err
}

// Get synchronously fetches one message; ok is false if the queue is
// empty. Like call, a Get interrupted by a transport loss on a
// reconnecting connection waits out the resume and re-issues itself.
func (ch *Channel) Get(queue string, autoAck bool) (Delivery, bool, error) {
	for {
		d, ok, err := ch.getOnce(queue, autoAck)
		if err == nil || !ch.conn.reconnectEnabled() || !errors.Is(err, errSuspended) {
			return d, ok, err
		}
		if !ch.conn.awaitResume() {
			return Delivery{}, false, ErrClosed
		}
	}
}

func (ch *Channel) getOnce(queue string, autoAck bool) (Delivery, bool, error) {
	ch.callMu.Lock()
	defer ch.callMu.Unlock()
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return Delivery{}, false, ErrClosed
	}
	ch.mu.Unlock()
	// Drain any stale result.
	select {
	case <-ch.gets:
	default:
	}
	gen, suspended, _ := ch.conn.genState()
	if suspended {
		return Delivery{}, false, errSuspended
	}
	if err := ch.conn.writeMethodGen(gen, ch.id, &wire.BasicGet{Queue: queue, NoAck: autoAck}); err != nil {
		if err == errSuspended {
			time.Sleep(time.Millisecond)
		}
		return Delivery{}, false, err
	}
	select {
	case res := <-ch.gets:
		if res.empty {
			return Delivery{}, false, nil
		}
		return *res.d, true, nil
	case <-gen:
		select {
		case res := <-ch.gets:
			if res.empty {
				return Delivery{}, false, nil
			}
			return *res.d, true, nil
		default:
			return Delivery{}, false, errSuspended
		}
	case <-ch.conn.done:
		return Delivery{}, false, ErrClosed
	}
}

// --- Acknowledger ---

// epochCurrent passed as the epoch to releaseLoans means "whatever epoch
// the loan registry currently belongs to" — used by the Channel's own
// Acknowledger methods, which always act on the live transport.
const epochCurrent = ^uint64(0)

// releaseLoans returns the pooled bodies of resolved deliveries to the
// wire pool: the application promised (by acking/nacking/rejecting) that
// it is done with them. Loans from an older transport epoch are left
// alone — their tags belong to a dead transport and were already
// abandoned by the resume.
func (ch *Channel) releaseLoans(epoch, tag uint64, multiple bool) {
	ch.mu.Lock()
	if epoch != epochCurrent && epoch != ch.loansEpoch {
		ch.mu.Unlock()
		return
	}
	if !multiple {
		p := ch.loans[tag]
		delete(ch.loans, tag)
		ch.mu.Unlock()
		wire.ReleaseBuf(p)
		return
	}
	var rel []*[]byte
	for t, p := range ch.loans {
		if t <= tag || tag == 0 {
			rel = append(rel, p)
			delete(ch.loans, t)
		}
	}
	ch.mu.Unlock()
	for _, p := range rel {
		wire.ReleaseBuf(p)
	}
}

// Ack acknowledges a delivery tag.
func (ch *Channel) Ack(tag uint64, multiple bool) error {
	ch.releaseLoans(epochCurrent, tag, multiple)
	return ch.conn.writeMethod(ch.id, &wire.BasicAck{DeliveryTag: tag, Multiple: multiple})
}

// Nack negatively acknowledges a delivery tag.
func (ch *Channel) Nack(tag uint64, multiple, requeue bool) error {
	ch.releaseLoans(epochCurrent, tag, multiple)
	return ch.conn.writeMethod(ch.id, &wire.BasicNack{DeliveryTag: tag, Multiple: multiple, Requeue: requeue})
}

// Reject rejects a delivery tag.
func (ch *Channel) Reject(tag uint64, requeue bool) error {
	ch.releaseLoans(epochCurrent, tag, false)
	return ch.conn.writeMethod(ch.id, &wire.BasicReject{DeliveryTag: tag, Requeue: requeue})
}

// --- reconnect replay ---

// currentAcker returns the acknowledger deliveries should carry: the
// channel itself on legacy connections, or the transport-epoch-scoped
// acker on reconnecting connections (so acknowledgements for deliveries
// of a dead transport are dropped instead of misapplied to tags the new
// transport reassigned).
func (ch *Channel) currentAcker() Acknowledger {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.acker != nil {
		return ch.acker
	}
	return ch
}

// epochAcker resolves deliveries only while the transport epoch they
// were delivered on is still current. After a reconnect the broker has
// requeued those deliveries, so stale acknowledgements become no-ops.
type epochAcker struct {
	ch    *Channel
	epoch uint64
}

func (a *epochAcker) Ack(tag uint64, multiple bool) error {
	a.ch.releaseLoans(a.epoch, tag, multiple)
	return a.ch.conn.writeMethodEpoch(a.epoch, a.ch.id, &wire.BasicAck{DeliveryTag: tag, Multiple: multiple})
}

func (a *epochAcker) Nack(tag uint64, multiple, requeue bool) error {
	a.ch.releaseLoans(a.epoch, tag, multiple)
	return a.ch.conn.writeMethodEpoch(a.epoch, a.ch.id, &wire.BasicNack{DeliveryTag: tag, Multiple: multiple, Requeue: requeue})
}

func (a *epochAcker) Reject(tag uint64, requeue bool) error {
	a.ch.releaseLoans(a.epoch, tag, false)
	return a.ch.conn.writeMethodEpoch(a.epoch, a.ch.id, &wire.BasicReject{DeliveryTag: tag, Requeue: requeue})
}

// replayState re-establishes this channel on a fresh transport during
// resume: channel.open, QoS, confirm mode, and every pending
// confirm-mode publish, republished in client sequence order so the new
// transport's broker confirm tags (1..n) map back onto the original
// sequence numbers. The caller holds the connection's writeMu and owns
// the frame reader; consumers are replayed separately once the read
// loop is live (replayConsumers).
func (ch *Channel) replayState(fr *wire.FrameReader) error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	// Drop any content assembly that was cut off mid-message (its loan
	// was never handed out, so it can recycle), and abandon the dead
	// transport's delivery-body loans: the broker requeued those
	// deliveries, but the application may still hold the bodies.
	ch.pendKind = pendNone
	ch.pendHeader = nil
	ch.pendBody = nil
	wire.ReleaseBuf(ch.pendLoan)
	ch.pendLoan = nil
	ch.pendDeliver = nil
	ch.pendGetOk = nil
	ch.pendReturn = nil
	for t, p := range ch.loans {
		delete(ch.loans, t)
		wire.AbandonBuf(p)
	}
	epoch := ch.conn.currentEpoch()
	ch.acker = &epochAcker{ch: ch, epoch: epoch}
	qos := ch.qosSpec
	confirm := ch.confirmMode
	// Rebuild the confirm-tag mapping: the broker numbers publishes per
	// transport, and the replay below re-publishes every pending message
	// in ascending sequence order. Marking the map current for the new
	// epoch reopens direct publishing (writes queue on writeMu until the
	// resume releases it).
	ch.mapEpoch = epoch
	ch.loansEpoch = epoch
	ch.replayedThrough = ch.publishSeq
	ch.confirmExpect = 0
	ch.brokerSeq = 0
	var pend []*pendingPublish
	if ch.pending != nil {
		seqs := make([]uint64, 0, len(ch.pending))
		for s := range ch.pending {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		ch.pubMap = make(map[uint64]uint64, len(seqs))
		pend = make([]*pendingPublish, 0, len(seqs))
		for _, s := range seqs {
			ch.brokerSeq++
			ch.pubMap[ch.brokerSeq] = s
			pend = append(pend, ch.pending[s])
		}
	}
	ch.mu.Unlock()

	if _, err := ch.conn.replayCall(fr, ch.id, &wire.ChannelOpen{}); err != nil {
		return err
	}
	if qos != nil {
		spec := *qos
		if _, err := ch.conn.replayCall(fr, ch.id, &spec); err != nil {
			return err
		}
	}
	if confirm {
		if _, err := ch.conn.replayCall(fr, ch.id, &wire.ConfirmSelect{}); err != nil {
			return err
		}
	}
	for _, p := range pend {
		props := p.msg.properties()
		err := ch.conn.writeContentRaw(ch.id, &wire.BasicPublish{
			Exchange: p.exchange, RoutingKey: p.key,
			Mandatory: p.mandatory, Immediate: p.immediate,
		}, &props, p.msg.Body)
		if err != nil {
			return err
		}
		replayedPublishes.Inc()
	}
	return nil
}

// replayConsumers re-issues basic.consume, through the normal
// synchronous path (the read loop routes the -ok and the redeliveries
// that follow), for every registered consumer whose subscription has not
// already landed on the target transport epoch or later. It uses the
// single-attempt call and aborts quietly on a further fault: the
// reconnect that follows kicks another replay pass, and the landing
// epoch records keep any overlap from double-subscribing a tag on one
// transport (which the broker rejects).
func (ch *Channel) replayConsumers(target uint64) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	tags := make([]string, 0, len(ch.consumeSpecs))
	for tag := range ch.consumeSpecs {
		if ch.consumeEpochs[tag] < target {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	specs := make([]*wire.BasicConsume, 0, len(tags))
	for _, tag := range tags {
		spec := *ch.consumeSpecs[tag]
		specs = append(specs, &spec)
	}
	ch.mu.Unlock()
	for _, spec := range specs {
		_, epoch, err := ch.callOnce(spec)
		if err != nil {
			return
		}
		ch.mu.Lock()
		if _, still := ch.consumeSpecs[spec.ConsumerTag]; still && epoch > ch.consumeEpochs[spec.ConsumerTag] {
			ch.consumeEpochs[spec.ConsumerTag] = epoch
		}
		ch.mu.Unlock()
	}
}
