package telemetry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// transition is a compact expected-event form for the table tests.
type transition struct {
	tick int // 0-based index of the tick that fires it
	rule string
	from HealthState
	to   HealthState
}

// feed drives one rule through a value sequence (one source) and
// returns the transitions in (tick, rule, from, to) form.
func feed(t *testing.T, rule HealthRule, values []float64) []transition {
	t.Helper()
	m := NewHealthMonitor([]HealthRule{rule})
	var got []transition
	base := time.Unix(1000, 0)
	for i, v := range values {
		evs := m.Eval(Tick{
			T:      base.Add(time.Duration(i) * time.Second),
			Values: map[string]float64{rule.Source: v},
		})
		for _, ev := range evs {
			got = append(got, transition{tick: i, rule: ev.Rule, from: ev.From, to: ev.To})
		}
	}
	return got
}

func TestHealthRules(t *testing.T) {
	cases := []struct {
		name   string
		rule   HealthRule
		values []float64
		want   []transition
	}{
		{
			name: "above warn then critical then recover",
			rule: HealthRule{Name: "depth", Source: "queue_depth", Kind: RuleAbove,
				Warn: 100, Critical: 1000},
			values: []float64{10, 150, 1500, 1500, 50},
			want: []transition{
				{1, "depth", HealthOK, HealthWarn},
				{2, "depth", HealthWarn, HealthCritical},
				{4, "depth", HealthCritical, HealthOK},
			},
		},
		{
			name: "for_ticks suppresses a one-tick spike",
			rule: HealthRule{Name: "depth", Source: "queue_depth", Kind: RuleAbove,
				Warn: 100, For: 2},
			values: []float64{10, 150, 10, 150, 150, 10},
			want: []transition{
				{4, "depth", HealthOK, HealthWarn},
				{5, "depth", HealthWarn, HealthOK},
			},
		},
		{
			name: "clear_ticks delays recovery",
			rule: HealthRule{Name: "depth", Source: "queue_depth", Kind: RuleAbove,
				Warn: 100, Clear: 2},
			values: []float64{150, 10, 150, 10, 10},
			want: []transition{
				{0, "depth", HealthOK, HealthWarn},
				{4, "depth", HealthWarn, HealthOK},
			},
		},
		{
			name: "delta turns a cumulative counter into a storm detector",
			rule: HealthRule{Name: "reconnect-storm", Source: "reconnects", Kind: RuleAbove,
				Delta: true, Warn: 3, Critical: 24},
			// Levels: first tick seeds the baseline; +1 is quiet, +5
			// breaches warn, +0 recovers, +30 jumps straight to critical.
			values: []float64{2, 3, 8, 8, 38, 38},
			want: []transition{
				{2, "reconnect-storm", HealthOK, HealthWarn},
				{3, "reconnect-storm", HealthWarn, HealthOK},
				{4, "reconnect-storm", HealthOK, HealthCritical},
				{5, "reconnect-storm", HealthCritical, HealthOK},
			},
		},
		{
			name: "below stall rule is warn-only with equal thresholds",
			rule: HealthRule{Name: "consume-stall", Source: "consumed", Kind: RuleBelow,
				Warn: 0, Critical: 0, For: 3},
			values: []float64{120, 0, 0, 0, 0, 90},
			want: []transition{
				{3, "consume-stall", HealthOK, HealthWarn},
				{5, "consume-stall", HealthWarn, HealthOK},
			},
		},
		{
			name: "flap counts link drops and clears after stability",
			rule: HealthRule{Name: "link-flap", Source: "federation_links", Kind: RuleFlap,
				Warn: 2, Clear: 2},
			// 2→1 (flap 1), 1→2 rise, 2→1 (flap 2: warn). Clear serves
			// double duty: two non-decreasing ticks reset the count, then
			// two OK evaluations de-escalate.
			values: []float64{2, 1, 2, 1, 1, 2, 2},
			want: []transition{
				{3, "link-flap", HealthOK, HealthWarn},
				{6, "link-flap", HealthWarn, HealthOK},
			},
		},
		{
			name: "missing critical never escalates past warn",
			rule: HealthRule{Name: "depth", Source: "queue_depth", Kind: RuleAbove,
				Warn: 100},
			values: []float64{1e12, 1e12},
			want: []transition{
				{0, "depth", HealthOK, HealthWarn},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := feed(t, tc.rule, tc.values)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d transitions %+v, want %d %+v", len(got), got, len(tc.want), tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("transition %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestHealthMonitorPlumbing(t *testing.T) {
	m := NewHealthMonitor([]HealthRule{
		{Name: "depth", Source: "queue_depth", Warn: 100}, // empty Kind → above
		{Name: "other", Source: "absent", Warn: 1},
	})
	var cbEvents []HealthEvent
	m.OnEvent(func(e HealthEvent) { cbEvents = append(cbEvents, e) })

	// A tick missing a rule's source leaves that rule untouched.
	fired := m.Eval(Tick{T: time.Unix(1, 0), Values: map[string]float64{"queue_depth": 500}})
	if len(fired) != 1 || fired[0].Rule != "depth" || fired[0].To != HealthWarn {
		t.Fatalf("fired = %+v", fired)
	}
	if m.State("depth") != HealthWarn || m.State("other") != HealthOK || m.State("unknown") != HealthOK {
		t.Fatalf("states: depth=%v other=%v", m.State("depth"), m.State("other"))
	}
	if len(cbEvents) != 1 || cbEvents[0].Rule != "depth" {
		t.Fatalf("OnEvent saw %+v", cbEvents)
	}

	evs := m.Events()
	if len(evs) != 1 || evs[0].FromState != "ok" || evs[0].ToState != "warn" {
		t.Fatalf("Events() = %+v", evs)
	}
	// The log is a copy.
	evs[0].Rule = "tampered"
	if m.Events()[0].Rule != "depth" {
		t.Fatal("Events() aliases the internal log")
	}

	if got, want := fired[0].String(), "depth ok→warn (queue_depth=500.0)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAggregatorUnobserve(t *testing.T) {
	a := NewAggregator(time.Second)
	var live, doomed int64 = 10, 20
	a.ObserveGauge("live", func() int64 { return live })
	a.ObserveGauge("doomed", func() int64 { return doomed })

	a.Tick(time.Unix(1, 0))
	a.Unobserve("doomed")
	a.Unobserve("never-registered") // no-op

	// After Unobserve the source is gone from ticks and its series is
	// dropped; the surviving source is unaffected.
	var last Tick
	a.OnTick(func(t Tick) { last = t })
	a.Tick(time.Unix(2, 0))
	if _, ok := last.Values["doomed"]; ok {
		t.Fatal("unobserved source still ticked")
	}
	if last.Values["live"] != 10 {
		t.Fatalf("surviving source = %v", last.Values["live"])
	}
	if pts := a.Series("doomed"); pts != nil {
		t.Fatalf("unobserved series survives: %v", pts)
	}
	if pts := a.Series("live"); len(pts) != 2 {
		t.Fatalf("live series has %d points, want 2", len(pts))
	}
}

func TestServerShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Close after Shutdown is the documented fallback path; the only
	// acceptable error is the server already being closed.
	if err := s.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
