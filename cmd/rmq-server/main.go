// Command rmq-server runs one ds2hpc broker node (or an n-node cluster),
// the RabbitMQ-equivalent streaming service deployed on the paper's Data
// Streaming Nodes. With -tls it serves AMQPS like the DTS deployment's
// node-exposed port 30671.
//
// With -data-dir each node persists its durable queues to an append-only
// segment log under that directory and replays them on restart; -fsync
// picks the durability/latency trade-off (never, interval, always).
//
// Usage:
//
//	rmq-server [-addr 127.0.0.1:5672] [-nodes 1] [-tls] [-mem-gb 4] [-rate-mbps 0]
//	           [-data-dir DIR] [-fsync never|interval|always]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/cluster"
	"ds2hpc/internal/netem"
	"ds2hpc/internal/tlsutil"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], sig, os.Stdout, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "rmq-server:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the broker cluster, reports the listen
// addresses, and blocks until a signal arrives. started, if non-nil, is
// invoked with the node addresses once every node is listening (tests use
// it to learn the ephemeral ports).
func run(args []string, sig <-chan os.Signal, out io.Writer, started func(addrs []string)) error {
	fs := flag.NewFlagSet("rmq-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:5672", "listen address (first node; :0 for ephemeral)")
		nodes    = fs.Int("nodes", 1, "number of broker nodes")
		withTLS  = fs.Bool("tls", false, "serve AMQPS with a self-signed certificate")
		memGB    = fs.Float64("mem-gb", 4, "memory limit per vhost in GiB (80% goes to payload queues)")
		rateMbps = fs.Float64("rate-mbps", 0, "emulated per-node link rate in Mbps (0 = unshaped)")
		dataDir  = fs.String("data-dir", "", "persist durable queues to segment logs under this directory (empty = in-memory only)")
		fsync    = fs.String("fsync", "", "segment log fsync policy: never, interval, always (default never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := broker.Config{
		MemoryLimit: int64(*memGB * float64(1<<30) * 0.8),
	}
	if *fsync != "" && *dataDir == "" {
		return fmt.Errorf("-fsync requires -data-dir")
	}
	if *dataDir != "" {
		policy, err := seglog.ParseFsync(*fsync)
		if err != nil {
			return err
		}
		cfg.DataDir = *dataDir
		cfg.Durability = seglog.Options{Fsync: policy}
	}
	if *withTLS {
		id, err := tlsutil.SelfSigned("rmq-server", "127.0.0.1", "localhost")
		if err != nil {
			return err
		}
		cfg.TLS = id.ServerConfig()
		if err := os.WriteFile("rmq-server-ca.pem", id.CertPEM, 0o644); err == nil {
			fmt.Fprintln(out, "wrote rmq-server-ca.pem (client trust root)")
		}
	}
	cl, err := cluster.StartWith(*nodes, func(i int) broker.Config {
		c := cfg
		if i == 0 {
			c.Addr = *addr
		} else {
			c.Addr = "127.0.0.1:0"
		}
		if *rateMbps > 0 {
			c.Link = netem.NewLink(fmt.Sprintf("dsn-%d", i), netem.Mbps(*rateMbps), 0)
		}
		return c
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	scheme := "amqp"
	if *withTLS {
		scheme = "amqps"
	}
	for i, a := range cl.Addrs() {
		fmt.Fprintf(out, "node %d listening on %s://%s\n", i, scheme, a)
	}
	if started != nil {
		started(cl.Addrs())
	}

	<-sig
	fmt.Fprintln(out, "shutting down")
	return nil
}
