package tlsutil

import (
	"crypto/tls"
	"io"
	"net"
	"testing"
)

func TestSelfSignedHandshake(t *testing.T) {
	id, err := SelfSigned("dsn1", "127.0.0.1", "localhost")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", id.ServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			errc <- err
			return
		}
		_, err = c.Write(buf)
		errc <- err
	}()

	conn, err := tls.Dial("tcp", ln.Addr().String(), id.ClientConfig("127.0.0.1"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo mismatch: %q", buf)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestMutualTLS(t *testing.T) {
	id, err := SelfSigned("tunnel", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", id.MutualServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		defer c.Close()
		// Force the handshake so client-cert verification runs.
		accepted <- c.(*tls.Conn).Handshake()
	}()

	conn, err := tls.Dial("tcp", ln.Addr().String(), id.MutualClientConfig("127.0.0.1"))
	if err != nil {
		t.Fatalf("mtls dial: %v", err)
	}
	conn.Close()
	if err := <-accepted; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
}

func TestMutualTLSRejectsNoClientCert(t *testing.T) {
	id, err := SelfSigned("tunnel", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", id.MutualServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.(*tls.Conn).Handshake()
		c.Close()
	}()
	conn, err := tls.Dial("tcp", ln.Addr().String(), id.ClientConfig("127.0.0.1"))
	if err != nil {
		return // handshake failed immediately, as expected
	}
	defer conn.Close()
	// Complete the handshake explicitly; server must reject.
	if err := conn.Handshake(); err == nil {
		// Some TLS versions surface the failure on first read instead.
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("expected handshake rejection without client cert")
		}
	}
}

func TestPoolFromPEM(t *testing.T) {
	id, err := SelfSigned("x", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PoolFromPEM(id.CertPEM); err != nil {
		t.Fatal(err)
	}
	if _, err := PoolFromPEM([]byte("not a cert")); err == nil {
		t.Fatal("expected error for garbage PEM")
	}
}

func TestSelfSignedDefaultsToLoopback(t *testing.T) {
	id, err := SelfSigned("default-hosts")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", id.ServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		if c, err := ln.Accept(); err == nil {
			c.(*tls.Conn).Handshake()
			c.Close()
		}
	}()
	host, _, _ := net.SplitHostPort(ln.Addr().String())
	conn, err := tls.Dial("tcp", ln.Addr().String(), id.ClientConfig(host))
	if err != nil {
		t.Fatalf("default SAN should cover loopback: %v", err)
	}
	conn.Close()
}
