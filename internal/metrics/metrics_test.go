package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ds2hpc/internal/telemetry"
)

// within asserts got is at or above exact and within one histogram
// bucket width of it — the streaming histogram's accuracy contract.
func within(t *testing.T, label string, got, exact time.Duration) {
	t.Helper()
	if got < exact {
		t.Fatalf("%s = %v below exact %v", label, got, exact)
	}
	if width := telemetry.BucketWidth(int64(exact)); int64(got-exact) >= width {
		t.Fatalf("%s = %v, want within %v of %v", label, got, time.Duration(width), exact)
	}
}

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.Start()
	c.AddConsumed(10)
	c.AddProduced(12)
	c.AddError()
	c.AddRTT(30 * time.Millisecond)
	c.AddRTT(10 * time.Millisecond)
	c.AddRTT(20 * time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	r := c.Snapshot()
	if r.Consumed != 10 || r.Produced != 12 || r.Errors != 1 {
		t.Fatalf("counters %+v", r)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if r.RTTCount() != 3 {
		t.Fatalf("RTT count = %d", r.RTTCount())
	}
	within(t, "median", r.MedianRTT(), 20*time.Millisecond)
	// Histogram buckets are ascending by construction.
	for i := 1; i < len(r.RTT.Buckets); i++ {
		if r.RTT.Buckets[i].Upper < r.RTT.Buckets[i-1].Upper {
			t.Fatal("buckets not sorted")
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	c.Start()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			consumed := c.ConsumedShard(i)
			for j := 0; j < 100; j++ {
				consumed.Add(1)
				c.AddRTT(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	r := c.Snapshot()
	if r.Consumed != 800 || r.RTTCount() != 800 {
		t.Fatalf("lost samples: %d %d", r.Consumed, r.RTTCount())
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.AddRTT(time.Duration(i) * time.Millisecond)
	}
	r := c.Snapshot()
	within(t, "p50", r.PercentileRTT(50), 50*time.Millisecond)
	within(t, "p99", r.PercentileRTT(99), 99*time.Millisecond)
	within(t, "p0", r.PercentileRTT(0), time.Millisecond)
	within(t, "p100", r.PercentileRTT(100), 100*time.Millisecond)
	within(t, "p>100", r.PercentileRTT(150), 100*time.Millisecond)
}

// TestHistogramPercentileEquivalence is the bounded-memory contract:
// on a fixed sample set, every histogram percentile is within one
// bucket width of the exact sorted-slice nearest-rank percentile the
// old unbounded collector computed.
func TestHistogramPercentileEquivalence(t *testing.T) {
	// Bimodal fixed set, like a fault run: fast intra-site RTTs plus a
	// slow mode behind a flap.
	var samples []time.Duration
	for i := 0; i < 900; i++ {
		samples = append(samples, time.Duration(200+i)*time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, time.Duration(80+i)*time.Millisecond)
	}
	c := NewCollector()
	for _, d := range samples {
		c.AddRTT(d)
	}
	r := c.Snapshot()

	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	exact := func(p float64) time.Duration {
		if p <= 0 {
			return sorted[0]
		}
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		return sorted[rank-1]
	}
	for _, p := range []float64{1, 10, 50, 80, 90, 95, 99, 99.9, 100} {
		within(t, "percentile", r.PercentileRTT(p), exact(p))
	}
}

func TestPercentileEmpty(t *testing.T) {
	r := NewCollector().Snapshot()
	if r.MedianRTT() != 0 {
		t.Fatal("empty median should be zero")
	}
	if r.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
	if (&Result{}).MedianRTT() != 0 {
		t.Fatal("nil-histogram median should be zero")
	}
}

func TestCDFMonotonic(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 1000; i++ {
		c.AddRTT(time.Duration(i) * time.Microsecond)
	}
	cdf := c.Snapshot().CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P < cdf[i-1].P || cdf[i].RTT < cdf[i-1].RTT {
			t.Fatal("CDF not monotonic")
		}
	}
	if last := cdf[len(cdf)-1]; last.P != 1.0 {
		t.Fatalf("CDF must reach 1.0, got %f", last.P)
	}
}

func TestFractionUnder(t *testing.T) {
	c := NewCollector()
	for _, d := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 400 * time.Millisecond,
	} {
		c.AddRTT(d)
	}
	r := c.Snapshot()
	if got := r.FractionUnder(250 * time.Millisecond); got != 0.5 {
		t.Fatalf("FractionUnder = %f", got)
	}
	if got := r.FractionUnder(time.Second); got != 1.0 {
		t.Fatalf("FractionUnder(max) = %f", got)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(39000, 19000); math.Abs(got-2.05) > 0.01 {
		t.Errorf("overhead = %f", got)
	}
	if !math.IsInf(Overhead(100, 0), 1) {
		t.Error("zero throughput should be infinite overhead")
	}
	if got := RTTOverhead(100*time.Millisecond, 690*time.Millisecond); math.Abs(got-6.9) > 0.01 {
		t.Errorf("rtt overhead = %f", got)
	}
}

func TestMergeAveragesThroughput(t *testing.T) {
	mk := func(tp float64, consumed int64, dur time.Duration, rtts ...time.Duration) *Result {
		c := NewCollector()
		for _, d := range rtts {
			c.AddRTT(d)
		}
		r := c.Snapshot()
		r.Throughput, r.Consumed, r.Duration = tp, consumed, dur
		return r
	}
	runs := []*Result{
		mk(100, 10, time.Second, 3*time.Millisecond),
		mk(200, 20, 3*time.Second, time.Millisecond, 2*time.Millisecond),
	}
	m := Merge(runs)
	if m.Throughput != 150 {
		t.Errorf("avg throughput = %f", m.Throughput)
	}
	if m.Consumed != 30 {
		t.Errorf("consumed = %d", m.Consumed)
	}
	if m.Duration != 2*time.Second {
		t.Errorf("duration = %v", m.Duration)
	}
	if m.RTTCount() != 3 {
		t.Errorf("pooled RTT count = %d", m.RTTCount())
	}
	within(t, "merged p100", m.PercentileRTT(100), 3*time.Millisecond)
	if Merge(nil).Throughput != 0 {
		t.Error("empty merge should be zero")
	}
}

// TestCollectorMemoryBounded is the point of the histogram move: a
// steady-state AddRTT allocates nothing, so collector memory no longer
// grows with message count.
func TestCollectorMemoryBounded(t *testing.T) {
	c := NewCollector()
	c.AddRTT(time.Millisecond) // warm
	got := testing.AllocsPerRun(200, func() {
		c.AddRTT(42 * time.Millisecond)
		c.AddConsumed(1)
	})
	if got > 0 {
		t.Fatalf("AddRTT/AddConsumed allocate %.1f objects/op, want 0", got)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(samples []int16, p uint8) bool {
		if len(samples) == 0 {
			return true
		}
		c := NewCollector()
		var ds []time.Duration
		for _, s := range samples {
			d := time.Duration(int(s)+40000) * time.Microsecond
			ds = append(ds, d)
			c.AddRTT(d)
		}
		got := c.Snapshot().PercentileRTT(float64(p % 101))
		// The percentile must land within one bucket width above one
		// of the recorded samples.
		for _, d := range ds {
			if got >= d && int64(got-d) < telemetry.BucketWidth(int64(d)) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
