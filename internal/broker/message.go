// Package broker implements the ds2hpc message broker: a from-scratch,
// RabbitMQ-like AMQP 0-9-1 server that acts as the streaming service in all
// three cross-facility architectures studied by the paper (DTS, PRS, MSS).
//
// Supported features are the ones the paper's evaluation exercises:
// exchanges (default, direct, fanout, topic), classic queues with
// length/byte limits and "reject-publish"/"drop-head" overflow policies,
// prefetch-aware round-robin delivery, consumer acknowledgements (single,
// multiple/batch, nack/reject with requeue), publisher confirms, mandatory
// returns, basic.get, heartbeats, and TLS (AMQPS) listeners.
//
// With Config.DataDir set, durable queues persist to per-queue append-only
// segment logs (see internal/broker/seglog) and are rebuilt from them on
// start; consumers can replay retained history from any offset via the
// x-stream-offset consume argument. See the repository README's
// "Durability model" section for the on-disk format, fsync policy knobs,
// and the crash-consistency contract.
package broker

import (
	"sync"
	"sync/atomic"

	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// telBodyReleases counts final releases — bodies handed back to the wire
// buffer pool after the last queue resolved the message. Together with
// the wire.loaned_bytes gauge it makes refcount leaks observable: under
// a drained workload loaned bytes return to baseline and releases match
// the managed-message publish count.
var telBodyReleases = telemetry.Default.Counter("broker.body_releases")

// Message is a routed message held by queues and delivered to consumers.
//
// Messages are refcounted and body-pooled: ingest assembles the body into
// a buffer loaned from the wire pool, routing retains one reference per
// matched queue (fanout and topic routing share the one instance instead
// of copying it), and whichever queue resolves its reference last — ack,
// drop-head eviction, reject discard, purge, queue delete, or connection
// teardown — returns the body to the pool. Message fields are immutable
// after publish; per-queue delivery state (the redelivered flag) lives in
// the queue entry, not here.
//
// A Message built with a plain composite literal (refcount never
// initialized) is "unmanaged": Retain and Release are no-ops and the body
// is left to the garbage collector. Tests and embedders can keep using
// &Message{...} for one-shot publishes.
type Message struct {
	Exchange   string
	RoutingKey string
	Props      wire.Properties
	Body       []byte

	// refs counts owners: the publisher while routing plus one per queue
	// holding the message (ready or unacked). 0 means unmanaged.
	refs atomic.Int32
	// loan is the wire-pool buffer backing Body; nil for unmanaged
	// messages.
	loan *[]byte
}

// msgPool recycles Message headers so steady-state publishing allocates
// neither the struct nor the body.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a pooled, managed message whose body buffer is
// loaned from the wire pool presized to bodySize (the content header's
// BodySize, so multi-frame bodies assemble without reallocation). The
// caller owns one reference and must Release it when done routing.
func NewMessage(exchange, routingKey string, props wire.Properties, bodySize int) *Message {
	m := msgPool.Get().(*Message)
	m.Exchange, m.RoutingKey, m.Props = exchange, routingKey, props
	m.loan = wire.LoanBuf(bodySize)
	m.Body = (*m.loan)[:0]
	m.refs.Store(1) // clears the msgReleased sentinel on pool reuse
	return m
}

// AppendBody appends one body-frame payload to the message under
// assembly. The body buffer is presized from the content header, so the
// append never reallocates for well-formed publishes.
func (m *Message) AppendBody(b []byte) {
	m.Body = append(m.Body, b...)
}

// msgReleased marks a fully released message awaiting pool reuse. A
// Retain or Release that observes it is a lifecycle bug and panics
// instead of corrupting the pool.
const msgReleased = int32(-1 << 30)

// Retain adds one owner. No-op on unmanaged messages. Callers must
// already hold a reference (routing retains on behalf of each queue
// while the publisher's reference is live).
func (m *Message) Retain() {
	n := m.refs.Load()
	if n == 0 {
		return
	}
	if n < 0 {
		panic("broker: retain of released message")
	}
	m.refs.Add(1)
}

// Release drops one owner; the last owner returns the body to the wire
// pool and the header to the message pool. No-op on unmanaged messages.
// Must be called exactly once per owned reference: the body buffer is
// invalid the moment the last reference is gone, and a further Release
// panics.
func (m *Message) Release() {
	n := m.refs.Load()
	if n == 0 {
		return
	}
	if n < 0 {
		panic("broker: message over-released")
	}
	left := m.refs.Add(-1)
	if left > 0 {
		return
	}
	if left < 0 {
		panic("broker: message over-released")
	}
	telBodyReleases.Inc()
	wire.ReleaseBuf(m.loan)
	m.Exchange, m.RoutingKey = "", ""
	m.Props = wire.Properties{}
	m.Body = nil
	m.loan = nil
	m.refs.Store(msgReleased)
	msgPool.Put(m)
}

// size returns the number of body bytes the message accounts against queue
// and broker memory limits. Header overhead is ignored, matching how the
// paper sizes queue memory by payload.
func (m *Message) size() int64 { return int64(len(m.Body)) }
