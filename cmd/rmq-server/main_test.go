package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
)

// TestServerStartPublishShutdown smoke-tests the binary's full lifecycle:
// start on an ephemeral port, serve a real client round-trip, and shut
// down cleanly on a signal.
func TestServerStartPublishShutdown(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrs := make(chan []string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-nodes", "2"}, sig, &out,
			func(a []string) { addrs <- a })
	}()

	var nodes []string
	select {
	case nodes = <-addrs:
	case err := <-done:
		t.Fatalf("server exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start listening")
	}
	if len(nodes) != 2 {
		t.Fatalf("addrs = %v, want 2 nodes", nodes)
	}

	conn, err := amqp.Dial(fmt.Sprintf("amqp://%s/", nodes[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.QueueDeclare("smoke", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := ch.Publish("", "smoke", false, false, amqp.Publishing{Body: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	d, ok, err := ch.Get("smoke", true)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(d.Body) != "ping" {
		t.Fatalf("body %q", d.Body)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on signal")
	}
	if !strings.Contains(out.String(), "listening on amqp://") {
		t.Fatalf("missing listen banner in output: %s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown message in output: %s", out.String())
	}
}

// TestServerDurableRestart starts the server with -data-dir, publishes to
// a durable queue, stops the process, and checks a second process on the
// same directory serves the message back — the operator-facing face of
// crash recovery.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func(publish bool) string {
		sig := make(chan os.Signal, 1)
		addrs := make(chan []string, 1)
		var out bytes.Buffer
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-fsync", "always"},
				sig, &out, func(a []string) { addrs <- a })
		}()
		var nodes []string
		select {
		case nodes = <-addrs:
		case err := <-done:
			t.Fatalf("server exited early: %v (output: %s)", err, out.String())
		case <-time.After(10 * time.Second):
			t.Fatal("server did not start listening")
		}

		conn, err := amqp.Dial(fmt.Sprintf("amqp://%s/", nodes[0]))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := conn.Channel()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ch.QueueDeclare("ledger", true, false, false, false, nil); err != nil {
			t.Fatal(err)
		}
		var body string
		if publish {
			if err := ch.Confirm(false); err != nil {
				t.Fatal(err)
			}
			confirms := ch.NotifyPublish(make(chan amqp.Confirmation, 1))
			if err := ch.Publish("", "ledger", false, false, amqp.Publishing{
				DeliveryMode: 2, Body: []byte("survives"),
			}); err != nil {
				t.Fatal(err)
			}
			if c := <-confirms; !c.Ack {
				t.Fatal("publish nacked")
			}
		} else {
			d, ok, err := ch.Get("ledger", true)
			if err != nil || !ok {
				t.Fatalf("get after restart: ok=%v err=%v", ok, err)
			}
			body = string(d.Body)
		}
		conn.Close()
		sig <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down on signal")
		}
		return body
	}

	boot(true)
	if got := boot(false); got != "survives" {
		t.Fatalf("recovered body = %q, want %q", got, "survives")
	}
}

// TestFsyncFlagValidation checks -fsync is validated up front.
func TestFsyncFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-data-dir", t.TempDir(), "-fsync", "sometimes"}, nil, &out, nil); err == nil {
		t.Fatal("bad -fsync policy must be rejected")
	}
	if err := run([]string{"-fsync", "always"}, nil, &out, nil); err == nil {
		t.Fatal("-fsync without -data-dir must be rejected")
	}
}

// TestBadFlagRejected checks flag parsing surfaces errors instead of
// exiting the process.
func TestBadFlagRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, nil, &out, nil); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// TestBadAddrRejected checks an unbindable address becomes an error.
func TestBadAddrRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "256.0.0.1:bogus"}, nil, &out, nil); err == nil {
		t.Fatal("bad listen address must be rejected")
	}
}
