package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBucketIdxContinuity(t *testing.T) {
	// Every value maps into range, and bucket upper bounds are the
	// largest value mapping to their bucket.
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64}
	for _, v := range vals {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBucketLen {
			t.Fatalf("v=%d: idx %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("v=%d above its bucket upper %d", v, up)
		}
		if bucketIdx(up) != idx {
			t.Fatalf("upper %d of bucket %d maps to bucket %d", up, idx, bucketIdx(up))
		}
		if up != math.MaxInt64 && bucketIdx(up+1) != idx+1 {
			t.Fatalf("upper+1 %d of bucket %d maps to bucket %d, want %d", up+1, idx, bucketIdx(up+1), idx+1)
		}
	}
	// Bucket uppers are strictly increasing.
	for i := 1; i < histBucketLen; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket uppers not increasing at %d", i)
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := &Histogram{}
	var sum int64
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
		sum += i * 1000
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != sum {
		t.Fatalf("snapshot count=%d sum=%d want 100/%d", s.Count, s.Sum, sum)
	}
	if mean := s.Mean(); mean != float64(sum)/100 {
		t.Fatalf("mean = %v", mean)
	}
}

// exactPercentile is the sorted-slice nearest-rank percentile the
// figures were originally computed from.
func exactPercentile(sorted []int64, p float64) int64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileEquivalence locks in the histogram's accuracy contract:
// on a fixed sample set, every percentile is within one bucket width
// of the exact sorted-slice percentile (and never below it).
func TestQuantileEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	samples := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~6 decades, like RTTs spanning µs to s.
		v := int64(math.Exp(rng.Float64()*13.8)) + 1
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
		exact := exactPercentile(samples, p)
		got := s.Quantile(p)
		if got < exact {
			t.Fatalf("p%.1f: histogram %d below exact %d", p, got, exact)
		}
		if width := BucketWidth(exact); got-exact >= width {
			t.Fatalf("p%.1f: histogram %d vs exact %d differs by %d >= bucket width %d",
				p, got, exact, got-exact, width)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	s := (&Histogram{}).Snapshot()
	if s.Quantile(50) != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot queries must be zero")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF must be nil")
	}
	var nilSnap *HistSnapshot
	if nilSnap.Quantile(50) != 0 || nilSnap.CDF(4) != nil || nilSnap.FractionAtOrBelow(1) != 0 {
		t.Fatal("nil snapshot queries must be zero")
	}
}

func TestCDFFromBuckets(t *testing.T) {
	h := &Histogram{}
	for i := int64(0); i < 1000; i++ {
		h.Record(i * 1000)
	}
	cdf := h.Snapshot().CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P < cdf[i-1].P || cdf[i].V < cdf[i-1].V {
			t.Fatalf("CDF not monotonic at %d: %+v", i, cdf)
		}
	}
	if last := cdf[len(cdf)-1].P; last != 1 {
		t.Fatalf("CDF must end at 1, got %v", last)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	all := &Histogram{}
	for i := int64(1); i <= 50; i++ {
		a.Record(i * 100)
		all.Record(i * 100)
	}
	for i := int64(51); i <= 100; i++ {
		b.Record(i * 100)
		all.Record(i * 100)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	want := all.Snapshot()
	if sa.Count != want.Count || sa.Sum != want.Sum {
		t.Fatalf("merge count/sum = %d/%d want %d/%d", sa.Count, sa.Sum, want.Count, want.Sum)
	}
	if len(sa.Buckets) != len(want.Buckets) {
		t.Fatalf("merge buckets = %d want %d", len(sa.Buckets), len(want.Buckets))
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: %+v want %+v", i, sa.Buckets[i], want.Buckets[i])
		}
	}
	// Merging nil or empty is a no-op.
	sa.Merge(nil)
	sa.Merge(&HistSnapshot{})
	if sa.Count != want.Count {
		t.Fatal("no-op merge changed count")
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{100e6, 200e6, 300e6, 400e6} {
		h.Record(v)
	}
	s := h.Snapshot()
	if got := s.FractionAtOrBelow(250e6); got != 0.5 {
		t.Fatalf("FractionAtOrBelow(250ms) = %v", got)
	}
	if got := s.FractionAtOrBelow(1e9); got != 1 {
		t.Fatalf("FractionAtOrBelow(1s) = %v", got)
	}
	// The p80 bucket itself is included at its own upper bound.
	if got := s.FractionAtOrBelow(s.Quantile(80)); got < 0.75 {
		t.Fatalf("p80 fraction = %v", got)
	}
}

func TestRecordNegativeClamps(t *testing.T) {
	h := &Histogram{}
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0].Upper != 0 {
		t.Fatalf("negative record: %+v", s)
	}
}
