package amqp

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// ErrPacerStopped reports a Sleep cut short by Pacer.Stop (pool
// teardown); callers treat it like cancellation.
var ErrPacerStopped = errors.New("amqp: pacer stopped")

// Pacer is a shared deadline scheduler: one goroutine and one runtime
// timer servicing any number of delayed callbacks. Paced publishers and
// retry backoffs across a pool of sessions schedule here instead of each
// parking on its own time.Sleep/time.After, so 100k paced clients do not
// mean 100k timer goroutines.
type Pacer struct {
	mu      sync.Mutex
	items   pacerHeap
	wake    chan struct{}
	done    chan struct{} // closed by Stop; releases parked Sleep callers
	stopped bool
}

// pacerItem is one scheduled callback.
type pacerItem struct {
	at time.Time
	fn func()
}

// NewPacer starts the scheduler goroutine.
func NewPacer() *Pacer {
	p := &Pacer{wake: make(chan struct{}, 1), done: make(chan struct{})}
	go p.loop()
	return p
}

// Schedule runs fn on the pacer goroutine once d has elapsed. Callbacks
// must be short (hand long work off elsewhere): the pacer is a shared
// resource and a slow callback delays every later deadline.
func (p *Pacer) Schedule(d time.Duration, fn func()) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	heap.Push(&p.items, pacerItem{at: time.Now().Add(d), fn: fn})
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Sleep parks the caller for d using the shared timer, returning early
// with ctx.Err() on cancellation. It is the drop-in replacement for
// time.Sleep in code paths that run once per logical client.
func (p *Pacer) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	done := make(chan struct{})
	p.Schedule(d, func() { close(done) })
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPacerStopped
	}
}

// Len reports the number of pending callbacks.
func (p *Pacer) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}

// Stop shuts the scheduler down. Pending Schedule callbacks are dropped;
// parked Sleep callers return ErrPacerStopped.
func (p *Pacer) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.items = nil
	close(p.done)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *Pacer) loop() {
	for {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return
		}
		var run []func()
		wait := time.Duration(-1)
		now := time.Now()
		for len(p.items) > 0 {
			next := p.items[0]
			if next.at.After(now) {
				wait = next.at.Sub(now)
				break
			}
			heap.Pop(&p.items)
			run = append(run, next.fn)
		}
		p.mu.Unlock()
		for _, fn := range run {
			fn()
		}
		if len(run) > 0 {
			continue // new deadlines may have landed while running
		}
		if wait < 0 {
			<-p.wake // idle: block until the next Schedule or Stop
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-p.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// pacerHeap is a min-heap of scheduled callbacks ordered by deadline.
type pacerHeap []pacerItem

func (h pacerHeap) Len() int            { return len(h) }
func (h pacerHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h pacerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pacerHeap) Push(x interface{}) { *h = append(*h, x.(pacerItem)) }
func (h *pacerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = pacerItem{}
	*h = old[:n-1]
	return it
}
