package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types.
const (
	FrameMethod    byte = 1
	FrameHeader    byte = 2
	FrameBody      byte = 3
	FrameHeartbeat byte = 8

	// FrameEnd terminates every frame on the wire.
	FrameEnd byte = 0xCE
)

// DefaultFrameMax is the negotiated maximum frame size (payload + 8 bytes of
// framing) used when the client does not tune it. Large message bodies are
// split across multiple body frames of at most this size.
const DefaultFrameMax = 128 * 1024

// ProtocolHeader is sent by clients as the first bytes of a connection.
var ProtocolHeader = []byte{'D', 'S', '2', 'H', 0, 0, 9, 1}

// Frame is a single protocol frame.
type Frame struct {
	Type    byte
	Channel uint16
	Payload []byte
}

// WriteFrame writes one frame to w. The payload is emitted verbatim.
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [7]byte
	hdr[0] = f.Type
	binary.BigEndian.PutUint16(hdr[1:3], f.Channel)
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	_, err := w.Write(frameEndOctet[:])
	return err
}

var frameEndOctet = [1]byte{FrameEnd}

// FrameReader reads frames from a buffered stream, enforcing a maximum
// payload size.
type FrameReader struct {
	br       *bufio.Reader
	frameMax uint32
	scratch  [7]byte

	// loan backs the payload of the most recently returned frame; it is
	// recycled into the buffer pool at the start of the next ReadFrame.
	loan *[]byte
}

// NewFrameReader wraps r. frameMax of 0 means DefaultFrameMax.
func NewFrameReader(r io.Reader, frameMax uint32) *FrameReader {
	if frameMax == 0 {
		frameMax = DefaultFrameMax
	}
	return &FrameReader{br: bufio.NewReaderSize(r, 64*1024), frameMax: frameMax}
}

// SetFrameMax adjusts the maximum accepted payload size after tuning.
func (fr *FrameReader) SetFrameMax(max uint32) {
	if max > 0 {
		fr.frameMax = max
	}
}

// ReadFrame reads the next frame. The returned payload is loaned from a
// buffer pool: it stays valid only until the next ReadFrame call on this
// reader, so callers that retain payload bytes past one dispatch must copy
// them (method parsing and content assembly already copy).
func (fr *FrameReader) ReadFrame() (Frame, error) {
	if fr.loan != nil {
		putBuf(fr.loan)
		fr.loan = nil
	}
	if _, err := io.ReadFull(fr.br, fr.scratch[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{
		Type:    fr.scratch[0],
		Channel: binary.BigEndian.Uint16(fr.scratch[1:3]),
	}
	size := binary.BigEndian.Uint32(fr.scratch[3:7])
	if size > fr.frameMax {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, size, fr.frameMax)
	}
	if size > 0 {
		fr.loan = getBuf(int(size))
		f.Payload = (*fr.loan)[:size]
		if _, err := io.ReadFull(fr.br, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	end, err := fr.br.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	if end != FrameEnd {
		return Frame{}, ErrBadFrameEnd
	}
	return f, nil
}

// ReadProtocolHeader consumes and validates the client protocol header.
func ReadProtocolHeader(r io.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	for i, b := range ProtocolHeader {
		if hdr[i] != b {
			return fmt.Errorf("wire: bad protocol header %q", hdr[:])
		}
	}
	return nil
}

// WriteProtocolHeader emits the client protocol header.
func WriteProtocolHeader(w io.Writer) error {
	_, err := w.Write(ProtocolHeader)
	return err
}
