package broker

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

func msg(body string) *Message {
	return &Message{RoutingKey: "k", Body: []byte(body)}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	for i := 0; i < 5; i++ {
		if err := q.Publish(msg(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, _, _, _, ok := q.Get()
		if !ok {
			t.Fatalf("missing message %d", i)
		}
		if string(m.Body) != fmt.Sprintf("m%d", i) {
			t.Fatalf("out of order: %q at %d", m.Body, i)
		}
	}
	if _, _, _, _, ok := q.Get(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueMaxLenRejectPublish(t *testing.T) {
	q := NewQueue("q", QueueLimits{MaxLen: 2, Overflow: OverflowRejectPublish})
	if err := q.Publish(msg("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.Publish(msg("b")); err != nil {
		t.Fatal(err)
	}
	if err := q.Publish(msg("c")); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if q.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", q.Stats().Rejected)
	}
}

func TestQueueMaxBytesDropHead(t *testing.T) {
	q := NewQueue("q", QueueLimits{MaxBytes: 10})
	q.Publish(msg("aaaa")) // 4 bytes
	q.Publish(msg("bbbb")) // 8 bytes
	q.Publish(msg("cccc")) // would be 12: drops "aaaa"
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	m, _, _, _, _ := q.Get()
	if string(m.Body) != "bbbb" {
		t.Fatalf("head = %q, want bbbb", m.Body)
	}
	if q.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", q.Stats().Dropped)
	}
}

func TestQueueRequeueGoesToHead(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	q.Publish(msg("first"))
	q.Publish(msg("second"))
	m, _, _, _, _ := q.Get()
	q.Requeue(m, offNone)
	m2, _, redelivered, _, _ := q.Get()
	if string(m2.Body) != "first" || !redelivered {
		t.Fatalf("requeue order broken: %q redelivered=%v", m2.Body, redelivered)
	}
}

func TestQueueConsumerCredit(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	c, err := q.AddConsumer("c1", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q.Publish(msg(fmt.Sprintf("m%d", i)))
	}
	// Only 2 should be pushed (credit 2).
	if got := len(c.outbox); got != 2 {
		t.Fatalf("outbox = %d, want 2", got)
	}
	<-c.outbox
	q.DeliveryDone(c) // drained one, but no ack yet: credit still 0
	if got := len(c.outbox); got != 1 {
		t.Fatalf("outbox after drain = %d, want 1", got)
	}
	q.Ack(c) // returns one credit
	if got := len(c.outbox); got != 2 {
		t.Fatalf("outbox after ack = %d, want 2", got)
	}
}

func TestQueueRoundRobinAcrossConsumers(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	c1, _ := q.AddConsumer("c1", true, 0)
	c2, _ := q.AddConsumer("c2", true, 0)
	for i := 0; i < 6; i++ {
		q.Publish(msg("x"))
	}
	if len(c1.outbox) != 3 || len(c2.outbox) != 3 {
		t.Fatalf("distribution %d/%d, want 3/3", len(c1.outbox), len(c2.outbox))
	}
}

func TestQueueRemoveConsumer(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	c1, _ := q.AddConsumer("c1", true, 0)
	q.RemoveConsumer(c1)
	if q.ConsumerCount() != 0 {
		t.Fatal("consumer not removed")
	}
	select {
	case <-c1.closed:
	default:
		t.Fatal("closed channel not signalled")
	}
	// Publishing with no consumers must queue, not panic.
	q.Publish(msg("parked"))
	if q.Len() != 1 {
		t.Fatal("message not parked")
	}
}

func TestExchangeDirect(t *testing.T) {
	e := NewExchange("d", KindDirect)
	q1 := NewQueue("q1", QueueLimits{})
	q2 := NewQueue("q2", QueueLimits{})
	e.Bind(q1, "a")
	e.Bind(q2, "b")
	if got := e.Route("a"); len(got) != 1 || got[0] != q1 {
		t.Fatalf("Route(a) = %v", got)
	}
	if got := e.Route("c"); len(got) != 0 {
		t.Fatalf("Route(c) = %v", got)
	}
}

func TestExchangeFanoutDeduplicates(t *testing.T) {
	e := NewExchange("f", KindFanout)
	q := NewQueue("q", QueueLimits{})
	e.Bind(q, "k1")
	e.Bind(q, "k2")
	if got := e.Route("anything"); len(got) != 1 {
		t.Fatalf("fanout duplicated queue: %d", len(got))
	}
}

func TestExchangeUnbind(t *testing.T) {
	e := NewExchange("d", KindDirect)
	q := NewQueue("q", QueueLimits{})
	e.Bind(q, "a")
	e.Unbind(q, "a")
	if len(e.Route("a")) != 0 {
		t.Fatal("unbind failed")
	}
}

func TestTopicMatch(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"a.b.c", "a.b.c", true},
		{"a.b.c", "a.b.d", false},
		{"a.*.c", "a.b.c", true},
		{"a.*.c", "a.b.b.c", false},
		{"a.#", "a", true},
		{"a.#", "a.b.c.d", true},
		{"#", "anything.at.all", true},
		{"#", "", true},
		{"*.b", "a.b", true},
		{"*.b", "b", false},
		{"a.#.c", "a.c", true},
		{"a.#.c", "a.x.y.c", true},
		{"a.#.c", "a.c.x", false},
	}
	for _, tc := range cases {
		if got := topicMatch(tc.pattern, tc.key); got != tc.want {
			t.Errorf("topicMatch(%q, %q) = %v, want %v", tc.pattern, tc.key, got, tc.want)
		}
	}
}

func TestVHostDeclareAndRoute(t *testing.T) {
	vh := NewVHost("/")
	q, err := vh.DeclareQueue("jobs", false, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Default exchange routes by queue name.
	n, err := vh.Publish("", "jobs", msg("task"))
	if err != nil || n != 1 {
		t.Fatalf("publish: n=%d err=%v", n, err)
	}
	if q.Len() != 1 {
		t.Fatal("message not routed to queue")
	}
}

func TestVHostPassiveDeclare(t *testing.T) {
	vh := NewVHost("/")
	if _, err := vh.DeclareQueue("nope", false, false, false, true, nil); err == nil {
		t.Fatal("passive declare of missing queue should fail")
	}
	if _, err := vh.DeclareExchange("nope", KindDirect, true); err == nil {
		t.Fatal("passive declare of missing exchange should fail")
	}
}

func TestVHostExchangeKindConflict(t *testing.T) {
	vh := NewVHost("/")
	if _, err := vh.DeclareExchange("e", KindDirect, false); err != nil {
		t.Fatal(err)
	}
	if _, err := vh.DeclareExchange("e", KindFanout, false); err == nil {
		t.Fatal("kind conflict should fail")
	}
}

func TestVHostDeleteQueueCleansBindings(t *testing.T) {
	vh := NewVHost("/")
	q, _ := vh.DeclareQueue("dq", false, false, false, false, nil)
	e, _ := vh.DeclareExchange("fan", KindFanout, false)
	e.Bind(q, "")
	if _, err := vh.DeleteQueue("dq", false, false); err != nil {
		t.Fatal(err)
	}
	if len(e.Route("")) != 0 {
		t.Fatal("binding survived queue delete")
	}
	if n, err := vh.Publish("", "dq", msg("x")); err != nil || n != 0 {
		t.Fatalf("publish to deleted queue: n=%d err=%v", n, err)
	}
}

// TestVHostQueueTelemetryLifecycle checks a declared queue's telemetry
// exports appear, track the queue, and disappear on delete (no stale
// series pinning dead queues).
func TestVHostQueueTelemetryLifecycle(t *testing.T) {
	vh := NewVHost("/")
	if _, err := vh.DeclareQueue("tele-q", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := vh.Publish("", "tele-q", msg("x")); err != nil {
		t.Fatal(err)
	}
	snap := telemetry.Default.Snapshot()
	if snap.Gauges[`broker.queue_depth{queue=tele-q}`] != 1 {
		t.Fatalf("depth gauge = %d", snap.Gauges[`broker.queue_depth{queue=tele-q}`])
	}
	if snap.Counters[`broker.queue_published{queue=tele-q}`] != 1 {
		t.Fatalf("published counter = %d", snap.Counters[`broker.queue_published{queue=tele-q}`])
	}
	if _, err := vh.DeleteQueue("tele-q", false, false); err != nil {
		t.Fatal(err)
	}
	snap = telemetry.Default.Snapshot()
	if _, ok := snap.Gauges[`broker.queue_depth{queue=tele-q}`]; ok {
		t.Fatal("depth gauge survived queue delete")
	}
	if _, ok := snap.Counters[`broker.queue_published{queue=tele-q}`]; ok {
		t.Fatal("published counter survived queue delete")
	}
}

func TestVHostMemoryAccounting(t *testing.T) {
	vh := NewVHost("/")
	q, _ := vh.DeclareQueue("m", false, false, false, false, nil)
	vh.Publish("", "m", &Message{Body: make([]byte, 100)})
	vh.Publish("", "m", &Message{Body: make([]byte, 50)})
	if got := vh.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes = %d, want 150", got)
	}
	q.Get()
	if got := vh.TotalBytes(); got != 50 {
		t.Fatalf("TotalBytes after get = %d, want 50", got)
	}
	q.Purge()
	if got := vh.TotalBytes(); got != 0 {
		t.Fatalf("TotalBytes after purge = %d, want 0", got)
	}
}

func TestVHostMemoryAlarm(t *testing.T) {
	vh := NewVHost("/")
	vh.MemoryLimit = 100
	vh.DeclareQueue("a", false, false, false, false, nil)
	if _, err := vh.Publish("", "a", &Message{Body: make([]byte, 200)}); err != nil {
		t.Fatalf("first publish must pass (watermark checked before): %v", err)
	}
	if _, err := vh.Publish("", "a", &Message{Body: []byte("x")}); err != ErrMemoryAlarm {
		t.Fatalf("err = %v, want ErrMemoryAlarm", err)
	}
}

// TestVHostFanoutSharesMessage locks in the zero-copy fanout contract:
// every matched queue holds the same message instance (no per-queue heap
// copy), while per-queue delivery state — the redelivered flag — stays
// independent because it lives in the queue entry, not the message.
func TestVHostFanoutSharesMessage(t *testing.T) {
	vh := NewVHost("/")
	q1, _ := vh.DeclareQueue("s1", false, false, false, false, nil)
	q2, _ := vh.DeclareQueue("s2", false, false, false, false, nil)
	e, _ := vh.DeclareExchange("fan", KindFanout, false)
	e.Bind(q1, "")
	e.Bind(q2, "")
	n, err := vh.Publish("fan", "", msg("w"))
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	m1, _, _, _, _ := q1.Get()
	// Requeue on q1 must not flag q2's entry as redelivered.
	q1.Requeue(m1, offNone)
	if m2, _, redelivered, _, _ := q2.Get(); m2 != m1 || redelivered {
		t.Fatalf("shared=%v redelivered=%v, want shared instance with independent flags", m2 == m1, redelivered)
	}
	if _, _, redelivered, _, _ := q1.Get(); !redelivered {
		t.Fatal("q1's requeued entry lost its redelivered flag")
	}
}

// TestQueueRingStableUnderChurn drives the drop-head-style churn the
// chunked ring exists for: sustained pop-from-head with a deep backlog
// must keep memory bounded — the ring holds only the chunks the live
// entries span, never the whole history.
func TestQueueRingStableUnderChurn(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	for i := 0; i < 1000; i++ {
		q.Publish(msg("x"))
	}
	for i := 0; i < 900; i++ {
		q.Get()
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.mu.Lock()
	chunks := 0
	for c := q.ready.head; c != nil; c = c.next {
		chunks++
	}
	q.mu.Unlock()
	// 100 entries span at most ceil(100/ringChunkSize)+1 chunks.
	if max := 100/ringChunkSize + 2; chunks > max {
		t.Errorf("ring holds %d chunks for 100 entries, want <= %d", chunks, max)
	}
}

func TestQuickQueueFIFOProperty(t *testing.T) {
	f := func(bodies [][]byte) bool {
		q := NewQueue("q", QueueLimits{})
		for _, b := range bodies {
			if err := q.Publish(&Message{Body: b}); err != nil {
				return false
			}
		}
		for i, b := range bodies {
			m, _, _, _, ok := q.Get()
			if !ok || string(m.Body) != string(b) {
				_ = i
				return false
			}
		}
		_, _, _, _, ok := q.Get()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQueueByteAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		q := NewQueue("q", QueueLimits{})
		var want int64
		for _, s := range sizes {
			n := int(s % 4096)
			q.Publish(&Message{Body: make([]byte, n)})
			want += int64(n)
		}
		if q.Bytes() != want {
			return false
		}
		for range sizes {
			q.Get()
		}
		return q.Bytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopicHashMatchesEverything(t *testing.T) {
	f := func(words []string) bool {
		key := ""
		for i, w := range words {
			if w == "" {
				w = "w"
			}
			if i > 0 {
				key += "."
			}
			key += w
		}
		return topicMatch("#", key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestServerVHostIsolation(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := s.VHost("a")
	b := s.VHost("b")
	if a == b {
		t.Fatal("vhosts must be distinct")
	}
	if again := s.VHost("a"); again != a {
		t.Fatal("vhost lookup must be stable")
	}
	a.DeclareQueue("q", false, false, false, false, nil)
	if _, ok := b.Queue("q"); ok {
		t.Fatal("queue leaked across vhosts")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueLimitsFromArguments(t *testing.T) {
	vh := NewVHost("/")
	q, err := vh.DeclareQueue("lim", false, false, false, false, wire.Table{
		"x-max-length":       int32(7),
		"x-max-length-bytes": int64(1 << 20),
		"x-overflow":         OverflowRejectPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Limits.MaxLen != 7 || q.Limits.MaxBytes != 1<<20 || q.Limits.Overflow != OverflowRejectPublish {
		t.Fatalf("limits = %+v", q.Limits)
	}
}

func TestConsumerWriterDrainTimeliness(t *testing.T) {
	// Ensure pump+drain cycles never stall under sustained load.
	q := NewQueue("q", QueueLimits{})
	c, _ := q.AddConsumer("c", true, 0)
	done := make(chan struct{})
	const total = 10_000
	go func() {
		for i := 0; i < total; i++ {
			<-c.outbox
			q.DeliveryDone(c)
		}
		close(done)
	}()
	for i := 0; i < total; i++ {
		if err := q.Publish(msg("m")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pump stalled")
	}
}
