package pattern

import (
	"context"
	"errors"
	"testing"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/workload"
)

// fastOptions deploys small, fast architectures for pattern tests.
func fastOptions() core.Options {
	p := fabric.ACE(0.2) // 200 Mbps DSN links
	p.LBSetupCost = 0
	p.RouteLookupLatency = 0
	return core.Options{Nodes: 3, Profile: p, DisableClientShaping: true}
}

// smallWorkload is Dstream with a shrunken payload for fast tests.
func smallWorkload() workload.Workload {
	w := workload.Dstream
	w.PayloadBytes = 2048
	return w
}

func deployDTS(t *testing.T) core.Deployment {
	t.Helper()
	d, err := core.Deploy(core.DTS, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestWorkSharingDelivery(t *testing.T) {
	d := deployDTS(t)
	res, err := Run(context.Background(), WorkSharingName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           4,
		MessagesPerProducer: 20,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed != 40 {
		t.Fatalf("consumed %d, want 40", res.Consumed)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestWorkSharingMPIWorkload(t *testing.T) {
	d := deployDTS(t)
	w := workload.Lstream
	w.PayloadBytes = 16 * 1024 // shrink the 1 MiB payload for the test
	res, err := Run(context.Background(), WorkSharingName, Config{
		Deployment:          d,
		Workload:            w,
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 6,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed != 12 {
		t.Fatalf("consumed %d", res.Consumed)
	}
}

func TestWorkSharingInfeasibleOnStunnel(t *testing.T) {
	d, err := core.Deploy(core.PRSStunnel, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, err = Run(context.Background(), WorkSharingName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           32, // beyond the 16-stream Stunnel cap
		Consumers:           32,
		MessagesPerProducer: 1,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestWorkSharingFeedbackRTTs(t *testing.T) {
	d := deployDTS(t)
	res, err := Run(context.Background(), FeedbackName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 15,
		Window:              4,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTTCount() != 30 {
		t.Fatalf("RTT samples = %d, want 30", res.RTTCount())
	}
	if res.MedianRTT() <= 0 {
		t.Fatal("median RTT must be positive")
	}
	if res.PercentileRTT(99) < res.MedianRTT() {
		t.Fatal("p99 < median")
	}
}

func TestBroadcastAllConsumersReceive(t *testing.T) {
	d := deployDTS(t)
	w := workload.Generic
	w.PayloadBytes = 8 * 1024
	res, err := Run(context.Background(), BroadcastName, Config{
		Deployment:          d,
		Workload:            w,
		Consumers:           3,
		MessagesPerProducer: 10,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed != 30 {
		t.Fatalf("consumed %d, want 10 msgs x 3 consumers", res.Consumed)
	}
}

func TestBroadcastGatherRepliesAndRTTs(t *testing.T) {
	d := deployDTS(t)
	w := workload.Generic
	w.PayloadBytes = 8 * 1024
	res, err := Run(context.Background(), BroadcastGatherName, Config{
		Deployment:          d,
		Workload:            w,
		Consumers:           3,
		MessagesPerProducer: 8,
		Window:              2,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTTCount() != 24 {
		t.Fatalf("RTT samples = %d, want 24", res.RTTCount())
	}
}

// TestPipelineFanIn covers the multi-stage pattern the role engine
// enables: every edge message must traverse the filter tier and land at
// the single aggregator, so consumed counts both stages.
func TestPipelineFanIn(t *testing.T) {
	d := deployDTS(t)
	res, err := Run(context.Background(), PipelineName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           3, // filter tier size; the aggregator is a fixed single instance
		MessagesPerProducer: 12,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2x12 deliveries at the filters plus the same again at the aggregator.
	if want := int64(2 * 12 * 2); res.Consumed != want {
		t.Fatalf("consumed %d, want %d", res.Consumed, want)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestFeedbackThroughPRS(t *testing.T) {
	d, err := core.Deploy(core.PRSHAProxy, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := Run(context.Background(), FeedbackName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 8,
		Window:              2,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTTCount() != 16 {
		t.Fatalf("RTTs = %d", res.RTTCount())
	}
}

func TestWorkSharingThroughMSS(t *testing.T) {
	d, err := core.Deploy(core.MSS, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := Run(context.Background(), WorkSharingName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 10,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed != 20 {
		t.Fatalf("consumed %d", res.Consumed)
	}
}

func TestRunUnknownPattern(t *testing.T) {
	d := deployDTS(t)
	_, err := Run(context.Background(), "no-such-pattern", Config{Deployment: d})
	if err == nil {
		t.Fatal("unknown pattern must error")
	}
}

// TestRunHonorsContextCancel pins the ctx plumbing: a cancelled context
// must abort a run promptly with ctx's error instead of hanging until
// Config.Timeout.
func TestRunHonorsContextCancel(t *testing.T) {
	d := deployDTS(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, WorkSharingName, Config{
		Deployment:          d,
		Workload:            smallWorkload(),
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 1 << 20, // would take far longer than the test allows
		Timeout:             120 * time.Second,
	})
	if err == nil {
		t.Fatal("cancelled run must error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRegisteredNames(t *testing.T) {
	want := []string{BroadcastName, BroadcastGatherName, PipelineName, WorkSharingName, FeedbackName}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("pattern %q not registered (have %v)", w, names)
		}
	}
}

func TestNameOnSameNode(t *testing.T) {
	d := deployDTS(t)
	cl := d.Cluster()
	ref := "ws-q-0"
	name := nameOnSameNode(d, "reply-7", ref)
	if cl.OwnerOf(name) != cl.OwnerOf(ref) {
		t.Fatalf("%s not co-located with %s", name, ref)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if err := c.defaults(); err == nil {
		t.Fatal("nil deployment must be rejected")
	}
	d := deployDTS(t)
	c = Config{Deployment: d}
	if err := c.defaults(); err != nil {
		t.Fatal(err)
	}
	if c.WorkQueues != 2 || c.Prefetch != 8 || c.AckBatch != 4 || c.Window != 8 {
		t.Fatalf("defaults: %+v", c)
	}
}
