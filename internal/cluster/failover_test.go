package cluster

import (
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/telemetry"
)

// queueOwnedBy scans queue names until one is mastered by the wanted node.
func queueOwnedBy(t *testing.T, c *Cluster, node int, prefix string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if c.OwnerOf(name) == node {
			return name
		}
	}
	t.Fatalf("no %s-* queue maps to node %d", prefix, node)
	return ""
}

var testReconnect = &amqp.ReconnectPolicy{MaxAttempts: 200, Delay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond}

// TestConsumeRedirectsToMaster: a consumer that dials the wrong node is
// redirected (connection.close 302) to the queue's master and keeps
// consuming there — the client follows the redirect transparently under
// its reconnect policy.
func TestConsumeRedirectsToMaster(t *testing.T) {
	c, err := StartWithOptions(3, Options{Federation: true}, func(int) broker.Config { return broker.Config{} })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qname := queueOwnedBy(t, c, 0, "redir-q")
	wrong := c.Node(1).Addr()

	followed := metrics.Default.Counter("amqp.redirects")
	base := followed.Load()

	cons, err := amqp.DialConfig("amqp://"+wrong, amqp.Config{Reconnect: testReconnect})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	cch, err := cons.Channel()
	if err != nil {
		t.Fatal(err)
	}
	// The declare is ensured on the master over a federation link and
	// answered locally; the consume redirects the whole connection.
	if _, err := cch.QueueDeclare(qname, false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	dc, err := cch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatalf("consume after redirect: %v", err)
	}

	prod, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	pch, _ := prod.Channel()
	if err := pch.Publish("", qname, false, false, amqp.Publishing{Body: []byte("after-redirect")}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-dc:
		if string(d.Body) != "after-redirect" {
			t.Fatalf("got %q", d.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery after redirect")
	}
	if followed.Load() == base {
		t.Fatal("client followed no redirect (amqp.redirects unchanged)")
	}
}

// TestPublishFederatesToRemoteMaster: a confirming producer attached to
// the wrong node publishes into a queue mastered elsewhere; the publish
// is forwarded over the federation link (zero-copy, confirm-bridged) and
// the producer's confirm reflects the master's verdict.
func TestPublishFederatesToRemoteMaster(t *testing.T) {
	c, err := StartWithOptions(3, Options{Federation: true}, func(int) broker.Config { return broker.Config{} })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qname := queueOwnedBy(t, c, 0, "fed-q")
	fed := telemetry.Default.Counter("cluster.federation_msgs")
	base := fed.Load()

	// Declare on the master, attach the consumer there.
	cons, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	cch, _ := cons.Channel()
	if _, err := cch.QueueDeclare(qname, false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	dc, err := cch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Producer on the wrong node, confirm mode: the forward bridges the
	// master's ack back to this channel.
	prod, err := amqp.Dial("amqp://" + c.Node(1).Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	pch, _ := prod.Channel()
	if err := pch.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := pch.NotifyPublish(make(chan amqp.Confirmation, 4))
	const n = 8
	for i := 0; i < n; i++ {
		if err := pch.Publish("", qname, false, false, amqp.Publishing{Body: []byte("via-federation")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case conf := <-confirms:
			if !conf.Ack {
				t.Fatalf("publish %d nacked", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("confirm %d never bridged back", i)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case d := <-dc:
			if string(d.Body) != "via-federation" {
				t.Fatalf("got %q", d.Body)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("delivery %d missing on master", i)
		}
	}
	if got := fed.Load() - base; got < n {
		t.Fatalf("federation_msgs delta = %d, want >= %d", got, n)
	}
}

// TestKillFailsOverDurableQueue: hard-killing a queue's master moves its
// fsynced segment log to a surviving node, which replays it — nothing
// confirmed is lost across the failover.
func TestKillFailsOverDurableQueue(t *testing.T) {
	dir := t.TempDir()
	c, err := StartWithOptions(3, Options{Federation: true}, func(int) broker.Config {
		return broker.Config{DataDir: dir, Durability: seglog.Options{Fsync: seglog.FsyncAlways}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qname := queueOwnedBy(t, c, 1, "failover-q")
	prod, err := amqp.DialConfig("amqp://"+c.AddrFor(qname), amqp.Config{Reconnect: testReconnect, Seeds: c.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	pch, _ := prod.Channel()
	if _, err := pch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := pch.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := pch.NotifyPublish(make(chan amqp.Confirmation, 16))
	const n = 10
	for i := 0; i < n; i++ {
		if err := pch.Publish("", qname, false, false, amqp.Publishing{
			MessageID: fmt.Sprintf("m-%d", i), Body: []byte("durable"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case conf := <-confirms:
			if !conf.Ack {
				t.Fatalf("publish %d nacked", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("confirm %d missing", i)
		}
	}

	moved, err := c.Kill(1)
	if err != nil {
		t.Fatalf("Kill: %v", err)
	}
	newMaster := -1
	for _, q := range moved {
		if q.Name == qname {
			newMaster = q.Node
		}
	}
	if newMaster < 0 || newMaster == 1 {
		t.Fatalf("queue %s not reassigned by Kill (moved=%v)", qname, moved)
	}
	if got := c.OwnerOf(qname); got != newMaster {
		t.Fatalf("OwnerOf = %d, want new master %d", got, newMaster)
	}

	// Drain from the new master: all ten fsynced messages must replay.
	cons, err := amqp.Dial("amqp://" + c.Node(newMaster).Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	cch, _ := cons.Channel()
	dc, err := cch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case d := <-dc:
			got[d.MessageID] = true
		case <-timeout:
			t.Fatalf("replayed %d of %d confirmed messages after failover", len(got), n)
		}
	}
}

// TestRestartRejoinsRing is the Cluster.Restart regression: a node killed
// out of the ring and restarted must re-register with the placement ring
// and metadata directory — future placement can land on it again and its
// address answers lookups.
func TestRestartRejoinsRing(t *testing.T) {
	c, err := StartWithOptions(3, Options{Federation: true}, func(int) broker.Config { return broker.Config{} })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ring := c.Directory().Ring()
	v0 := ring.Version()
	if _, err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if ring.Has(2) {
		t.Fatal("killed node still a ring member")
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if !ring.Has(2) {
		t.Fatal("restarted node did not rejoin the placement ring")
	}
	if ring.Version() <= v0 {
		t.Fatalf("ring version %d did not advance past %d", ring.Version(), v0)
	}
	if c.Directory().Addr(2) == "" {
		t.Fatal("restarted node has no directory address")
	}
	// The rejoined node must serve traffic for a queue it masters.
	qname := queueOwnedBy(t, c, 2, "rejoin-q")
	conn, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch, _ := conn.Channel()
	if _, err := ch.QueueDeclare(qname, false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	dc, err := ch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Publish("", qname, false, false, amqp.Publishing{Body: []byte("back")}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-dc:
		if string(d.Body) != "back" {
			t.Fatalf("got %q", d.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery from rejoined node")
	}
}
