package pattern

import (
	"context"
	"fmt"
	"sync"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/telemetry"
)

// This file is the budgeted client runtime: when Config.GoroutineBudget is
// set, role loops stop owning sockets and goroutines. Consumers become
// ConsumeFunc state machines driven by the read loop of a pooled
// connection, producers run on a bounded worker pool, and every channel
// the run opens is a Session multiplexed onto a small set of physical
// connections (one amqp.ClientPool per endpoint URL). The budget splits
// into producer workers, a physical-connection allowance, and fixed slack
// for the run's own plumbing; each pooled connection is charged twice
// because the broker lives in-process (client read loop + broker serve
// loop).

// roleChan is one role's broker channel plus its transport affinity: how
// to open a sibling channel on the same physical connection (closed-loop
// reply consumers must observe the same transport as their publish leg)
// and how to release it. The direct runtime owns a whole connection per
// role instance; the pooled runtime owns a channel slot.
type roleChan interface {
	Channel() *amqp.Channel
	Sibling() (roleChan, error)
	Close() error
}

// clientRuntime hands roleChans to role loops.
type clientRuntime interface {
	open(ep core.Endpoint) (roleChan, error)
}

// ---------------------------------------------------------------- direct

// directRuntime is the legacy goroutine-per-client model: every open
// dials a dedicated connection.
type directRuntime struct{}

func (directRuntime) open(ep core.Endpoint) (roleChan, error) {
	conn, err := ep.Connect()
	if err != nil {
		return nil, err
	}
	ch, err := conn.Channel()
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &ownedConn{conn: conn, ch: ch, owner: true}, nil
}

// ownedConn adapts a dedicated connection (or one of its extra channels)
// to roleChan. Only the owner's Close tears the socket down.
type ownedConn struct {
	conn  *amqp.Connection
	ch    *amqp.Channel
	owner bool
}

func (o *ownedConn) Channel() *amqp.Channel { return o.ch }

func (o *ownedConn) Sibling() (roleChan, error) {
	ch, err := o.conn.Channel()
	if err != nil {
		return nil, err
	}
	return &ownedConn{conn: o.conn, ch: ch}, nil
}

func (o *ownedConn) Close() error {
	if o.owner {
		return o.conn.Close()
	}
	return o.ch.Close()
}

// ---------------------------------------------------------------- pooled

// pooledChan adapts an amqp pool session to roleChan.
type pooledChan struct{ s *amqp.Session }

func (p *pooledChan) Channel() *amqp.Channel { return p.s.Channel }

func (p *pooledChan) Sibling() (roleChan, error) {
	s, err := p.s.Sibling()
	if err != nil {
		return nil, err
	}
	return &pooledChan{s: s}, nil
}

func (p *pooledChan) Close() error { return p.s.Close() }

// lightFixedSlack is the goroutine head-room reserved for the run's own
// plumbing: broker accept loops, the telemetry aggregator, the fault
// injector, the pacer, the deferred-role attacher, and reconnect
// transients.
const lightFixedSlack = 12

// lightSessionsPerConn is the soft fan-out target: pools spread sessions
// across connections in chunks of this size while the connection
// allowance lasts, then pack up to the negotiated channel limit.
const lightSessionsPerConn = 256

// sessionManager is the pooled runtime of one run: a ClientPool per
// endpoint URL sharing one global connection allowance, plus the derived
// worker count for producer execution.
type sessionManager struct {
	cfg     *Config
	workers int

	mu        sync.Mutex
	pools     map[string]*amqp.ClientPool
	connsLeft int
}

func newSessionManager(cfg *Config) *sessionManager {
	budget := cfg.GoroutineBudget
	w := budget / 8
	if w < 1 {
		w = 1
	}
	if w > 32 {
		w = 32
	}
	if w > cfg.Producers {
		w = cfg.Producers
	}
	// An active producer costs up to three goroutines (worker + confirm
	// listener or reply pump + drainer); a pooled connection costs two
	// (client read loop + in-process broker serve loop).
	conns := (budget - 3*w - lightFixedSlack) / 2
	if conns < 1 {
		conns = 1
	}
	return &sessionManager{
		cfg:       cfg,
		workers:   w,
		pools:     map[string]*amqp.ClientPool{},
		connsLeft: conns,
	}
}

// gate is the shared DialGate: one permit per connection beyond each
// pool's first.
func (m *sessionManager) gate() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.connsLeft <= 0 {
		return false
	}
	m.connsLeft--
	return true
}

// pool resolves (or creates) the pool for one endpoint URL.
func (m *sessionManager) pool(ep core.Endpoint) *amqp.ClientPool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pools[ep.URL]
	if p == nil {
		// The pool's first connection dials ungated (a pool must be able
		// to carry at least one session); charge the allowance for it.
		m.connsLeft--
		p = amqp.NewClientPool(amqp.PoolConfig{
			URL:             ep.URL,
			Config:          ep.Config(),
			SessionsPerConn: lightSessionsPerConn,
			DialGate:        m.gate,
		})
		m.pools[ep.URL] = p
	}
	return p
}

func (m *sessionManager) open(ep core.Endpoint) (roleChan, error) {
	s, err := m.pool(ep).Session()
	if err != nil {
		return nil, fmt.Errorf("%w (GoroutineBudget %d)", err, m.cfg.GoroutineBudget)
	}
	return &pooledChan{s: s}, nil
}

// Close tears down every pool (and with them all sessions).
func (m *sessionManager) Close() {
	m.mu.Lock()
	pools := m.pools
	m.pools = map[string]*amqp.ClientPool{}
	m.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}

// ---------------------------------------------------------- consumer core

// consumerCore is the per-delivery body shared by both runtimes: verify,
// count, reply, batch-ack. The legacy loop drives it from a dedicated
// goroutine; the budgeted runtime drives it from the owning connection's
// read loop via ConsumeFunc. The mutex serializes handle against the
// final stop-flush (uncontended on the hot path).
type consumerCore struct {
	cfg  *Config
	role *ConsumerRole
	col  *metrics.Collector
	ep   *engineProbes
	prog *progress

	mu           sync.Mutex
	stopped      bool
	ch           *amqp.Channel
	consumed     *telemetry.CounterShard
	roleConsumed *telemetry.CounterShard
	acker        batchAcker
}

func newConsumerCore(cfg *Config, role *ConsumerRole, i int, col *metrics.Collector, ep *engineProbes, prog *progress) *consumerCore {
	return &consumerCore{
		cfg:          cfg,
		role:         role,
		col:          col,
		ep:           ep,
		prog:         prog,
		consumed:     col.ConsumedShard(i),
		roleConsumed: ep.registry.Counter("pattern.consumed", "role="+role.Name).Shard(i),
		acker:        batchAcker{n: cfg.AckBatch},
	}
}

// handle processes one delivery. Reply publishes and acks are
// asynchronous operations, so running on a shared connection's read loop
// is safe (see amqp.ConsumeFunc).
func (cc *consumerCore) handle(d amqp.Delivery) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.stopped {
		return nil
	}
	if err := cc.cfg.Workload.Verify(d.Body); err != nil {
		cc.col.AddError()
	}
	cc.consumed.Add(1)
	cc.roleConsumed.Inc()
	if cc.role.Counts {
		cc.prog.Add(1)
		cc.ep.inflight.Add(-1)
	}
	if cc.role.Reply != nil {
		if err := publishReply(cc.ch, cc.role.Reply, d); err != nil {
			return err
		}
	}
	if cc.role.ReplayFrom == nil {
		return cc.acker.add(d)
	}
	return nil
}

// stop flushes the batch-ack tail and drops any later deliveries, so a
// run's final partial batch never resurfaces as a redelivery in the next
// run on the same deployment.
func (cc *consumerCore) stop() {
	cc.mu.Lock()
	cc.stopped = true
	cc.acker.flush()
	cc.mu.Unlock()
}

// ------------------------------------------------------- light consumers

// lightInstance is one consumer instance awaiting attachment.
type lightInstance struct {
	role ConsumerRole
	idx  int
}

// launchLightConsumers attaches every consumer instance as a callback
// consumer on a pooled session, using a bounded worker pool for the
// setup round-trips. Each instance signals ready exactly once (errors
// land in consumerErr, mirroring the legacy launcher); deferred
// (StartAfter) roles are handled by a single attacher goroutine. It
// returns immediately; the caller waits on ready.
func launchLightConsumers(ctx context.Context, cfg *Config, topo *Topology, mgr *sessionManager,
	col *metrics.Collector, ep *engineProbes, prog *progress, ready *progress,
	consumerErr chan<- error, cores *coreSet) {
	var immediate, deferred []lightInstance
	for _, role := range topo.Consumers {
		for i := 0; i < role.instances(cfg); i++ {
			inst := lightInstance{role: role, idx: i}
			if role.StartAfter > 0 {
				deferred = append(deferred, inst)
			} else {
				immediate = append(immediate, inst)
			}
		}
	}
	fail := func(inst lightInstance, err error) {
		select {
		case consumerErr <- fmt.Errorf("pattern: %s %d: %w", inst.role.Name, inst.idx, err):
		default:
		}
	}
	attach := func(inst lightInstance) error {
		core := newConsumerCore(cfg, &inst.role, inst.idx, col, ep, prog)
		rc, err := attachLightConsumer(cfg, mgr, inst, core, func(err error) { fail(inst, err) })
		if err != nil {
			return err
		}
		cores.add(core, rc)
		return nil
	}
	go func() {
		work := make(chan lightInstance)
		var wg sync.WaitGroup
		workers := mgr.workers
		if workers > len(immediate) {
			workers = len(immediate)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for inst := range work {
					if err := attach(inst); err != nil {
						fail(inst, err)
					}
					ready.Add(1)
				}
			}()
		}
		for _, inst := range immediate {
			work <- inst
		}
		close(work)
		wg.Wait()
	}()
	if len(deferred) == 0 {
		return
	}
	// Deferred roles report ready up front (the run must start to produce
	// the deliveries their threshold waits for) and attach from one shared
	// goroutine once the hot phase reaches each threshold.
	ready.Add(int64(len(deferred)))
	go func() {
		for _, inst := range deferred {
			if err := prog.WaitAtLeast(ctx, inst.role.StartAfter); err != nil {
				fail(inst, fmt.Errorf("hot phase never reached %d: %w", inst.role.StartAfter, err))
				continue
			}
			if err := attach(inst); err != nil {
				fail(inst, err)
			}
		}
	}()
}

// attachLightConsumer opens the instance's session and subscribes its
// callback. The core's channel is wired before basic.consume is issued:
// deliveries may start arriving on the read loop mid-call. A handler
// error (reply publish failure) reports through onErr and stops the
// instance; the run's completion wait surfaces it.
func attachLightConsumer(cfg *Config, mgr *sessionManager, inst lightInstance, core *consumerCore, onErr func(error)) (roleChan, error) {
	queue := inst.role.Queue(inst.idx)
	rc, err := mgr.open(cfg.Deployment.ConsumerEndpoint(queue))
	if err != nil {
		return nil, err
	}
	ch := rc.Channel()
	if err := ch.Qos(cfg.Prefetch, 0, false); err != nil {
		rc.Close()
		return nil, err
	}
	var args amqp.Table
	autoAck := false
	if inst.role.ReplayFrom != nil {
		args = amqp.Table{"x-stream-offset": *inst.role.ReplayFrom}
		autoAck = true
	}
	core.mu.Lock()
	core.ch = ch
	core.mu.Unlock()
	handler := func(d amqp.Delivery) {
		if err := core.handle(d); err != nil {
			core.stop()
			onErr(err)
		}
	}
	tag := fmt.Sprintf("%s-%d", inst.role.Name, inst.idx)
	if _, err := ch.ConsumeFunc(queue, tag, autoAck, false, false, args, handler); err != nil {
		rc.Close()
		return nil, err
	}
	return rc, nil
}

// coreSet collects the run's attached light consumers for the final
// stop-flush.
type coreSet struct {
	mu    sync.Mutex
	cores []*consumerCore
	chans []roleChan
}

func (s *coreSet) add(c *consumerCore, rc roleChan) {
	s.mu.Lock()
	s.cores = append(s.cores, c)
	s.chans = append(s.chans, rc)
	s.mu.Unlock()
}

// stopAll flushes every consumer's ack tail. Sessions themselves are
// released by the manager's pool teardown.
func (s *coreSet) stopAll() {
	s.mu.Lock()
	cores := s.cores
	s.mu.Unlock()
	for _, c := range cores {
		c.stop()
	}
}

// ------------------------------------------------------ bounded producers

// runClientsBounded runs f(0..n-1) on a fixed pool of workers, so 100k
// producers mean `workers` concurrent loops instead of 100k goroutines.
// Unlike runClients it never applies MPI rank semantics: the budgeted
// runtime trades the synchronized start for a bounded footprint.
func runClientsBounded(n, workers int, f func(id int) error) error {
	if workers >= n {
		return runClients(n, false, f)
	}
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
