package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// startReplicated launches a 3-node cluster with replication factor 2
// (every durable queue gets one synchronous mirror) on per-node data
// directories under dir, fsync=always so a confirm implies durable.
func startReplicated(t *testing.T, dir string) *Cluster {
	t.Helper()
	c, err := StartWithOptions(3, Options{Federation: true, ReplicationFactor: 2}, func(int) broker.Config {
		return broker.Config{DataDir: dir, Durability: seglog.Options{Fsync: seglog.FsyncAlways}}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitGauge polls a telemetry gauge until its delta from base reaches
// want.
func waitGauge(t *testing.T, g *telemetry.Gauge, base, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Load()-base < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, g.Load()-base, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// publishConfirmed publishes n identified durable messages to qname via
// the cluster's address for it and waits for every confirm. With a
// replicated queue in sync, each confirm certifies the record is
// appended on the master AND its mirror.
func publishReplicated(t *testing.T, c *Cluster, qname string, n int) {
	t.Helper()
	prod, err := amqp.DialConfig("amqp://"+c.AddrFor(qname), amqp.Config{Reconnect: testReconnect, Seeds: c.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	pch, _ := prod.Channel()
	if _, err := pch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := pch.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := pch.NotifyPublish(make(chan amqp.Confirmation, n))
	for i := 0; i < n; i++ {
		if err := pch.Publish("", qname, false, false, amqp.Publishing{
			MessageID: fmt.Sprintf("m-%d", i), Body: []byte("replicated"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case conf := <-confirms:
			if !conf.Ack {
				t.Fatalf("publish %d nacked", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("confirm %d missing", i)
		}
	}
}

// drainAll consumes from qname on the given node until n distinct
// MessageIDs arrive.
func drainAll(t *testing.T, c *Cluster, node int, qname string, n int) {
	t.Helper()
	cons, err := amqp.Dial("amqp://" + c.Node(node).Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	cch, _ := cons.Channel()
	dc, err := cch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case d := <-dc:
			got[d.MessageID] = true
		case <-timeout:
			t.Fatalf("drained %d of %d confirmed messages", len(got), n)
		}
	}
}

// denyDir makes a node's data directory unreadable, so any failover that
// tried to relocate (or even list) the dead node's segment logs would
// error instead of silently falling back to shared-storage semantics.
func denyDir(t *testing.T, dir string, node int) {
	t.Helper()
	nodeDir := filepath.Join(dir, fmt.Sprintf("node-%d", node))
	if err := os.Chmod(nodeDir, 0o000); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(nodeDir, 0o755) })
}

// TestReplicatedKillPromotesMirror is the headline replication guarantee:
// kill a replicated queue's master with the dead node's data directory
// made unreadable first — the failover must complete by promoting the
// in-sync mirror from the surviving node's own disk (zero segment-log
// relocation) and every confirmed message must survive.
func TestReplicatedKillPromotesMirror(t *testing.T) {
	dir := t.TempDir()
	c := startReplicated(t, dir)

	insync := telemetry.Default.Gauge("cluster.insync_mirrors")
	insyncBase := insync.Load()
	promoted := telemetry.Default.Counter("cluster.promotions")
	promBase := promoted.Load()

	qname := queueOwnedBy(t, c, 1, "repl-q")
	// Declare first so the mirror exists and is in sync before the
	// publishes: every confirm below is then replication-gated.
	conn, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := conn.Channel()
	if _, err := ch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors")

	const n = 10
	publishReplicated(t, c, qname, n)

	// The dead node's disk is gone as far as the failover is concerned.
	denyDir(t, dir, 1)
	moved, err := c.Kill(1)
	if err != nil {
		t.Fatalf("Kill with unreadable dead dir: %v", err)
	}
	newMaster := -1
	for _, q := range moved {
		if q.Name == qname {
			newMaster = q.Node
		}
	}
	if newMaster < 0 || newMaster == 1 {
		t.Fatalf("queue %s not reassigned by Kill (moved=%v)", qname, moved)
	}
	if got := promoted.Load() - promBase; got < 1 {
		t.Fatalf("promotions delta = %d, want >= 1 (failover did not promote the mirror)", got)
	}
	drainAll(t, c, newMaster, qname, n)
}

// TestReplicatedDoubleKill chases the data: kill the master, wait for
// the promoted mirror to re-replicate onto the last survivor (a
// mid-stream catch-up resync), then kill the promoted master too. Two
// promotions, both dead directories unreadable, zero confirmed loss.
func TestReplicatedDoubleKill(t *testing.T) {
	dir := t.TempDir()
	c := startReplicated(t, dir)

	insync := telemetry.Default.Gauge("cluster.insync_mirrors")
	insyncBase := insync.Load()
	promoted := telemetry.Default.Counter("cluster.promotions")
	promBase := promoted.Load()
	catchups := telemetry.Default.Counter("cluster.mirror_catchups")
	cuBase := catchups.Load()

	qname := queueOwnedBy(t, c, 0, "double-q")
	conn, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := conn.Channel()
	if _, err := ch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors")

	const n = 10
	publishReplicated(t, c, qname, n)

	denyDir(t, dir, 0)
	moved, err := c.Kill(0)
	if err != nil {
		t.Fatalf("first Kill: %v", err)
	}
	second := -1
	for _, q := range moved {
		if q.Name == qname {
			second = q.Node
		}
	}
	if second < 0 {
		t.Fatalf("queue %s not reassigned (moved=%v)", qname, moved)
	}
	// The promoted master re-mirrors onto the remaining survivor — a
	// catch-up resync of the full history, since the replica starts
	// empty while the promoted log already holds every record.
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors after first failover")
	if got := catchups.Load() - cuBase; got < 1 {
		t.Fatalf("mirror_catchups delta = %d, want >= 1 (survivor never resynced)", got)
	}

	denyDir(t, dir, second)
	moved, err = c.Kill(second)
	if err != nil {
		t.Fatalf("second Kill: %v", err)
	}
	last := -1
	for _, q := range moved {
		if q.Name == qname {
			last = q.Node
		}
	}
	if last < 0 || last == second || last == 0 {
		t.Fatalf("queue %s not reassigned to the last survivor (moved=%v)", qname, moved)
	}
	if got := promoted.Load() - promBase; got != 2 {
		t.Fatalf("promotions delta = %d, want 2 (one per kill)", got)
	}
	drainAll(t, c, last, qname, n)
}

// TestRestartRejoinsAsMirror: a killed replicated master restarted into
// the cluster re-enters the queue's replica set as a catching-up mirror
// (the replication manager reconciles the ring change), restoring the
// declared factor without disturbing the promoted master.
func TestRestartRejoinsAsMirror(t *testing.T) {
	dir := t.TempDir()
	c := startReplicated(t, dir)

	insync := telemetry.Default.Gauge("cluster.insync_mirrors")
	insyncBase := insync.Load()

	qname := queueOwnedBy(t, c, 2, "rejoin-mirror-q")
	conn, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := conn.Channel()
	if _, err := ch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors")

	const n = 6
	publishReplicated(t, c, qname, n)
	if _, err := c.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	// Promotion moved the queue; the survivors re-sync a mirror.
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors after failover")

	if err := c.Restart(2); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// With all three nodes back, reconciliation may re-home the mirror
	// onto the restarted node; either way the queue must stay fully
	// replicated and its history drainable from the current master.
	waitGauge(t, insync, insyncBase, 1, "insync_mirrors after rejoin")
	drainAll(t, c, c.OwnerOf(qname), qname, n)
}

// flakyMaster accepts link connections: the first dropFirst connections
// complete the handshake, swallow one basic.publish, and drop the
// connection without acking — a mid-forward link failure. Later
// connections ack everything (fakeMaster).
func flakyMaster(ln net.Listener, dropFirst int) {
	for i := 0; ; i++ {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		if i >= dropFirst {
			go fakeMaster(nc)
			continue
		}
		go func(nc net.Conn) {
			defer nc.Close()
			fr := fakeHandshake(nc)
			if fr == nil {
				return
			}
			for {
				f, err := fr.ReadFrame()
				if err != nil {
					return
				}
				if f.Type == wire.FrameMethod && len(f.Payload) >= 4 &&
					binary.BigEndian.Uint16(f.Payload[0:2]) == wire.ClassBasic &&
					binary.BigEndian.Uint16(f.Payload[2:4]) == 40 {
					return // swallow the publish, reset the link
				}
			}
		}(nc)
	}
}

// confirmRecorder collects ClusterConfirm verdicts by seq.
type confirmRecorder struct {
	ch chan bool
}

func (r *confirmRecorder) ClusterConfirm(seq uint64, ok bool) { r.ch <- ok }

// linkFlapForward runs one confirm-bridged forward against a flaky
// master that drops the first dropFirst link connections, and returns
// the verdict the origin channel received.
func linkFlapForward(t *testing.T, dropFirst int) bool {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go flakyMaster(ln, dropFirst)

	hub := newFedHub(0, nil, nil)
	defer hub.closeAll()
	l, err := hub.link(ln.Addr().String(), "/")
	if err != nil {
		t.Fatal(err)
	}

	msg := broker.NewMessage("", "flap-q", wire.Properties{}, 64)
	msg.AppendBody(make([]byte, 64))
	defer msg.Release()

	rec := &confirmRecorder{ch: make(chan bool, 1)}
	if err := l.forward("", "flap-q", msg, rec, 7); err != nil {
		t.Fatalf("forward: %v", err)
	}
	select {
	case ok := <-rec.ch:
		return ok
	case <-time.After(10 * time.Second):
		t.Fatal("confirm never resolved after link flap")
		return false
	}
}

// TestFedLinkRetryReplaysOnce: a link failure replays the outstanding
// forward exactly once on a fresh link. One flap resolves to an ack (the
// replay reached an acking master, counted in federation_retries); two
// flaps resolve to a nack — the forward already rode its one retry, so
// the producer's confirm machinery takes over instead of an in-process
// replay storm.
func TestFedLinkRetryReplaysOnce(t *testing.T) {
	retries := telemetry.Default.Counter("cluster.federation_retries")
	base := retries.Load()
	if ok := linkFlapForward(t, 1); !ok {
		t.Fatal("single flap: replayed forward should resolve to an ack")
	}
	if got := retries.Load() - base; got != 1 {
		t.Fatalf("federation_retries delta = %d, want 1", got)
	}
	if ok := linkFlapForward(t, 2); ok {
		t.Fatal("double flap: a forward that already rode its retry must nack")
	}
}
