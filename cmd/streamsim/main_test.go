package main

import (
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/sim"
)

// TestLocalExperiment smoke-tests the `streamsim local` mode end to end: a
// tiny in-process DTS experiment must deploy, stream, and report cleanly.
func TestLocalExperiment(t *testing.T) {
	err := runLocal([]string{
		"-arch", "DTS", "-workload", "Dstream", "-pattern", "work-sharing",
		"-producers", "1", "-consumers", "1", "-msgs", "2", "-runs", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLocalBadWorkloadRejected checks flag validation surfaces errors
// instead of exiting the process.
func TestLocalBadWorkloadRejected(t *testing.T) {
	if err := runLocal([]string{"-workload", "no-such-workload"}); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
	if err := runLocal([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// TestParticipantRequiresCoordinator checks the distributed roles reject a
// missing -coord instead of exiting.
func TestParticipantRequiresCoordinator(t *testing.T) {
	if err := runParticipant(nil, "producer"); err == nil {
		t.Fatal("missing -coord must be rejected")
	}
}

// TestCoordinatorAggregatesParticipants drives the distributed mode
// in-process: a coordinator assigns queues to one producer and one
// consumer running against an rmq-server-equivalent broker.
func TestCoordinatorAggregatesParticipants(t *testing.T) {
	endpoint := brokerURL(t)
	coord, err := sim.NewCoordinator("127.0.0.1:0", 2, func(h sim.HelloMsg) sim.AssignMsg {
		return sim.AssignMsg{Queue: "ws-q-0", Endpoint: endpoint, Messages: 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	errc := make(chan error, 2)
	go func() { errc <- runParticipant([]string{"-coord", coord.Addr(), "-id", "0"}, "producer") }()
	go func() { errc <- runParticipant([]string{"-coord", coord.Addr(), "-id", "1"}, "consumer") }()

	res, err := coord.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if res.Consumed != 3 {
		t.Fatalf("aggregate consumed = %d, want 3", res.Consumed)
	}
}

// brokerURL starts a one-node broker and returns its amqp:// URL.
func brokerURL(t *testing.T) string {
	t.Helper()
	s, err := newTestBroker()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return fmt.Sprintf("amqp://%s/", s.Addr())
}
