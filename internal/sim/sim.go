// Package sim is the streaming simulator of the paper's §5.2: it runs a
// messaging pattern over a deployed architecture with a given workload and
// experiment configuration, averages multiple runs per data point, and
// produces the sweeps behind each figure. A TCP coordinator component (see
// coordinator.go) mirrors the paper's simulator layout, where a dedicated
// coordinator node tells producers and consumers which queues to use and
// aggregates their metrics.
package sim

import (
	"errors"
	"fmt"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/workload"
)

// PatternName selects a messaging pattern.
type PatternName string

// The three patterns of §5.1 (broadcast with and without gather are
// reported separately in Figure 7).
const (
	PatternWorkSharing     PatternName = "work-sharing"
	PatternFeedback        PatternName = "work-sharing-feedback"
	PatternBroadcast       PatternName = "broadcast"
	PatternBroadcastGather PatternName = "broadcast-gather"
)

// Experiment is one data point's configuration.
type Experiment struct {
	Architecture core.ArchitectureName
	Workload     workload.Workload
	Pattern      PatternName
	Producers    int
	Consumers    int
	// MessagesPerProducer per run (the paper streams up to 128K per run;
	// scaled-down runs use less).
	MessagesPerProducer int
	// Runs averaged per data point (paper: 3).
	Runs int
	// Options configure the deployment (nodes, fabric profile).
	Options core.Options
	// Tuning mirrors pattern.Config knobs; zero values use defaults.
	WorkQueues int
	Prefetch   int
	AckBatch   int
	Window     int
	Timeout    time.Duration
}

// Point is one measured data point.
type Point struct {
	Experiment Experiment
	Result     *metrics.Result
	// Infeasible marks configurations the architecture cannot run (the
	// paper's missing Stunnel points beyond 16 consumers).
	Infeasible bool
}

// Run executes the experiment: deploy once, run Runs times, merge.
func Run(exp Experiment) (*Point, error) {
	if exp.Runs <= 0 {
		exp.Runs = 3
	}
	dep, err := core.Deploy(exp.Architecture, exp.Options)
	if err != nil {
		return nil, fmt.Errorf("sim: deploy %s: %w", exp.Architecture, err)
	}
	defer dep.Close()
	return RunOn(dep, exp)
}

// RunOn executes the experiment on an existing deployment (reused across
// points of a sweep to avoid redeploy cost).
func RunOn(dep core.Deployment, exp Experiment) (*Point, error) {
	if exp.Runs <= 0 {
		exp.Runs = 3
	}
	var runs []*metrics.Result
	for r := 0; r < exp.Runs; r++ {
		cfg := pattern.Config{
			Deployment:          dep,
			Workload:            exp.Workload,
			Producers:           exp.Producers,
			Consumers:           exp.Consumers,
			MessagesPerProducer: exp.MessagesPerProducer,
			WorkQueues:          exp.WorkQueues,
			Prefetch:            exp.Prefetch,
			AckBatch:            exp.AckBatch,
			Window:              exp.Window,
			Timeout:             exp.Timeout,
		}
		var res *metrics.Result
		var err error
		switch exp.Pattern {
		case PatternWorkSharing:
			res, err = pattern.WorkSharing(cfg)
		case PatternFeedback:
			res, err = pattern.WorkSharingFeedback(cfg)
		case PatternBroadcast:
			res, err = pattern.Broadcast(cfg)
		case PatternBroadcastGather:
			res, err = pattern.BroadcastGather(cfg)
		default:
			return nil, fmt.Errorf("sim: unknown pattern %q", exp.Pattern)
		}
		if errors.Is(err, pattern.ErrInfeasible) {
			return &Point{Experiment: exp, Infeasible: true}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%s run %d: %w", exp.Architecture, exp.Pattern, r, err)
		}
		runs = append(runs, res)
	}
	return &Point{Experiment: exp, Result: metrics.Merge(runs)}, nil
}

// ConsumerCounts is the x-axis of every figure: 1-64 consumers.
var ConsumerCounts = []int{1, 2, 4, 8, 16, 32, 64}

// Sweep runs the experiment across consumer counts for one architecture,
// reusing a single deployment. Except for the broadcast patterns (single
// producer), producers scale with consumers, matching §5.2 ("all other
// tests were performed with an equal number of producers and consumers").
func Sweep(exp Experiment, consumerCounts []int) ([]*Point, error) {
	if len(consumerCounts) == 0 {
		consumerCounts = ConsumerCounts
	}
	dep, err := core.Deploy(exp.Architecture, exp.Options)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	var points []*Point
	for _, n := range consumerCounts {
		e := exp
		e.Consumers = n
		if e.Pattern == PatternBroadcast || e.Pattern == PatternBroadcastGather {
			e.Producers = 1
		} else {
			e.Producers = n
		}
		p, err := RunOn(dep, e)
		if err != nil {
			return points, err
		}
		points = append(points, p)
	}
	return points, nil
}
