package amqp

import (
	"fmt"
	"strings"
)

// URI is a parsed amqp:// or amqps:// endpoint.
type URI struct {
	Scheme string // "amqp" or "amqps"
	Host   string // host:port
	VHost  string
}

// ParseURI parses "amqp://host:port/vhost". The vhost defaults to "/";
// user:password segments are accepted and ignored (the broker uses PLAIN
// with no verification, like the paper's internal deployments).
func ParseURI(raw string) (URI, error) {
	u := URI{VHost: "/"}
	rest := raw
	switch {
	case strings.HasPrefix(rest, "amqp://"):
		u.Scheme = "amqp"
		rest = rest[len("amqp://"):]
	case strings.HasPrefix(rest, "amqps://"):
		u.Scheme = "amqps"
		rest = rest[len("amqps://"):]
	default:
		return u, fmt.Errorf("amqp: unsupported scheme in %q", raw)
	}
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		rest = rest[at+1:]
	}
	if slash := strings.Index(rest, "/"); slash >= 0 {
		vh := rest[slash+1:]
		rest = rest[:slash]
		if vh != "" {
			u.VHost = vh
		}
	}
	if rest == "" {
		return u, fmt.Errorf("amqp: missing host in %q", raw)
	}
	if !strings.Contains(rest, ":") {
		if u.Scheme == "amqps" {
			rest += ":5671"
		} else {
			rest += ":5672"
		}
	}
	u.Host = rest
	return u, nil
}
