package broker

import (
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// Errors surfaced as channel exceptions.
var (
	ErrNotFound           = errors.New("broker: not found")
	ErrPreconditionFailed = errors.New("broker: precondition failed")
	ErrMemoryAlarm        = errors.New("broker: memory high watermark reached")
)

// registryShards spreads a vhost's exchange and queue registries across
// independently locked shards so concurrent publishers and declarers on
// different names do not contend on a single vhost-wide lock. Must be a
// power of two.
const registryShards = 16

type exchangeShard struct {
	mu sync.RWMutex
	m  map[string]*Exchange
}

type queueShard struct {
	mu sync.RWMutex
	m  map[string]*Queue
}

// VHost is an isolated namespace of exchanges and queues. The paper's
// deployments use a single vhost per broker; multiple vhosts let several
// users share one MSS-provisioned service.
type VHost struct {
	Name string

	// MemoryLimit bounds the total ready bytes across all queues; when
	// exceeded, publishes are rejected (the broker's memory alarm).
	// Zero means unlimited. The paper reserves 80% of broker RAM for
	// payload queues.
	MemoryLimit int64

	// logDir, when non-empty, is where this vhost's durable queues keep
	// their segment logs (one url.QueryEscape'd subdirectory per queue).
	// Set by the server from Config.DataDir before any connection is
	// accepted; empty means durable declares stay memory-only.
	logDir  string
	logOpts seglog.Options

	// cluster, when non-nil, is the owning server's cluster hook. Durable
	// declares wire each queue's settle stream (onCommit) to it so the
	// replication layer sees every durably committed ack.
	cluster ClusterHook

	exchanges [registryShards]exchangeShard
	queues    [registryShards]queueShard

	anonSeq    atomic.Uint64
	totalBytes atomic.Int64
}

func registryShardIdx(name string) uint32 {
	return fnvHash(name) & (registryShards - 1)
}

func (vh *VHost) exchangeShard(name string) *exchangeShard {
	return &vh.exchanges[registryShardIdx(name)]
}

func (vh *VHost) queueShard(name string) *queueShard {
	return &vh.queues[registryShardIdx(name)]
}

// NewVHost creates a vhost containing the default exchanges.
func NewVHost(name string) *VHost {
	vh := &VHost{Name: name}
	for i := range vh.exchanges {
		vh.exchanges[i].m = map[string]*Exchange{}
	}
	for i := range vh.queues {
		vh.queues[i].m = map[string]*Queue{}
	}
	// Default (nameless direct) exchange plus the standard pre-declared
	// exchanges clients expect.
	for _, e := range []*Exchange{
		NewExchange("", KindDirect),
		NewExchange("amq.direct", KindDirect),
		NewExchange("amq.fanout", KindFanout),
		NewExchange("amq.topic", KindTopic),
	} {
		s := vh.exchangeShard(e.Name)
		s.m[e.Name] = e
	}
	return vh
}

// TotalBytes reports ready payload bytes across all queues.
func (vh *VHost) TotalBytes() int64 { return vh.totalBytes.Load() }

// DeclareExchange creates (or verifies, if passive) an exchange.
func (vh *VHost) DeclareExchange(name, kind string, passive bool) (*Exchange, error) {
	s := vh.exchangeShard(name)
	lockShard(&s.mu)
	defer s.mu.Unlock()
	if e, ok := s.m[name]; ok {
		if e.Kind != kind && !passive {
			return nil, fmt.Errorf("%w: exchange %q exists with kind %q", ErrPreconditionFailed, name, e.Kind)
		}
		return e, nil
	}
	if passive {
		return nil, fmt.Errorf("%w: exchange %q", ErrNotFound, name)
	}
	switch kind {
	case KindDirect, KindFanout, KindTopic:
	default:
		return nil, fmt.Errorf("%w: unknown exchange kind %q", ErrPreconditionFailed, kind)
	}
	e := NewExchange(name, kind)
	s.m[name] = e
	return e, nil
}

// Exchange looks up an exchange.
func (vh *VHost) Exchange(name string) (*Exchange, bool) {
	s := vh.exchangeShard(name)
	rlockShard(&s.mu)
	e, ok := s.m[name]
	s.mu.RUnlock()
	return e, ok
}

// DeleteExchange removes an exchange.
func (vh *VHost) DeleteExchange(name string, ifUnused bool) error {
	s := vh.exchangeShard(name)
	lockShard(&s.mu)
	defer s.mu.Unlock()
	e, ok := s.m[name]
	if !ok {
		return fmt.Errorf("%w: exchange %q", ErrNotFound, name)
	}
	if ifUnused && e.BindingCount() > 0 {
		return fmt.Errorf("%w: exchange %q in use", ErrPreconditionFailed, name)
	}
	if name == "" {
		return fmt.Errorf("%w: cannot delete default exchange", ErrPreconditionFailed)
	}
	delete(s.m, name)
	return nil
}

// DeclareQueue creates (or verifies, if passive) a queue. Anonymous names
// are generated. The default-exchange binding (queue name as routing key)
// is implicit via Route on the default exchange.
//
// A durable declare on a vhost with a data directory opens (or recovers)
// the queue's segment log before the queue becomes visible: any unacked
// records a previous incarnation left on disk are re-enqueued, flagged
// redelivered, before the first publish or consume can race them.
func (vh *VHost) DeclareQueue(name string, durable, exclusive, autoDelete, passive bool, args wire.Table) (*Queue, error) {
	if name == "" {
		for {
			name = fmt.Sprintf("amq.gen-%d", vh.anonSeq.Add(1))
			if _, taken := vh.Queue(name); !taken {
				break
			}
		}
	}
	s := vh.queueShard(name)
	lockShard(&s.mu)
	if q, ok := s.m[name]; ok {
		s.mu.Unlock()
		return q, nil
	}
	if passive {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: queue %q", ErrNotFound, name)
	}
	limits := QueueLimits{
		MaxLen:   int(args.Int("x-max-length", 0)),
		MaxBytes: args.Int("x-max-length-bytes", 0),
		Overflow: args.String("x-overflow", OverflowDropHead),
	}
	q := NewQueue(name, limits)
	q.Durable = durable
	q.Exclusive = exclusive
	q.AutoDelete = autoDelete
	q.onBytes = func(d int64) { vh.totalBytes.Add(d) }
	if durable && vh.logDir != "" {
		lg, rec, err := seglog.Open(filepath.Join(vh.logDir, url.QueryEscape(name)), vh.logOpts)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("broker: durable queue %q: %w", name, err)
		}
		q.log = lg
		q.restore(rec.Unacked)
		if hook := vh.cluster; hook != nil {
			vhName, qName := vh.Name, name
			q.onCommit = func(off uint64, offs []uint64) {
				hook.ReplicateSettle(vhName, qName, off, offs)
			}
		}
	}
	s.m[name] = q
	// Export per-queue depth and rate sources, read only at telemetry
	// snapshot time. Re-declaring a queue name (a later deployment in
	// the same process) replaces the callbacks, so exports always
	// reflect the live queue.
	registerQueueTelemetry(q)
	// Implicit default-exchange binding, under the registry shard lock so
	// a concurrent DeleteQueue cannot slip between insert and bind and
	// leave a dangling binding to a deleted queue. Lock order (queue
	// shard → exchange shard → binding shard) matches DeleteQueue, which
	// releases the registry lock before unbinding.
	if def, ok := vh.Exchange(""); ok {
		def.Bind(q, name)
	}
	s.mu.Unlock()
	return q, nil
}

// Queue looks up a queue by name.
func (vh *VHost) Queue(name string) (*Queue, bool) {
	s := vh.queueShard(name)
	rlockShard(&s.mu)
	q, ok := s.m[name]
	s.mu.RUnlock()
	return q, ok
}

// DeleteQueue removes a queue and all its bindings, returning the purged
// message count.
func (vh *VHost) DeleteQueue(name string, ifUnused, ifEmpty bool) (int, error) {
	s := vh.queueShard(name)
	lockShard(&s.mu)
	q, ok := s.m[name]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: queue %q", ErrNotFound, name)
	}
	if ifUnused && q.ConsumerCount() > 0 {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: queue %q has consumers", ErrPreconditionFailed, name)
	}
	if ifEmpty && q.Len() > 0 {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: queue %q not empty", ErrPreconditionFailed, name)
	}
	n := q.Len()
	delete(s.m, name)
	s.mu.Unlock()
	unregisterQueueTelemetry(name)
	for i := range vh.exchanges {
		es := &vh.exchanges[i]
		rlockShard(&es.mu)
		exchanges := make([]*Exchange, 0, len(es.m))
		for _, e := range es.m {
			exchanges = append(exchanges, e)
		}
		es.mu.RUnlock()
		for _, e := range exchanges {
			e.UnbindQueue(q)
		}
	}
	q.markDeleted()
	if q.log != nil {
		// Explicit deletion removes the on-disk history too — unlike a
		// crash or close, there is nothing left to recover.
		q.log.Remove()
	}
	return n, nil
}

// SurrenderQueue removes a queue from this vhost WITHOUT deleting its
// on-disk history: the segment log is flushed, synced and closed, so a
// new master can recover it — the rebalance-on-join handoff. The caller
// is responsible for having quiesced the queue first (no consumers, no
// in-flight publishes).
func (vh *VHost) SurrenderQueue(name string) error {
	s := vh.queueShard(name)
	lockShard(&s.mu)
	q, ok := s.m[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: queue %q", ErrNotFound, name)
	}
	delete(s.m, name)
	s.mu.Unlock()
	unregisterQueueTelemetry(name)
	for i := range vh.exchanges {
		es := &vh.exchanges[i]
		rlockShard(&es.mu)
		exchanges := make([]*Exchange, 0, len(es.m))
		for _, e := range es.m {
			exchanges = append(exchanges, e)
		}
		es.mu.RUnlock()
		for _, e := range exchanges {
			e.UnbindQueue(q)
		}
	}
	q.markDeleted()
	if q.log != nil {
		q.log.Close()
	}
	return nil
}

// eachQueue calls fn for every queue currently registered.
func (vh *VHost) eachQueue(fn func(*Queue)) {
	for i := range vh.queues {
		s := &vh.queues[i]
		rlockShard(&s.mu)
		queues := make([]*Queue, 0, len(s.m))
		for _, q := range s.m {
			queues = append(queues, q)
		}
		s.mu.RUnlock()
		for _, q := range queues {
			fn(q)
		}
	}
}

// closeLogs flushes, syncs and closes every durable queue's segment log
// (graceful server shutdown — recovery after this finds a clean tail).
func (vh *VHost) closeLogs() {
	vh.eachQueue(func(q *Queue) {
		if q.log != nil {
			q.log.Close()
		}
	})
}

// crash hard-stops every queue: segment logs are crashed (unflushed
// buffers die) and in-memory state is torn down. See Queue.crash.
func (vh *VHost) crash() {
	vh.eachQueue(func(q *Queue) { q.crash() })
}

// registerQueueTelemetry exports a queue's depth and rate sources, read
// only at telemetry snapshot time. Re-declaring a queue name (a later
// deployment in the same process) replaces the callbacks, and
// DeleteQueue unregisters them, so exports always reflect live queues
// and closures never pin deleted ones.
func registerQueueTelemetry(q *Queue) {
	// The queue tag set is interned once; registration and the matching
	// unregister resolve through the same small context key instead of
	// re-rendering "queue=<name>" identities.
	ctx := telemetry.Intern("queue=" + q.Name)
	telemetry.Default.GaugeFuncCtx("broker.queue_depth", ctx, func() int64 { return int64(q.Len()) })
	telemetry.Default.CounterFuncCtx("broker.queue_published", ctx, func() int64 { return int64(q.Stats().Published) })
	telemetry.Default.CounterFuncCtx("broker.queue_acked", ctx, func() int64 { return int64(q.Stats().Acked) })
	telemetry.Default.CounterFuncCtx("broker.queue_requeued", ctx, func() int64 { return int64(q.Stats().Requeued) })
	if lg := q.log; lg != nil {
		telemetry.Default.GaugeFuncCtx("broker.queue_log_bytes", ctx, func() int64 { return lg.DiskBytes() })
	}
}

// unregisterQueueTelemetry drops a deleted queue's export callbacks.
func unregisterQueueTelemetry(name string) {
	ctx := telemetry.Intern("queue=" + name)
	telemetry.Default.UnregisterCtx("broker.queue_depth", ctx)
	telemetry.Default.UnregisterCtx("broker.queue_published", ctx)
	telemetry.Default.UnregisterCtx("broker.queue_acked", ctx)
	telemetry.Default.UnregisterCtx("broker.queue_requeued", ctx)
	telemetry.Default.UnregisterCtx("broker.queue_log_bytes", ctx)
}

// routeScratch pools the per-publish queue slice so steady-state routing
// does not allocate.
var routeScratch = sync.Pool{New: func() any { return new([]*Queue) }}

// Publish routes a message through an exchange into zero or more queues.
// It returns the number of queues the message reached. With a reject-publish
// queue at capacity or the vhost memory alarm raised, the error reports the
// rejection so confirm mode can nack the publisher.
//
// Every matched queue shares the one message instance: routing retains a
// reference per queue that accepts it (refcount = routed count) instead of
// aliasing a heap copy per publish. Per-queue delivery state lives in the
// queue entries, so sharing is safe. The caller keeps its own reference
// throughout and releases it after Publish returns (mandatory returns
// still need the body).
func (vh *VHost) Publish(exchange, routingKey string, m *Message) (int, error) {
	e, ok := vh.Exchange(exchange)
	if !ok {
		return 0, fmt.Errorf("%w: exchange %q", ErrNotFound, exchange)
	}
	if vh.MemoryLimit > 0 && vh.totalBytes.Load() >= vh.MemoryLimit {
		return 0, ErrMemoryAlarm
	}
	sp := routeScratch.Get().(*[]*Queue)
	queues := e.routeAppend(routingKey, (*sp)[:0])
	routed := 0
	var rejectErr error
	for _, q := range queues {
		m.Retain() // the queue's reference
		if err := q.Publish(m); err != nil {
			m.Release()
			rejectErr = err
			continue
		}
		routed++
	}
	for i := range queues {
		queues[i] = nil // do not pin queues in the pool
	}
	*sp = queues[:0]
	routeScratch.Put(sp)
	if rejectErr != nil && routed == 0 {
		return 0, rejectErr
	}
	return routed, nil
}

// PublishTracked publishes one message straight into the named queue —
// the default-exchange direct route — and returns the entry's segment-log
// offset (OffNone on transient queues). It is the replicated-publish
// path: the channel layer needs the offset the master assigned so the
// replication hook can withhold the producer's confirm until the in-sync
// mirror set has appended the same record. Semantics otherwise match
// Publish through the default exchange.
func (vh *VHost) PublishTracked(queue string, m *Message) (uint64, error) {
	q, ok := vh.Queue(queue)
	if !ok {
		return OffNone, fmt.Errorf("%w: queue %q", ErrNotFound, queue)
	}
	if vh.MemoryLimit > 0 && vh.totalBytes.Load() >= vh.MemoryLimit {
		return OffNone, ErrMemoryAlarm
	}
	m.Retain() // the queue's reference
	off, err := q.PublishOff(m)
	if err != nil {
		m.Release()
		return OffNone, err
	}
	return off, nil
}

// QueueNames returns the declared queue names (stable order not guaranteed).
func (vh *VHost) QueueNames() []string {
	var out []string
	for i := range vh.queues {
		s := &vh.queues[i]
		rlockShard(&s.mu)
		for n := range s.m {
			out = append(out, n)
		}
		s.mu.RUnlock()
	}
	return out
}
