package seglog

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ds2hpc/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite seglog golden files")

// The golden segment pins the on-disk record format byte for byte. If
// this test fails, the framing changed: that must be a deliberate format
// revision — bump Version, regenerate with `go test -run Golden -update`,
// and document the migration — never an accident.
func TestGoldenSegmentFormat(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{RetainAll: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	props := &wire.Properties{
		ContentType:   "application/octet-stream",
		DeliveryMode:  wire.Persistent,
		Priority:      3,
		CorrelationID: "golden-corr",
		MessageID:     "golden-msg-1",
		Timestamp:     1700000000000000000,
		Headers:       wire.Table{"x-golden": int32(42)},
	}
	if _, err := l.Append("amq.topic", "gold.key.one", props, []byte("golden body payload one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("", "gold-queue", &wire.Properties{DeliveryMode: wire.Transient}, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "golden_segment.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("segment encoding diverged from golden at byte %d (got %d bytes, want %d): format changes must be deliberate", i, len(got), len(want))
	}

	// Structural assertions, independent of the golden blob.
	if !bytes.Equal(got[:4], []byte("DSLG")) {
		t.Fatalf("magic = %q", got[:4])
	}
	if got[4] != Version || Version != 0x01 {
		t.Fatalf("version byte = %#x, want %#x", got[4], Version)
	}
	if base := binary.BigEndian.Uint64(got[8:16]); base != 0 {
		t.Fatalf("base offset = %d", base)
	}
	// First record: a data record for offset 0 with seq 0.
	rec := got[fileHeaderSize:]
	if typ := rec[8]; typ != recData {
		t.Fatalf("first record type = %d", typ)
	}
	if seq := binary.BigEndian.Uint64(rec[9:17]); seq != 0 {
		t.Fatalf("first record seq = %d", seq)
	}
	if off := binary.BigEndian.Uint64(rec[17:25]); off != 0 {
		t.Fatalf("first record offset = %d", off)
	}
}
