package wire

import (
	"fmt"
	"sort"
)

// Table is a field table carried in method arguments and content headers,
// mapping short-string keys to typed values. Supported value types mirror
// the subset of AMQP 0-9-1 used by RabbitMQ clients:
//
//	bool, int8, int16, int32, int64, float64, string, []byte, Table, nil
type Table map[string]any

// WriteTable encodes t as a longstr-framed sequence of key/value pairs.
// Keys are emitted in sorted order so encoding is deterministic.
func (w *Writer) WriteTable(t Table) {
	inner := NewWriter()
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		inner.ShortStr(k)
		inner.writeValue(t[k])
	}
	if inner.err != nil && w.err == nil {
		w.err = inner.err
	}
	w.LongStr(inner.Bytes())
}

func (w *Writer) writeValue(v any) {
	switch x := v.(type) {
	case nil:
		w.Octet('V')
	case bool:
		w.Octet('t')
		w.Bool(x)
	case int8:
		w.Octet('b')
		w.Octet(byte(x))
	case int16:
		w.Octet('s')
		w.Short(uint16(x))
	case int32:
		w.Octet('I')
		w.Long(uint32(x))
	case int:
		w.Octet('l')
		w.LongLong(uint64(int64(x)))
	case int64:
		w.Octet('l')
		w.LongLong(uint64(x))
	case float64:
		w.Octet('d')
		w.Float64(x)
	case string:
		w.Octet('S')
		w.LongStr([]byte(x))
	case []byte:
		w.Octet('x')
		w.LongStr(x)
	case Table:
		w.Octet('F')
		w.WriteTable(x)
	default:
		if w.err == nil {
			w.err = fmt.Errorf("wire: unsupported table value type %T", v)
		}
		w.Octet('V')
	}
}

// ReadTable decodes a field table.
func (r *Reader) ReadTable() Table {
	raw := r.LongStr()
	if r.err != nil {
		return nil
	}
	inner := NewReader(raw)
	t := Table{}
	for inner.Remaining() > 0 && inner.err == nil {
		k := inner.ShortStr()
		v := inner.readValue()
		if inner.err != nil {
			break
		}
		t[k] = v
	}
	if inner.err != nil && r.err == nil {
		r.err = inner.err
	}
	return t
}

func (r *Reader) readValue() any {
	switch c := r.Octet(); c {
	case 'V':
		return nil
	case 't':
		return r.Bool()
	case 'b':
		return int8(r.Octet())
	case 's':
		return int16(r.Short())
	case 'I':
		return int32(r.Long())
	case 'l':
		return int64(r.LongLong())
	case 'd':
		return r.Float64()
	case 'S':
		return string(r.LongStr())
	case 'x':
		b := r.LongStr()
		out := make([]byte, len(b))
		copy(out, b)
		return out
	case 'F':
		return r.ReadTable()
	default:
		r.fail("wire: unknown table value tag %q", c)
		return nil
	}
}

// String returns t[key] if present and a string, else def.
func (t Table) String(key, def string) string {
	if v, ok := t[key].(string); ok {
		return v
	}
	return def
}

// Int returns t[key] coerced to int64 if it is any integer type, else def.
func (t Table) Int(key string, def int64) int64 {
	switch v := t[key].(type) {
	case int8:
		return int64(v)
	case int16:
		return int64(v)
	case int32:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	}
	return def
}

// Bool returns t[key] if present and a bool, else def.
func (t Table) Bool(key string, def bool) bool {
	if v, ok := t[key].(bool); ok {
		return v
	}
	return def
}
