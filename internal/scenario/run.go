package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/transport"
	"ds2hpc/internal/workload"
)

// Report is the outcome of one executed scenario.
type Report struct {
	// Spec is the scenario as run.
	Spec Spec
	// Result merges the metrics of every run; nil when Infeasible.
	Result *metrics.Result
	// Infeasible marks configurations the architecture cannot run (the
	// paper's missing Stunnel points beyond 16 connections).
	Infeasible bool
	// Faults snapshots the injector activity when a fault script ran, so
	// callers can assert the scripted faults actually fired.
	Faults transport.Stats
}

// Run executes the scenario end to end: validate, deploy the declared
// architecture (with the fault injector composed into every client path
// when the spec scripts faults), run the pattern Runs times, and merge the
// results. The context cancels or deadline-bounds the whole scenario.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts := spec.options()
	var inj *transport.Injector
	if len(spec.Faults) > 0 {
		inj = transport.NewInjector()
		opts.Faults = inj
	}
	dep, err := core.Deploy(core.ArchitectureName(spec.Deployment.Architecture), opts)
	if err != nil {
		return nil, fmt.Errorf("scenario: deploy %s: %w", spec.Deployment.Architecture, err)
	}
	defer dep.Close()
	return runOn(ctx, dep, inj, spec)
}

// RunOn executes the scenario's workload, pattern, counts and tuning on an
// existing deployment (reused across the points of a sweep); the spec's
// Deployment section is ignored. Fault scripts need the injector composed
// at deploy time, so they are only available through Run.
func RunOn(ctx context.Context, dep core.Deployment, spec Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Faults) > 0 {
		return nil, fmt.Errorf("%w: fault scripts require scenario.Run (the injector is composed at deploy time)", ErrBadSpec)
	}
	return runOn(ctx, dep, nil, spec)
}

func runOn(ctx context.Context, dep core.Deployment, inj *transport.Injector, spec Spec) (*Report, error) {
	w, err := spec.workload()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	var faultsBefore transport.Stats
	if inj != nil {
		faultsBefore = inj.Stats()
	}
	cfg := pattern.Config{
		Deployment:          dep,
		Workload:            w,
		Producers:           spec.Producers,
		Consumers:           spec.Consumers,
		MessagesPerProducer: spec.MessagesPerProducer,
		WorkQueues:          spec.Tuning.WorkQueues,
		Prefetch:            spec.Tuning.Prefetch,
		AckBatch:            spec.Tuning.AckBatch,
		Window:              spec.Tuning.Window,
		QueueBytes:          spec.Tuning.QueueBytes,
		Timeout:             spec.timeout(),
	}
	var runs []*metrics.Result
	for r := 0; r < spec.runs(); r++ {
		if inj != nil {
			armFaults(inj, spec, w)
		}
		res, err := pattern.Run(ctx, spec.Pattern, cfg)
		if errors.Is(err, pattern.ErrInfeasible) {
			return &Report{Spec: spec, Infeasible: true}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: %s/%s run %d: %w", dep.Name(), spec.Pattern, r, err)
		}
		runs = append(runs, res)
	}
	rep := &Report{Spec: spec, Result: metrics.Merge(runs)}
	if inj != nil {
		// Report the delta over this scenario's runs, not the injector's
		// lifetime totals (a Sweep reuses one injector across points).
		rep.Faults = statsDelta(faultsBefore, inj.Stats())
	}
	return rep, nil
}

// statsDelta subtracts two injector snapshots.
func statsDelta(before, after transport.Stats) transport.Stats {
	return transport.Stats{
		Dials:   after.Dials - before.Dials,
		Refused: after.Refused - before.Refused,
		Resets:  after.Resets - before.Resets,
		Flaps:   after.Flaps - before.Flaps,
		Bytes:   after.Bytes - before.Bytes,
	}
}

// ConsumerCounts is the x-axis of every figure: 1-64 consumers.
var ConsumerCounts = []int{1, 2, 4, 8, 16, 32, 64}

// Sweep runs the scenario across consumer counts on one shared deployment
// (the x-axis of every figure; an empty slice means ConsumerCounts).
// Producers scale with consumers except for single-producer patterns,
// matching §5.2 ("all other tests were performed with an equal number of
// producers and consumers"). A fault script, when present, is re-armed
// for every point. Points already collected are returned alongside the
// first error.
func Sweep(ctx context.Context, spec Spec, consumerCounts []int) ([]*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(consumerCounts) == 0 {
		consumerCounts = ConsumerCounts
	}
	opts := spec.options()
	var inj *transport.Injector
	if len(spec.Faults) > 0 {
		inj = transport.NewInjector()
		opts.Faults = inj
	}
	dep, err := core.Deploy(core.ArchitectureName(spec.Deployment.Architecture), opts)
	if err != nil {
		return nil, fmt.Errorf("scenario: deploy %s: %w", spec.Deployment.Architecture, err)
	}
	defer dep.Close()

	singleProducer := false
	if g, ok := pattern.Lookup(spec.Pattern); ok {
		singleProducer = g.SingleProducer
	}
	var points []*Report
	for _, n := range consumerCounts {
		s := spec
		s.Consumers = n
		if singleProducer {
			s.Producers = 1
		} else {
			s.Producers = n
		}
		rep, err := runOn(ctx, dep, inj, s)
		if err != nil {
			return points, err
		}
		points = append(points, rep)
	}
	return points, nil
}

// armFaults programs the injector for one run. Byte thresholds are armed
// relative to the traffic already counted, so multi-run scenarios re-fire
// their script each run.
func armFaults(inj *transport.Injector, spec Spec, w workload.Workload) {
	total := spec.totalPayloadBytes(w)
	for _, f := range spec.Faults {
		down := time.Duration(f.DownMS) * time.Millisecond
		if down <= 0 {
			down = 50 * time.Millisecond
		}
		switch f.Kind {
		case FaultFlap:
			at := f.AtBytes
			if at <= 0 {
				at = int64(f.AtFraction * float64(total))
			}
			inj.FlapAfterBytes(at, down)
		case FaultFlapEvery:
			every := f.EveryBytes
			if every <= 0 {
				every = int64(f.EveryFraction * float64(total))
			}
			inj.FlapEveryBytes(every, down, f.Count)
		case FaultLatencySpike:
			inj.SetLatencySpike(time.Duration(f.LatencyMS) * time.Millisecond)
		}
	}
}
