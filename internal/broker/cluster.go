package broker

// Cluster integration. A broker node participates in a clustered data
// plane through a ClusterHook the owner installs in Config.Cluster. The
// broker stays cluster-agnostic: it only asks the hook three questions —
// who masters a queue, how to get a declare to the master, and how to
// forward a publish there — and reports the queues it masters back. The
// hook implementation (placement ring, metadata directory, federation
// links) lives in internal/cluster.
//
// Routing policy at the dispatch points:
//
//   - queue.declare for a remotely-mastered queue is ensured on the
//     master over the federation link and answered locally, so declares
//     are location-transparent.
//   - basic.consume / basic.get for a remotely-mastered queue answer
//     with a connection-level redirect (connection.close 302, reply-text
//     carrying the master's address): consumers must sit on the master
//     to get zero-copy deliveries, so the client re-dials rather than
//     the broker proxying a delivery stream.
//   - basic.publish to the default exchange whose routing key is a
//     remotely-mastered queue is forwarded over the federation link,
//     confirm-bridged: the producer's ack is withheld until the master
//     confirms. Publishes through named exchanges route locally —
//     bindings are node-local state.
type ClusterHook interface {
	// Lookup answers the master for a queue: its client-facing address
	// and whether this node is the master. Unregistered queues resolve
	// through the placement ring.
	Lookup(vhost, queue string) (addr string, local bool)
	// RegisterQueue records that this node masters the queue.
	RegisterQueue(vhost, queue string, durable bool)
	// EnsureRemoteQueue declares the queue on its (remote) master and
	// waits for the declare-ok.
	EnsureRemoteQueue(vhost, queue string, durable bool) error
	// ForwardPublish forwards a default-exchange publish to the queue's
	// master. The callee takes its own reference on m for the duration
	// of the forward (the caller's reference only covers the call). When
	// target is non-nil the forward is confirm-bridged: the master's
	// ack/nack for this message is relayed via target.ClusterConfirm with
	// the caller's seq. A non-nil error means the forward could not even
	// be attempted (no link and the master is unreachable).
	ForwardPublish(vhost, queue string, m *Message, target ConfirmTarget, seq uint64) error
	// NoteRedirect records that this node answered an operation on the
	// queue with a connection-level redirect (telemetry only).
	NoteRedirect(vhost, queue string)
}

// ConfirmTarget receives the bridged confirm verdict for a forwarded
// publish. Implementations must be safe to call from the federation
// link's read loop.
type ConfirmTarget interface {
	ClusterConfirm(seq uint64, ok bool)
}
