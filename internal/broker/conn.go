package broker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ds2hpc/internal/wire"
)

// srvConn is the server side of one client connection: it owns the frame
// reader loop, the shared writer, and the channel map.
type srvConn struct {
	srv *Server
	c   net.Conn
	fr  *wire.FrameReader

	writeMu sync.Mutex

	vh *VHost

	chMu     sync.Mutex
	channels map[uint16]*srvChannel

	// Event-driven delivery dispatch: consumers with outbox work enqueue
	// themselves on dispReady (via their wake hook) and one deliveryLoop
	// goroutine — started lazily on the first consume, shared by every
	// consumer on this connection — serves them round-robin.
	dispOnce  sync.Once
	dispMu    sync.Mutex
	dispReady []*consumerEntry
	dispWake  chan struct{}

	frameMax  uint32
	heartbeat time.Duration

	closeOnce sync.Once
	done      chan struct{}
}

func newSrvConn(s *Server, c net.Conn) *srvConn {
	return &srvConn{
		srv:      s,
		c:        c,
		fr:       wire.NewFrameReader(c, s.cfg.FrameMax+1024),
		channels: map[uint16]*srvChannel{},
		frameMax: s.cfg.FrameMax,
		dispWake: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// wakeConsumer schedules a consumer for this connection's delivery loop.
// The scheduled CAS makes duplicate wakes free: a consumer is in the
// ready list at most once, and whoever wins the CAS owns the enqueue.
// Safe to call from under a queue's lock — it only touches dispatch
// state, never queue state.
func (sc *srvConn) wakeConsumer(ce *consumerEntry) {
	if !ce.scheduled.CompareAndSwap(false, true) {
		return
	}
	sc.dispMu.Lock()
	sc.dispReady = append(sc.dispReady, ce)
	sc.dispMu.Unlock()
	select {
	case sc.dispWake <- struct{}{}:
	default:
	}
	sc.dispOnce.Do(func() { go sc.deliveryLoop() })
}

// deliveryLoop is the connection's single delivery pump: it serves
// whichever consumers have scheduled outbox work, one bounded batch
// each, instead of parking one writer goroutine per consumer. 10⁵ idle
// consumers on a connection cost zero goroutines; the loop exits with
// the connection (channel teardown drains what it leaves behind).
func (sc *srvConn) deliveryLoop() {
	var batch []*consumerEntry
	for {
		sc.dispMu.Lock()
		batch, sc.dispReady = sc.dispReady, batch[:0]
		sc.dispMu.Unlock()
		if len(batch) == 0 {
			select {
			case <-sc.dispWake:
				continue
			case <-sc.done:
				return
			}
		}
		for _, ce := range batch {
			ce.ch.serveConsumer(ce)
		}
	}
}

// shutdown tears the connection down and requeues unacked deliveries.
func (sc *srvConn) shutdown() {
	sc.closeOnce.Do(func() {
		close(sc.done)
		sc.c.Close()
		sc.chMu.Lock()
		chans := make([]*srvChannel, 0, len(sc.channels))
		for _, ch := range sc.channels {
			chans = append(chans, ch)
		}
		sc.channels = map[uint16]*srvChannel{}
		sc.chMu.Unlock()
		for _, ch := range chans {
			ch.teardown()
		}
	})
}

func (sc *srvConn) serve() {
	defer sc.shutdown()
	if err := sc.handshake(); err != nil {
		sc.srv.logf("broker: handshake with %s failed: %v", sc.c.RemoteAddr(), err)
		return
	}
	for {
		if sc.heartbeat > 0 {
			sc.c.SetReadDeadline(time.Now().Add(2 * sc.heartbeat))
		}
		f, err := sc.fr.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sc.srv.logf("broker: read from %s: %v", sc.c.RemoteAddr(), err)
			}
			return
		}
		if err := sc.dispatch(f); err != nil {
			if errors.Is(err, errConnClosed) {
				return
			}
			sc.srv.logf("broker: dispatch: %v", err)
			return
		}
	}
}

var errConnClosed = errors.New("broker: connection closed by client")

func (sc *srvConn) handshake() error {
	if err := wire.ReadProtocolHeader(sc.c); err != nil {
		return err
	}
	start := &wire.ConnectionStart{
		VersionMajor: 0, VersionMinor: 9,
		ServerProperties: wire.Table{
			"product": "ds2hpc-broker",
			"version": "1.0",
			"capabilities": wire.Table{
				"publisher_confirms": true,
				"basic.nack":         true,
			},
		},
		Mechanisms: "PLAIN",
		Locales:    "en_US",
	}
	if err := sc.writeMethod(0, start); err != nil {
		return err
	}
	if _, err := sc.expectMethod(0); err != nil { // start-ok
		return err
	}
	hb := uint16(sc.srv.cfg.Heartbeat / time.Second)
	tune := &wire.ConnectionTune{ChannelMax: 2047, FrameMax: sc.frameMax, Heartbeat: hb}
	if err := sc.writeMethod(0, tune); err != nil {
		return err
	}
	m, err := sc.expectMethod(0)
	if err != nil {
		return err
	}
	tok, ok := m.(*wire.ConnectionTuneOk)
	if !ok {
		return fmt.Errorf("broker: expected tune-ok, got %T", m)
	}
	if tok.FrameMax > 0 && tok.FrameMax < sc.frameMax {
		sc.frameMax = tok.FrameMax
	}
	sc.fr.SetFrameMax(sc.frameMax + 1024)
	if tok.Heartbeat > 0 && hb > 0 {
		sc.heartbeat = time.Duration(tok.Heartbeat) * time.Second
		go sc.heartbeatLoop()
	}
	m, err = sc.expectMethod(0)
	if err != nil {
		return err
	}
	open, ok := m.(*wire.ConnectionOpen)
	if !ok {
		return fmt.Errorf("broker: expected connection.open, got %T", m)
	}
	sc.vh = sc.srv.VHost(open.VirtualHost)
	return sc.writeMethod(0, &wire.ConnectionOpenOk{})
}

// expectMethod reads one method frame on the given channel.
func (sc *srvConn) expectMethod(channel uint16) (wire.Method, error) {
	f, err := sc.fr.ReadFrame()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.FrameMethod || f.Channel != channel {
		return nil, fmt.Errorf("broker: unexpected frame type=%d channel=%d", f.Type, f.Channel)
	}
	return wire.ParseMethod(f.Payload)
}

func (sc *srvConn) heartbeatLoop() {
	t := time.NewTicker(sc.heartbeat / 2)
	defer t.Stop()
	for {
		select {
		case <-sc.done:
			return
		case <-t.C:
			sc.writeFrame(wire.Frame{Type: wire.FrameHeartbeat, Channel: 0})
		}
	}
}

func (sc *srvConn) dispatch(f wire.Frame) error {
	switch f.Type {
	case wire.FrameHeartbeat:
		return nil
	case wire.FrameMethod:
		m, err := wire.ParseMethod(f.Payload)
		if err != nil {
			return err
		}
		if f.Channel == 0 {
			return sc.connectionMethod(m)
		}
		return sc.channelMethod(f.Channel, m)
	case wire.FrameHeader:
		ch := sc.channel(f.Channel)
		if ch == nil {
			return fmt.Errorf("broker: header frame on unknown channel %d", f.Channel)
		}
		h, err := wire.ParseContentHeader(f.Payload)
		if err != nil {
			return err
		}
		return ch.onHeader(h)
	case wire.FrameBody:
		ch := sc.channel(f.Channel)
		if ch == nil {
			return fmt.Errorf("broker: body frame on unknown channel %d", f.Channel)
		}
		return ch.onBody(f.Payload)
	default:
		return fmt.Errorf("broker: unknown frame type %d", f.Type)
	}
}

func (sc *srvConn) connectionMethod(m wire.Method) error {
	switch m.(type) {
	case *wire.ConnectionClose:
		sc.writeMethod(0, &wire.ConnectionCloseOk{})
		return errConnClosed
	case *wire.ConnectionCloseOk:
		return errConnClosed
	default:
		return fmt.Errorf("broker: unexpected connection method %T", m)
	}
}

func (sc *srvConn) channel(id uint16) *srvChannel {
	sc.chMu.Lock()
	defer sc.chMu.Unlock()
	return sc.channels[id]
}

func (sc *srvConn) channelMethod(id uint16, m wire.Method) error {
	if _, ok := m.(*wire.ChannelOpen); ok {
		ch := newSrvChannel(sc, id)
		sc.chMu.Lock()
		sc.channels[id] = ch
		sc.chMu.Unlock()
		return sc.writeMethod(id, &wire.ChannelOpenOk{})
	}
	ch := sc.channel(id)
	if ch == nil {
		// A late close-ok for a channel the server already closed.
		if _, ok := m.(*wire.ChannelCloseOk); ok {
			return nil
		}
		return fmt.Errorf("broker: method %T on unknown channel %d", m, id)
	}
	return ch.onMethod(m)
}

// removeChannel drops a channel from the map (after close).
func (sc *srvConn) removeChannel(id uint16) {
	sc.chMu.Lock()
	delete(sc.channels, id)
	sc.chMu.Unlock()
}

// writeFrame serializes a frame onto the wire with a single write.
func (sc *srvConn) writeFrame(f wire.Frame) error {
	w := wire.GetWriter()
	w.AppendRawFrame(f.Type, f.Channel, f.Payload)
	sc.writeMu.Lock()
	err := w.FlushFrames(sc.c, 1)
	sc.writeMu.Unlock()
	wire.PutWriter(w)
	return err
}

// writeMethod encodes and writes a method frame with a single write.
func (sc *srvConn) writeMethod(channel uint16, m wire.Method) error {
	w := wire.GetWriter()
	w.AppendMethodFrame(channel, m)
	if err := w.Err(); err != nil {
		wire.PutWriter(w)
		return err
	}
	sc.writeMu.Lock()
	err := w.FlushFrames(sc.c, 1)
	sc.writeMu.Unlock()
	wire.PutWriter(w)
	return err
}

// writeContent coalesces the method + header + body frame triplet of one
// message into a single (vectored) write, so frames from concurrent
// deliveries never interleave within a message and each message costs one
// syscall. Large bodies are borrowed, not copied: the caller must hold a
// message reference across this call, which every delivery path does.
func (sc *srvConn) writeContent(channel uint16, m wire.Method, props *wire.Properties, body []byte) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	frames := w.AppendContentFramesZC(channel, m, props, body, sc.frameMax)
	if err := w.Err(); err != nil {
		return err
	}
	sc.writeMu.Lock()
	err := w.FlushFrames(sc.c, frames)
	sc.writeMu.Unlock()
	if err != nil {
		return err
	}
	sc.srv.Stats.MessagesOut.Add(1)
	sc.srv.Stats.BytesOut.Add(uint64(len(body)))
	return nil
}

// deliveryFlushBytes bounds how many coalesced bytes accumulate across
// messages before the batch writer flushes mid-batch. Together with one
// maximum-size message it stays under the pooled-writer retention cap, so
// batches of large bodies keep recycling their writers (a single body far
// beyond frameMax can still overshoot; such writers are dropped for GC).
const deliveryFlushBytes = 256 * 1024

// writeDeliveries emits one basic.deliver frame triplet per message as a
// single batched vectored write (flushing early if the batch outgrows the
// pooled buffer classes): frame headers coalesce in the writer buffer
// while large bodies are borrowed from the shared messages and ride the
// writev in place — body bytes are never copied between the ingest loan
// and the socket. All frames are written under one writer-lock hold, so
// the batch stays atomic with respect to other writers on this
// connection; the caller holds a reference on every message until this
// returns.
func (sc *srvConn) writeDeliveries(channel uint16, consumerTag string, msgs []*Message, tags []uint64, redelivered []bool) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	frames := 0
	var bytesOut uint64
	deliver := wire.BasicDeliver{ConsumerTag: consumerTag}
	for i, msg := range msgs {
		deliver.DeliveryTag = tags[i]
		deliver.Redelivered = redelivered[i]
		deliver.Exchange = msg.Exchange
		deliver.RoutingKey = msg.RoutingKey
		frames += w.AppendContentFramesZC(channel, &deliver, &msg.Props, msg.Body, sc.frameMax)
		bytesOut += uint64(len(msg.Body))
		if w.Len() >= deliveryFlushBytes {
			if err := w.Err(); err != nil {
				return err
			}
			if err := w.FlushFrames(sc.c, frames); err != nil {
				return err
			}
			frames = 0
		}
	}
	if err := w.Err(); err != nil {
		return err
	}
	if err := w.FlushFrames(sc.c, frames); err != nil {
		return err
	}
	sc.srv.Stats.MessagesOut.Add(uint64(len(msgs)))
	sc.srv.Stats.BytesOut.Add(bytesOut)
	return nil
}
