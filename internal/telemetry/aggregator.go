package telemetry

import (
	"sync"
	"time"
)

// DefaultTickInterval is the aggregator's default sampling period —
// the "per-second" of per-second throughput rollups.
const DefaultTickInterval = time.Second

// seriesCap bounds each ring-buffered time series (10 minutes at the
// default one-second tick).
const seriesCap = 600

// Point is one time-series sample: a per-second rate for counter
// sources, a level for gauge sources.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Tick is one aggregator rollup, delivered to the OnTick callback:
// every observed source's value at that instant (rates for counters,
// levels for gauges).
type Tick struct {
	T      time.Time
	Values map[string]float64
}

const (
	kindCounter = iota
	kindGauge
)

// source is one observed probe: a read callback plus rate state.
type source struct {
	name  string
	kind  int
	read  func() int64
	last  int64
	lastT time.Time
	ring  []Point // ring buffer, oldest at head when full
	head  int
}

func (s *source) append(p Point) {
	if len(s.ring) < seriesCap {
		s.ring = append(s.ring, p)
		return
	}
	s.ring[s.head] = p
	s.head = (s.head + 1) % seriesCap
}

func (s *source) points() []Point {
	out := make([]Point, 0, len(s.ring))
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	return out
}

// Aggregator snapshots observed sources on a tick into ring-buffered
// time series. Counters become per-interval rates (normalized to per
// second), gauges become levels. Start launches the ticker; Stop halts
// it and performs one final partial tick, so runs shorter than the
// interval still yield a data point. Tick may also be driven manually
// (tests, single-threaded drivers).
type Aggregator struct {
	interval time.Duration

	mu      sync.Mutex
	sources []*source
	onTick  func(Tick)

	stop chan struct{}
	done chan struct{}
}

// NewAggregator creates an idle aggregator; interval <= 0 uses
// DefaultTickInterval.
func NewAggregator(interval time.Duration) *Aggregator {
	if interval <= 0 {
		interval = DefaultTickInterval
	}
	return &Aggregator{interval: interval}
}

// Interval reports the sampling period.
func (a *Aggregator) Interval() time.Duration { return a.interval }

// OnTick installs a callback invoked after every tick with the rollup.
// The callback runs on the ticker goroutine; keep it brief.
func (a *Aggregator) OnTick(fn func(Tick)) {
	a.mu.Lock()
	a.onTick = fn
	a.mu.Unlock()
}

// ObserveCounter adds a cumulative source; its series holds per-second
// rates of change. The current value is read immediately as the rate
// baseline.
func (a *Aggregator) ObserveCounter(name string, read func() int64) {
	a.observe(name, kindCounter, read)
}

// ObserveGauge adds a level source; its series holds raw values.
func (a *Aggregator) ObserveGauge(name string, read func() int64) {
	a.observe(name, kindGauge, read)
}

// timeNow is stubbed by tests that drive Tick with synthetic times.
var timeNow = time.Now

func (a *Aggregator) observe(name string, kind int, read func() int64) {
	s := &source{name: name, kind: kind, read: read, last: read(), lastT: timeNow()}
	a.mu.Lock()
	// Replace an existing source of the same name (a re-registered run).
	for i, old := range a.sources {
		if old.name == name {
			a.sources[i] = s
			a.mu.Unlock()
			return
		}
	}
	a.sources = append(a.sources, s)
	a.mu.Unlock()
}

// Tick samples every source once at the given instant.
func (a *Aggregator) Tick(now time.Time) {
	a.mu.Lock()
	tick := Tick{T: now, Values: make(map[string]float64, len(a.sources))}
	for _, s := range a.sources {
		cur := s.read()
		var v float64
		switch s.kind {
		case kindCounter:
			dt := now.Sub(s.lastT).Seconds()
			if dt <= 0 {
				continue // zero-length interval: no rate to report
			}
			v = float64(cur-s.last) / dt
		case kindGauge:
			v = float64(cur)
		}
		s.last, s.lastT = cur, now
		s.append(Point{T: now, V: v})
		tick.Values[s.name] = v
	}
	fn := a.onTick
	a.mu.Unlock()
	if fn != nil {
		fn(tick)
	}
}

// Unobserve removes a source: its series is dropped and its read
// callback is never invoked again. Teardown paths call this after the
// probes a source reads are unregistered (a deleted queue, a closed
// deployment), so a still-ticking aggregator cannot read through a
// dead closure. Unknown names are a no-op.
func (a *Aggregator) Unobserve(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.sources {
		if s.name == name {
			a.sources = append(a.sources[:i], a.sources[i+1:]...)
			return
		}
	}
}

// Series returns the recorded points for a source name (nil if the
// source is unknown or has no points yet).
func (a *Aggregator) Series(name string) []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.sources {
		if s.name == name {
			return s.points()
		}
	}
	return nil
}

// Start launches the tick loop. Calling Start on a running aggregator
// is a no-op.
func (a *Aggregator) Start() {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	a.stop, a.done = stop, done
	a.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(a.interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				a.Tick(now)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the tick loop and performs one final partial tick so the
// tail of the run (or all of a sub-interval run) is not lost. Calling
// Stop on a never-started or already-stopped aggregator is a no-op.
func (a *Aggregator) Stop() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	a.Tick(time.Now())
}
