package cluster

import (
	"encoding/binary"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/wire"
)

// Replication: per-queue synchronous mirrors. With Options.ReplicationFactor
// R >= 2, every durable queue gets R-1 standby mirrors on the distinct ring
// nodes that follow its master in the placement walk. The master streams
// three kinds of frames to each mirror over the ordinary confirm-mode
// federation links (reserved "!mirror.*" exchanges, see broker.ClusterHook):
//
//   - data ships: one per locally appended publish, carrying the record and
//     its master-assigned segment-log offset (16-hex-digit routing-key
//     prefix). The producer's confirm is withheld until every in-sync
//     mirror has confirmed its append.
//   - settle ships: batches of ack offsets, fire-and-forget — a mirror
//     that misses acks merely redelivers, which at-least-once permits.
//   - reset ships: wipe the standby replica before a fresh catch-up.
//
// A mirror joins catching-up: the master snapshots its log frontier, scans
// everything below it to the mirror while live ships flow concurrently
// above it (the mirror dedupes the overlap by offset), and marks the mirror
// in-sync once the scan and every outstanding ship have drained. In-sync
// mirrors gate confirms; a mirror that stays lagged past replLagWindow is
// evicted from the in-sync set so confirms always resolve. Kill promotes
// the most-advanced in-sync mirror — its standby log is already on the new
// master's disk, so failover performs no segment-log relocation.
//
// Scope: replication covers default-exchange publishes to durable queues —
// the same data plane the federation layer forwards. Named-exchange
// publishes and transient queues stay node-local (unmirrored), exactly as
// their durability contract implies. Requeues are not streamed: a requeue
// does not change log state, so mirrors converge on the master's
// (ready + unacked) record set, not its in-memory delivery order.

// replLagWindow bounds how long an in-sync mirror may sit on an
// unconfirmed data ship before it is evicted from the in-sync set (and the
// withheld producer confirms it owed are released).
const replLagWindow = 500 * time.Millisecond

var (
	promotions      = telemetry.Default.Counter("cluster.promotions")
	mirrorCatchups  = telemetry.Default.Counter("cluster.mirror_catchups")
	mirrorLag       = telemetry.Default.Gauge("cluster.mirror_lag")
	insyncMirrors   = telemetry.Default.Gauge("cluster.insync_mirrors")
	underReplicated = telemetry.Default.Gauge("cluster.underreplicated_queues")
	fedRetries      = telemetry.Default.Counter("cluster.federation_retries")
)

// mirrorKey builds a data ship's routing key: the record's master offset
// as a 16-hex-digit prefix, then the queue name.
func mirrorKey(off uint64, queue string) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = "0123456789abcdef"[off&0xf]
		off >>= 4
	}
	return string(b[:]) + queue
}

// parseMirrorKey splits a data ship's routing key back into offset and
// queue name.
func parseMirrorKey(key string) (uint64, string, error) {
	if len(key) < 16 {
		return 0, "", fmt.Errorf("cluster: short mirror key %q", key)
	}
	off, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 0, "", fmt.Errorf("cluster: bad mirror key %q: %w", key, err)
	}
	return off, key[16:], nil
}

// confirmWaiter adapts a channel to broker.ConfirmTarget for one-shot
// synchronous ships (the pre-catch-up reset).
type confirmWaiter chan bool

func (c confirmWaiter) ClusterConfirm(seq uint64, ok bool) {
	select {
	case c <- ok:
	default:
	}
}

// ---------------------------------------------------------------------------
// Mirror side: the standby replica store.

// mirrorStore holds one node's standby replicas: per mirrored queue, a
// segment log under the node's own data directory (same escaped
// vhost/queue layout a mastered queue uses) plus the MIRROR marker that
// keeps Server.recoverDurable from replaying it as a mastered queue.
// Promotion closes the log and removes the marker; the very next declare
// on this node then recovers the replica as an ordinary durable queue.
type mirrorStore struct {
	dataDir string
	opts    seglog.Options

	mu   sync.Mutex
	reps map[string]*mirrorRep // key: qkey(vhost, queue)
}

// mirrorRep is one standby replica. Data ships can arrive out of offset
// order (live ships and catch-up scan interleave on the link), so the rep
// tracks a contiguous applied frontier plus the out-of-order set above it
// for duplicate suppression, and stashes acks that outrun their data.
type mirrorRep struct {
	mu      sync.Mutex
	log     *seglog.Log
	next    uint64          // contiguous applied frontier
	ooo     map[uint64]bool // applied offsets >= next
	pendAck map[uint64]bool // acks awaiting their data record
}

func newMirrorStore(dataDir string, opts seglog.Options) *mirrorStore {
	// Explicit-offset appends give replica segments overlapping offset
	// spans, which makes head compaction unsound — standby logs retain
	// everything until promotion hands them to the broker's own policy.
	opts.RetainAll = true
	return &mirrorStore{dataDir: dataDir, opts: opts, reps: make(map[string]*mirrorRep)}
}

func (st *mirrorStore) repDir(vhost, queue string) string {
	return filepath.Join(st.dataDir, url.QueryEscape(vhost), url.QueryEscape(queue))
}

// ensure returns the open replica for (vhost, queue), creating directory,
// marker, and log on first use.
func (st *mirrorStore) ensure(vhost, queue string) (*mirrorRep, error) {
	k := qkey(vhost, queue)
	st.mu.Lock()
	defer st.mu.Unlock()
	if rep, ok := st.reps[k]; ok {
		return rep, nil
	}
	dir := st.repDir(vhost, queue)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: mirror dir %q: %w", queue, err)
	}
	// Marker before log: a crash between the two leaves a marked (skipped)
	// directory, never a half-replica that recovery would master.
	if err := os.WriteFile(filepath.Join(dir, broker.MirrorMarker), nil, 0o644); err != nil {
		return nil, fmt.Errorf("cluster: mirror marker %q: %w", queue, err)
	}
	l, _, err := seglog.Open(dir, st.opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: mirror log %q: %w", queue, err)
	}
	rep := &mirrorRep{
		log:     l,
		next:    l.NextOffset(),
		ooo:     make(map[uint64]bool),
		pendAck: make(map[uint64]bool),
	}
	st.reps[k] = rep
	return rep, nil
}

// applyData applies one data ship: append the record at its master offset
// (duplicates from the catch-up/live overlap are dropped by offset) and
// drain any ack that arrived ahead of it.
func (st *mirrorStore) applyData(vhost, queue string, off uint64, m *broker.Message) error {
	rep, err := st.ensure(vhost, queue)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if off < rep.next || rep.ooo[off] {
		return nil // duplicate ship
	}
	// Reproduce the master's append: a default-exchange record keyed by
	// the queue (the wire envelope carried the mirror exchange instead).
	if err := rep.log.AppendAt(off, "", queue, &m.Props, m.Body); err != nil {
		return err
	}
	rep.ooo[off] = true
	for rep.ooo[rep.next] {
		delete(rep.ooo, rep.next)
		rep.next++
	}
	if rep.pendAck[off] {
		delete(rep.pendAck, off)
		return rep.log.Ack(off)
	}
	return nil
}

// applyAcks applies a settle ship: body is N big-endian u64 offsets. Acks
// for records not yet applied are stashed until the data ship lands;
// duplicate acks are harmless (the log tolerates them, recovery no-ops).
func (st *mirrorStore) applyAcks(vhost, queue string, body []byte) error {
	rep, err := st.ensure(vhost, queue)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	for len(body) >= 8 {
		off := binary.BigEndian.Uint64(body[:8])
		body = body[8:]
		if off < rep.next || rep.ooo[off] {
			if err := rep.log.Ack(off); err != nil {
				return err
			}
		} else {
			rep.pendAck[off] = true
		}
	}
	return nil
}

// reset wipes the standby replica — the master sends it before every
// catch-up so the scan lands on a clean slate.
func (st *mirrorStore) reset(vhost, queue string) error {
	k := qkey(vhost, queue)
	st.mu.Lock()
	rep := st.reps[k]
	delete(st.reps, k)
	st.mu.Unlock()
	if rep != nil {
		rep.mu.Lock()
		rep.log.Close()
		rep.mu.Unlock()
	}
	if err := os.RemoveAll(st.repDir(vhost, queue)); err != nil {
		return fmt.Errorf("cluster: mirror reset %q: %w", queue, err)
	}
	return nil
}

// promote hands the standby replica to the broker: the log is closed
// cleanly (flush + fsync) and the MIRROR marker removed, so the next
// declare on this node recovers it as an ordinary durable queue. No data
// moves — promotion is a rename-free ownership flip on local disk.
func (st *mirrorStore) promote(vhost, queue string) error {
	k := qkey(vhost, queue)
	st.mu.Lock()
	rep := st.reps[k]
	delete(st.reps, k)
	st.mu.Unlock()
	if rep != nil {
		rep.mu.Lock()
		err := rep.log.Close()
		rep.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cluster: mirror promote %q: %w", queue, err)
		}
	}
	err := os.Remove(filepath.Join(st.repDir(vhost, queue), broker.MirrorMarker))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cluster: mirror promote %q: %w", queue, err)
	}
	return nil
}

// nextOffset reports how far the replica has applied (0 when this node
// holds no open replica of the queue) — the promotion chooser's
// advancement measure.
func (st *mirrorStore) nextOffset(vhost, queue string) uint64 {
	st.mu.Lock()
	rep := st.reps[qkey(vhost, queue)]
	st.mu.Unlock()
	if rep == nil {
		return 0
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.log.NextOffset()
}

// crash SIGKILLs the store with its node: every replica log is crashed
// (unflushed bytes die) and the in-memory state dropped. A later restart
// starts empty; masters re-establish mirrors with a reset + catch-up.
func (st *mirrorStore) crash() {
	st.mu.Lock()
	reps := st.reps
	st.reps = make(map[string]*mirrorRep)
	st.mu.Unlock()
	for _, rep := range reps {
		rep.mu.Lock()
		rep.log.Crash()
		rep.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Master side: per-queue replication state.

const (
	mirCatchingUp = iota // scanning history; live ships flow but don't gate confirms
	mirInSync            // gates producer confirms
)

// replShip is one outstanding frame on a mirror's link: a data ship
// (confirm-gating when the mirror is in-sync) or a settle ship.
type replShip struct {
	off  uint64
	data bool
	at   time.Time
}

// replPending is one withheld producer confirm: resolved when need in-sync
// appends have confirmed, or when the owing laggards are evicted.
type replPending struct {
	target broker.ConfirmTarget
	seq    uint64
	need   int
	at     time.Time
}

// replMirror is the master's view of one mirror.
type replMirror struct {
	node        int
	state       int
	catchupDone bool
	outstanding map[uint64]replShip // shipID -> ship
	target      *mirrorShipTarget
}

// mirrorShipTarget routes a ship's link confirm back to its queue's
// replication state; the link seq it bridges is the per-queue shipID.
type mirrorShipTarget struct {
	rq   *replQueue
	node int
}

func (t *mirrorShipTarget) ClusterConfirm(shipID uint64, ok bool) {
	t.rq.shipDone(t.node, shipID, ok)
}

// replQueue is the master-side replication state of one queue.
type replQueue struct {
	rm    *replManager
	vhost string
	name  string

	mu       sync.Mutex
	mirrors  map[int]*replMirror
	joining  map[int]bool // mirror establishment in flight
	pending  map[uint64]*replPending // master offset -> withheld confirm
	shipSeq  uint64
	insync   int
	underrep bool
	timerOn  bool
	dropped  bool
}

// replManager owns one node's master-side replication state across all
// the queues it masters.
type replManager struct {
	c      *Cluster
	node   int
	factor int
	hub    *fedHub

	mu     sync.Mutex
	queues map[string]*replQueue
	count  atomic.Int64 // len(queues): the per-publish fast-path gate
}

func newReplManager(c *Cluster, node, factor int, hub *fedHub) *replManager {
	return &replManager{c: c, node: node, factor: factor, hub: hub, queues: make(map[string]*replQueue)}
}

func (rm *replManager) get(vhost, queue string) *replQueue {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.queues[qkey(vhost, queue)]
}

// queueRegistered is the replication entry point: a durable queue this
// node masters gets a replQueue and mirror establishment kicks off.
// Idempotent — redeclares and recovery re-registrations re-run the
// (also idempotent) mirror reconcile.
func (rm *replManager) queueRegistered(vhost, queue string, durable bool) {
	if !durable || rm.factor < 2 {
		return
	}
	if rm.c.dir.Owner(vhost, queue) != rm.node {
		return
	}
	k := qkey(vhost, queue)
	rm.mu.Lock()
	rq := rm.queues[k]
	if rq == nil {
		rq = &replQueue{
			rm:      rm,
			vhost:   vhost,
			name:    queue,
			mirrors: make(map[int]*replMirror),
			joining: make(map[int]bool),
			pending: make(map[uint64]*replPending),
		}
		rm.queues[k] = rq
		rm.count.Store(int64(len(rm.queues)))
		rq.mu.Lock()
		rq.updateUnderRepLocked()
		rq.mu.Unlock()
	}
	rm.mu.Unlock()
	rm.ensureMirrors(rq)
}

// desiredMirrors walks the ring clockwise from the queue's placement
// point, collecting up to factor-1 live nodes other than this master.
func (rm *replManager) desiredMirrors(queue string) []int {
	owners := rm.c.dir.Ring().Owners(queue, rm.factor+1)
	out := make([]int, 0, rm.factor-1)
	for _, n := range owners {
		if n == rm.node || len(out) >= rm.factor-1 {
			continue
		}
		out = append(out, n)
	}
	return out
}

// ensureMirrors starts establishment for every desired mirror that is
// neither live nor already joining. Safe to call repeatedly (reconcile on
// topology changes).
func (rm *replManager) ensureMirrors(rq *replQueue) {
	for _, node := range rm.desiredMirrors(rq.name) {
		rq.mu.Lock()
		_, have := rq.mirrors[node]
		busy := have || rq.joining[node] || rq.dropped
		if !busy {
			rq.joining[node] = true
		}
		rq.mu.Unlock()
		if busy {
			continue
		}
		go rm.establishMirror(rq, node)
	}
}

// establishMirror brings one mirror from cold to in-sync: reset the
// standby replica, register the mirror (live ships start flowing),
// snapshot the master frontier, scan the history below it across the
// link, and let the in-sync transition fire once everything outstanding
// drains. Aborts (dial failure, eviction mid-scan) leave the mirror
// absent; the next reconcile retries.
func (rm *replManager) establishMirror(rq *replQueue, node int) {
	defer func() {
		rq.mu.Lock()
		delete(rq.joining, node)
		rq.mu.Unlock()
	}()
	self := rm.c.nodeOrNil(rm.node)
	if self == nil {
		return // cluster still starting; the next reconcile retries
	}
	q, ok := self.VHost(rq.vhost).Queue(rq.name)
	if !ok || q.Log() == nil {
		return
	}
	addr := rm.c.dir.Addr(node)
	if addr == "" {
		return
	}
	l, err := rm.hub.link(addr, rq.vhost)
	if err != nil {
		return
	}
	// Wipe the standby replica before registering for live ships, so no
	// live ship can land pre-reset and be erased after its confirm.
	reset := broker.NewMessage(broker.MirrorResetExchange, rq.name, wire.Properties{}, 0)
	w := make(confirmWaiter, 1)
	err = l.forward(broker.MirrorResetExchange, rq.name, reset, w, 1)
	reset.Release()
	if err != nil {
		return
	}
	select {
	case ok := <-w:
		if !ok {
			return
		}
	case <-time.After(fedRPCTimeout):
		return
	}
	m := &replMirror{node: node, state: mirCatchingUp, outstanding: make(map[uint64]replShip)}
	m.target = &mirrorShipTarget{rq: rq, node: node}
	rq.mu.Lock()
	if _, dup := rq.mirrors[node]; dup || rq.dropped {
		rq.mu.Unlock()
		return
	}
	rq.mirrors[node] = m
	// Everything below startOff is the scan's job; everything at or above
	// it arrives as live ships. The two streams overlap at the boundary
	// (a publish between the append and its live ship registration lands
	// in both) and the mirror dedupes by offset.
	startOff := q.Log().NextOffset()
	rq.mu.Unlock()
	if startOff > 0 {
		err := q.Log().Scan(
			func(rec *seglog.Record) error {
				if rec.Offset >= startOff {
					return nil
				}
				return rq.shipRecord(l, m, rec)
			},
			func(off uint64) error { return rq.shipCatchupAck(l, m, off) },
		)
		if err != nil {
			return // evicted mid-scan or link failed; ship nacks clean up
		}
	}
	rq.mu.Lock()
	if rq.mirrors[node] != m {
		rq.mu.Unlock()
		return
	}
	m.catchupDone = true
	rq.maybeInsyncLocked(m)
	rq.mu.Unlock()
	if startOff > 0 {
		mirrorCatchups.Inc()
	}
}

var errMirrorEvicted = fmt.Errorf("cluster: mirror evicted")

// shipRecord streams one scanned history record to a catching-up mirror.
func (rq *replQueue) shipRecord(l *fedLink, m *replMirror, rec *seglog.Record) error {
	msg := broker.NewMessage(rec.Exchange, rec.Key, rec.Props, len(rec.Body))
	msg.AppendBody(rec.Body)
	rq.mu.Lock()
	if rq.mirrors[m.node] != m {
		rq.mu.Unlock()
		msg.Release()
		return errMirrorEvicted
	}
	rq.shipSeq++
	id := rq.shipSeq
	m.outstanding[id] = replShip{off: rec.Offset, data: true, at: time.Now()}
	rq.mu.Unlock()
	mirrorLag.Add(1)
	err := l.forward(broker.MirrorDataExchange, mirrorKey(rec.Offset, rq.name), msg, m.target, id)
	msg.Release()
	if err != nil {
		// The link never took the ship; resolve it ourselves.
		rq.shipDone(m.node, id, false)
	}
	return err
}

// shipCatchupAck streams one scanned settle to a catching-up mirror.
func (rq *replQueue) shipCatchupAck(l *fedLink, m *replMirror, off uint64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], off)
	msg := broker.NewMessage(broker.MirrorAckExchange, rq.name, wire.Properties{}, 8)
	msg.AppendBody(b[:])
	rq.mu.Lock()
	if rq.mirrors[m.node] != m {
		rq.mu.Unlock()
		msg.Release()
		return errMirrorEvicted
	}
	rq.shipSeq++
	id := rq.shipSeq
	m.outstanding[id] = replShip{at: time.Now()}
	rq.mu.Unlock()
	mirrorLag.Add(1)
	err := l.forward(broker.MirrorAckExchange, rq.name, msg, m.target, id)
	msg.Release()
	if err != nil {
		rq.shipDone(m.node, id, false)
	}
	return err
}

// linkTo resolves a mirror node's live federation link.
func (rm *replManager) linkTo(node int, vhost string) (*fedLink, error) {
	addr := rm.c.dir.Addr(node)
	if addr == "" {
		return nil, fmt.Errorf("cluster: mirror node %d has no address", node)
	}
	return rm.hub.link(addr, vhost)
}

// replicated answers the broker's per-publish fast path: does this queue
// have live mirrors that must gate its confirms?
func (rm *replManager) replicated(vhost, queue string) bool {
	if rm == nil || rm.count.Load() == 0 {
		return false
	}
	rq := rm.get(vhost, queue)
	if rq == nil {
		return false
	}
	rq.mu.Lock()
	n := len(rq.mirrors)
	rq.mu.Unlock()
	return n > 0
}

// replicateAppend ships one locally appended publish to every mirror and
// withholds the producer's confirm until the in-sync set has appended.
// Always eventually resolves target (the ClusterHook contract): directly
// when no in-sync mirror exists, via shipDone when they confirm, via
// eviction when they lag or die.
func (rm *replManager) replicateAppend(vhost, queue string, off uint64, msg *broker.Message, target broker.ConfirmTarget, seq uint64) {
	rq := rm.get(vhost, queue)
	if rq == nil {
		if target != nil {
			target.ClusterConfirm(seq, true)
		}
		return
	}
	type shipOut struct {
		node int
		id   uint64
		t    *mirrorShipTarget
	}
	ships := make([]shipOut, 0, 2)
	now := time.Now()
	rq.mu.Lock()
	need := 0
	for node, m := range rq.mirrors {
		rq.shipSeq++
		m.outstanding[rq.shipSeq] = replShip{off: off, data: true, at: now}
		if m.state == mirInSync {
			need++
		}
		ships = append(ships, shipOut{node: node, id: rq.shipSeq, t: m.target})
	}
	if need > 0 && target != nil {
		rq.pending[off] = &replPending{target: target, seq: seq, need: need, at: now}
		rq.armTimerLocked()
		target = nil // resolution deferred to shipDone / eviction
	}
	rq.mu.Unlock()
	mirrorLag.Add(int64(len(ships)))
	if len(ships) > 0 {
		key := mirrorKey(off, queue)
		for _, sh := range ships {
			l, err := rm.linkTo(sh.node, vhost)
			if err != nil {
				rq.shipDone(sh.node, sh.id, false)
				continue
			}
			if err := l.forward(broker.MirrorDataExchange, key, msg, sh.t, sh.id); err != nil {
				rq.shipDone(sh.node, sh.id, false)
			}
		}
	}
	if target != nil {
		// No in-sync mirror to wait for: the local append is durable, so
		// the confirm semantics degrade to R=1 until a mirror syncs.
		target.ClusterConfirm(seq, true)
	}
}

// replicateSettle streams committed settlements (single offset or batch)
// to every mirror, fire-and-forget for the consumer but confirm-tracked
// on the link so in-sync transitions wait for them.
func (rm *replManager) replicateSettle(vhost, queue string, off uint64, offs []uint64) {
	if rm.count.Load() == 0 {
		return
	}
	rq := rm.get(vhost, queue)
	if rq == nil {
		return
	}
	rq.mu.Lock()
	n := len(rq.mirrors)
	rq.mu.Unlock()
	if n == 0 || (offs != nil && len(offs) == 0) {
		return
	}
	count := 1
	if offs != nil {
		count = len(offs)
	}
	msg := broker.NewMessage(broker.MirrorAckExchange, queue, wire.Properties{}, 8*count)
	var b [8]byte
	if offs == nil {
		binary.BigEndian.PutUint64(b[:], off)
		msg.AppendBody(b[:])
	} else {
		for _, o := range offs {
			binary.BigEndian.PutUint64(b[:], o)
			msg.AppendBody(b[:])
		}
	}
	type shipOut struct {
		node int
		id   uint64
		t    *mirrorShipTarget
	}
	ships := make([]shipOut, 0, 2)
	now := time.Now()
	rq.mu.Lock()
	for node, m := range rq.mirrors {
		rq.shipSeq++
		m.outstanding[rq.shipSeq] = replShip{at: now}
		ships = append(ships, shipOut{node: node, id: rq.shipSeq, t: m.target})
	}
	rq.mu.Unlock()
	mirrorLag.Add(int64(len(ships)))
	for _, sh := range ships {
		l, err := rm.linkTo(sh.node, vhost)
		if err != nil {
			rq.shipDone(sh.node, sh.id, false)
			continue
		}
		if err := l.forward(broker.MirrorAckExchange, queue, msg, sh.t, sh.id); err != nil {
			rq.shipDone(sh.node, sh.id, false)
		}
	}
	msg.Release()
}

// shipDone resolves one outstanding ship (called from the link read loop
// via mirrorShipTarget, or synchronously on a forward that never left).
// A nack evicts the mirror — a standby that failed an append has
// diverged and must re-enter through reset + catch-up.
func (rq *replQueue) shipDone(node int, shipID uint64, ok bool) {
	var fire []*replPending
	rq.mu.Lock()
	m := rq.mirrors[node]
	if m == nil {
		rq.mu.Unlock()
		return // evicted; its eviction already settled the gauges
	}
	s, hit := m.outstanding[shipID]
	if !hit {
		rq.mu.Unlock()
		return
	}
	delete(m.outstanding, shipID)
	mirrorLag.Add(-1)
	if !ok {
		rq.evictLocked(m, &fire)
	} else {
		if s.data && m.state == mirInSync {
			if p := rq.pending[s.off]; p != nil {
				p.need--
				if p.need <= 0 {
					delete(rq.pending, s.off)
					fire = append(fire, p)
				}
			}
		}
		rq.maybeInsyncLocked(m)
	}
	rq.mu.Unlock()
	for _, p := range fire {
		p.target.ClusterConfirm(p.seq, true)
	}
}

// maybeInsyncLocked promotes a catching-up mirror to in-sync once its
// history scan is complete and nothing it was shipped is outstanding.
func (rq *replQueue) maybeInsyncLocked(m *replMirror) {
	if m.state != mirCatchingUp || !m.catchupDone || len(m.outstanding) != 0 {
		return
	}
	m.state = mirInSync
	rq.insync++
	insyncMirrors.Add(1)
	rq.updateUnderRepLocked()
}

// evictLocked removes a mirror. An in-sync mirror's outstanding data
// ships were counted in their offsets' withheld confirms; eviction
// releases that debt so the confirms resolve (collected into fire).
func (rq *replQueue) evictLocked(m *replMirror, fire *[]*replPending) {
	if rq.mirrors[m.node] != m {
		return
	}
	delete(rq.mirrors, m.node)
	if m.state == mirInSync {
		m.state = mirCatchingUp
		rq.insync--
		insyncMirrors.Add(-1)
		for _, s := range m.outstanding {
			if !s.data {
				continue
			}
			if p := rq.pending[s.off]; p != nil {
				p.need--
				if p.need <= 0 {
					delete(rq.pending, s.off)
					*fire = append(*fire, p)
				}
			}
		}
	}
	mirrorLag.Add(-int64(len(m.outstanding)))
	m.outstanding = make(map[uint64]replShip)
	rq.updateUnderRepLocked()
}

// updateUnderRepLocked keeps the under-replicated gauge in step with the
// queue's in-sync census (under-replicated: fewer than factor-1 in-sync
// mirrors).
func (rq *replQueue) updateUnderRepLocked() {
	under := !rq.dropped && rq.insync < rq.rm.factor-1
	if under == rq.underrep {
		return
	}
	rq.underrep = under
	if under {
		underReplicated.Add(1)
	} else {
		underReplicated.Add(-1)
	}
}

// armTimerLocked schedules the lag sweep while confirms are withheld.
func (rq *replQueue) armTimerLocked() {
	if rq.timerOn || len(rq.pending) == 0 {
		return
	}
	rq.timerOn = true
	time.AfterFunc(replLagWindow/2, rq.onLagTimer)
}

// onLagTimer evicts in-sync mirrors sitting on data ships older than the
// lag window, releasing the confirms they owed — the bounded catch-up
// window that keeps a wedged mirror from stalling producers forever. A
// safety net also force-resolves any confirm withheld past twice the
// window (the local append is durable either way).
func (rq *replQueue) onLagTimer() {
	var fire []*replPending
	now := time.Now()
	cutoff := now.Add(-replLagWindow)
	rq.mu.Lock()
	rq.timerOn = false
	var evict []*replMirror
	for _, m := range rq.mirrors {
		if m.state != mirInSync {
			continue
		}
		for _, s := range m.outstanding {
			if s.data && s.at.Before(cutoff) {
				evict = append(evict, m)
				break
			}
		}
	}
	for _, m := range evict {
		rq.evictLocked(m, &fire)
	}
	stale := now.Add(-2 * replLagWindow)
	for off, p := range rq.pending {
		if p.need <= 0 || p.at.Before(stale) {
			delete(rq.pending, off)
			fire = append(fire, p)
		}
	}
	rq.armTimerLocked()
	rq.mu.Unlock()
	for _, p := range fire {
		p.target.ClusterConfirm(p.seq, true)
	}
}

// nodeDown drops a dead node from every queue's mirror set, releasing any
// confirms it owed.
func (rm *replManager) nodeDown(node int) {
	rm.mu.Lock()
	qs := make([]*replQueue, 0, len(rm.queues))
	for _, rq := range rm.queues {
		qs = append(qs, rq)
	}
	rm.mu.Unlock()
	for _, rq := range qs {
		var fire []*replPending
		rq.mu.Lock()
		if m := rq.mirrors[node]; m != nil {
			rq.evictLocked(m, &fire)
		}
		rq.mu.Unlock()
		for _, p := range fire {
			p.target.ClusterConfirm(p.seq, true)
		}
	}
}

// choosePromotion picks the dead master's successor for one of its
// queues: the most-advanced in-sync mirror, falling back to the
// most-advanced mirror of any state, judged by how far each standby
// replica has applied. ok=false (no surviving mirror) falls back to the
// legacy ring-owner failover.
func (rm *replManager) choosePromotion(q QueueInfo) (int, bool) {
	rq := rm.get(q.VHost, q.Name)
	if rq == nil {
		return 0, false
	}
	type cand struct {
		node   int
		insync bool
		off    uint64
	}
	rq.mu.Lock()
	cands := make([]cand, 0, len(rq.mirrors))
	for node, m := range rq.mirrors {
		if !rm.c.dir.Ring().Has(node) {
			continue // mirror died too
		}
		st := rm.c.storeOf(node)
		if st == nil {
			continue
		}
		cands = append(cands, cand{node: node, insync: m.state == mirInSync, off: st.nextOffset(q.VHost, q.Name)})
	}
	rq.mu.Unlock()
	best := -1
	var bestOff uint64
	bestInsync := false
	for _, cd := range cands {
		switch {
		case best < 0,
			cd.insync && !bestInsync,
			cd.insync == bestInsync && cd.off > bestOff:
			best, bestOff, bestInsync = cd.node, cd.off, cd.insync
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// reconcileAll re-runs mirror placement for every mastered queue — the
// rebalance-on-join audit's replication half: a node re-entering the ring
// is re-established (reset + catch-up) wherever placement wants it.
func (rm *replManager) reconcileAll() {
	rm.mu.Lock()
	qs := make([]*replQueue, 0, len(rm.queues))
	for _, rq := range rm.queues {
		qs = append(qs, rq)
	}
	rm.mu.Unlock()
	for _, rq := range qs {
		rm.ensureMirrors(rq)
	}
}

// reset drops all master-side replication state (node restart: the
// in-process manager outlived its crashed broker). Withheld confirms are
// dropped, not fired — their producer channels died with the node.
func (rm *replManager) reset() {
	rm.mu.Lock()
	qs := rm.queues
	rm.queues = make(map[string]*replQueue)
	rm.count.Store(0)
	rm.mu.Unlock()
	for _, rq := range qs {
		rq.mu.Lock()
		rq.dropped = true
		for _, m := range rq.mirrors {
			if m.state == mirInSync {
				rq.insync--
				insyncMirrors.Add(-1)
			}
			mirrorLag.Add(-int64(len(m.outstanding)))
		}
		rq.mirrors = make(map[int]*replMirror)
		rq.pending = make(map[uint64]*replPending)
		rq.updateUnderRepLocked()
		rq.mu.Unlock()
	}
}
