// Package forwarder is the off-box stage of the telemetry pipeline:
// it serializes aggregator ticks, health transitions, and registry
// snapshots into CRC-framed payloads and ships them to a pluggable
// Sink (an HTTP collector, a file) through a bounded retry queue.
//
//	probes ──► aggregator ──► forwarder ──► sink (off-box)
//
// The forwarder is built for lossy networks and dead collectors in the
// datadog-agent mold: delivery retries with exponential backoff and
// jitter, the queue is bounded (oldest payloads drop first, with
// accounting), Stop flushes whatever the sink will still accept within
// a deadline, and the forwarder observes itself — dropped, retried,
// and sent-byte probes land in the same registry it forwards.
package forwarder

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/telemetry"
)

// Payload kinds.
const (
	KindTick     = "tick"     // one aggregator rollup
	KindHealth   = "health"   // one health-rule transition
	KindSnapshot = "snapshot" // a full registry snapshot
)

// Payload is one forwarded unit, JSON-encoded inside a frame. Seq is
// assigned per forwarder and lets a sink spot gaps left by drops.
type Payload struct {
	Kind     string                 `json:"kind"`
	Seq      uint64                 `json:"seq"`
	T        time.Time              `json:"t"`
	Values   map[string]float64     `json:"values,omitempty"`   // KindTick
	Health   *telemetry.HealthEvent `json:"health,omitempty"`   // KindHealth
	Snapshot *telemetry.Snapshot    `json:"snapshot,omitempty"` // KindSnapshot
}

// Frame layout: magic "DSTL", a version byte, the big-endian body
// length, the CRC-32C of the body, then the JSON body. The CRC guards
// file sinks against torn tails the same way the seglog does.
const (
	frameMagic   = "DSTL"
	frameVersion = 1
	frameHeader  = 4 + 1 + 4 + 4

	// MaxFrameBytes bounds a decoded frame (a snapshot of a very large
	// registry stays far below this; anything bigger is corruption).
	MaxFrameBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame wraps a payload body in the wire frame.
func EncodeFrame(body []byte) []byte {
	f := make([]byte, frameHeader+len(body))
	copy(f, frameMagic)
	f[4] = frameVersion
	binary.BigEndian.PutUint32(f[5:], uint32(len(body)))
	binary.BigEndian.PutUint32(f[9:], crc32.Checksum(body, crcTable))
	copy(f[frameHeader:], body)
	return f
}

// ReadFrame reads one frame and returns its body. io.EOF marks a clean
// end of stream; a partial header or body surfaces as
// io.ErrUnexpectedEOF (a torn tail), and magic/CRC mismatches as
// errors.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, frameHeader)
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF: clean end
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if string(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("forwarder: bad frame magic %q", hdr[:4])
	}
	if hdr[4] != frameVersion {
		return nil, fmt.Errorf("forwarder: unknown frame version %d", hdr[4])
	}
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("forwarder: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(hdr[9:]); got != want {
		return nil, fmt.Errorf("forwarder: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return body, nil
}

// marshalPayload is the single encoding point for payload bodies.
func marshalPayload(p Payload) ([]byte, error) {
	return json.Marshal(p)
}

// Decode parses a frame body back into its Payload.
func Decode(body []byte) (Payload, error) {
	var p Payload
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&p); err != nil {
		return Payload{}, fmt.Errorf("forwarder: decode payload: %w", err)
	}
	return p, nil
}

// Config tunes a Forwarder. Sink is required; everything else
// defaults.
type Config struct {
	// Sink receives framed payloads. Send errors are retried.
	Sink Sink
	// QueueCap bounds payloads waiting for delivery (default 256).
	// When full, the oldest queued payload is dropped and accounted.
	QueueCap int
	// Backoff is the first retry delay (default 10ms); it doubles per
	// consecutive failure up to MaxBackoff (default 1s), with full
	// jitter so a fleet of forwarders does not thunder on a recovered
	// collector.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// FlushTimeout bounds Stop's drain (default 2s): payloads the sink
	// has not accepted by then are dropped with accounting instead of
	// wedging shutdown on a dead collector.
	FlushTimeout time.Duration
	// Probes is the registry the forwarder's self-observation lands in
	// (forwarder.sent_payloads/sent_bytes/retried/dropped_payloads and
	// the forwarder.queue_len gauge); nil uses telemetry.Default.
	Probes *telemetry.Registry
}

// Stats is a forwarder's delivery accounting, for tests and end-of-run
// reports. Sent+Dropped eventually equals the number of enqueued
// payloads once the forwarder is stopped.
type Stats struct {
	Sent      int64 // payloads acknowledged by the sink
	SentBytes int64 // framed bytes acknowledged by the sink
	Retried   int64 // failed delivery attempts
	Dropped   int64 // payloads dropped (queue overflow or flush deadline)
	Queued    int   // payloads currently waiting (in-flight excluded)
}

// Forwarder ships framed payloads to a sink from a single worker
// goroutine. Enqueue never blocks: the queue is bounded and drops
// oldest-first. A payload is delivered at most once — the in-flight
// head is retried in place, never re-enqueued.
type Forwarder struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	stopping bool
	deadline time.Time // flush deadline, set by Stop

	stopCh chan struct{} // closed by Stop: wakes backoff sleeps
	done   chan struct{}

	seq       atomic.Uint64
	sent      atomic.Int64
	sentBytes atomic.Int64
	retried   atomic.Int64
	dropped   atomic.Int64

	// Self-observation probes (shared across forwarders in the same
	// registry; Stats carries the per-forwarder numbers).
	pSent    *telemetry.Counter
	pBytes   *telemetry.Counter
	pRetried *telemetry.Counter
	pDropped *telemetry.Counter
}

// New starts a forwarder over the sink. Call Stop to flush and halt.
func New(cfg Config) *Forwarder {
	if cfg.Sink == nil {
		panic("forwarder: Config.Sink is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 2 * time.Second
	}
	reg := cfg.Probes
	if reg == nil {
		reg = telemetry.Default
	}
	f := &Forwarder{
		cfg:      cfg,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		pSent:    reg.Counter("forwarder.sent_payloads"),
		pBytes:   reg.Counter("forwarder.sent_bytes"),
		pRetried: reg.Counter("forwarder.retried"),
		pDropped: reg.Counter("forwarder.dropped_payloads"),
	}
	f.cond = sync.NewCond(&f.mu)
	reg.GaugeFunc("forwarder.queue_len", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return int64(len(f.queue))
	})
	go f.run()
	return f
}

// ForwardTick enqueues one aggregator rollup.
func (f *Forwarder) ForwardTick(t telemetry.Tick) {
	f.Enqueue(Payload{Kind: KindTick, T: t.T, Values: t.Values})
}

// ForwardHealth enqueues one health transition.
func (f *Forwarder) ForwardHealth(e telemetry.HealthEvent) {
	f.Enqueue(Payload{Kind: KindHealth, T: e.T, Health: &e})
}

// ForwardSnapshot enqueues a full registry snapshot (the end-of-run
// payload).
func (f *Forwarder) ForwardSnapshot(s *telemetry.Snapshot) {
	f.Enqueue(Payload{Kind: KindSnapshot, T: time.Now(), Snapshot: s})
}

// Enqueue serializes, frames, and queues one payload. It never blocks:
// a full queue drops its oldest entry (accounted in Stats.Dropped and
// forwarder.dropped_payloads), and a stopped forwarder drops the new
// payload outright.
func (f *Forwarder) Enqueue(p Payload) {
	p.Seq = f.seq.Add(1)
	body, err := marshalPayload(p)
	if err != nil {
		// Payloads are built from plain values; this cannot happen
		// outside programmer error, but accounting beats panicking.
		f.drop(1)
		return
	}
	frame := EncodeFrame(body)
	f.mu.Lock()
	if f.stopping {
		f.mu.Unlock()
		f.drop(1)
		return
	}
	if len(f.queue) >= f.cfg.QueueCap {
		copy(f.queue, f.queue[1:])
		f.queue = f.queue[:len(f.queue)-1]
		f.drop(1)
	}
	f.queue = append(f.queue, frame)
	f.cond.Signal()
	f.mu.Unlock()
}

func (f *Forwarder) drop(n int64) {
	f.dropped.Add(n)
	f.pDropped.Add(n)
}

// Stats returns the forwarder's delivery accounting so far.
func (f *Forwarder) Stats() Stats {
	f.mu.Lock()
	queued := len(f.queue)
	f.mu.Unlock()
	return Stats{
		Sent:      f.sent.Load(),
		SentBytes: f.sentBytes.Load(),
		Retried:   f.retried.Load(),
		Dropped:   f.dropped.Load(),
		Queued:    queued,
	}
}

// Stop flushes and halts the forwarder: queued payloads are delivered
// until the sink stops accepting or FlushTimeout expires, stragglers
// are dropped with accounting, and the worker exits. Stop is
// idempotent and returns only after the worker is done. The sink is
// not closed — the caller owns it.
func (f *Forwarder) Stop() {
	f.mu.Lock()
	if !f.stopping {
		f.stopping = true
		f.deadline = time.Now().Add(f.cfg.FlushTimeout)
		close(f.stopCh)
		f.cond.Signal()
	}
	f.mu.Unlock()
	<-f.done
}

// run is the delivery worker: pop the head, deliver it (retrying in
// place), repeat. On stop it keeps draining until the queue empties or
// the flush deadline passes.
func (f *Forwarder) run() {
	defer close(f.done)
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.stopping {
			f.cond.Wait()
		}
		if len(f.queue) == 0 {
			f.mu.Unlock()
			return // stopping with a drained queue
		}
		if f.stopping && time.Now().After(f.deadline) {
			// Flush deadline passed: account everything left and exit.
			n := int64(len(f.queue))
			f.queue = nil
			f.mu.Unlock()
			f.drop(n)
			return
		}
		frame := f.queue[0]
		f.queue = f.queue[1:]
		f.mu.Unlock()
		f.deliver(frame)
	}
}

// deliver sends one frame, retrying with capped exponential backoff
// and full jitter until the sink accepts it — exactly once per payload
// — or the stop flush deadline expires, in which case the frame is
// dropped with accounting.
func (f *Forwarder) deliver(frame []byte) {
	backoff := f.cfg.Backoff
	for {
		if err := f.cfg.Sink.Send(frame); err == nil {
			f.sent.Add(1)
			f.sentBytes.Add(int64(len(frame)))
			f.pSent.Inc()
			f.pBytes.Add(int64(len(frame)))
			return
		}
		f.retried.Add(1)
		f.pRetried.Inc()

		f.mu.Lock()
		stopping, deadline := f.stopping, f.deadline
		f.mu.Unlock()
		sleep := time.Duration(rand.Int63n(int64(backoff)) + 1)
		if stopping {
			// stopCh is already closed, so selecting on it would skip the
			// backoff and busy-spin against a dead sink for the whole
			// flush window; sleep outright, capped to the deadline.
			remain := time.Until(deadline)
			if remain <= 0 {
				f.drop(1)
				return
			}
			if sleep > remain {
				sleep = remain
			}
			time.Sleep(sleep)
		} else {
			select {
			case <-time.After(sleep):
			case <-f.stopCh:
				// Woken by Stop: loop to retry against the flush deadline.
			}
		}
		if backoff *= 2; backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
	}
}
