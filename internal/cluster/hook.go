package cluster

import (
	"fmt"

	"ds2hpc/internal/broker"
)

// nodeHook is one node's view of the cluster, installed as
// broker.Config.Cluster. It answers placement lookups from the shared
// metadata directory, routes remote declares/publishes through the
// node's federation hub, and — on replicated clusters — bridges the
// broker's replication dispatch points to the node's master-side
// replication manager and standby mirror store (both nil on R=1
// clusters, keeping the unreplicated hot path untouched).
type nodeHook struct {
	node  int
	dir   *Directory
	hub   *fedHub
	repl  *replManager
	store *mirrorStore
}

var _ broker.ClusterHook = (*nodeHook)(nil)

func (h *nodeHook) Lookup(vhost, queue string) (string, bool) {
	owner := h.dir.Owner(vhost, queue)
	if owner == h.node {
		return "", true
	}
	addr := h.dir.Addr(owner)
	if addr == "" {
		// The owner has not listened yet (cluster still starting) or is
		// unknown; serve locally rather than redirect into the void.
		return "", true
	}
	return addr, false
}

func (h *nodeHook) RegisterQueue(vhost, queue string, durable bool) {
	h.dir.Register(vhost, queue, durable, h.node)
	if h.repl != nil {
		h.repl.queueRegistered(vhost, queue, durable)
	}
}

func (h *nodeHook) EnsureRemoteQueue(vhost, queue string, durable bool) error {
	addr, local := h.Lookup(vhost, queue)
	if local {
		return nil // ownership moved to this node between dispatch and now
	}
	l, err := h.hub.link(addr, vhost)
	if err != nil {
		return err
	}
	return l.declare(queue, durable)
}

func (h *nodeHook) ForwardPublish(vhost, queue string, m *broker.Message, target broker.ConfirmTarget, seq uint64) error {
	addr, local := h.Lookup(vhost, queue)
	if local {
		// Ownership moved here mid-flight; the caller's nack makes the
		// producer retry, and the retry routes locally.
		return errOwnershipMoved
	}
	l, err := h.hub.link(addr, vhost)
	if err != nil {
		return err
	}
	return l.forward("", queue, m, target, seq)
}

func (h *nodeHook) NoteRedirect(vhost, queue string) {
	brokerRedirects.Inc()
}

func (h *nodeHook) Replicated(vhost, queue string) bool {
	return h.repl.replicated(vhost, queue)
}

func (h *nodeHook) ReplicateAppend(vhost, queue string, off uint64, m *broker.Message, target broker.ConfirmTarget, seq uint64) {
	if h.repl == nil {
		if target != nil {
			target.ClusterConfirm(seq, true)
		}
		return
	}
	h.repl.replicateAppend(vhost, queue, off, m, target, seq)
}

func (h *nodeHook) ReplicateSettle(vhost, queue string, off uint64, offs []uint64) {
	if h.repl != nil {
		h.repl.replicateSettle(vhost, queue, off, offs)
	}
}

func (h *nodeHook) ApplyMirror(vhost, exchange, key string, m *broker.Message) error {
	if h.store == nil {
		return fmt.Errorf("cluster: node %d carries no mirror store", h.node)
	}
	switch exchange {
	case broker.MirrorDataExchange:
		off, queue, err := parseMirrorKey(key)
		if err != nil {
			return err
		}
		return h.store.applyData(vhost, queue, off, m)
	case broker.MirrorAckExchange:
		return h.store.applyAcks(vhost, key, m.Body)
	case broker.MirrorResetExchange:
		return h.store.reset(vhost, key)
	}
	return fmt.Errorf("cluster: unknown mirror exchange %q", exchange)
}

type ownershipMovedError struct{}

func (ownershipMovedError) Error() string { return "cluster: queue ownership moved" }

var errOwnershipMoved = ownershipMovedError{}
