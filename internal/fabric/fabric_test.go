package fabric

import (
	"testing"
	"time"
)

func TestACEScalesRatesOnly(t *testing.T) {
	full := ACE(1.0)
	tenth := ACE(0.1)
	// Rates scale linearly.
	if tenth.DSNRateBps*10 != full.DSNRateBps {
		t.Errorf("DSN rate: %d vs %d", tenth.DSNRateBps, full.DSNRateBps)
	}
	if tenth.ProxyProcBps*10 != full.ProxyProcBps {
		t.Errorf("proxy proc: %d vs %d", tenth.ProxyProcBps, full.ProxyProcBps)
	}
	// Latencies do not scale (propagation is physics, not provisioning).
	if tenth.ClientLatency != full.ClientLatency {
		t.Error("latency must not scale")
	}
}

func TestACECapacityOrdering(t *testing.T) {
	p := ACE(1.0)
	// The calibration that produces the paper's comparative shape:
	// DTS (bounded by DSN links) > PRS (proxy proc) > MSS (LB proc shared
	// by both directions).
	if p.ProxyProcBps > p.DSNRateBps*2 {
		t.Error("proxy proc must not exceed the multi-node DSN aggregate")
	}
	if p.LBProcBps/2 >= p.ProxyProcBps {
		t.Error("per-direction LB capacity must trail the proxy capacity")
	}
	if p.TunnelFlowBps >= p.ProxyProcBps {
		t.Error("a single stunnel flow must trail the proxy capacity")
	}
}

func TestACEZeroScaleDefaultsToFull(t *testing.T) {
	if got := ACE(0); got.Scale != 1 {
		t.Errorf("scale = %f", got.Scale)
	}
	if got := ACE(-3); got.Scale != 1 {
		t.Errorf("scale = %f", got.Scale)
	}
}

func TestLinkConstructors(t *testing.T) {
	p := ACE(0.5)
	if l := p.DSNLink("d"); l.RateBps != p.DSNRateBps || l.Latency != p.ClientLatency {
		t.Error("DSNLink mismatch")
	}
	if l := p.ClientLink("c"); l.RateBps != p.ClientRateBps {
		t.Error("ClientLink mismatch")
	}
	if l := p.WANLink("w"); l.RateBps != p.WANRateBps || l.Latency != p.WANLatency {
		t.Error("WANLink mismatch")
	}
	if l := p.ProxyProcLink("p"); l.RateBps != p.ProxyProcBps || l.Latency != 0 {
		t.Error("ProxyProcLink mismatch")
	}
	if l := p.LBProcLink(); l.RateBps != p.LBProcBps {
		t.Error("LBProcLink mismatch")
	}
	if l := p.IngressProcLink(); l.RateBps != p.IngressProcBps {
		t.Error("IngressProcLink mismatch")
	}
	if l := p.TunnelFlowLink("t"); l.RateBps != p.TunnelFlowBps {
		t.Error("TunnelFlowLink mismatch")
	}
}

func TestDefaultsAreSane(t *testing.T) {
	p := ACE(1.0)
	if p.LBWorkers <= 0 {
		t.Error("LB workers must be positive")
	}
	if p.LBSetupCost <= 0 || p.LBSetupCost > 100*time.Millisecond {
		t.Errorf("LB setup cost %v out of range", p.LBSetupCost)
	}
}
