package cluster

import (
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/telemetry"
)

// BenchmarkMirroredPublishDeliver prices synchronous replication on the
// durable publish→confirm→deliver round trip: R=1 is the unreplicated
// baseline (confirm certifies the master's local append), R=2 adds one
// synchronous mirror, so every confirm additionally rides a mirror ship
// and its ack across a federation link. The delta between the two
// sub-benches is the paper-facing cost of surviving a master kill with
// zero data movement.
func BenchmarkMirroredPublishDeliver(b *testing.B) {
	for _, factor := range []int{1, 2} {
		b.Run(fmt.Sprintf("R=%d", factor), func(b *testing.B) {
			benchMirroredPublishDeliver(b, factor)
		})
	}
}

func benchMirroredPublishDeliver(b *testing.B, factor int) {
	insync := telemetry.Default.Gauge("cluster.insync_mirrors")
	insyncBase := insync.Load()
	c, err := StartWithOptions(3, Options{Federation: true, ReplicationFactor: factor}, func(int) broker.Config {
		return broker.Config{DataDir: b.TempDir(), Durability: seglog.Options{Fsync: seglog.FsyncNever}}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	qname := "bench-mirror-q"
	conn, err := amqp.Dial("amqp://" + c.AddrFor(qname))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ch.QueueDeclare(qname, true, false, false, false, nil); err != nil {
		b.Fatal(err)
	}
	if err := ch.Confirm(false); err != nil {
		b.Fatal(err)
	}
	confirms := ch.NotifyPublish(make(chan amqp.Confirmation, 1))
	dc, err := ch.Consume(qname, "", true, false, false, false, nil)
	if err != nil {
		b.Fatal(err)
	}
	if factor >= 2 {
		// Only measure the replicated steady state: wait for the mirror
		// to be in sync so every confirm below is mirror-gated.
		deadline := time.Now().Add(10 * time.Second)
		for insync.Load()-insyncBase < 1 {
			if time.Now().After(deadline) {
				b.Fatal("mirror never reached in-sync")
			}
			time.Sleep(time.Millisecond)
		}
	}

	const bodySize = 4096
	body := make([]byte, bodySize)
	b.ReportAllocs()
	b.SetBytes(bodySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Publish("", qname, false, false, amqp.Publishing{Body: body}); err != nil {
			b.Fatal(err)
		}
		conf := <-confirms
		if !conf.Ack {
			b.Fatal("publish nacked")
		}
		<-dc
	}
}
