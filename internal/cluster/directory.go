package cluster

import (
	"sync"

	"ds2hpc/internal/telemetry"
)

// Cluster-plane telemetry. The probes live in telemetry.Default so
// `-watch` rollups and /snapshot.json surface the federation and
// failover activity of a run alongside the broker and client counters.
var (
	fedMsgs          = telemetry.Default.Counter("cluster.federation_msgs")
	fedBytes         = telemetry.Default.Counter("cluster.federation_bytes")
	fedLinks         = telemetry.Default.Gauge("cluster.federation_links")
	brokerRedirects  = telemetry.Default.Counter("cluster.redirects")
	ownershipChanges = telemetry.Default.Counter("cluster.ownership_changes")
)

// QueueInfo describes one queue the directory tracks: where it is
// mastered and whether it has a durable segment log to move on failover.
type QueueInfo struct {
	VHost   string
	Name    string
	Durable bool
	Node    int
}

// Directory is the cluster's metadata directory: the placement ring plus
// the queue registry and per-node addresses. Any node holds a reference
// and can therefore answer "who masters queue q" locally — the lookup a
// client connected to the wrong node triggers, and the one the federation
// layer uses to route forwarded publishes.
//
// Registered queues are pinned to the node that mastered them at
// declaration time. The ring only decides placement for queues the
// directory has not seen; this is what makes failover sticky — when a
// dead node's queues are reassigned, a later restart of that node does
// not fail the queues back.
type Directory struct {
	mu     sync.RWMutex
	ring   *Ring
	addrs  []string
	queues map[string]*QueueInfo // key: vhost+"\x00"+name
}

// NewDirectory creates a directory for an n-node cluster; all nodes
// start as ring members. Addresses are filled in via SetAddr as nodes
// begin listening.
func NewDirectory(n, vnodes int) *Directory {
	d := &Directory{
		ring:   NewRing(vnodes),
		addrs:  make([]string, n),
		queues: make(map[string]*QueueInfo),
	}
	for i := 0; i < n; i++ {
		d.ring.Add(i)
	}
	return d
}

func qkey(vhost, name string) string { return vhost + "\x00" + name }

// SetAddr records node i's listen address.
func (d *Directory) SetAddr(i int, addr string) {
	d.mu.Lock()
	d.addrs[i] = addr
	d.mu.Unlock()
}

// Addr returns node i's listen address ("" until it has listened).
func (d *Directory) Addr(i int) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if i < 0 || i >= len(d.addrs) {
		return ""
	}
	return d.addrs[i]
}

// Ring exposes the placement ring (for topology-version checks).
func (d *Directory) Ring() *Ring { return d.ring }

// Owner answers the master node for a queue: the pinned assignment if
// the queue is registered, the ring owner otherwise.
func (d *Directory) Owner(vhost, name string) int {
	d.mu.RLock()
	if q, ok := d.queues[qkey(vhost, name)]; ok {
		node := q.Node
		d.mu.RUnlock()
		return node
	}
	d.mu.RUnlock()
	if n, ok := d.ring.Owner(name); ok {
		return n
	}
	return 0
}

// Register pins a queue to a master node (idempotent; re-registering
// updates durability, which upgrades when a transient declare is
// repeated as durable on recovery).
func (d *Directory) Register(vhost, name string, durable bool, node int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := qkey(vhost, name)
	if q, ok := d.queues[k]; ok {
		q.Durable = durable
		q.Node = node
		return
	}
	d.queues[k] = &QueueInfo{VHost: vhost, Name: name, Durable: durable, Node: node}
}

// Queues returns a snapshot of every registered queue.
func (d *Directory) Queues() []QueueInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]QueueInfo, 0, len(d.queues))
	for _, q := range d.queues {
		out = append(out, *q)
	}
	return out
}

// MasterCount returns how many registered queues node i masters.
func (d *Directory) MasterCount(i int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, q := range d.queues {
		if q.Node == i {
			n++
		}
	}
	return n
}

// Busiest returns the ring member mastering the most registered queues
// (lowest index wins ties) — the node a queue-master kill script targets.
func (d *Directory) Busiest() (int, bool) {
	members := d.ring.Members()
	if len(members) == 0 {
		return 0, false
	}
	best, bestCount := -1, -1
	for _, m := range members {
		c := d.MasterCount(m)
		if c > bestCount {
			best, bestCount = m, c
		}
	}
	return best, best >= 0
}

// NodeDown retires node i from the ring and reassigns every queue it
// mastered to the surviving ring owners. It returns the moved queues
// with Node already set to the new master, so the failover driver can
// relocate durable segment logs and re-declare each queue there.
func (d *Directory) NodeDown(i int) []QueueInfo {
	return d.NodeDownWith(i, nil)
}

// NodeDownWith is NodeDown with a promotion chooser: for each queue the
// dead node mastered, choose may pick the new master (a replicated
// queue's most-advanced in-sync mirror). Returning ok=false — or a nil
// choose — falls back to the surviving ring owner.
func (d *Directory) NodeDownWith(i int, choose func(QueueInfo) (int, bool)) []QueueInfo {
	d.ring.Remove(i)
	d.mu.Lock()
	defer d.mu.Unlock()
	var moved []QueueInfo
	for _, q := range d.queues {
		if q.Node != i {
			continue
		}
		to, ok := 0, false
		if choose != nil {
			to, ok = choose(*q)
		}
		if !ok {
			to, ok = d.ring.Owner(q.Name)
		}
		if !ok {
			continue // last node down; nowhere to move
		}
		q.Node = to
		ownershipChanges.Inc()
		moved = append(moved, *q)
	}
	return moved
}

// Repin atomically re-pins a registered queue to a new master node —
// the rebalance-on-join path. It is a no-op for unknown queues or when
// the pin already points at node.
func (d *Directory) Repin(vhost, name string, node int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	q, ok := d.queues[qkey(vhost, name)]
	if !ok || q.Node == node {
		return false
	}
	q.Node = node
	ownershipChanges.Inc()
	return true
}

// NodeUp re-registers node i with the ring after a restart. Pinned
// assignments are untouched (no failback); the node only picks up
// queues declared after it rejoined. Idempotent for live members.
func (d *Directory) NodeUp(i int) {
	d.ring.Add(i)
}
