package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/pattern"
	"ds2hpc/internal/workload"
)

func testExperiment(pat PatternName) Experiment {
	p := fabric.ACE(0.2)
	p.LBSetupCost = 0
	p.RouteLookupLatency = 0
	w := workload.Dstream
	w.PayloadBytes = 2048
	return Experiment{
		Architecture:        core.DTS,
		Workload:            w,
		Pattern:             pat,
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 8,
		Runs:                2,
		Options:             core.Options{Nodes: 3, Profile: p, DisableClientShaping: true},
		Timeout:             30 * time.Second,
	}
}

func TestRunWorkSharing(t *testing.T) {
	pt, err := Run(testExperiment(PatternWorkSharing))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Infeasible {
		t.Fatal("DTS must be feasible")
	}
	// Two runs of 2x8 messages merged.
	if pt.Result.Consumed != 32 {
		t.Fatalf("consumed %d", pt.Result.Consumed)
	}
}

func TestRunFeedbackCollectsRTTs(t *testing.T) {
	pt, err := Run(testExperiment(PatternFeedback))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.RTTCount() != 32 {
		t.Fatalf("RTTs %d", pt.Result.RTTCount())
	}
}

func TestRunUnknownPattern(t *testing.T) {
	e := testExperiment("nope")
	_, err := Run(e)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

// TestValidationRejectsBadExperiments pins the up-front validation: broken
// experiments fail fast with the typed ErrBadSpec instead of hanging or
// failing deep inside a run — through Run, RunOn, and Sweep alike.
func TestValidationRejectsBadExperiments(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Experiment)
	}{
		{"negative producers", func(e *Experiment) { e.Producers = -1 }},
		{"negative consumers", func(e *Experiment) { e.Consumers = -4 }},
		{"zero messages", func(e *Experiment) { e.MessagesPerProducer = 0 }},
		{"negative messages", func(e *Experiment) { e.MessagesPerProducer = -8 }},
		{"negative runs", func(e *Experiment) { e.Runs = -1 }},
		{"unknown pattern", func(e *Experiment) { e.Pattern = "no-such-pattern" }},
		{"unknown workload", func(e *Experiment) { e.Workload.Name = "Xstream" }},
		// Only PayloadBytes survives the scenario translation; any other
		// customization would be silently undone, so it must be rejected.
		{"customized workload", func(e *Experiment) { e.Workload.MPI = !e.Workload.MPI }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := testExperiment(PatternWorkSharing)
			tc.mutate(&e)
			if _, err := Run(e); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Run err = %v, want ErrBadSpec", err)
			}
			if _, err := Sweep(e, []int{1}); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Sweep err = %v, want ErrBadSpec", err)
			}
		})
	}
}

// TestEveryPatternNameHasRoleGraph asserts the sim pattern names and the
// pattern registry stay in lockstep: every PatternName must resolve to a
// registered role graph, so an Experiment can never name a pattern the
// engine cannot run.
func TestEveryPatternNameHasRoleGraph(t *testing.T) {
	if len(AllPatterns) < 5 {
		t.Fatalf("AllPatterns = %v, expected at least the paper's four plus pipeline", AllPatterns)
	}
	for _, name := range AllPatterns {
		name := name
		t.Run(string(name), func(t *testing.T) {
			g, ok := pattern.Lookup(string(name))
			if !ok {
				t.Fatalf("pattern %q has no registered role graph (registered: %v)", name, pattern.Names())
			}
			if g.Name != string(name) {
				t.Fatalf("graph name %q != pattern name %q", g.Name, name)
			}
		})
	}
}

func TestStunnelSweepMarksInfeasible(t *testing.T) {
	e := testExperiment(PatternWorkSharing)
	e.Architecture = core.PRSStunnel
	e.Runs = 1
	e.MessagesPerProducer = 2
	points, err := Sweep(e, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	if points[0].Infeasible {
		t.Fatal("1 consumer must be feasible on stunnel")
	}
	if !points[1].Infeasible {
		t.Fatal("32 consumers must be infeasible on stunnel")
	}
}

func TestSweepScalesProducersWithConsumers(t *testing.T) {
	e := testExperiment(PatternWorkSharing)
	e.Runs = 1
	e.MessagesPerProducer = 2
	points, err := Sweep(e, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Experiment.Producers != pt.Experiment.Consumers {
			t.Fatalf("producers %d != consumers %d",
				pt.Experiment.Producers, pt.Experiment.Consumers)
		}
	}
}

func TestCoordinatorProtocol(t *testing.T) {
	const participants = 4
	coord, err := NewCoordinator("", participants, func(h HelloMsg) AssignMsg {
		return AssignMsg{
			Queue:    fmt.Sprintf("q-%d", h.ID%2),
			Endpoint: "amqp://127.0.0.1:5672",
			Messages: 10,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var wg sync.WaitGroup
	for i := 0; i < participants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			role := "producer"
			if i%2 == 1 {
				role = "consumer"
			}
			p, assign, err := Join(coord.Addr(), HelloMsg{Role: role, ID: i})
			if err != nil {
				t.Error(err)
				return
			}
			if assign.Queue == "" || assign.Messages != 10 {
				t.Errorf("assignment %+v", assign)
			}
			report := ReportMsg{Role: role, ID: i, Count: 10}
			if role == "consumer" {
				report.RTTNanos = []int64{1000000, 2000000}
			}
			if err := p.Report(report); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	res, err := coord.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed != 20 || res.Produced != 20 {
		t.Fatalf("aggregate %+v", res)
	}
	if res.RTTCount() != 4 {
		t.Fatalf("RTTs %d", res.RTTCount())
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	coord, err := NewCoordinator("", 1, func(h HelloMsg) AssignMsg { return AssignMsg{} })
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Wait(50 * time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

// TestCoordinatorHungParticipantDeadline covers the serve-side hardening:
// a participant that registers and then hangs must be disconnected by the
// per-participant read deadline instead of pinning its serve goroutine
// (and its connection) forever, and the timed-out Wait must still stop
// the metrics collector.
func TestCoordinatorHungParticipantDeadline(t *testing.T) {
	coord, err := NewCoordinator("", 1, func(h HelloMsg) AssignMsg {
		return AssignMsg{Queue: "q", Endpoint: "amqp://127.0.0.1:1", Messages: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetReadTimeout(100 * time.Millisecond)

	p, _, err := Join(coord.Addr(), HelloMsg{Role: "producer", ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The participant "hangs": no report. The coordinator must close the
	// connection once the report deadline passes — observable here as a
	// read on the participant side finishing instead of blocking.
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := p.conn.Read(buf)
		readDone <- err
	}()

	res, err := coord.Wait(300 * time.Millisecond)
	if err == nil || res != nil {
		t.Fatalf("Wait = (%v, %v), want timeout", res, err)
	}
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("participant read returned data, want connection close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung participant was never disconnected")
	}
	// The collector was stopped on the timeout path: a snapshot taken now
	// and one taken later must agree on the run duration.
	d1 := coord.col.Snapshot().Duration
	time.Sleep(20 * time.Millisecond)
	if d2 := coord.col.Snapshot().Duration; d2 != d1 {
		t.Fatalf("collector still running after timeout: %v != %v", d2, d1)
	}
}
