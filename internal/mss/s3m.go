package mss

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/cluster"
	"ds2hpc/internal/transport"
)

// ProvisionRequest is the body of the S3M provisioning call from §4.5:
//
//	curl -X POST .../streaming/rabbitmq/provision_cluster
//	  -H "Authorization: TOKEN"
//	  -d '{"kind":"general","name":"rabbitmq",
//	       "resourceSettings":{"cpus":12,"ram-gbs":32,"nodes":3,
//	                           "max-msg-size":536870912}}'
type ProvisionRequest struct {
	Kind             string           `json:"kind"`
	Name             string           `json:"name"`
	ResourceSettings ResourceSettings `json:"resourceSettings"`
}

// ResourceSettings sizes the provisioned cluster.
type ResourceSettings struct {
	CPUs       int   `json:"cpus"`
	RAMGBs     int   `json:"ram-gbs"`
	Nodes      int   `json:"nodes"`
	MaxMsgSize int64 `json:"max-msg-size"`
}

// ProvisionResponse returns the FQDN-based AMQPS URL users hand to their
// client connection API.
type ProvisionResponse struct {
	URL  string `json:"url"`
	FQDN string `json:"fqdn"`
	UID  string `json:"uid"`
}

// S3MConfig configures the provisioning API server.
type S3MConfig struct {
	// Addr is the API listen address.
	Addr string
	// Token is the project-scoped bearer token requests must present.
	Token string
	// Routes is the route controller new clusters register with.
	Routes *RouteController
	// LBAddr is the public load-balancer address returned in URLs.
	LBAddr string
	// Domain suffixes provisioned FQDNs (default "apps.olivine.local").
	Domain string
	// BrokerConfig templates the broker nodes of provisioned clusters.
	BrokerConfig broker.Config
	// Cluster selects data-plane options (federation, placement tuning)
	// for provisioned clusters.
	Cluster cluster.Options
}

// S3M is the Secure Scientific Service Mesh streaming API: it provisions
// broker clusters on demand and wires them into the MSS routing fabric.
type S3M struct {
	cfg S3MConfig
	srv *http.Server
	ln  net.Listener

	mu       sync.Mutex
	clusters map[string]*cluster.Cluster
	nextUID  int
}

// NewS3M starts the API server.
func NewS3M(cfg S3MConfig) (*S3M, error) {
	if cfg.Routes == nil {
		return nil, fmt.Errorf("mss: S3M needs a route controller")
	}
	if cfg.Domain == "" {
		cfg.Domain = "apps.olivine.local"
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &S3M{cfg: cfg, ln: ln, clusters: map[string]*cluster.Cluster{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/olcf/v1alpha/streaming/rabbitmq/provision_cluster", s.provision)
	mux.HandleFunc("/olcf/v1alpha/streaming/rabbitmq/deprovision_cluster", s.deprovision)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr is the API endpoint address.
func (s *S3M) Addr() string { return s.ln.Addr().String() }

// Close stops the API server and every cluster it provisioned.
func (s *S3M) Close() error {
	s.mu.Lock()
	cs := s.clusters
	s.clusters = map[string]*cluster.Cluster{}
	s.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
	return s.srv.Close()
}

// Cluster returns a provisioned cluster by FQDN (for tests/metrics).
func (s *S3M) Cluster(fqdn string) (*cluster.Cluster, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clusters[fqdn]
	return c, ok
}

func (s *S3M) authorized(r *http.Request) bool {
	if s.cfg.Token == "" {
		return true
	}
	return r.Header.Get("Authorization") == s.cfg.Token
}

func (s *S3M) provision(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorized(r) {
		http.Error(w, "invalid token", http.StatusUnauthorized)
		return
	}
	var req ProvisionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	nodes := req.ResourceSettings.Nodes
	if nodes <= 0 {
		nodes = 3
	}
	s.mu.Lock()
	s.nextUID++
	uidN := s.nextUID
	s.mu.Unlock()
	bcfg := s.cfg.BrokerConfig
	if req.ResourceSettings.RAMGBs > 0 {
		// 80% of broker RAM is reserved for payload queues (§5.2).
		bcfg.MemoryLimit = int64(req.ResourceSettings.RAMGBs) << 30 * 8 / 10
	}
	if bcfg.DataDir != "" {
		// Scope durable state per provisioned stream so concurrently
		// provisioned clusters never share segment logs.
		bcfg.DataDir = filepath.Join(bcfg.DataDir, fmt.Sprintf("stream-%d", uidN))
	}
	c, err := cluster.StartWithOptions(nodes, s.cfg.Cluster, func(int) broker.Config { return bcfg })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fqdn := fmt.Sprintf("%s-%d.%s", req.Name, uidN, s.cfg.Domain)
	uid := fmt.Sprintf("stream-%d", uidN)
	s.mu.Lock()
	s.clusters[fqdn] = c
	s.mu.Unlock()
	s.cfg.Routes.Register(fqdn, c.Addrs())
	// Per-pod routes (StatefulSet style) give clients queue-master
	// affinity: node-<i>.<fqdn> always reaches broker node i.
	for i, addr := range c.Addrs() {
		s.cfg.Routes.Register(NodeFQDN(i, fqdn), []string{addr})
	}
	json.NewEncoder(w).Encode(ProvisionResponse{
		URL:  fmt.Sprintf("amqps://%s:443", fqdn),
		FQDN: fqdn,
		UID:  uid,
	})
}

func (s *S3M) deprovision(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorized(r) {
		http.Error(w, "invalid token", http.StatusUnauthorized)
		return
	}
	var req struct {
		FQDN string `json:"fqdn"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	c, ok := s.clusters[req.FQDN]
	delete(s.clusters, req.FQDN)
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown cluster", http.StatusNotFound)
		return
	}
	s.cfg.Routes.Unregister(req.FQDN)
	c.Close()
	w.WriteHeader(http.StatusOK)
}

// NodeFQDN names the per-pod route for broker node i of a provisioned
// cluster. The node prefix stays within the cluster FQDN's first label so a
// single-label wildcard certificate (*.apps.olivine.local) still covers it.
func NodeFQDN(i int, fqdn string) string {
	return fmt.Sprintf("node-%d-%s", i, fqdn)
}

// FrontDoor returns the transport hops of the MSS front door: redirect
// to the load balancer's address and originate TLS with the provisioned
// FQDN as SNI. The resulting connection carries plaintext AMQP (the LB
// terminates TLS), so it composes with an "amqp://" URL.
func FrontDoor(lbAddr, fqdn string, clientTLS *tls.Config) []transport.Hop {
	cfg := clientTLS.Clone()
	cfg.ServerName = fqdn
	return []transport.Hop{transport.Target(lbAddr), transport.TLSClient(cfg)}
}
