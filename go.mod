module ds2hpc

go 1.22
