package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"ds2hpc/internal/broker"
	"ds2hpc/internal/wire"
)

// fakeHandshake completes the server side of a federation link handshake
// on nc and returns the frame reader positioned after confirm.select-ok,
// or nil on any failure. Shared by the benchmark's acking fakeMaster and
// the retry test's connection-dropping variant.
func fakeHandshake(nc net.Conn) *wire.FrameReader {
	var hdr [8]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		return nil
	}
	fr := wire.NewFrameReader(nc, wire.DefaultFrameMax+1024)
	w := wire.NewWriter()
	send := func(ch uint16, m wire.Method) bool {
		w.AppendMethodFrame(ch, m)
		return w.FlushFrames(nc, 1) == nil
	}
	expect := func() bool { // skip to the next method frame
		for {
			f, err := fr.ReadFrame()
			if err != nil {
				return false
			}
			if f.Type == wire.FrameMethod {
				return true
			}
		}
	}
	if !send(0, &wire.ConnectionStart{VersionMajor: 0, VersionMinor: 9, Mechanisms: "PLAIN", Locales: "en_US"}) {
		return nil
	}
	if !expect() { // start-ok
		return nil
	}
	if !send(0, &wire.ConnectionTune{ChannelMax: 2047, FrameMax: wire.DefaultFrameMax}) {
		return nil
	}
	if !expect() { // tune-ok
		return nil
	}
	if !expect() { // open
		return nil
	}
	if !send(0, &wire.ConnectionOpenOk{}) {
		return nil
	}
	if !expect() { // channel.open
		return nil
	}
	if !send(1, &wire.ChannelOpenOk{}) {
		return nil
	}
	if !expect() { // confirm.select
		return nil
	}
	if !send(1, &wire.ConfirmSelectOk{}) {
		return nil
	}
	return fr
}

// fakeMaster speaks just enough server-side AMQP to carry a federation
// link: it completes the handshake, then acks every basic.publish it sees
// by patching the delivery tag into one preallocated ack frame — the
// steady state allocates nothing, so the benchmark's allocs/op measures
// the forward path alone.
func fakeMaster(nc net.Conn) {
	defer nc.Close()
	fr := fakeHandshake(nc)
	if fr == nil {
		return
	}

	// Preassemble one basic.ack frame; the tag lives at byte 11 (7-byte
	// frame header + class/method words).
	var ackBuf bytes.Buffer
	aw := wire.NewWriter()
	aw.AppendMethodFrame(1, &wire.BasicAck{})
	if err := aw.FlushFrames(&ackBuf, 1); err != nil {
		return
	}
	ack := ackBuf.Bytes()

	var n uint64
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if f.Type != wire.FrameMethod || len(f.Payload) < 4 {
			continue
		}
		classID := binary.BigEndian.Uint16(f.Payload[0:2])
		methodID := binary.BigEndian.Uint16(f.Payload[2:4])
		if classID == wire.ClassBasic && methodID == 40 { // basic.publish
			n++
			binary.BigEndian.PutUint64(ack[11:19], n)
			if _, err := nc.Write(ack); err != nil {
				return
			}
		}
	}
}

// BenchmarkFederationForward measures one federated publish crossing a
// link to an acking master: zero-copy body append (the pooled message
// body rides the writer as borrowed iovecs) plus confirm bookkeeping.
// Steady state must be 0 allocs/op — the refcounted loan is shared across
// the link, never copied.
func BenchmarkFederationForward(b *testing.B) {
	// A real loopback socket, not net.Pipe: the unbuffered pipe deadlocks
	// the (forward holds mu writing) / (settle wants mu) / (master blocked
	// writing acks) triangle that kernel socket buffers absorb.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		srv, err := ln.Accept()
		if err != nil {
			return
		}
		fakeMaster(srv)
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	l, err := newFedLink(cli, ln.Addr().String(), "/", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.fail(io.EOF)

	const bodySize = 4096
	msg := broker.NewMessage("", "bench-q", wire.Properties{}, bodySize)
	msg.AppendBody(make([]byte, bodySize))
	defer msg.Release()

	b.ReportAllocs()
	b.SetBytes(bodySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.forward("", "bench-q", msg, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Let the tail of confirms drain so pending doesn't grow run to run.
	for {
		l.mu.Lock()
		outstanding := len(l.pending)
		l.mu.Unlock()
		if outstanding == 0 {
			break
		}
	}
}
