package pattern

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/metrics"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/workload"
)

// This file is the pattern role engine: every messaging pattern is declared
// as a Graph — broker objects to set up plus producer/consumer role
// behaviors — and executed by exactly one producer loop (runProducer) and
// one consumer loop (runConsumer). Confirm-window, batch-ack, prefetch and
// completion-counting plumbing therefore lives in one place, and a new
// pattern is a Build function returning a Topology value rather than a new
// pair of hand-rolled client loops.

// FlowMode selects the producer's flow-control discipline.
type FlowMode int

const (
	// FlowConfirm is the open-loop discipline: publisher confirms bound
	// the in-flight window and nacked (reject-publish) messages are
	// republished after a short backoff (§5.2 backpressure handling).
	FlowConfirm FlowMode = iota
	// FlowClosedLoop gates each publish on replies received: at most
	// Window messages are outstanding, and per-reply round-trip times are
	// recorded (the feedback and gather patterns).
	FlowClosedLoop
	// FlowPaced gates publishes on aggregate delivery progress: the
	// producer stays at most Window messages ahead of the consumers so no
	// subscriber queue overflows (broadcast without gather).
	FlowPaced
)

// Leg is one publish target of a producer instance. A producer opens one
// connection per leg and publishes every message on all of them (the
// broadcast pattern fans one message out across per-node legs).
type Leg struct {
	// Exchange is the target exchange; empty means the default exchange.
	Exchange string
	// Key is the routing key (the queue name on the default exchange).
	Key string
	// Anchor is the queue name used to select the endpoint to dial; it
	// defaults to Key.
	Anchor string
}

func (l Leg) anchor() string {
	if l.Anchor != "" {
		return l.Anchor
	}
	return l.Key
}

// ReplySource is a queue a closed-loop producer drains for replies, over
// the connection of an existing leg (reply queues are co-located with
// their work queue so the producer reuses that connection).
type ReplySource struct {
	Leg   int
	Queue string
}

// ReplySpec declares how a consumer role responds to each delivery.
type ReplySpec struct {
	// ToReplyTo routes the reply to the delivery's ReplyTo queue via the
	// default exchange (the feedback pattern's direct routing).
	ToReplyTo bool
	// Exchange/Key are the fixed reply target otherwise (the gather
	// exchange, or a downstream stage queue on the default exchange).
	Exchange string
	Key      string
	// Forward sends the delivery body onward (a pipeline stage); false
	// sends a small acknowledgement payload.
	Forward bool
}

// ConsumerRole declares one class of consuming clients.
type ConsumerRole struct {
	// Name labels consumer tags and errors.
	Name string
	// Count is the number of instances; zero means Config.Consumers.
	Count int
	// Queue maps an instance index to the queue it consumes.
	Queue func(i int) string
	// Reply, when non-nil, publishes a response per delivery.
	Reply *ReplySpec
	// Counts marks this role's deliveries as the run's completion and
	// pacing signal.
	Counts bool
	// ReplayFrom, when non-nil, attaches this role as a durable-log replay
	// consumer starting at the given queue offset (x-stream-offset): the
	// broker feeds it retained history and then the live tail, auto-acked.
	// Requires a durability-enabled deployment.
	ReplayFrom *int64
	// StartAfter delays this role's attach until the counting roles have
	// seen this many deliveries — a cold consumer joining after the hot
	// phase. Instances report ready immediately so the run can start.
	StartAfter int64
}

// ProducerRole declares the producing clients (Config.Producers instances).
type ProducerRole struct {
	// Name labels consumer tags and errors.
	Name string
	// Mode is the flow-control discipline.
	Mode FlowMode
	// Legs maps a producer index to its publish targets.
	Legs func(p int) []Leg
	// Replies maps a producer index to the queues it drains for replies
	// (closed-loop mode only).
	Replies func(p int) []ReplySource
	// RepliesPerMsg is the number of replies expected per message (1 for
	// feedback, the consumer count for gather). Zero means 1.
	RepliesPerMsg int
	// PacePerMsg is the number of counted deliveries one message causes
	// (paced mode), used to compute the pacing floor.
	PacePerMsg int
	// Props supplies pattern-specific message properties; the engine fills
	// Body, ContentType (if unset) and — for RTT-measuring modes — the
	// Timestamp.
	Props func(p int, seq uint64) amqp.Publishing
}

// ExchangeDecl declares one exchange.
type ExchangeDecl struct {
	Name string
	Kind string
}

// QueueDecl declares one queue. Bytes overrides Config.QueueBytes for this
// queue when positive (a pipeline's fan-in queue is sized for the whole
// run, for example).
type QueueDecl struct {
	Name  string
	Bytes int64
}

// BindingDecl binds a queue to an exchange.
type BindingDecl struct {
	Queue    string
	Exchange string
	Key      string
}

// Declarations is one group of broker-object declarations executed over a
// single connection, dialed via the Anchor queue's endpoint (RabbitMQ
// places classic queues on the node the declaring client is connected to,
// so grouping controls placement).
type Declarations struct {
	Anchor    string
	Exchanges []ExchangeDecl
	Queues    []QueueDecl
	Bindings  []BindingDecl
}

// Topology is a fully resolved pattern instance: what to declare, who the
// roles are, and when the run is complete.
type Topology struct {
	Declare  []Declarations
	Producer ProducerRole
	// Consumers lists the consumer roles (a pipeline has several stages).
	Consumers []ConsumerRole
	// WaitConsumed, when positive, keeps the run alive after producers
	// finish until the counting role has seen this many deliveries.
	// Closed-loop patterns complete through their reply budget instead.
	WaitConsumed int64
}

// Graph is a registered messaging pattern: a name plus a Build function
// resolving the declarative topology against a concrete Config (queue
// placement depends on the deployment's cluster hashing). Build may adjust
// Config sizing knobs (QueueBytes floors, for instance).
type Graph struct {
	Name string
	// SingleProducer forces Producers to 1 (the broadcast patterns).
	SingleProducer bool
	// NeedsDurability marks patterns that replay from durable queue logs;
	// running one on a deployment without durable storage fails fast.
	NeedsDurability bool
	Build           func(cfg *Config) (*Topology, error)
}

// ---------------------------------------------------------------- registry

var (
	registryMu sync.RWMutex
	registry   = map[string]*Graph{}
)

// Register adds a pattern graph to the registry; registering a duplicate
// name panics (patterns register from init functions).
func Register(g *Graph) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[g.Name]; dup {
		panic("pattern: duplicate graph " + g.Name)
	}
	registry[g.Name] = g
}

// Lookup resolves a registered pattern graph by name.
func Lookup(name string) (*Graph, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	g, ok := registry[name]
	return g, ok
}

// Names lists the registered pattern names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------- progress

// progress is a channel-signaled monotonic counter: waiters block on a
// channel closed the instant their threshold is reached, instead of
// sleep-polling. It backs both run completion and broadcast pacing. The
// per-delivery Add stays an atomic increment unless a waiter is parked
// (the count is bumped once per message by every consumer of a run, so
// it must not serialize them on a lock).
type progress struct {
	n       atomic.Int64
	waiting atomic.Bool
	mu      sync.Mutex
	waiters []*progressWaiter
}

type progressWaiter struct {
	at int64
	ch chan struct{}
}

func (p *progress) Add(k int64) {
	n := p.n.Add(k)
	if !p.waiting.Load() {
		// No waiter parked. A waiter registering concurrently re-checks
		// the count after setting waiting, so this increment is not lost.
		return
	}
	p.mu.Lock()
	var fire []*progressWaiter
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		if n >= w.at {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	p.waiters = keep
	if len(p.waiters) == 0 {
		p.waiting.Store(false)
	}
	p.mu.Unlock()
	for _, w := range fire {
		close(w.ch)
	}
}

func (p *progress) Load() int64 { return p.n.Load() }

// WaitAtLeast blocks until the counter reaches at or ctx ends.
func (p *progress) WaitAtLeast(ctx context.Context, at int64) error {
	if p.n.Load() >= at {
		return nil
	}
	w := &progressWaiter{at: at, ch: make(chan struct{})}
	p.mu.Lock()
	p.waiters = append(p.waiters, w)
	p.waiting.Store(true)
	// Re-check after publishing the waiter: an Add that raced past the
	// first check above must now either see waiting or be seen here.
	if p.n.Load() >= at {
		p.waiters = p.waiters[:len(p.waiters)-1]
		if len(p.waiters) == 0 {
			p.waiting.Store(false)
		}
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("pattern: %d/%d messages: %w", p.Load(), at, ctx.Err())
	}
}

// ---------------------------------------------------------------- engine

// Run executes the named registered pattern under cfg. The context bounds
// the whole run (in addition to cfg.Timeout) and cancels every role loop.
func Run(ctx context.Context, name string, cfg Config) (*metrics.Result, error) {
	g, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("pattern: unknown pattern %q (registered: %v)", name, Names())
	}
	return g.Run(ctx, cfg)
}

// engineProbes bundles the telemetry wiring of one run: the registry
// the per-role probes live in, the producer's in-flight gauge, and the
// confirm-latency histogram. Probes are resolved once per run; role
// loops capture shards so the per-event cost is one atomic add.
type engineProbes struct {
	registry *telemetry.Registry
	inflight *telemetry.Gauge
	// countingInflight selects how the in-flight gauge drains: counted
	// deliveries when a counting role exists, completed replies
	// otherwise (pure closed-loop patterns like feedback).
	countingInflight bool
	confirmLat       *telemetry.Histogram
}

// Run executes the graph under cfg.
func (g *Graph) Run(ctx context.Context, cfg Config) (*metrics.Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if g.SingleProducer {
		cfg.Producers = 1
	}
	if max := cfg.Deployment.MaxProducerConns(); max > 0 && cfg.Producers > max {
		return nil, fmt.Errorf("%w: %d producers > %d tunnel connections",
			ErrInfeasible, cfg.Producers, max)
	}
	if g.NeedsDurability && !cfg.Deployment.Durable() {
		return nil, fmt.Errorf("pattern: %s replays from durable queue logs; deploy with durability enabled", g.Name)
	}
	topo, err := g.Build(&cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	for _, d := range topo.Declare {
		if err := declareGroup(cfg, d); err != nil {
			return nil, err
		}
	}

	col := cfg.Collector
	if col == nil {
		col = metrics.NewCollector()
	}
	ep := &engineProbes{registry: cfg.probes()}
	ep.inflight = ep.registry.Gauge("pattern.inflight", "role="+topo.Producer.Name)
	ep.confirmLat = ep.registry.Histogram("pattern.confirm_latency_ns")
	for _, role := range topo.Consumers {
		if role.Counts {
			ep.countingInflight = true
		}
	}
	prog := &progress{}  // counted deliveries (completion + pacing)
	ready := &progress{} // consumer instances ready to receive
	var replied atomic.Int64

	// The budgeted runtime multiplexes every role channel onto pooled
	// connections; the direct runtime keeps the goroutine-per-client
	// model.
	var rt clientRuntime = directRuntime{}
	var mgr *sessionManager
	if cfg.GoroutineBudget > 0 {
		mgr = newSessionManager(&cfg)
		defer mgr.Close()
		rt = mgr
	}

	stop := make(chan struct{})
	totalConsumers := 0
	for _, role := range topo.Consumers {
		totalConsumers += role.instances(&cfg)
	}
	consumerErr := make(chan error, totalConsumers+1)
	var lightCores coreSet
	if mgr != nil {
		launchLightConsumers(ctx, &cfg, topo, mgr, col, ep, prog, ready, consumerErr, &lightCores)
	} else {
		for _, role := range topo.Consumers {
			role := role
			for i := 0; i < role.instances(&cfg); i++ {
				go func(i int) {
					consumerErr <- runConsumer(ctx, &cfg, role, i, col, ep, prog, ready, stop)
				}(i)
			}
		}
	}
	if err := ready.WaitAtLeast(ctx, int64(totalConsumers)); err != nil {
		close(stop)
		return nil, fmt.Errorf("pattern: consumers not ready: %w", firstErr(consumerErr, err))
	}
	if mgr != nil {
		// Errors during light attachment signal ready too; surface them
		// before producing into a half-attached fleet.
		select {
		case err := <-consumerErr:
			close(stop)
			return nil, fmt.Errorf("pattern: consumers not ready: %w", err)
		default:
		}
	}

	col.Start()
	produce := func(p int) error {
		return runProducer(ctx, &cfg, topo, rt, p, col, ep, prog, &replied)
	}
	if mgr != nil {
		err = runClientsBounded(cfg.Producers, mgr.workers, produce)
	} else {
		err = runClients(cfg.Producers, cfg.Workload.MPI, produce)
	}
	if err == nil && topo.WaitConsumed > 0 {
		err = prog.WaitAtLeast(ctx, topo.WaitConsumed)
	}
	col.Stop()
	close(stop)
	lightCores.stopAll()
	if err != nil {
		return nil, firstErr(consumerErr, err)
	}
	if topo.Producer.Mode == FlowClosedLoop {
		want := int64(cfg.Producers) * int64(cfg.MessagesPerProducer) * int64(topo.Producer.repliesPerMsg())
		if got := replied.Load(); got < want {
			return nil, fmt.Errorf("pattern: only %d/%d replies", got, want)
		}
	}
	return col.Snapshot(), nil
}

// firstErr prefers a real consumer failure over the generic timeout that
// usually follows it.
func firstErr(consumerErr <-chan error, fallback error) error {
	for {
		select {
		case err := <-consumerErr:
			if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				return fmt.Errorf("%w (consumer: %v)", fallback, err)
			}
		default:
			return fallback
		}
	}
}

func (r *ConsumerRole) instances(cfg *Config) int {
	if r.Count > 0 {
		return r.Count
	}
	return cfg.Consumers
}

func (r *ProducerRole) repliesPerMsg() int {
	if r.RepliesPerMsg > 0 {
		return r.RepliesPerMsg
	}
	return 1
}

// declareGroup declares one group of broker objects over one connection.
func declareGroup(cfg Config, d Declarations) error {
	conn, err := cfg.Deployment.ConsumerEndpoint(d.Anchor).Connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		return err
	}
	for _, x := range d.Exchanges {
		if err := ch.ExchangeDeclare(x.Name, x.Kind, true, false, false, false, nil); err != nil {
			return err
		}
	}
	for _, q := range d.Queues {
		args := cfg.queueArgs()
		if q.Bytes > 0 {
			args["x-max-length-bytes"] = q.Bytes
		}
		if _, err := ch.QueueDeclare(q.Name, true, false, false, false, args); err != nil {
			return err
		}
	}
	for _, b := range d.Bindings {
		if err := ch.QueueBind(b.Queue, b.Key, b.Exchange, false, nil); err != nil {
			return err
		}
	}
	return nil
}

// runConsumer is the single consumer loop: consume the role's queue with
// the shared prefetch window, verify payloads, optionally reply, batch-ack,
// and count deliveries toward completion.
func runConsumer(ctx context.Context, cfg *Config, role ConsumerRole, i int,
	col *metrics.Collector, ep *engineProbes, prog *progress, ready *progress, stop <-chan struct{}) error {
	queue := role.Queue(i)
	var conn *amqp.Connection
	var ch *amqp.Channel
	var deliveries <-chan amqp.Delivery
	var err error
	if role.StartAfter > 0 {
		// A deferred role (cold replay consumer) reports ready before it
		// attaches, so the run starts and its hot phase can produce the
		// deliveries the threshold waits for.
		ready.Add(1)
		if err := prog.WaitAtLeast(ctx, role.StartAfter); err != nil {
			return fmt.Errorf("pattern: %s %d: hot phase never reached %d: %w", role.Name, i, role.StartAfter, err)
		}
		if conn, ch, deliveries, err = consumerSetup(cfg, role, queue, i); err != nil {
			return fmt.Errorf("pattern: %s %d: %w", role.Name, i, err)
		}
	} else {
		conn, ch, deliveries, err = consumerSetup(cfg, role, queue, i)
		// The launcher blocks until every instance reports ready; signal
		// unconditionally so a failed instance surfaces as an error rather
		// than a hang.
		ready.Add(1)
		if err != nil {
			return fmt.Errorf("pattern: %s %d: %w", role.Name, i, err)
		}
	}
	defer conn.Close()

	// The delivery-handling body (verify, count, reply, batch-ack) is
	// shared with the budgeted runtime's callback consumers.
	core := newConsumerCore(cfg, &role, i, col, ep, prog)
	core.ch = ch
	for {
		select {
		case <-stop:
			core.stop()
			return nil
		case <-ctx.Done():
			core.stop()
			return ctx.Err()
		case d, ok := <-deliveries:
			if !ok {
				// The stream only closes mid-run when the connection died
				// (and no reconnect policy revived it); surface that so a
				// failed run names the dead consumer instead of a bare
				// deadline.
				return fmt.Errorf("pattern: %s %d: delivery stream closed", role.Name, i)
			}
			if err := core.handle(d); err != nil {
				return err
			}
		}
	}
}

func consumerSetup(cfg *Config, role ConsumerRole, queue string, i int) (*amqp.Connection, *amqp.Channel, <-chan amqp.Delivery, error) {
	conn, err := cfg.Deployment.ConsumerEndpoint(queue).Connect()
	if err != nil {
		return nil, nil, nil, err
	}
	ch, err := conn.Channel()
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	if err := ch.Qos(cfg.Prefetch, 0, false); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	// Replay roles attach as durable-log replay consumers: the broker
	// forces noAck and ignores prefetch credit, so consume accordingly.
	var args amqp.Table
	autoAck := false
	if role.ReplayFrom != nil {
		args = amqp.Table{"x-stream-offset": *role.ReplayFrom}
		autoAck = true
	}
	deliveries, err := ch.Consume(queue, fmt.Sprintf("%s-%d", role.Name, i), autoAck, false, false, false, args)
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	return conn, ch, deliveries, nil
}

// publishReply responds to one delivery per the role's ReplySpec, echoing
// the correlation id and timestamp so the producer can match the reply and
// compute its round-trip time.
func publishReply(ch *amqp.Channel, r *ReplySpec, d amqp.Delivery) error {
	exchange, key := r.Exchange, r.Key
	if r.ToReplyTo {
		if d.ReplyTo == "" {
			return nil
		}
		exchange, key = "", d.ReplyTo
	}
	pub := amqp.Publishing{
		CorrelationID: d.CorrelationID,
		Timestamp:     d.Timestamp,
		Body:          []byte("ok"),
	}
	if r.Forward {
		pub.ContentType = d.ContentType
		pub.Body = d.Body
	}
	return ch.Publish(exchange, key, false, false, pub)
}

// runProducer is the single producer loop. The flow mode decides how each
// publish is admitted (confirm slot, closed-loop window, pacing floor) and
// how the instance completes (confirm drain, reply budget, nothing). The
// runtime decides what a "connection" is: a dedicated socket per leg, or
// a session on a pooled one.
func runProducer(ctx context.Context, cfg *Config, topo *Topology, rt clientRuntime, p int,
	col *metrics.Collector, ep *engineProbes, prog *progress, replied *atomic.Int64) error {
	role := &topo.Producer
	produced := col.ProducedShard(p)
	roleProduced := ep.registry.Counter("pattern.produced", "role="+role.Name).Shard(p)
	// Each published message raises the in-flight gauge by the counted
	// deliveries it will cause; the counting role (or the reply tally,
	// for pure closed-loop patterns) lowers it as they land.
	inflightPerMsg := int64(1)
	if ep.countingInflight && role.PacePerMsg > 1 {
		inflightPerMsg = int64(role.PacePerMsg)
	}
	legs := role.Legs(p)
	if len(legs) == 0 {
		return fmt.Errorf("pattern: %s %d: no publish legs", role.Name, p)
	}
	rcs := make([]roleChan, len(legs))
	chans := make([]*amqp.Channel, len(legs))
	for j, leg := range legs {
		rc, err := rt.open(cfg.Deployment.ProducerEndpoint(leg.anchor()))
		if err != nil {
			return err
		}
		defer rc.Close()
		rcs[j], chans[j] = rc, rc.Channel()
	}

	var cw *confirmWindow
	var err error
	if role.Mode == FlowConfirm {
		if len(legs) != 1 {
			return fmt.Errorf("pattern: %s: confirm mode supports exactly one leg", role.Name)
		}
		if cw, err = newConfirmWindow(chans[0], cfg.Window, ep.confirmLat); err != nil {
			return err
		}
	}

	budget := int64(cfg.MessagesPerProducer)
	perMsg := role.repliesPerMsg()
	var window chan struct{}
	var done chan error
	if role.Mode == FlowClosedLoop {
		window = make(chan struct{}, cfg.Window)
		done = make(chan error, 1)
		closeReplies, err := drainReplies(ctx, cfg, role, p, rcs, col, ep, replied, window, done, budget*int64(perMsg))
		if closeReplies != nil {
			// Releasing the reply channels when this producer finishes
			// ends their drainer goroutines — on a pooled runtime the
			// physical connection outlives the producer by design.
			defer closeReplies()
		}
		if err != nil {
			return err
		}
	}

	gen := workload.NewGenerator(cfg.Workload, p)
	send := func(seq uint64) error {
		body, err := gen.Payload(seq)
		if err != nil {
			return err
		}
		var pub amqp.Publishing
		if role.Props != nil {
			pub = role.Props(p, seq)
		}
		if pub.ContentType == "" {
			pub.ContentType = "application/octet-stream"
		}
		pub.Body = body
		if role.Mode != FlowConfirm {
			// RTT-measuring and paced modes stamp the send time; every
			// leg carries the same stamp so fan-out replies agree.
			pub.Timestamp = uint64(time.Now().UnixNano())
		}
		if cw != nil {
			return cw.publish(ctx, legs[0].Exchange, legs[0].Key, seq, pub)
		}
		for j, leg := range legs {
			if err := chans[j].Publish(leg.Exchange, leg.Key, false, false, pub); err != nil {
				return err
			}
		}
		return nil
	}

	for seq := uint64(0); seq < uint64(cfg.MessagesPerProducer); seq++ {
		switch role.Mode {
		case FlowClosedLoop:
			select {
			case window <- struct{}{}: // cap outstanding requests
			case <-ctx.Done():
				return fmt.Errorf("pattern: %s %d stalled at message %d: %w", role.Name, p, seq, ctx.Err())
			}
		case FlowPaced:
			if seq >= uint64(cfg.Window) {
				// Stay at most Window messages ahead of the aggregate
				// delivery count so no subscriber queue overflows.
				floor := int64(seq-uint64(cfg.Window)+1) * int64(role.PacePerMsg)
				if err := prog.WaitAtLeast(ctx, floor); err != nil {
					return fmt.Errorf("pattern: %s stalled: %w", role.Name, err)
				}
			}
		default:
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := send(seq); err != nil {
			return err
		}
		ep.inflight.Add(inflightPerMsg)
		if cw != nil {
			// Republish anything the broker rejected under backpressure.
			for _, again := range cw.takeNacked() {
				col.AddError()
				time.Sleep(time.Millisecond) // §5.2: detect, back off, retry
				if err := send(again); err != nil {
					return err
				}
			}
		}
		produced.Add(1)
		roleProduced.Inc()
	}

	switch role.Mode {
	case FlowConfirm:
		// Flush the window, retrying stragglers until everything lands.
		for {
			if err := cw.drain(ctx); err != nil {
				return err
			}
			retries := cw.takeNacked()
			if len(retries) == 0 {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("pattern: %s %d could not place %d messages: %w", role.Name, p, len(retries), err)
			}
			for _, again := range retries {
				col.AddError()
				time.Sleep(2 * time.Millisecond)
				if err := send(again); err != nil {
					return err
				}
			}
		}
	case FlowClosedLoop:
		select {
		case err := <-done:
			return err
		case <-ctx.Done():
			return fmt.Errorf("pattern: %s %d timed out awaiting replies: %w", role.Name, p, ctx.Err())
		}
	}
	return nil
}

// drainReplies starts the closed-loop reply pump: one consuming channel per
// reply source feeding a shared tally that records RTTs, releases a window
// slot per completed message, and signals done at the reply budget. Reply
// channels open as siblings of the source's leg (same physical transport,
// whether owned or pooled); the returned closer — non-nil even on error —
// releases them once the producer completes. A reply stream closing
// mid-run (connection death) fails the producer immediately rather than
// letting it wait out the run deadline.
func drainReplies(ctx context.Context, cfg *Config, role *ProducerRole, p int,
	rcs []roleChan, col *metrics.Collector, ep *engineProbes, replied *atomic.Int64,
	window chan struct{}, done chan error, want int64) (func(), error) {
	sources := role.Replies(p)
	events := make(chan uint64, 4*cfg.Window)
	streamClosed := make(chan int, len(sources))
	var replyChans []roleChan
	closeAll := func() {
		for _, rc := range replyChans {
			rc.Close()
		}
	}
	for k, src := range sources {
		sib, err := rcs[src.Leg].Sibling()
		if err != nil {
			return closeAll, err
		}
		replyChans = append(replyChans, sib)
		rch := sib.Channel()
		deliveries, err := rch.Consume(src.Queue, fmt.Sprintf("%s-reply-%d-%d", role.Name, p, k), true, false, false, false, nil)
		if err != nil {
			return closeAll, err
		}
		k := k
		go func() {
			for d := range deliveries {
				select {
				case events <- d.Timestamp:
				case <-ctx.Done():
					return
				}
			}
			streamClosed <- k
		}()
	}
	perMsg := int64(role.repliesPerMsg())
	go func() {
		var got int64
		// take tallies one reply; true once the budget is met.
		take := func(ts uint64) bool {
			rtt := time.Duration(time.Now().UnixNano() - int64(ts))
			if rtt > 0 {
				col.AddRTT(rtt)
			}
			replied.Add(1)
			got++
			if got%perMsg == 0 {
				<-window
				if !ep.countingInflight {
					// No counting role drains the in-flight gauge for
					// this pattern; a completed message does.
					ep.inflight.Add(-1)
				}
			}
			return got >= want
		}
		for {
			select {
			case ts := <-events:
				if take(ts) {
					done <- nil
					return
				}
			case k := <-streamClosed:
				// Drain replies already buffered before declaring the
				// stream dead — the close may race the final deliveries.
				for {
					select {
					case ts := <-events:
						if take(ts) {
							done <- nil
							return
						}
						continue
					default:
					}
					break
				}
				done <- fmt.Errorf("pattern: %s %d: reply stream %d closed after %d/%d replies",
					role.Name, p, k, got, want)
				return
			case <-ctx.Done():
				done <- fmt.Errorf("pattern: %s %d: %d/%d replies: %w", role.Name, p, got, want, ctx.Err())
				return
			}
		}
	}()
	return closeAll, nil
}
