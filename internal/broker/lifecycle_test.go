package broker

import (
	"testing"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/wire"
)

// newManaged builds a managed message with a pooled body of n bytes.
func newManaged(t *testing.T, key string, n int) *Message {
	t.Helper()
	m := NewMessage("", key, wire.Properties{}, n)
	m.AppendBody(make([]byte, n))
	return m
}

// checkBalance asserts the wire pool's outstanding loan bytes are back to
// the captured baseline — the invariant every message exit path must
// restore.
func checkBalance(t *testing.T, label string, base int64) {
	t.Helper()
	if got := wire.LoanedBytes(); got != base {
		t.Fatalf("%s: loaned bytes = %d, want baseline %d (refcount leak or double release)", label, got, base)
	}
}

// TestRefcountLifecycleBalance drives a managed message through every
// broker exit path — ack (Get + release), nack+requeue, drop-head
// eviction, reject-publish, purge, and queue delete — and asserts the
// pool balance returns to zero after each.
func TestRefcountLifecycleBalance(t *testing.T) {
	base := wire.LoanedBytes()

	t.Run("route-to-nowhere", func(t *testing.T) {
		vh := NewVHost("/")
		m := newManaged(t, "absent", 1024)
		if routed, err := vh.Publish("", "absent", m); err != nil || routed != 0 {
			t.Fatalf("routed=%d err=%v", routed, err)
		}
		m.Release()
		checkBalance(t, "unrouted publish", base)
	})

	t.Run("deliver-and-ack", func(t *testing.T) {
		vh := NewVHost("/")
		q, _ := vh.DeclareQueue("ack-q", false, false, false, false, nil)
		m := newManaged(t, "ack-q", 1024)
		if _, err := vh.Publish("", "ack-q", m); err != nil {
			t.Fatal(err)
		}
		m.Release()
		got, _, _, _, ok := q.Get()
		if !ok {
			t.Fatal("message not routed")
		}
		got.Release() // the ack path's release of the queue reference
		checkBalance(t, "ack", base)
	})

	t.Run("fanout-shared", func(t *testing.T) {
		vh := NewVHost("/")
		q1, _ := vh.DeclareQueue("fan-1", false, false, false, false, nil)
		q2, _ := vh.DeclareQueue("fan-2", false, false, false, false, nil)
		e, _ := vh.DeclareExchange("fan", KindFanout, false)
		e.Bind(q1, "")
		e.Bind(q2, "")
		m := newManaged(t, "", 4096)
		if routed, err := vh.Publish("fan", "", m); err != nil || routed != 2 {
			t.Fatalf("routed=%d err=%v", routed, err)
		}
		m.Release()
		m1, _, _, _, _ := q1.Get()
		m1.Release()
		checkBalance(t, "fanout after first queue only", base+int64(cap(*m.loan))) // second queue still holds it
		m2, _, _, _, _ := q2.Get()
		m2.Release()
		checkBalance(t, "fanout", base)
	})

	t.Run("nack-requeue-then-ack", func(t *testing.T) {
		vh := NewVHost("/")
		q, _ := vh.DeclareQueue("rq-q", false, false, false, false, nil)
		m := newManaged(t, "rq-q", 1024)
		if _, err := vh.Publish("", "rq-q", m); err != nil {
			t.Fatal(err)
		}
		m.Release()
		got, _, _, _, _ := q.Get()
		q.Requeue(got, offNone) // nack: the reference moves back to the queue
		again, _, redelivered, _, ok := q.Get()
		if !ok || !redelivered || again != got {
			t.Fatalf("requeue lost the message: ok=%v redelivered=%v", ok, redelivered)
		}
		again.Release()
		checkBalance(t, "nack+requeue", base)
	})

	t.Run("drop-head-overflow", func(t *testing.T) {
		vh := NewVHost("/")
		q, err := vh.DeclareQueue("dh-q", false, false, false, false, wire.Table{
			"x-max-length": int32(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			m := newManaged(t, "dh-q", 2048)
			if _, err := vh.Publish("", "dh-q", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		if q.Stats().Dropped != 2 {
			t.Fatalf("Dropped = %d, want 2", q.Stats().Dropped)
		}
		last, _, _, _, _ := q.Get()
		last.Release()
		checkBalance(t, "drop-head", base)
	})

	t.Run("reject-publish", func(t *testing.T) {
		vh := NewVHost("/")
		if _, err := vh.DeclareQueue("rp-q", false, false, false, false, wire.Table{
			"x-max-length": int32(1),
			"x-overflow":   OverflowRejectPublish,
		}); err != nil {
			t.Fatal(err)
		}
		m1 := newManaged(t, "rp-q", 512)
		if _, err := vh.Publish("", "rp-q", m1); err != nil {
			t.Fatal(err)
		}
		m1.Release()
		m2 := newManaged(t, "rp-q", 512)
		if _, err := vh.Publish("", "rp-q", m2); err != ErrQueueFull {
			t.Fatalf("err = %v, want ErrQueueFull", err)
		}
		m2.Release()
		q, _ := vh.Queue("rp-q")
		kept, _, _, _, _ := q.Get()
		kept.Release()
		checkBalance(t, "reject-publish", base)
	})

	t.Run("purge", func(t *testing.T) {
		vh := NewVHost("/")
		q, _ := vh.DeclareQueue("pg-q", false, false, false, false, nil)
		for i := 0; i < 5; i++ {
			m := newManaged(t, "pg-q", 1024)
			if _, err := vh.Publish("", "pg-q", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		if n := q.Purge(); n != 5 {
			t.Fatalf("Purge = %d, want 5", n)
		}
		checkBalance(t, "purge", base)
	})

	t.Run("queue-delete", func(t *testing.T) {
		vh := NewVHost("/")
		if _, err := vh.DeclareQueue("del-q", false, false, false, false, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			m := newManaged(t, "del-q", 1024)
			if _, err := vh.Publish("", "del-q", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		if n, err := vh.DeleteQueue("del-q", false, false); err != nil || n != 3 {
			t.Fatalf("delete: n=%d err=%v", n, err)
		}
		checkBalance(t, "queue delete", base)
	})

	t.Run("requeue-after-delete", func(t *testing.T) {
		vh := NewVHost("/")
		q, _ := vh.DeclareQueue("rd-q", false, false, false, false, nil)
		m := newManaged(t, "rd-q", 1024)
		if _, err := vh.Publish("", "rd-q", m); err != nil {
			t.Fatal(err)
		}
		m.Release()
		got, _, _, _, _ := q.Get()
		if _, err := vh.DeleteQueue("rd-q", false, false); err != nil {
			t.Fatal(err)
		}
		// A teardown requeue racing the delete must release, not park.
		q.Requeue(got, offNone)
		checkBalance(t, "requeue after delete", base)
	})
}

// newDurableVHost builds a vhost whose durable declares open segment logs
// under a test temp dir, without needing a full Server.
func newDurableVHost(t *testing.T, opts seglog.Options) *VHost {
	t.Helper()
	vh := NewVHost("/")
	vh.logDir = t.TempDir()
	vh.logOpts = opts
	return vh
}

// TestDurableLifecycleBalance drives pooled bodies through the durable
// exit paths the plain lifecycle test can't reach — spill to the segment
// log, crash, recovery restore, compaction after full settle, and durable
// queue delete — and asserts the wire-loan balance returns to baseline
// after each.
func TestDurableLifecycleBalance(t *testing.T) {
	base := wire.LoanedBytes()

	t.Run("spill-deliver-commit", func(t *testing.T) {
		vh := newDurableVHost(t, seglog.Options{})
		q, err := vh.DeclareQueue("d-q", true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := newManaged(t, "d-q", 2048)
		if _, err := vh.Publish("", "d-q", m); err != nil {
			t.Fatal(err)
		}
		m.Release()
		if q.log.DiskBytes() == 0 {
			t.Fatal("durable publish wrote no bytes to the segment log")
		}
		got, off, _, _, ok := q.Get()
		if !ok {
			t.Fatal("durable message not delivered")
		}
		got.Release()
		q.Commit(off)
		checkBalance(t, "durable deliver+commit", base)
	})

	t.Run("crash-restore-delete", func(t *testing.T) {
		vh := newDurableVHost(t, seglog.Options{Fsync: seglog.FsyncAlways})
		q, err := vh.DeclareQueue("cr-q", true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			m := newManaged(t, "cr-q", 1024)
			if _, err := vh.Publish("", "cr-q", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		// Settle one so recovery has an acked prefix to drop.
		m0, off, _, _, _ := q.Get()
		m0.Release()
		q.Commit(off)

		// Hard-kill the node: ready bodies go back to the pool, disk keeps
		// the kill-point state.
		vh.crash()
		checkBalance(t, "after crash", base)

		// Restore into a fresh vhost over the same directory.
		vh2 := NewVHost("/")
		vh2.logDir = vh.logDir
		vh2.logOpts = vh.logOpts
		q2, err := vh2.DeclareQueue("cr-q", true, false, false, false, nil)
		if err != nil {
			t.Fatalf("recovery declare: %v", err)
		}
		if q2.Len() != 3 {
			t.Fatalf("recovered %d messages, want 3", q2.Len())
		}
		// Deleting the durable queue must release every restored body and
		// remove the on-disk log.
		if _, err := vh2.DeleteQueue("cr-q", false, false); err != nil {
			t.Fatal(err)
		}
		checkBalance(t, "durable delete after restore", base)
	})

	t.Run("compaction-after-settle", func(t *testing.T) {
		// Tiny segments force rotation; settling everything must let
		// head-compaction reclaim the sealed prefix without disturbing the
		// loan balance.
		vh := newDurableVHost(t, seglog.Options{SegmentBytes: 1 << 10})
		q, err := vh.DeclareQueue("cp-q", true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			m := newManaged(t, "cp-q", 512)
			if _, err := vh.Publish("", "cp-q", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		if q.log.SegmentCount() < 2 {
			t.Fatalf("expected rotation, have %d segment(s)", q.log.SegmentCount())
		}
		before := q.log.DiskBytes()
		for q.Len() > 0 {
			m, off, _, _, _ := q.Get()
			m.Release()
			q.Commit(off)
		}
		if after := q.log.DiskBytes(); after >= before {
			t.Fatalf("compaction reclaimed nothing: %d -> %d bytes", before, after)
		}
		checkBalance(t, "compaction", base)
	})

	t.Run("replay-consumer-drain", func(t *testing.T) {
		vh := newDurableVHost(t, seglog.Options{RetainAll: true})
		q, err := vh.DeclareQueue("rp-d", true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			m := newManaged(t, "rp-d", 768)
			if _, err := vh.Publish("", "rp-d", m); err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
		cons, err := q.AddReplayConsumer("cold", 0)
		if err != nil {
			t.Fatal(err)
		}
		// Receive the full history; the replay loop then blocks tailing the
		// log with no message in hand, so cancellation holds no references.
		for i := 0; i < 3; i++ {
			d := <-cons.outbox
			d.msg.Release()
		}
		q.RemoveConsumer(cons)
		// The ready copies are still parked in the queue; delete releases
		// them and the log.
		if _, err := vh.DeleteQueue("rp-d", false, false); err != nil {
			t.Fatal(err)
		}
		checkBalance(t, "replay drain", base)
	})
}

// TestMessageDoubleReleasePanics locks in the over-release tripwire: a
// Release (or Retain) after the final release panics instead of silently
// corrupting the pools.
func TestMessageDoubleReleasePanics(t *testing.T) {
	m := NewMessage("", "q", wire.Properties{}, 64)
	m.Release()
	mustPanic(t, "double release", func() { m.Release() })

	m2 := NewMessage("", "q", wire.Properties{}, 64)
	m2.Release()
	mustPanic(t, "retain after release", func() { m2.Retain() })
}

// TestUnmanagedMessageNoOps locks in the compatibility contract: composite
// literal messages ignore the refcount lifecycle entirely.
func TestUnmanagedMessageNoOps(t *testing.T) {
	base := wire.LoanedBytes()
	m := &Message{RoutingKey: "q", Body: []byte("x")}
	m.Retain()
	m.Release()
	m.Release() // still a no-op, never a panic
	checkBalance(t, "unmanaged", base)
}

func mustPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	f()
}
