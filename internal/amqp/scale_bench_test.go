package amqp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ds2hpc/internal/broker"
)

// BenchmarkClientScale measures the pooled client runtime at fleet sizes
// the goroutine-per-client model cannot reach: n logical clients (half
// publishers, half ConsumeFunc consumers) multiplexed onto
// ⌈n/ChannelMax⌉ physical connections against an in-process broker.
// ns/op is the cost per delivered message at steady state; bytes/client
// is the resident heap cost of one idle logical client, broker side
// included (the ≤ 4 KiB/client scale target). Run with a fixed iteration
// count (-benchtime Nx) so the fleet is built once per size.
func BenchmarkClientScale(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			if testing.Short() && n > 10000 {
				b.Skipf("skipping %d clients in short mode", n)
			}
			benchClientScale(b, n)
		})
	}
}

func benchClientScale(b *testing.B, clients int) {
	s, err := broker.Listen(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	const queues = 16
	consumers := clients / 2
	producers := clients - consumers

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// SessionsPerConn 0 packs each connection to its negotiated channel
	// limit — the fewest sockets the fleet can ride on.
	pool := NewClientPool(PoolConfig{URL: "amqp://" + s.Addr()})
	defer pool.Close()

	setup, err := pool.Session()
	if err != nil {
		b.Fatal(err)
	}
	for q := 0; q < queues; q++ {
		if _, err := setup.QueueDeclare(fmt.Sprintf("scale-q-%d", q), false, false, false, false, nil); err != nil {
			b.Fatal(err)
		}
	}

	var delivered atomic.Int64
	// Fleet build-out, parallelized: session opens are sync round-trips,
	// so one goroutine would serialize 10⁵ of them.
	openAll := func(n int, attach func(i int, sess *Session) error) []*Session {
		sessions := make([]*Session, n)
		workers := 64
		if workers > n {
			workers = n
		}
		idx := make(chan int, workers)
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					sess, err := pool.Session()
					if err == nil && attach != nil {
						err = attach(i, sess)
					}
					if err != nil {
						select {
						case errs <- fmt.Errorf("client %d: %w", i, err):
						default:
						}
						return
					}
					sessions[i] = sess
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}
		return sessions
	}

	openAll(consumers, func(i int, sess *Session) error {
		_, err := sess.ConsumeFunc(fmt.Sprintf("scale-q-%d", i%queues), fmt.Sprintf("c-%d", i),
			true, false, false, nil, func(Delivery) { delivered.Add(1) })
		return err
	})
	prods := openAll(producers, nil)

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var bytesPerClient float64
	if after.HeapAlloc > before.HeapAlloc {
		bytesPerClient = float64(after.HeapAlloc-before.HeapAlloc) / float64(clients)
	}
	conns, sessions := pool.Stats()

	body := make([]byte, 64)
	// Bound the broker-resident backlog so the loop measures steady-state
	// delivery, not unbounded enqueue.
	const window = 1024
	wait := func(until int64) {
		for delivered.Load() < until {
			time.Sleep(20 * time.Microsecond)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait(int64(i) - window)
		sess := prods[i%len(prods)]
		if err := sess.Publish("", fmt.Sprintf("scale-q-%d", i%queues), false, false, Publishing{Body: body}); err != nil {
			b.Fatal(err)
		}
	}
	wait(int64(b.N))
	b.StopTimer()
	b.SetBytes(int64(len(body)))
	// ResetTimer deletes user metrics, so the fleet-cost numbers (taken
	// before the timed loop) are reported here.
	b.ReportMetric(bytesPerClient, "bytes/client")
	b.ReportMetric(float64(conns), "conns")
	b.ReportMetric(float64(sessions)/float64(conns), "sessions/conn")
}
