package scistream

import (
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ds2hpc/internal/netem"
	"ds2hpc/internal/telemetry"
	"ds2hpc/internal/tlsutil"
	"ds2hpc/internal/transport"
)

// tierPRS tags every S2DS relay's byte series so PRS proxy throughput
// exports as transport.relay_tier_bytes{tier=prs}.
var tierPRS = telemetry.Intern("tier=prs")

// Tunnel selects the overlay tunnel driver.
type Tunnel string

// Tunnel drivers evaluated in the paper (§4.4, §5.3).
const (
	TunnelStunnel Tunnel = "stunnel"
	TunnelHAProxy Tunnel = "haproxy"
)

// StunnelMaxStreams is the concurrent-connection ceiling observed for the
// Stunnel configuration in the paper ("a maximum of 16 simultaneous
// connections in our setup").
const StunnelMaxStreams = 16

// DialFunc dials a transport connection.
type DialFunc = transport.DialFunc

// ---------------------------------------------------------------- inbound

// InboundConfig configures the WAN-facing (consumer-side) S2DS proxy that
// terminates the overlay tunnel and forwards to the streaming service.
type InboundConfig struct {
	// WANAddr is the listen address exposed over the WAN ("0" port ok).
	WANAddr string
	// Targets are the streaming-service endpoints, used round-robin.
	Targets []string
	// Tunnel selects the driver; it must match the outbound side.
	Tunnel Tunnel
	// Identity provides the proxy certificate for mTLS on the tunnel.
	Identity *tlsutil.Identity
	// MaxStreams caps concurrent relayed connections (Stunnel limit).
	MaxStreams int
	// WANLink shapes bytes written back toward the WAN.
	WANLink *netem.Link
	// ProcLink models the proxy's processing capacity; all relayed
	// traffic through this S2DS contends for it. This is the mechanism
	// behind PRS's throughput plateau at higher consumer counts.
	ProcLink *netem.Link
	// FlowLink, for the Stunnel driver, caps the relay's long-lived TLS
	// flows at a single flow's bandwidth. The link is shared across all
	// tunnels the S2CS launches (stunnel is a single process), which
	// keeps Stunnel throughput flat as consumers scale (§5.3).
	FlowLink *netem.Link
	// DialTarget dials the streaming service (default: plain TCP).
	DialTarget DialFunc
}

// Inbound is a running consumer-side S2DS.
type Inbound struct {
	cfg      InboundConfig
	ln       net.Listener
	next     atomic.Uint32
	active   atomic.Int32
	relayed  atomic.Uint64
	closed   chan struct{}
	closeOne sync.Once
}

// NewInbound starts the WAN-facing proxy.
func NewInbound(cfg InboundConfig) (*Inbound, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("scistream: inbound proxy needs at least one target")
	}
	if cfg.Identity == nil {
		return nil, fmt.Errorf("scistream: inbound proxy needs a TLS identity")
	}
	if cfg.DialTarget == nil {
		cfg.DialTarget = net.Dial
	}
	if cfg.Tunnel == TunnelStunnel && cfg.MaxStreams == 0 {
		cfg.MaxStreams = StunnelMaxStreams
	}
	addr := cfg.WANAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := tls.Listen("tcp", addr, cfg.Identity.MutualServerConfig())
	if err != nil {
		return nil, err
	}
	in := &Inbound{cfg: cfg, ln: ln, closed: make(chan struct{})}
	go in.acceptLoop()
	return in, nil
}

// Addr is the WAN-facing address of the proxy.
func (in *Inbound) Addr() string { return in.ln.Addr().String() }

// ActiveConns reports currently relayed connections.
func (in *Inbound) ActiveConns() int { return int(in.active.Load()) }

// Relayed reports total relayed connections.
func (in *Inbound) Relayed() uint64 { return in.relayed.Load() }

// Close stops the proxy.
func (in *Inbound) Close() error {
	in.closeOne.Do(func() { close(in.closed) })
	return in.ln.Close()
}

func (in *Inbound) acceptLoop() {
	for {
		c, err := in.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			// Complete the mTLS handshake before relaying so untrusted
			// peers are rejected up front.
			if tc, ok := c.(*tls.Conn); ok {
				if err := tc.Handshake(); err != nil {
					c.Close()
					return
				}
			}
			if in.cfg.WANLink != nil {
				c = netem.Wrap(c, in.cfg.WANLink)
			}
			switch in.cfg.Tunnel {
			case TunnelStunnel:
				if in.cfg.FlowLink != nil {
					c = netem.Wrap(c, in.cfg.FlowLink)
				}
				in.serveMux(c)
			default:
				in.serveDirect(c)
			}
		}(c)
	}
}

// serveMux handles one long-lived tunnel connection carrying many streams.
func (in *Inbound) serveMux(c net.Conn) {
	m := NewMux(c, true, in.cfg.MaxStreams)
	defer m.Close()
	for {
		stream, err := m.Accept()
		if err != nil {
			return
		}
		go in.forward(stream)
	}
}

// serveDirect handles one per-connection tunnel (HAProxy driver).
func (in *Inbound) serveDirect(c net.Conn) {
	in.forward(c)
}

func (in *Inbound) forward(client net.Conn) {
	defer client.Close()
	target := in.cfg.Targets[int(in.next.Add(1)-1)%len(in.cfg.Targets)]
	backend, err := in.cfg.DialTarget("tcp", target)
	if err != nil {
		return
	}
	if in.cfg.ProcLink != nil {
		backend = netem.Wrap(backend, in.cfg.ProcLink)
		client = netem.Wrap(client, in.cfg.ProcLink)
	}
	in.active.Add(1)
	in.relayed.Add(1)
	defer in.active.Add(-1)
	transport.RelayCtx(client, backend, tierPRS)
}

// ---------------------------------------------------------------- outbound

// OutboundConfig configures the client-facing (producer-side) S2DS proxy
// that accepts application connections and tunnels them across the WAN.
type OutboundConfig struct {
	// ListenAddr is where applications connect ("0" port ok).
	ListenAddr string
	// RemoteProxy is the WAN address of the peer (inbound) S2DS.
	RemoteProxy string
	// Tunnel selects the driver; must match the inbound side.
	Tunnel Tunnel
	// NumConns is the number of parallel WAN connections (the SciStream
	// --num_conn option). For Stunnel it is the number of shared mux'd
	// flows; for HAProxy it pre-warms a connection pool.
	NumConns int
	// Identity authenticates to the inbound proxy over mTLS.
	Identity *tlsutil.Identity
	// ServerName must match the inbound proxy certificate.
	ServerName string
	// MaxStreams caps concurrent streams (Stunnel limit).
	MaxStreams int
	// ClientLink shapes bytes written back to applications (the
	// facility-internal hop, e.g. Andes to DSN).
	ClientLink *netem.Link
	// DialWAN dials the WAN (typically shaped by the WAN link).
	DialWAN DialFunc
	// ProcLink models this proxy's processing capacity.
	ProcLink *netem.Link
	// FlowLink caps the shared Stunnel tunnels at one flow's rate.
	FlowLink *netem.Link
}

// Outbound is a running producer-side S2DS.
type Outbound struct {
	cfg OutboundConfig
	ln  net.Listener

	mu     sync.Mutex
	muxes  []*Mux // stunnel: shared long-lived tunnels
	pool   []net.Conn
	next   int
	closed bool

	relayed atomic.Uint64
}

// NewOutbound starts the client-facing proxy.
func NewOutbound(cfg OutboundConfig) (*Outbound, error) {
	if cfg.RemoteProxy == "" {
		return nil, fmt.Errorf("scistream: outbound proxy needs a remote proxy address")
	}
	if cfg.Identity == nil {
		return nil, fmt.Errorf("scistream: outbound proxy needs a TLS identity")
	}
	if cfg.DialWAN == nil {
		cfg.DialWAN = net.Dial
	}
	if cfg.NumConns <= 0 {
		cfg.NumConns = 1
	}
	if cfg.Tunnel == TunnelStunnel && cfg.MaxStreams == 0 {
		cfg.MaxStreams = StunnelMaxStreams
	}
	if cfg.ServerName == "" {
		cfg.ServerName = "127.0.0.1"
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &Outbound{cfg: cfg, ln: ln}
	if cfg.Tunnel == TunnelHAProxy {
		// Pre-warm the pool (handshakes paid up front). Extra pooled
		// connections give no throughput benefit — matching the paper's
		// "increasing proxy connections to four showed no significant
		// performance gain".
		for i := 0; i < cfg.NumConns; i++ {
			if c, err := o.dialTunnel(); err == nil {
				o.pool = append(o.pool, c)
			}
		}
	}
	go o.acceptLoop()
	return o, nil
}

// Addr is the application-facing address.
func (o *Outbound) Addr() string { return o.ln.Addr().String() }

// Relayed reports total relayed connections.
func (o *Outbound) Relayed() uint64 { return o.relayed.Load() }

// Close stops the proxy and its tunnels.
func (o *Outbound) Close() error {
	o.mu.Lock()
	o.closed = true
	muxes := o.muxes
	pool := o.pool
	o.muxes = nil
	o.pool = nil
	o.mu.Unlock()
	for _, m := range muxes {
		m.Close()
	}
	for _, c := range pool {
		c.Close()
	}
	return o.ln.Close()
}

func (o *Outbound) dialTunnel() (net.Conn, error) {
	raw, err := o.cfg.DialWAN("tcp", o.cfg.RemoteProxy)
	if err != nil {
		return nil, err
	}
	tc := tls.Client(raw, o.cfg.Identity.MutualClientConfig(o.cfg.ServerName))
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, err
	}
	return tc, nil
}

// tunnelStream obtains a stream over the overlay for one client connection.
func (o *Outbound) tunnelStream() (net.Conn, error) {
	switch o.cfg.Tunnel {
	case TunnelStunnel:
		o.mu.Lock()
		defer o.mu.Unlock()
		if o.closed {
			return nil, net.ErrClosed
		}
		// Establish the shared tunnels lazily, up to NumConns.
		for len(o.muxes) < o.cfg.NumConns {
			c, err := o.dialTunnel()
			if err != nil {
				if len(o.muxes) == 0 {
					return nil, err
				}
				break
			}
			var tc net.Conn = c
			if o.cfg.FlowLink != nil {
				tc = netem.Wrap(tc, o.cfg.FlowLink)
			}
			o.muxes = append(o.muxes, NewMux(tc, false, o.cfg.MaxStreams))
		}
		// Round-robin across shared tunnels; total stream budget is the
		// Stunnel cap regardless of how many tunnels exist.
		total := 0
		for _, m := range o.muxes {
			total += m.NumStreams()
		}
		if o.cfg.MaxStreams > 0 && total >= o.cfg.MaxStreams {
			return nil, ErrTooManyStreams
		}
		m := o.muxes[o.next%len(o.muxes)]
		o.next++
		return m.Open()
	default: // HAProxy: dedicated connection per client, pool pre-warmed.
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return nil, net.ErrClosed
		}
		var c net.Conn
		if len(o.pool) > 0 {
			c = o.pool[0]
			o.pool = o.pool[1:]
		}
		o.mu.Unlock()
		if c != nil {
			return c, nil
		}
		return o.dialTunnel()
	}
}

func (o *Outbound) acceptLoop() {
	for {
		client, err := o.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			stream, err := o.tunnelStream()
			if err != nil {
				client.Close()
				return
			}
			if o.cfg.ClientLink != nil {
				client = netem.Wrap(client, o.cfg.ClientLink)
			}
			if o.cfg.ProcLink != nil {
				client = netem.Wrap(client, o.cfg.ProcLink)
				stream = netem.Wrap(stream, o.cfg.ProcLink)
			}
			o.relayed.Add(1)
			transport.RelayCtx(client, stream, tierPRS)
		}()
	}
}
