package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
)

// Handler returns an HTTP handler exposing the registry:
//
//	GET /metrics        Prometheus text exposition
//	GET /snapshot.json  the JSON Snapshot
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// Server is an opt-in telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry on addr (e.g. "127.0.0.1:9090"; an :0
// port picks an ephemeral one — see Addr). The listener is up when
// Serve returns.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint immediately: the listener and every active
// scrape connection are torn down. Safe to call more than once.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the endpoint gracefully: the listener closes at once
// (no new scrapes) while in-flight requests drain until the context
// expires, after which the caller should fall back to Close. This is
// the teardown path scenario runs and tests use so a run's final
// scrape is not cut off mid-body.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}
