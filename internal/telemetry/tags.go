package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// Context is the interned identity of one tag set ("queue=ws-q-0",
// "node=2", "arch=DTS"). Hot paths resolve a label set to a Context
// once — Intern is a table lookup behind a read lock — and from then on
// every probe lookup keys on (metric name, Context): a small integer
// compare instead of per-sample tag rendering. Contexts are process
// global and never freed; the table is bounded by the number of
// distinct label sets a deployment declares (queues × nodes × tiers),
// not by sample volume.
type Context uint32

// ContextNone is the empty tag set: probes resolved with it are
// identical to their untagged registrations.
const ContextNone Context = 0

// tagIntern is the process-wide tag-set table. Slot 0 is the empty
// set. Sets are canonicalized (sorted) before interning, so
// {"b=2","a=1"} and {"a=1","b=2"} share one Context.
var tagIntern = struct {
	sync.RWMutex
	byKey map[string]Context
	tags  [][]string // index = Context; canonical tag order
	sufs  []string   // rendered "{a=1,b=2}" identity suffix, "" at 0
}{
	byKey: map[string]Context{"": ContextNone},
	tags:  [][]string{nil},
	sufs:  []string{""},
}

// Intern resolves a tag set to its Context, creating one on first use.
// Tag order does not matter: sets are canonicalized by sorting. Intern
// allocates on the miss path only; call it at setup time (queue
// declare, link dial, role start), not per sample.
func Intern(tags ...string) Context {
	if len(tags) == 0 {
		return ContextNone
	}
	canon := make([]string, len(tags))
	copy(canon, tags)
	sort.Strings(canon)
	key := strings.Join(canon, ",")
	tagIntern.RLock()
	c, ok := tagIntern.byKey[key]
	tagIntern.RUnlock()
	if ok {
		return c
	}
	tagIntern.Lock()
	defer tagIntern.Unlock()
	if c, ok := tagIntern.byKey[key]; ok {
		return c
	}
	c = Context(len(tagIntern.tags))
	tagIntern.byKey[key] = c
	tagIntern.tags = append(tagIntern.tags, canon)
	tagIntern.sufs = append(tagIntern.sufs, "{"+key+"}")
	return c
}

// Tags returns a copy of the context's canonical tag list (nil for
// ContextNone).
func (c Context) Tags() []string {
	tagIntern.RLock()
	defer tagIntern.RUnlock()
	if int(c) >= len(tagIntern.tags) {
		return nil
	}
	return append([]string(nil), tagIntern.tags[int(c)]...)
}

// String renders the context as the identity suffix exporters use:
// "{a=1,b=2}", or "" for ContextNone (and unknown contexts).
func (c Context) String() string {
	tagIntern.RLock()
	defer tagIntern.RUnlock()
	if int(c) >= len(tagIntern.sufs) {
		return ""
	}
	return tagIntern.sufs[int(c)]
}

// KeyCtx renders the full metric identity for a name + interned
// context — the same "name{k=v,...}" form Key produces for explicit
// tags, so context-resolved and tag-resolved probes share series.
func KeyCtx(name string, ctx Context) string {
	return name + ctx.String()
}

// ctxProbeKind discriminates the shared context-lookup cache.
type ctxProbeKind uint8

const (
	ctxKindCounter ctxProbeKind = iota
	ctxKindGauge
	ctxKindWatermark
	ctxKindHistogram
)

// ctxProbeKey is the (metric, context, kind) composite the lookup cache
// keys on. Struct map keys compare without rendering or allocating —
// this is what makes the tagged hot path free of per-sample string
// work.
type ctxProbeKey struct {
	name string
	ctx  Context
	kind ctxProbeKind
}

// ctxLookup is the fast path: a read-locked map hit, no allocation.
func (r *Registry) ctxLookup(k ctxProbeKey) (any, bool) {
	r.ctxMu.RLock()
	p, ok := r.ctxProbes[k]
	r.ctxMu.RUnlock()
	return p, ok
}

// ctxStore publishes a resolved probe into the lookup cache.
func (r *Registry) ctxStore(k ctxProbeKey, p any) {
	r.ctxMu.Lock()
	if r.ctxProbes == nil {
		r.ctxProbes = map[ctxProbeKey]any{}
	}
	r.ctxProbes[k] = p
	r.ctxMu.Unlock()
}

// CounterCtx returns the counter registered under name + the interned
// context. The first resolution renders the identity and registers the
// probe as Counter would; repeated resolutions are a read-locked map
// hit with zero allocations, so a per-sample CounterCtx on a hot path
// costs one map lookup plus the atomic add.
func (r *Registry) CounterCtx(name string, ctx Context) *Counter {
	k := ctxProbeKey{name, ctx, ctxKindCounter}
	if p, ok := r.ctxLookup(k); ok {
		return p.(*Counter)
	}
	c := r.counterByKey(KeyCtx(name, ctx))
	r.ctxStore(k, c)
	return c
}

// GaugeCtx returns the gauge registered under name + context.
func (r *Registry) GaugeCtx(name string, ctx Context) *Gauge {
	k := ctxProbeKey{name, ctx, ctxKindGauge}
	if p, ok := r.ctxLookup(k); ok {
		return p.(*Gauge)
	}
	g := r.gaugeByKey(KeyCtx(name, ctx))
	r.ctxStore(k, g)
	return g
}

// WatermarkCtx returns the watermark registered under name + context.
func (r *Registry) WatermarkCtx(name string, ctx Context) *Watermark {
	k := ctxProbeKey{name, ctx, ctxKindWatermark}
	if p, ok := r.ctxLookup(k); ok {
		return p.(*Watermark)
	}
	w := r.watermarkByKey(KeyCtx(name, ctx))
	r.ctxStore(k, w)
	return w
}

// HistogramCtx returns the histogram registered under name + context.
func (r *Registry) HistogramCtx(name string, ctx Context) *Histogram {
	k := ctxProbeKey{name, ctx, ctxKindHistogram}
	if p, ok := r.ctxLookup(k); ok {
		return p.(*Histogram)
	}
	h := r.histogramByKey(KeyCtx(name, ctx))
	r.ctxStore(k, h)
	return h
}

// GaugeFuncCtx registers a read-at-export callback gauge under name +
// context (see GaugeFunc). Callbacks have no hot path, so this is just
// identity rendering.
func (r *Registry) GaugeFuncCtx(name string, ctx Context, fn func() int64) {
	k := KeyCtx(name, ctx)
	r.mu.Lock()
	r.gaugeFuncs[k] = fn
	r.mu.Unlock()
}

// CounterFuncCtx registers a read-at-export callback counter under
// name + context (see CounterFunc).
func (r *Registry) CounterFuncCtx(name string, ctx Context, fn func() int64) {
	k := KeyCtx(name, ctx)
	r.mu.Lock()
	r.counterFuncs[k] = fn
	r.mu.Unlock()
}

// UnregisterCtx removes the callback probes registered under name +
// context (see Unregister).
func (r *Registry) UnregisterCtx(name string, ctx Context) {
	k := KeyCtx(name, ctx)
	r.mu.Lock()
	delete(r.gaugeFuncs, k)
	delete(r.counterFuncs, k)
	r.mu.Unlock()
}
