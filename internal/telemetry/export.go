package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitizes a metric name into the Prometheus charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other separators become
// underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// splitKey splits a rendered identity "name{k=v,...}" into its metric
// name and tag list.
func splitKey(key string) (name string, tags []string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name = key[:i]
	body := strings.TrimSuffix(key[i+1:], "}")
	if body != "" {
		tags = strings.Split(body, ",")
	}
	return name, tags
}

// promLabels renders a tag list (plus optional extra "k=v" pairs) as a
// Prometheus label block, empty string for no labels.
func promLabels(tags []string, extra ...string) string {
	all := append(append([]string(nil), tags...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, t := range all {
		k, v, _ := strings.Cut(t, "=")
		parts = append(parts, fmt.Sprintf("%s=%q", promName(k), v))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and watermarks as
// counter/gauge samples, histograms as cumulative le-buckets with _sum
// and _count. Output is deterministic: metrics sort by identity.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	emitType := func(name, kind string) error {
		if typed[name] {
			return nil
		}
		typed[name] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, key := range sortedKeys(s.Counters) {
		name, tags := splitKey(key)
		pn := promName(name)
		if err := emitType(pn, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(tags), s.Counters[key]); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(s.Gauges) {
		name, tags := splitKey(key)
		pn := promName(name)
		if err := emitType(pn, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(tags), s.Gauges[key]); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(s.Watermarks) {
		name, tags := splitKey(key)
		pn := promName(name)
		if err := emitType(pn, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(tags), s.Watermarks[key]); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(s.Histograms) {
		name, tags := splitKey(key)
		pn := promName(name)
		h := s.Histograms[key]
		if err := emitType(pn, "histogram"); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := fmt.Sprintf("le=%d", b.Upper)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabels(tags, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabels(tags, "le=+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", pn, promLabels(tags), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, promLabels(tags), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and renders it; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
