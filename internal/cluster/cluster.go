// Package cluster assembles multiple broker nodes into the multi-server
// RabbitMQ cluster deployed on the paper's Data Streaming Nodes (RMQS1-3 on
// DSN1-3, §4.2), grown into a clustered data plane.
//
// # Cluster model
//
// Placement: a consistent-hash Ring (64 virtual nodes per member,
// deterministic, topology-versioned) assigns every queue a master node.
// A shared metadata Directory pins each declared queue to the master
// that owned it at declare time and records every node's address, so
// any node answers "who masters queue q" locally.
//
// Federation: with Options.Federation, every node carries a ClusterHook
// (broker.Config.Cluster). Declares for remotely-mastered queues are
// ensured on the master over a federation link and answered locally;
// default-exchange publishes for remote queues are forwarded over the
// link zero-copy (the refcounted pooled body rides the vectored write as
// a borrowed iovec) and confirm-bridged (the producer's ack waits for
// the master's verdict); consumes and gets answer with a
// connection-level redirect (connection.close 302 carrying the master's
// address) that reconnect-enabled clients honor by re-dialing.
//
// Replication: with Options.ReplicationFactor R >= 2, every durable
// queue gets R-1 synchronous mirrors on the distinct ring nodes that
// follow its master in the placement walk. The master streams appends
// and settles to each mirror over the same confirm-mode federation links
// (reserved "!mirror.*" exchanges) and withholds producer confirms until
// the in-sync mirror set has appended; a mirror that lags past the
// bounded catch-up window is evicted from the in-sync set so confirms
// always resolve. A joining (or rejoining) mirror is wiped and caught up
// from a scan of the master's log while live ships flow concurrently,
// then turns in-sync once the stream drains. See replication.go.
//
// Failover: Kill hard-crashes a node and retires it from the ring. Every
// queue it mastered is reassigned: a replicated queue promotes its
// most-advanced in-sync mirror — the standby log is already on the new
// master's disk, so no segment-log directory moves — and the promoted
// master re-establishes mirrors on the survivors. Unreplicated durable
// queues fall back to the legacy path: reassigned to a surviving ring
// owner, segment-log directory moved there (the shared-storage model of
// a rescheduled pod) and replayed; transient queues restart empty.
// Clients ride the failover through amqp.Config.Reconnect: dead-address
// dials rotate through Config.Seeds, a survivor redirects mis-routed
// consumers to the new master, and channel state plus unconfirmed
// publishes replay on arrival. Restart re-registers the node with the
// ring and runs a rebalance-on-join audit: quiescent unreplicated queues
// whose ring placement points at the rejoined node move back to it, and
// replicated queues re-establish it as a catching-up mirror wherever
// placement wants one. Moved (pinned) masters otherwise stay put — no
// blanket failback.
//
// A Shovel component moves messages between queues on different nodes (the
// RabbitMQ shovel plugin equivalent), which the Deleria example uses to link
// its forward buffer and event builder.
package cluster

import (
	"fmt"
	"net"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker"
	"ds2hpc/internal/transport"
)

// defaultVHost is the vhost the placement-only APIs (OwnerOf, AddrFor)
// consult; the pattern engine and the example deployments run on it.
const defaultVHost = "/"

// Options selects the cluster's data-plane behaviour.
type Options struct {
	// Federation installs the cluster hook on every node: remote declares
	// are ensured on their master, default-exchange publishes to remote
	// queues are forwarded (confirm-bridged, zero-copy), and consumes on
	// the wrong node redirect the client to the master. Off, the nodes
	// are independent brokers that only share deterministic placement —
	// the legacy behaviour explicit-placement callers (Shovel tests, the
	// Deleria example) rely on.
	Federation bool
	// VNodes overrides the virtual-node count per ring member (0 = 64).
	VNodes int
	// FedDial dials federation links between nodes (nil = plain TCP).
	// Deployments whose brokers listen on TLS (DTS) pass the TLS hop here.
	FedDial transport.DialFunc
	// ReplicationFactor R >= 2 gives every durable queue R-1 synchronous
	// mirrors (capped at the node count) and switches Kill to in-sync
	// mirror promotion for replicated queues. Requires Federation and
	// per-node DataDirs; 0 or 1 means unreplicated (the default).
	ReplicationFactor int
}

// Cluster is a set of broker nodes with deterministic ring-based queue
// placement and a shared metadata directory. Individual nodes can be
// hard-killed (Crash) and brought back (Restart) on the same address and
// data directory, modeling a broker pod dying and being rescheduled; Kill
// additionally fails the node's queues over to the surviving masters.
type Cluster struct {
	mu    sync.Mutex
	nodes []*broker.Server
	cfgs  []broker.Config // resolved per-node configs, reused by Restart
	addrs []string        // bound addresses, stable across restarts

	dir    *Directory
	hubs   []*fedHub      // per-node federation hubs (nil entries without federation)
	stores []*mirrorStore // per-node standby replica stores (nil without replication)
	repls  []*replManager // per-node master-side replication state (nil without replication)
}

// storeOf returns node i's standby replica store (nil on unreplicated
// clusters) without racing Restart's slice writes.
func (c *Cluster) storeOf(i int) *mirrorStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores[i]
}

// nodeOrNil is Node for callers that may run while the cluster is still
// starting (durable recovery fires cluster hooks before every node is
// appended) — nil instead of a panic for a not-yet-started node.
func (c *Cluster) nodeOrNil(i int) *broker.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return nil
	}
	return c.nodes[i]
}

// Start launches n broker nodes with the shared configuration. Each node
// gets its own listener; cfg.Addr must be empty or a ":0" pattern.
func Start(n int, cfg broker.Config) (*Cluster, error) {
	return StartWith(n, func(int) broker.Config { return cfg })
}

// StartWith launches n broker nodes, asking configFor for each node's
// configuration — used to give every node its own emulated DSN link.
// When a node's config sets DataDir, the cluster appends a node-<i>
// subdirectory so nodes sharing a base directory never collide, and a
// restarted node recovers exactly its own durable state.
func StartWith(n int, configFor func(i int) broker.Config) (*Cluster, error) {
	return StartWithOptions(n, Options{}, configFor)
}

// StartWithOptions is StartWith with explicit cluster options (see
// Options.Federation for what the hook changes).
func StartWithOptions(n int, opts Options, configFor func(i int) broker.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	c := &Cluster{
		dir:    NewDirectory(n, opts.VNodes),
		hubs:   make([]*fedHub, n),
		stores: make([]*mirrorStore, n),
		repls:  make([]*replManager, n),
	}
	factor := opts.ReplicationFactor
	if factor > n {
		factor = n
	}
	for i := 0; i < n; i++ {
		nodeCfg := configFor(i)
		if nodeCfg.Addr == "" {
			nodeCfg.Addr = "127.0.0.1:0"
		}
		if nodeCfg.DataDir != "" {
			nodeCfg.DataDir = filepath.Join(nodeCfg.DataDir, fmt.Sprintf("node-%d", i))
		}
		if opts.Federation {
			c.hubs[i] = newFedHub(i, c.dir, opts.FedDial)
			hook := &nodeHook{node: i, dir: c.dir, hub: c.hubs[i]}
			if factor >= 2 && nodeCfg.DataDir != "" {
				c.stores[i] = newMirrorStore(nodeCfg.DataDir, nodeCfg.Durability)
				c.repls[i] = newReplManager(c, i, factor, c.hubs[i])
				hook.store = c.stores[i]
				hook.repl = c.repls[i]
			}
			nodeCfg.Cluster = hook
		}
		s, err := broker.Listen(nodeCfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, s)
		c.cfgs = append(c.cfgs, nodeCfg)
		c.addrs = append(c.addrs, s.Addr())
		c.dir.SetAddr(i, s.Addr())
	}
	// Queues recovered during startup registered before their mirror
	// nodes had addresses; reconcile now that every node listens.
	for _, rm := range c.repls {
		if rm != nil {
			rm.reconcileAll()
		}
	}
	return c, nil
}

// Close stops all nodes and tears down every federation link.
func (c *Cluster) Close() error {
	c.mu.Lock()
	nodes := append([]*broker.Server(nil), c.nodes...)
	hubs := append([]*fedHub(nil), c.hubs...)
	c.mu.Unlock()
	for _, h := range hubs {
		if h != nil {
			h.closeAll()
		}
	}
	var first error
	for _, s := range nodes {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Size reports the number of nodes.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Node returns node i.
func (c *Cluster) Node(i int) *broker.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// Crash hard-kills node i as SIGKILL would: connections drop without
// protocol teardown and only fsynced durable state survives on disk.
// The node's address stays reserved for a later Restart.
func (c *Cluster) Crash(i int) {
	c.Node(i).Crash()
}

// Restart brings a crashed (or closed) node back on its original address
// with its original configuration, recovering whatever durable state its
// data directory holds, and re-registers it with the placement ring and
// metadata directory: the node resumes answering for the durable queues
// it recovered, rejoins placement for queues declared from now on, and
// sibling federation links re-establish lazily on the next forward.
// Rejoining triggers a directory-driven ownership audit
// (rebalanceOnJoin): quiescent unreplicated queues whose ring placement
// points at this node move back, and replicated masters re-establish the
// node as a catching-up mirror wherever placement wants one. Queues that
// failed over to other masters are otherwise not failed back. Clients
// with reconnect policies re-attach transparently because the address is
// stable.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	cfg := c.cfgs[i]
	cfg.Addr = c.addrs[i]
	rm := c.repls[i]
	c.mu.Unlock()
	if rm != nil {
		// The in-process manager outlived the crashed broker; its mirror
		// census is stale now. Recovery below re-registers what this node
		// still masters.
		rm.reset()
	}
	s, err := broker.Listen(cfg)
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	c.mu.Lock()
	c.nodes[i] = s
	c.mu.Unlock()
	c.dir.SetAddr(i, s.Addr())
	c.dir.NodeUp(i)
	c.rebalanceOnJoin(i)
	return nil
}

// rebalanceOnJoin audits queue ownership after node i re-enters the
// ring. Unreplicated registered queues whose ring placement now points
// at the rejoined node — and that are quiescent (empty, no consumers) —
// are surrendered by their current master and re-pinned here: durable
// logs move directories (both nodes are alive, so this is an ordinary
// handover, not failover), transient queues re-declare empty. Busy
// queues stay put; a mid-traffic move would tear consumers down for no
// robustness gain. Replicated queues keep their master and instead
// reconcile mirror placement, which re-establishes the rejoined node as
// a catching-up mirror where the ring wants one.
func (c *Cluster) rebalanceOnJoin(i int) {
	c.mu.Lock()
	repls := append([]*replManager(nil), c.repls...)
	c.mu.Unlock()
	for _, q := range c.dir.Queues() {
		owner, ok := c.dir.Ring().Owner(q.Name)
		if !ok || owner != i || q.Node == i {
			continue
		}
		if rm := repls[q.Node]; rm != nil && rm.replicated(q.VHost, q.Name) {
			continue // mirror reconcile below handles replicated queues
		}
		src := c.nodeOrNil(q.Node)
		if src == nil {
			continue
		}
		vh := src.VHost(q.VHost)
		sq, have := vh.Queue(q.Name)
		if !have || sq.Len() > 0 || sq.ConsumerCount() > 0 {
			continue
		}
		if err := vh.SurrenderQueue(q.Name); err != nil {
			continue
		}
		if q.Durable {
			moved := q
			moved.Node = i
			c.mu.Lock()
			srcDir := c.cfgs[q.Node].DataDir
			c.mu.Unlock()
			if srcDir != "" {
				if err := c.moveQueueLog(srcDir, moved); err != nil {
					continue
				}
			}
		}
		nvh := c.Node(i).VHost(q.VHost)
		if _, err := nvh.DeclareQueue(q.Name, q.Durable, false, false, false, nil); err != nil {
			continue
		}
		c.dir.Repin(q.VHost, q.Name, i)
		if rm := repls[i]; rm != nil {
			rm.queueRegistered(q.VHost, q.Name, q.Durable)
		}
	}
	for j, rm := range repls {
		if rm != nil && j != i {
			rm.reconcileAll()
		}
	}
}

// Kill fails node i: the node is hard-crashed (as Crash), retired from
// the placement ring, and every queue it mastered is reassigned. A
// replicated queue promotes its most-advanced in-sync mirror: the
// standby segment log already sits on the promoted node's own disk, so
// the failover reads nothing from the dead node's directory — no
// segment-log relocation — and the promoted master re-establishes
// mirrors on the survivors. Unreplicated durable queues take the legacy
// path: reassigned to a surviving ring owner, segment-log directory
// carried over (shared-storage failover: the rescheduled pod mounts the
// same volume) and replayed there; transient queues restart empty.
// It returns the reassigned queues with Node set to each new master.
// Clients follow via their reconnect policy: dials to the dead address
// rotate through Config.Seeds, and the first survivor they reach
// redirects mis-routed consumers to the new master.
func (c *Cluster) Kill(i int) ([]QueueInfo, error) {
	c.Node(i).Crash()
	c.mu.Lock()
	deadDir := c.cfgs[i].DataDir
	deadHub := c.hubs[i]
	deadRepl := c.repls[i]
	deadStore := c.stores[i]
	repls := append([]*replManager(nil), c.repls...)
	c.mu.Unlock()
	if deadStore != nil {
		deadStore.crash()
	}
	// The dead master's in-process replication state outlives its broker:
	// it is exactly the in-sync census the promotion chooser needs.
	promoted := make(map[string]bool)
	var choose func(QueueInfo) (int, bool)
	if deadRepl != nil {
		choose = func(q QueueInfo) (int, bool) {
			if !q.Durable {
				return 0, false
			}
			node, ok := deadRepl.choosePromotion(q)
			if ok {
				promoted[qkey(q.VHost, q.Name)] = true
			}
			return node, ok
		}
	}
	moved := c.dir.NodeDownWith(i, choose)
	var first error
	for _, q := range moved {
		if promoted[qkey(q.VHost, q.Name)] {
			if err := c.promoteMirror(q); err != nil && first == nil {
				first = err
			}
			continue
		}
		if q.Durable && deadDir != "" {
			if err := c.moveQueueLog(deadDir, q); err != nil && first == nil {
				first = err
			}
		}
		// Re-declare on the new master: with a relocated segment log this
		// replays the queue's durable state (ready + unacked records);
		// without one it starts empty.
		vh := c.Node(q.Node).VHost(q.VHost)
		if _, err := vh.DeclareQueue(q.Name, q.Durable, false, false, false, nil); err != nil && first == nil {
			first = fmt.Errorf("cluster: failover declare %q on node %d: %w", q.Name, q.Node, err)
		}
	}
	// Surviving masters drop the dead node from their mirror sets
	// (releasing any confirms it owed); the dead node's own replication
	// state and links are discarded.
	for j, rm := range repls {
		if rm == nil {
			continue
		}
		if j == i {
			rm.reset()
		} else {
			rm.nodeDown(i)
		}
	}
	if deadHub != nil {
		deadHub.closeAll()
	}
	return moved, first
}

// promoteMirror flips one replicated queue's standby replica on its
// already-chosen new master (q.Node) into the live queue: the replica
// log closes cleanly, sheds its MIRROR marker, and the declare recovers
// it in place. The promoted master then re-establishes mirrors on the
// surviving ring members.
func (c *Cluster) promoteMirror(q QueueInfo) error {
	st := c.storeOf(q.Node)
	if st == nil {
		return fmt.Errorf("cluster: promote %q: node %d has no mirror store", q.Name, q.Node)
	}
	if err := st.promote(q.VHost, q.Name); err != nil {
		return err
	}
	vh := c.Node(q.Node).VHost(q.VHost)
	if _, err := vh.DeclareQueue(q.Name, true, false, false, false, nil); err != nil {
		return fmt.Errorf("cluster: promote declare %q on node %d: %w", q.Name, q.Node, err)
	}
	promotions.Inc()
	c.mu.Lock()
	rm := c.repls[q.Node]
	c.mu.Unlock()
	if rm != nil {
		rm.queueRegistered(q.VHost, q.Name, true)
	}
	return nil
}

// moveQueueLog relocates one queue's segment-log directory from the dead
// node's data directory to its new master's. A missing source directory
// is fine — the queue never persisted anything.
func (c *Cluster) moveQueueLog(deadDir string, q QueueInfo) error {
	c.mu.Lock()
	dstDir := c.cfgs[q.Node].DataDir
	c.mu.Unlock()
	if dstDir == "" {
		return nil // new master keeps the queue memory-only
	}
	src := filepath.Join(deadDir, url.QueryEscape(q.VHost), url.QueryEscape(q.Name))
	if _, err := os.Stat(src); os.IsNotExist(err) {
		return nil
	}
	dstVH := filepath.Join(dstDir, url.QueryEscape(q.VHost))
	if err := os.MkdirAll(dstVH, 0o755); err != nil {
		return fmt.Errorf("cluster: failover move %q: %w", q.Name, err)
	}
	dst := filepath.Join(dstVH, url.QueryEscape(q.Name))
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("cluster: failover move %q: %w", q.Name, err)
	}
	return nil
}

// Addrs returns every node's listen address (stable across restarts).
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// Directory exposes the cluster's metadata directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// OwnerOf returns the index of the node that masters the named queue on
// the default vhost: its pinned directory assignment when declared, the
// placement ring's answer otherwise. Deterministic for a given member
// set, so co-location helpers can predict placement before declaring.
func (c *Cluster) OwnerOf(queue string) int {
	return c.dir.Owner(defaultVHost, queue)
}

// AddrFor returns the listen address of the queue's master node.
func (c *Cluster) AddrFor(queue string) string {
	i := c.OwnerOf(queue)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[i]
}

// Shovel continuously moves messages from a source queue to a destination
// queue, acknowledging each message only after it has been republished —
// the at-least-once contract of the RabbitMQ shovel plugin.
type Shovel struct {
	srcConn *amqp.Connection
	dstConn *amqp.Connection
	done    chan struct{}
	stopped chan struct{}
	moved   chan int64
}

// ShovelConfig names the endpoints and queues to bridge.
type ShovelConfig struct {
	SourceURL  string
	SourceQ    string
	DestURL    string
	DestQ      string
	Prefetch   int // source prefetch; default 32
	DialSource func(network, addr string) (net.Conn, error)
	DialDest   func(network, addr string) (net.Conn, error)
	// Reconnect, when non-nil, arms both shovel connections with
	// auto-reconnect and switches the destination channel to confirm
	// mode with settle-after-confirm: a message is acknowledged at the
	// source only once the destination broker confirms the republish.
	// This is what lets a shovel ride out a source- or destination-node
	// crash without duplicating already-settled messages — settled means
	// confirmed at the destination and fsynced at the source.
	Reconnect *amqp.ReconnectPolicy
}

// NewShovel starts a shovel. Both queues must already exist.
func NewShovel(cfg ShovelConfig) (*Shovel, error) {
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 32
	}
	srcConn, err := amqp.DialConfig(cfg.SourceURL, amqp.Config{Dial: cfg.DialSource, Reconnect: cfg.Reconnect})
	if err != nil {
		return nil, fmt.Errorf("cluster: shovel source dial: %w", err)
	}
	dstConn, err := amqp.DialConfig(cfg.DestURL, amqp.Config{Dial: cfg.DialDest, Reconnect: cfg.Reconnect})
	if err != nil {
		srcConn.Close()
		return nil, fmt.Errorf("cluster: shovel dest dial: %w", err)
	}
	srcCh, err := srcConn.Channel()
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	if err := srcCh.Qos(cfg.Prefetch, 0, false); err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	deliveries, err := srcCh.Consume(cfg.SourceQ, "shovel", false, false, false, false, nil)
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	dstCh, err := dstConn.Channel()
	if err != nil {
		srcConn.Close()
		dstConn.Close()
		return nil, err
	}
	var confirms chan amqp.Confirmation
	if cfg.Reconnect != nil {
		if err := dstCh.Confirm(false); err != nil {
			srcConn.Close()
			dstConn.Close()
			return nil, err
		}
		confirms = dstCh.NotifyPublish(make(chan amqp.Confirmation, cfg.Prefetch))
	}

	s := &Shovel{
		srcConn: srcConn,
		dstConn: dstConn,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		moved:   make(chan int64, 1),
	}
	go s.run(deliveries, dstCh, cfg.DestQ, confirms)
	return s, nil
}

func (s *Shovel) run(deliveries <-chan amqp.Delivery, dstCh *amqp.Channel, destQ string, confirms chan amqp.Confirmation) {
	defer close(s.stopped)
	var moved int64
	for {
		select {
		case <-s.done:
			return
		case d, ok := <-deliveries:
			if !ok {
				return
			}
			err := dstCh.Publish("", destQ, false, false, amqp.Publishing{
				ContentType:   d.ContentType,
				Headers:       d.Headers,
				CorrelationID: d.CorrelationID,
				ReplyTo:       d.ReplyTo,
				MessageID:     d.MessageID,
				Timestamp:     d.Timestamp,
				AppID:         d.AppID,
				Body:          d.Body,
			})
			if err != nil {
				d.Nack(false, true)
				if confirms == nil {
					return
				}
				continue // reconnecting shovel: the requeued message redelivers
			}
			if confirms != nil {
				// Settle-after-confirm: publishes are sequential, so the
				// next confirmation is this publish's verdict (replayed
				// publishes keep their tags through the reconnect
				// machinery). A nack or closed channel leaves the source
				// delivery unacked — redelivered after reconnect.
				conf, open := <-confirms
				if !open {
					return
				}
				if !conf.Ack {
					d.Nack(false, true)
					continue
				}
			}
			d.Ack(false)
			moved++
			select {
			case <-s.moved:
			default:
			}
			s.moved <- moved
		}
	}
}

// Moved reports how many messages the shovel has transferred so far.
func (s *Shovel) Moved() int64 {
	select {
	case n := <-s.moved:
		s.moved <- n
		return n
	default:
		return 0
	}
}

// Stop terminates the shovel and closes its connections.
func (s *Shovel) Stop() {
	close(s.done)
	s.srcConn.Close()
	s.dstConn.Close()
	select {
	case <-s.stopped:
	case <-time.After(2 * time.Second):
	}
}
