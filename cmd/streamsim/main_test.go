package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ds2hpc/internal/sim"
)

// TestLocalExperiment smoke-tests the `streamsim local` mode end to end: a
// tiny in-process DTS experiment must deploy, stream, and report cleanly.
func TestLocalExperiment(t *testing.T) {
	err := runLocal([]string{
		"-arch", "DTS", "-workload", "Dstream", "-pattern", "work-sharing",
		"-producers", "1", "-consumers", "1", "-msgs", "2", "-runs", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLocalBadWorkloadRejected checks flag validation surfaces errors
// instead of exiting the process.
func TestLocalBadWorkloadRejected(t *testing.T) {
	if err := runLocal([]string{"-workload", "no-such-workload"}); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
	if err := runLocal([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// TestScenarioSubcommand drives the declarative mode end to end: a tiny
// spec file must deploy, stream, and report cleanly.
func TestScenarioSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
		"name": "cmd-smoke",
		"deployment": {"architecture": "DTS", "fabric_scale": 0.2,
			"disable_client_shaping": true, "fast_control_plane": true},
		"workload": {"name": "Dstream", "payload_bytes": 2048},
		"pattern": "work-sharing",
		"producers": 1, "consumers": 1,
		"messages_per_producer": 2,
		"timeout_ms": 30000
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario([]string{path}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioWatchAndTelemetry drives the live-telemetry path: -watch
// prints rollups while the run streams and -telemetry stands up the
// HTTP endpoint (on an ephemeral port) for its duration.
func TestScenarioWatchAndTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
		"name": "watch-smoke",
		"deployment": {"architecture": "DTS", "fabric_scale": 0.2,
			"disable_client_shaping": true, "fast_control_plane": true},
		"workload": {"name": "Dstream", "payload_bytes": 2048},
		"pattern": "work-sharing",
		"producers": 1, "consumers": 1,
		"messages_per_producer": 2,
		"timeout_ms": 30000
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario([]string{"-watch", "-telemetry", "127.0.0.1:0", path}); err != nil {
		t.Fatal(err)
	}
	// A busy port must surface as an error, not an exit.
	if err := runScenario([]string{"-telemetry", "256.0.0.1:99999", path}); err == nil {
		t.Fatal("bad telemetry address must be rejected")
	}
}

// TestScenarioRejectsBadInput checks the scenario mode surfaces errors
// instead of exiting: missing file, malformed JSON, typo'd keys, and an
// invalid spec.
func TestScenarioRejectsBadInput(t *testing.T) {
	if err := runScenario(nil); err == nil {
		t.Fatal("missing spec path must be rejected")
	}
	if err := runScenario([]string{"no-such-file.json"}); err == nil {
		t.Fatal("missing file must be rejected")
	}
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := runScenario([]string{write("garbage.json", "{")}); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
	if err := runScenario([]string{write("typo.json", `{"patern": "work-sharing"}`)}); err == nil {
		t.Fatal("unknown spec keys must be rejected")
	}
	bad := `{"deployment": {"architecture": "DTS"}, "workload": {"name": "Dstream"},
		"pattern": "work-sharing", "messages_per_producer": 0}`
	if err := runScenario([]string{write("invalid.json", bad)}); err == nil {
		t.Fatal("invalid spec must be rejected by validation")
	}
}

// TestParticipantRequiresCoordinator checks the distributed roles reject a
// missing -coord instead of exiting.
func TestParticipantRequiresCoordinator(t *testing.T) {
	if err := runParticipant(nil, "producer"); err == nil {
		t.Fatal("missing -coord must be rejected")
	}
}

// TestCoordinatorAggregatesParticipants drives the distributed mode
// in-process: a coordinator assigns queues to one producer and one
// consumer running against an rmq-server-equivalent broker.
func TestCoordinatorAggregatesParticipants(t *testing.T) {
	endpoint := brokerURL(t)
	coord, err := sim.NewCoordinator("127.0.0.1:0", 2, func(h sim.HelloMsg) sim.AssignMsg {
		return sim.AssignMsg{Queue: "ws-q-0", Endpoint: endpoint, Messages: 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	errc := make(chan error, 2)
	go func() { errc <- runParticipant([]string{"-coord", coord.Addr(), "-id", "0"}, "producer") }()
	go func() { errc <- runParticipant([]string{"-coord", coord.Addr(), "-id", "1"}, "consumer") }()

	res, err := coord.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if res.Consumed != 3 {
		t.Fatalf("aggregate consumed = %d, want 3", res.Consumed)
	}
}

// brokerURL starts a one-node broker and returns its amqp:// URL.
func brokerURL(t *testing.T) string {
	t.Helper()
	s, err := newTestBroker()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return fmt.Sprintf("amqp://%s/", s.Addr())
}
