package broker

import (
	"strings"
	"sync"

	"ds2hpc/internal/metrics"
)

// Exchange kinds.
const (
	KindDirect = "direct"
	KindFanout = "fanout"
	KindTopic  = "topic"
)

// binding associates a queue with a routing pattern on an exchange.
type binding struct {
	queue *Queue
	key   string
}

// bindingShards spreads an exchange's routing table across independently
// locked shards (keyed by routing-key hash) so concurrent publishers on
// different keys do not contend on a single exchange lock. Must be a power
// of two.
const bindingShards = 8

// bindingShard is one lock-domain of an exchange's routing table. For
// direct exchanges it additionally maintains an exact-match index so the
// hot routing path is a single map lookup instead of a binding scan.
type bindingShard struct {
	mu       sync.RWMutex
	bindings []binding
	direct   map[string][]*Queue
}

// shardContention counts lock acquisitions on routing/registry shards that
// found the shard already held — the residual contention the sharding did
// not eliminate.
var shardContention = metrics.Default.Counter("broker.shard_contention")

func lockShard(mu *sync.RWMutex) {
	if !mu.TryLock() {
		shardContention.Inc()
		mu.Lock()
	}
}

func rlockShard(mu *sync.RWMutex) {
	if !mu.TryRLock() {
		shardContention.Inc()
		mu.RLock()
	}
}

// fnvHash is FNV-1a, used to place names onto shards.
func fnvHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Exchange routes published messages to bound queues.
type Exchange struct {
	Name string
	Kind string

	shards [bindingShards]bindingShard
}

// NewExchange creates an exchange of the given kind.
func NewExchange(name, kind string) *Exchange {
	return &Exchange{Name: name, Kind: kind}
}

func (e *Exchange) shardFor(key string) *bindingShard {
	return &e.shards[fnvHash(key)&(bindingShards-1)]
}

// Bind adds a queue binding. Duplicate (queue, key) pairs are idempotent.
func (e *Exchange) Bind(q *Queue, key string) {
	s := e.shardFor(key)
	lockShard(&s.mu)
	defer s.mu.Unlock()
	for _, b := range s.bindings {
		if b.queue == q && b.key == key {
			return
		}
	}
	s.bindings = append(s.bindings, binding{queue: q, key: key})
	if e.Kind == KindDirect {
		if s.direct == nil {
			s.direct = map[string][]*Queue{}
		}
		s.direct[key] = append(s.direct[key], q)
	}
}

// Unbind removes a queue binding.
func (e *Exchange) Unbind(q *Queue, key string) {
	s := e.shardFor(key)
	lockShard(&s.mu)
	defer s.mu.Unlock()
	out := s.bindings[:0]
	for _, b := range s.bindings {
		if !(b.queue == q && b.key == key) {
			out = append(out, b)
		}
	}
	s.bindings = out
	s.dropDirect(q, key)
}

// UnbindQueue removes every binding that targets q (used on queue delete).
func (e *Exchange) UnbindQueue(q *Queue) {
	for i := range e.shards {
		s := &e.shards[i]
		lockShard(&s.mu)
		out := s.bindings[:0]
		for _, b := range s.bindings {
			if b.queue != q {
				out = append(out, b)
			}
		}
		s.bindings = out
		for key := range s.direct {
			s.dropDirect(q, key)
		}
		s.mu.Unlock()
	}
}

// dropDirect removes q from the direct index entry for key (caller holds
// the shard lock). The entry is rebuilt without q; empty entries are
// deleted so the index does not accumulate dead keys.
func (s *bindingShard) dropDirect(q *Queue, key string) {
	qs, ok := s.direct[key]
	if !ok {
		return
	}
	out := qs[:0]
	for _, x := range qs {
		if x != q {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		delete(s.direct, key)
	} else {
		s.direct[key] = out
	}
}

// BindingCount reports the number of bindings (for IfUnused checks).
func (e *Exchange) BindingCount() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		rlockShard(&s.mu)
		n += len(s.bindings)
		s.mu.RUnlock()
	}
	return n
}

// Route returns the set of queues a message with the given routing key
// should be delivered to. Duplicates are removed so a queue bound twice
// receives one copy, matching AMQP semantics.
func (e *Exchange) Route(routingKey string) []*Queue {
	return e.routeAppend(routingKey, nil)
}

// routeAppend appends the routed queues to dst and returns it; the hot
// publish path passes pooled scratch so steady-state routing is
// allocation-free. Direct exchanges resolve with one sharded index lookup;
// fanout and topic exchanges scan every shard's bindings.
func (e *Exchange) routeAppend(routingKey string, dst []*Queue) []*Queue {
	if e.Kind == KindDirect {
		s := e.shardFor(routingKey)
		rlockShard(&s.mu)
		// The per-key index holds unique queues (Bind is idempotent per
		// key), so no dedup pass is needed.
		dst = append(dst, s.direct[routingKey]...)
		s.mu.RUnlock()
		return dst
	}
	start := len(dst)
	for i := range e.shards {
		s := &e.shards[i]
		rlockShard(&s.mu)
		for _, b := range s.bindings {
			match := e.Kind == KindFanout || topicMatch(b.key, routingKey)
			if match && !containsQueue(dst[start:], b.queue) {
				dst = append(dst, b.queue)
			}
		}
		s.mu.RUnlock()
	}
	return dst
}

func containsQueue(qs []*Queue, q *Queue) bool {
	for _, x := range qs {
		if x == q {
			return true
		}
	}
	return false
}

// topicMatch implements AMQP topic matching: patterns are dot-separated
// words where "*" matches exactly one word and "#" matches zero or more.
func topicMatch(pattern, key string) bool {
	return topicMatchWords(splitTopic(pattern), splitTopic(key))
}

func splitTopic(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

func topicMatchWords(pat, key []string) bool {
	if len(pat) == 0 {
		return len(key) == 0
	}
	switch pat[0] {
	case "#":
		// "#" can match zero words…
		if topicMatchWords(pat[1:], key) {
			return true
		}
		// …or one-or-more words.
		if len(key) > 0 {
			return topicMatchWords(pat, key[1:])
		}
		return false
	case "*":
		return len(key) > 0 && topicMatchWords(pat[1:], key[1:])
	default:
		return len(key) > 0 && pat[0] == key[0] && topicMatchWords(pat[1:], key[1:])
	}
}
