package amqp

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ds2hpc/internal/broker"
)

// Internal tests for the client pool: placement policy, dispatch across a
// transport flap, and the shared pacer. They live inside the package so a
// test can target one physical connection's socket directly.

func poolBroker(t *testing.T) *broker.Server {
	t.Helper()
	s, err := broker.Listen(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// dropTransport hard-closes the connection's current socket, simulating a
// transport fault on this physical connection only.
func (c *Connection) dropTransport() {
	c.mu.Lock()
	raw := c.conn
	c.mu.Unlock()
	raw.Close()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClientPoolPlacement(t *testing.T) {
	s := poolBroker(t)
	p := NewClientPool(PoolConfig{URL: "amqp://" + s.Addr(), SessionsPerConn: 4})
	defer p.Close()

	var sessions []*Session
	for i := 0; i < 10; i++ {
		sess, err := p.Session()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	if conns, open := p.Stats(); conns != 3 || open != 10 {
		t.Fatalf("got %d conns / %d sessions, want 3 / 10 (soft target 4)", conns, open)
	}

	// Sessions release their slot but never the shared connection.
	for _, sess := range sessions {
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		sess.Close() // idempotent
	}
	if conns, open := p.Stats(); conns != 3 || open != 0 {
		t.Fatalf("after close: %d conns / %d sessions, want 3 / 0", conns, open)
	}

	// New sessions pack onto the warm connections instead of dialing.
	if _, err := p.Session(); err != nil {
		t.Fatal(err)
	}
	if conns, _ := p.Stats(); conns != 3 {
		t.Fatalf("reopen dialed a new connection: %d conns, want 3", conns)
	}
}

func TestClientPoolDialGate(t *testing.T) {
	s := poolBroker(t)
	p := NewClientPool(PoolConfig{
		URL:             "amqp://" + s.Addr(),
		SessionsPerConn: 2,
		DialGate:        func() bool { return false },
	})
	defer p.Close()

	// The gate refuses growth, so everything packs onto the first
	// connection (dialed ungated — a pool must carry at least one).
	for i := 0; i < 8; i++ {
		if _, err := p.Session(); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if conns, open := p.Stats(); conns != 1 || open != 8 {
		t.Fatalf("got %d conns / %d sessions, want 1 / 8 under closed gate", conns, open)
	}
}

func TestClientPoolSiblingSharesConn(t *testing.T) {
	s := poolBroker(t)
	p := NewClientPool(PoolConfig{URL: "amqp://" + s.Addr(), SessionsPerConn: 1, MaxConns: 2})
	defer p.Close()

	a, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	sib, err := a.Sibling()
	if err != nil {
		t.Fatal(err)
	}
	if sib.Conn() != a.Conn() {
		t.Fatal("sibling landed on a different physical connection")
	}
	if _, open := p.Stats(); open != 2 {
		t.Fatalf("sibling not counted: %d sessions, want 2", open)
	}
	if err := sib.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Conn().IsClosed() {
		t.Fatal("closing a sibling closed the shared connection")
	}
}

// TestPoolSharedConnFlapResumesOnlyItsSessions is the multiplexed
// reconnect contract: when one physical connection flaps, every session
// mapped onto it resumes — channel state, consumers, and unconfirmed
// publishes replay — while sessions on sibling connections never notice.
func TestPoolSharedConnFlapResumesOnlyItsSessions(t *testing.T) {
	s := poolBroker(t)
	p := NewClientPool(PoolConfig{
		URL: "amqp://" + s.Addr(),
		Config: Config{
			Reconnect: &ReconnectPolicy{MaxAttempts: 50, Delay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		},
		SessionsPerConn: 2,
		MaxConns:        2,
	})
	defer p.Close()

	// Four sessions over two connections, each with its own queue and a
	// channel-based consumer.
	var sessions []*Session
	var inboxes []<-chan Delivery
	for i := 0; i < 4; i++ {
		sess, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		q := fmt.Sprintf("flap-q-%d", i)
		if _, err := sess.QueueDeclare(q, false, false, false, false, nil); err != nil {
			t.Fatal(err)
		}
		deliveries, err := sess.Consume(q, "", true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		inboxes = append(inboxes, deliveries)
	}
	if conns, open := p.Stats(); conns != 2 || open != 4 {
		t.Fatalf("got %d conns / %d sessions, want 2 / 4", conns, open)
	}

	publish := func(i int, body string) {
		t.Helper()
		// A publish racing the flap may see the dying transport; the
		// producer contract is to republish, as the pattern layer does.
		waitFor(t, "publish "+body, func() bool {
			return sessions[i].Publish("", fmt.Sprintf("flap-q-%d", i), false, false,
				Publishing{Body: []byte(body)}) == nil
		})
	}
	expect := func(i int, body string) {
		t.Helper()
		select {
		case d, ok := <-inboxes[i]:
			if !ok {
				t.Fatalf("session %d: delivery channel closed", i)
			}
			if string(d.Body) != body {
				t.Fatalf("session %d: got %q, want %q", i, d.Body, body)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("session %d: no delivery of %q", i, body)
		}
	}
	for i := range sessions {
		publish(i, "warm")
		expect(i, "warm")
	}

	// Group sessions by physical connection and put one victim session in
	// confirm mode so the flap leaves an unconfirmed publish behind.
	victimConn := sessions[0].Conn()
	var victims, bystanders []int
	for i, sess := range sessions {
		if sess.Conn() == victimConn {
			victims = append(victims, i)
		} else {
			bystanders = append(bystanders, i)
		}
	}
	if len(victims) != 2 || len(bystanders) != 2 {
		t.Fatalf("placement: %d/%d sessions on victim/sibling conn, want 2/2", len(victims), len(bystanders))
	}
	siblingConn := sessions[bystanders[0]].Conn()
	confirmer := sessions[victims[0]]
	if err := confirmer.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := confirmer.NotifyPublish(make(chan Confirmation, 4))

	victimConn.dropTransport()
	// Publish into the outage on the confirm-mode victim: the write lands
	// on the dead (or resuming) transport and must be replayed.
	publish(victims[0], "outage")

	waitFor(t, "victim reconnect", func() bool { return victimConn.Reconnects() >= 1 })
	expect(victims[0], "outage")
	select {
	case conf := <-confirms:
		if !conf.Ack {
			t.Fatalf("outage publish nacked: %+v", conf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no confirm for publish spanning the flap")
	}

	// Every victim session resumed: consumers were replayed onto the new
	// transport. Sibling sessions kept working and never reconnected.
	for _, i := range victims {
		publish(i, "after")
		expect(i, "after")
	}
	for _, i := range bystanders {
		publish(i, "after")
		expect(i, "after")
	}
	if n := siblingConn.Reconnects(); n != 0 {
		t.Fatalf("sibling connection reconnected %d times; flap should not disturb it", n)
	}
	if conns, open := p.Stats(); conns != 2 || open != 4 {
		t.Fatalf("after flap: %d conns / %d sessions, want 2 / 4", conns, open)
	}
}

func TestPacerScheduleAndSleep(t *testing.T) {
	p := NewPacer()
	defer p.Stop()

	// Callbacks fire in deadline order, not submission order.
	order := make(chan int, 3)
	p.Schedule(30*time.Millisecond, func() { order <- 3 })
	p.Schedule(10*time.Millisecond, func() { order <- 1 })
	p.Schedule(20*time.Millisecond, func() { order <- 2 })
	for want := 1; want <= 3; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("fired %d before %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timer %d never fired", want)
		}
	}

	start := time.Now()
	if err := p.Sleep(context.Background(), 15*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 15ms", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("cancelled Sleep returned %v, want context.Canceled", err)
	}
}

func TestPacerStopUnblocksSleepers(t *testing.T) {
	p := NewPacer()
	done := make(chan error, 1)
	go func() { done <- p.Sleep(context.Background(), time.Hour) }()
	waitFor(t, "sleeper parked", func() bool { return p.Len() == 1 })
	p.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Sleep survived Stop without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep blocked across Stop")
	}
}
