// Package metrics collects and summarizes the two quantities the paper
// reports — aggregate consumer throughput (messages per second) and
// per-message round-trip time — plus the derived streaming overhead of an
// architecture relative to the DTS baseline and the RTT CDFs of Figures 5
// and 8.
//
// The Collector is built on internal/telemetry probes: counts are sharded
// atomic counters and RTTs stream into a fixed-bucket log-scale histogram,
// so recording is mutex-free on the hot path and memory stays bounded no
// matter how many messages a run moves. Percentiles, CDFs and
// fraction-under queries all read from the histogram's buckets, within one
// bucket width (~3% relative) of the exact sorted-sample statistics the
// figures were originally computed from.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"ds2hpc/internal/telemetry"
)

// RTTSample is one per-message round-trip measurement.
type RTTSample = time.Duration

// rttHist mirrors every recorded RTT into the process-wide telemetry
// registry, so exporters (and the bench snapshot) see the cumulative
// tail-latency distribution across all runs.
var rttHist = telemetry.Default.Histogram("rtt_ns")

// Collector accumulates RTT samples and message counts concurrently.
// All recording paths are lock-free; Snapshot freezes a Result.
type Collector struct {
	consumed telemetry.Counter
	produced telemetry.Counter
	errors   telemetry.Counter
	rtt      telemetry.Histogram
	startNs  atomic.Int64
	endNs    atomic.Int64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Start marks the experiment start time.
func (c *Collector) Start() { c.startNs.Store(time.Now().UnixNano()) }

// Stop marks the experiment end time.
func (c *Collector) Stop() { c.endNs.Store(time.Now().UnixNano()) }

// AddRTT records one round-trip sample.
func (c *Collector) AddRTT(d time.Duration) {
	c.rtt.Record(int64(d))
	rttHist.Record(int64(d))
}

// AddConsumed counts delivered messages.
func (c *Collector) AddConsumed(n int64) { c.consumed.Add(n) }

// AddProduced counts published messages.
func (c *Collector) AddProduced(n int64) { c.produced.Add(n) }

// AddError counts failures (rejected publishes, timeouts).
func (c *Collector) AddError() { c.errors.Inc() }

// ConsumedShard returns a per-instance shard of the consumed counter so
// concurrent consumer loops increment disjoint cache lines; capture it
// once at loop setup.
func (c *Collector) ConsumedShard(i int) *telemetry.CounterShard { return c.consumed.Shard(i) }

// ProducedShard is the producer-side counterpart of ConsumedShard.
func (c *Collector) ProducedShard(i int) *telemetry.CounterShard { return c.produced.Shard(i) }

// ConsumedTotal reads the live consumed count (telemetry observers poll
// this while a run is in flight).
func (c *Collector) ConsumedTotal() int64 { return c.consumed.Load() }

// ProducedTotal reads the live produced count.
func (c *Collector) ProducedTotal() int64 { return c.produced.Load() }

// ErrorsTotal reads the live error count.
func (c *Collector) ErrorsTotal() int64 { return c.errors.Load() }

// Snapshot freezes the collector into a Result.
func (c *Collector) Snapshot() *Result {
	end := c.endNs.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	var dur time.Duration
	if start := c.startNs.Load(); start != 0 && end > start {
		dur = time.Duration(end - start)
	}
	r := &Result{
		Duration: dur,
		Consumed: c.consumed.Load(),
		Produced: c.produced.Load(),
		Errors:   c.errors.Load(),
		RTT:      c.rtt.Snapshot(),
	}
	if dur > 0 {
		r.Throughput = float64(r.Consumed) / dur.Seconds()
	}
	return r
}

// Result is one experiment run's summary.
type Result struct {
	Duration   time.Duration
	Consumed   int64
	Produced   int64
	Errors     int64
	Throughput float64 // aggregate msgs/sec across all consumers
	// RTT is the streaming histogram of round-trip samples (ns);
	// percentile and CDF queries read from its buckets.
	RTT *telemetry.HistSnapshot
}

// RTTCount reports the number of recorded round-trip samples.
func (r *Result) RTTCount() int64 {
	if r.RTT == nil {
		return 0
	}
	return r.RTT.Count
}

// MedianRTT returns the 50th percentile RTT (0 if no samples).
func (r *Result) MedianRTT() time.Duration { return r.PercentileRTT(50) }

// PercentileRTT returns the p-th percentile RTT from the histogram
// buckets — within one bucket width of the exact nearest-rank sample.
func (r *Result) PercentileRTT(p float64) time.Duration {
	return time.Duration(r.RTT.Quantile(p))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	RTT time.Duration
	P   float64 // cumulative probability in (0, 1]
}

// CDF returns up to points evenly spaced points of the RTT CDF, as plotted
// in the paper's Figures 5 and 8, read from the histogram buckets.
func (r *Result) CDF(points int) []CDFPoint {
	raw := r.RTT.CDF(points)
	if raw == nil {
		return nil
	}
	out := make([]CDFPoint, len(raw))
	for i, p := range raw {
		out[i] = CDFPoint{RTT: time.Duration(p.V), P: p.P}
	}
	return out
}

// FractionUnder reports the fraction of RTTs at or below the threshold
// (e.g. the paper's "PRS keeps 80% of message RTTs under 0.7 seconds").
func (r *Result) FractionUnder(d time.Duration) float64 {
	return r.RTT.FractionAtOrBelow(int64(d))
}

// Overhead is the paper's derived metric: how much worse `other` is than
// the DTS baseline. For throughput it is base/other (2.0 = "2x overhead",
// i.e. half the baseline's throughput); for RTT it is other/base.
func Overhead(baseThroughput, otherThroughput float64) float64 {
	if otherThroughput <= 0 {
		return math.Inf(1)
	}
	return baseThroughput / otherThroughput
}

// RTTOverhead computes latency overhead relative to baseline.
func RTTOverhead(baseRTT, otherRTT time.Duration) float64 {
	if baseRTT <= 0 {
		return math.Inf(1)
	}
	return float64(otherRTT) / float64(baseRTT)
}

// Merge combines run results (averaging throughput, merging RTT
// histograms — exact, since all histograms share bucket boundaries),
// used to aggregate the paper's three runs per data point.
func Merge(runs []*Result) *Result {
	if len(runs) == 0 {
		return &Result{RTT: &telemetry.HistSnapshot{}}
	}
	out := &Result{RTT: &telemetry.HistSnapshot{}}
	var tp float64
	for _, r := range runs {
		out.Consumed += r.Consumed
		out.Produced += r.Produced
		out.Errors += r.Errors
		out.Duration += r.Duration
		tp += r.Throughput
		out.RTT.Merge(r.RTT)
	}
	out.Throughput = tp / float64(len(runs))
	out.Duration /= time.Duration(len(runs))
	return out
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("consumed=%d throughput=%.1f msg/s median_rtt=%v errors=%d",
		r.Consumed, r.Throughput, r.MedianRTT(), r.Errors)
}
