# Developer entry points. Tier-1 verification matches CI: build, vet,
# race-tested unit suite, and the short paper-figure suite.

# bench-snapshot pipes `go test` into benchsnap; pipefail keeps a failing
# bench run from being masked by a successful parse of its partial output.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO ?= go
# PR labels the bench snapshot file (BENCH_<PR>.json).
PR ?= dev

# BENCH_PATTERN selects the snapshot benchmarks: the ablation and
# overhead benches (the figure harness hot paths), the resilience
# fault-rate sweep introduced with the transport hop stack, the
# Fig6a feedback bench so the embedded telemetry snapshot's rtt_ns
# histogram carries real round-trip samples (tail latency, not just
# means), the broker fanout publish→deliver microbench (the zero-copy
# data-plane trajectory point) plus its durable twin (the price of
# crash safety on the same path), and the raw seglog append/replay
# benches (the durability engine in isolation), and the durability×payload
# cross (fsync tax vs payload amortization on durable queues), and the
# federation forward bench (zero-copy publish crossing an inter-node link),
# and the tagged-counter bench (interned-context probe lookup, pinned at
# 0 allocs/op), and the mirrored publish bench (the confirm-path price of
# synchronous replication, R=1 vs R=2).
BENCH_PATTERN ?= BenchmarkAblationAckBatching|BenchmarkAblationWorkQueues|BenchmarkAblationDurabilityPayload|BenchmarkOverheadVsDTS|BenchmarkResilienceFaultRate|BenchmarkFig6aDstreamFeedbackRTT|BenchmarkFanoutPublishDeliver|BenchmarkDurableFanoutPublishDeliver|BenchmarkSeglogAppend|BenchmarkSeglogReplay|BenchmarkFederationForward|BenchmarkTaggedCounter|BenchmarkMirroredPublishDeliver

# MICRO_ITERS fixes the iteration count for the broker microbenchmarks:
# unlike the figure benches (one timed scenario run each, hence 1x), the
# per-message data-plane benches need real iteration counts for a stable
# ns/op, and a fixed count keeps successive snapshots comparable.
MICRO_ITERS ?= 20000x

# SCALE_ITERS fixes the per-size iteration count for BenchmarkClientScale
# (internal/amqp): each size builds its client fleet once, then publishes
# exactly this many messages through it, so bytes/client and ns/op are
# comparable across snapshots without rebuilding 10⁵ sessions per round.
SCALE_ITERS ?= 2000x

.PHONY: test race short smoke bench-snapshot

test:
	$(GO) build ./...
	$(GO) test ./...

# smoke exercises the declarative scenario path end to end: every
# checked-in example spec (short scale) runs through `streamsim scenario`,
# including the fault-script and pipeline specs. The linkflap spec runs
# a second time with -watch so the live telemetry rollup path (probe →
# aggregator → OnTick) is exercised under injected faults. The
# crashrestart spec hard-kills every broker node mid-run and recovers
# durable queues from their segment logs; coldreplay attaches a late
# consumer at offset 0 and replays retained history. The scale10k spec
# runs 10⁴ pooled clients under a goroutine budget, via the -clients
# override so the flag path is exercised too. The failover spec runs a
# 3-node ring-placed cluster and hard-kills the busiest queue master
# mid-run: consumers follow redirects to the new master and nothing
# confirmed is lost. The failover_replicated spec raises the stakes:
# replication factor 2 and a rolling double kill — master first, then the
# node its mirror was promoted onto — survived on synchronous mirrors
# with zero segment-log relocation.
smoke:
	$(GO) run ./cmd/streamsim scenario examples/scenario/worksharing.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/pipeline.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/linkflap.json
	$(GO) run ./cmd/streamsim scenario -watch examples/scenario/linkflap.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/crashrestart.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/coldreplay.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/failover.json
	$(GO) run ./cmd/streamsim scenario examples/scenario/failover_replicated.json
	$(GO) run ./cmd/streamsim scenario -clients 10000 examples/scenario/scale10k.json

race:
	$(GO) vet ./...
	$(GO) test -race ./...

short:
	$(GO) test -short -count=1 .

# bench-snapshot runs the short figure benchmarks once with -benchmem and
# writes BENCH_$(PR).json — the machine-readable perf trajectory point for
# this PR. Keep -benchtime 1x: the goal is a comparable snapshot per PR,
# not statistical precision.
# The root figure harness runs first so its TestMain telemetry snapshot
# line is the one benchsnap embeds; the broker microbench output follows
# in the same stream, then the client-scale sweep (1k/10k/100k pooled
# clients — ns/op per delivered message, bytes/client, conns).
bench-snapshot:
	( $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem . && \
	  $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(MICRO_ITERS) -benchmem ./internal/broker ./internal/broker/seglog ./internal/cluster ./internal/telemetry && \
	  $(GO) test -run '^$$' -bench 'BenchmarkClientScale' -benchtime $(SCALE_ITERS) -benchmem ./internal/amqp ) \
		| $(GO) run ./cmd/benchsnap -out BENCH_$(PR).json
