// LCLS example: an LCLStream-style edge-to-HPC analysis loop (paper §5.1).
//
// MPI-launched detector producers stream 1 MiB HDF5 frame files through the
// Direct Streaming architecture into shared work queues; MPI-launched
// analysis ranks decode the frames, run a mock Bragg-peak segmentation, and
// send steering feedback (parameter recommendations) back to the producers
// through per-producer reply queues — the LCLS workflow where "AI models
// identify Bragg peaks and recommend parameter changes while the sample is
// still in the beam".
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/core"
	"ds2hpc/internal/fabric"
	"ds2hpc/internal/payload/h5lite"
	"ds2hpc/internal/ranks"
)

const (
	producerRanks = 4
	consumerRanks = 4
	framesPerRank = 6
	frameBytes    = 256 * 1024 // scaled-down 1 MiB frames for a fast demo
	workQueue     = "lcls-frames"
)

func main() {
	// Deploy DTS on a scaled ACE fabric: producers/consumers connect to
	// node-exposed AMQPS ports.
	p := fabric.ACE(0.2)
	dep, err := core.Deploy(core.DTS, core.Options{Nodes: 3, Profile: p})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Println("DTS deployment up (AMQPS node ports)")

	// Declare the shared frame queue and per-producer steering queues
	// (co-located with the frame queue so consumers reply over their
	// existing connection).
	declare(dep, workQueue)
	steering := make([]string, producerRanks)
	for i := range steering {
		steering[i] = coLocated(dep, fmt.Sprintf("lcls-steer-%d", i), workQueue)
		declare(dep, steering[i])
	}

	var peaks, framesDone atomic.Int64
	start := time.Now()

	// Analysis ranks (MPI-style) consume frames and send steering.
	go func() {
		err := ranks.NewGroup(consumerRanks).Run(func(r *ranks.Rank) error {
			r.Barrier()
			return analysisRank(dep, r, &peaks, &framesDone)
		})
		if err != nil {
			log.Print("analysis group:", err)
		}
	}()
	time.Sleep(200 * time.Millisecond) // consumers first (§5.2)

	// Detector ranks stream frames and collect steering feedback.
	err = ranks.NewGroup(producerRanks).Run(func(r *ranks.Rank) error {
		r.Barrier() // synchronized beam start
		return detectorRank(dep, r, steering[r.ID()])
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	total := int64(producerRanks * framesPerRank)
	fmt.Printf("streamed and analyzed %d frames (%d KiB each) in %v\n",
		total, frameBytes/1024, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f frames/sec, %.1f MiB/sec\n",
		float64(total)/elapsed.Seconds(),
		float64(total*frameBytes)/elapsed.Seconds()/(1<<20))
	fmt.Printf("mock Bragg peaks found: %d\n", peaks.Load())
}

func detectorRank(dep core.Deployment, r *ranks.Rank, steerQ string) error {
	conn, err := dep.ProducerEndpoint(workQueue).Connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		return err
	}
	steerCh, err := conn.Channel()
	if err != nil {
		return err
	}
	steer, err := steerCh.Consume(steerQ, "", true, false, false, false, nil)
	if err != nil {
		return err
	}

	for f := 0; f < framesPerRank; f++ {
		frame, err := h5lite.NewFrameFile(uint64(r.ID()*1000+f), frameBytes)
		if err != nil {
			return err
		}
		body, err := frame.Encode()
		if err != nil {
			return err
		}
		if err := ch.Publish("", workQueue, false, false, amqp.Publishing{
			ContentType: "application/x-hdf5",
			ReplyTo:     steerQ,
			MessageID:   fmt.Sprintf("run7-det%d-frame%d", r.ID(), f),
			Timestamp:   uint64(time.Now().UnixNano()),
			Body:        body,
		}); err != nil {
			return err
		}
		// Wait for the steering recommendation before the next exposure
		// — the experiment-steering loop.
		select {
		case rec := <-steer:
			_ = rec // e.g. adjust beam attenuation
		case <-time.After(30 * time.Second):
			return fmt.Errorf("detector %d: no steering for frame %d", r.ID(), f)
		}
	}
	return nil
}

func analysisRank(dep core.Deployment, r *ranks.Rank, peaks, framesDone *atomic.Int64) error {
	conn, err := dep.ConsumerEndpoint(workQueue).Connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		return err
	}
	if err := ch.Qos(2, 0, false); err != nil {
		return err
	}
	deliveries, err := ch.Consume(workQueue, fmt.Sprintf("analysis-%d", r.ID()), false, false, false, false, nil)
	if err != nil {
		return err
	}
	total := int64(producerRanks * framesPerRank)
	for d := range deliveries {
		file, err := h5lite.Decode(d.Body)
		if err != nil {
			d.Nack(false, false)
			continue
		}
		n := segmentPeaks(file)
		peaks.Add(int64(n))
		if d.ReplyTo != "" {
			rec := fmt.Sprintf(`{"recommendation":"keep","peaks":%d}`, n)
			if err := ch.Publish("", d.ReplyTo, false, false, amqp.Publishing{
				ContentType:   "application/json",
				CorrelationID: d.MessageID,
				Body:          []byte(rec),
			}); err != nil {
				return err
			}
		}
		d.Ack(false)
		if framesDone.Add(1) >= total {
			return nil
		}
	}
	return nil
}

// segmentPeaks is a stand-in for the Bragg-peak segmentation model: it
// counts 16-bit pixels above a threshold in the frame dataset.
func segmentPeaks(f *h5lite.File) int {
	ds, ok := f.Dataset("entry/data/frame")
	if !ok {
		return 0
	}
	count := 0
	for i := 0; i+1 < len(ds.Data); i += 2 {
		if binary.LittleEndian.Uint16(ds.Data[i:]) > 0xFF00 {
			count++
		}
	}
	return count
}

func declare(dep core.Deployment, queue string) {
	conn, err := dep.ConsumerEndpoint(queue).Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	ch, _ := conn.Channel()
	if _, err := ch.QueueDeclare(queue, true, false, false, false, amqp.Table{
		"x-overflow": "reject-publish",
	}); err != nil {
		log.Fatal(err)
	}
}

// coLocated derives a queue name sharing ref's master node.
func coLocated(dep core.Deployment, base, ref string) string {
	cl := dep.Cluster()
	want := cl.OwnerOf(ref)
	name := base
	for i := 0; cl.OwnerOf(name) != want; i++ {
		name = fmt.Sprintf("%s~%d", base, i)
	}
	return name
}
