package broker

import (
	"fmt"
	"testing"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/wire"
)

// BenchmarkFanoutPublishDeliver measures the broker data plane in
// isolation: assemble one message body (as ingest does from frame
// payloads), route it through a fanout exchange into every bound queue,
// drain each queue's consumer outbox, and acknowledge. It is the
// structural hot path behind every streaming-rate figure — the per-op
// cost here bounds broker throughput before the wire is even touched.
// BenchmarkDurableFanoutPublishDeliver is the durable twin of
// BenchmarkFanoutPublishDeliver: the same fanout publish → deliver → ack
// cycle, but every queue persists to an append-only segment log
// (fsync=never, so the OS page cache absorbs the writes and the benchmark
// isolates the CPU cost of durability: CRC framing, offset bookkeeping,
// settlement commits). The delta against the in-memory benchmark is the
// paper-facing price of crash safety on the broker hot path.
func BenchmarkDurableFanoutPublishDeliver(b *testing.B) {
	for _, fan := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("queues=%d", fan), func(b *testing.B) {
			vh := NewVHost("/")
			vh.logDir = b.TempDir()
			vh.logOpts = seglog.Options{Fsync: seglog.FsyncNever}
			e, err := vh.DeclareExchange("fan", KindFanout, false)
			if err != nil {
				b.Fatal(err)
			}
			queues := make([]*Queue, fan)
			conss := make([]*consumer, fan)
			for i := range queues {
				q, err := vh.DeclareQueue(fmt.Sprintf("bench-dfan-%d", i), true, false, false, false, nil)
				if err != nil {
					b.Fatal(err)
				}
				e.Bind(q, "")
				c, err := q.AddConsumer("c", false, 8)
				if err != nil {
					b.Fatal(err)
				}
				queues[i], conss[i] = q, c
			}
			defer vh.crash()
			payload := make([]byte, 4096)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg := NewMessage("fan", "", wire.Properties{}, len(payload))
				msg.AppendBody(payload)
				if _, err := vh.Publish("fan", "", msg); err != nil {
					b.Fatal(err)
				}
				msg.Release() // publisher's reference
				for j, c := range conss {
					d := <-c.outbox
					queues[j].DeliveryDoneN(c, 1)
					queues[j].AckN(c, 1)
					d.msg.Release() // queue's reference, resolved by the ack
				}
			}
		})
	}
}

func BenchmarkFanoutPublishDeliver(b *testing.B) {
	for _, fan := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("queues=%d", fan), func(b *testing.B) {
			vh := NewVHost("/")
			e, err := vh.DeclareExchange("fan", KindFanout, false)
			if err != nil {
				b.Fatal(err)
			}
			queues := make([]*Queue, fan)
			conss := make([]*consumer, fan)
			for i := range queues {
				q, err := vh.DeclareQueue(fmt.Sprintf("bench-fan-%d", i), false, false, false, false, nil)
				if err != nil {
					b.Fatal(err)
				}
				e.Bind(q, "")
				c, err := q.AddConsumer("c", false, 8)
				if err != nil {
					b.Fatal(err)
				}
				queues[i], conss[i] = q, c
			}
			payload := make([]byte, 4096)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Ingest: the body arrives as frame payloads and is
				// assembled into one pooled buffer presized from the
				// content header's BodySize.
				msg := NewMessage("fan", "", wire.Properties{}, len(payload))
				msg.AppendBody(payload)
				if _, err := vh.Publish("fan", "", msg); err != nil {
					b.Fatal(err)
				}
				msg.Release() // publisher's reference
				for j, c := range conss {
					d := <-c.outbox
					queues[j].DeliveryDoneN(c, 1)
					queues[j].AckN(c, 1)
					d.msg.Release() // queue's reference, resolved by the ack
				}
			}
		})
	}
}
