package seglog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ds2hpc/internal/wire"
)

func mustAppend(t *testing.T, l *Log, body string) uint64 {
	t.Helper()
	off, err := l.Append("ex", "key", &wire.Properties{DeliveryMode: wire.Persistent}, []byte(body))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return off
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(rec.Unacked) != 0 || rec.Records != 0 {
		t.Fatalf("fresh log reported recovery %+v", rec)
	}
	props := &wire.Properties{
		ContentType:   "application/octet-stream",
		DeliveryMode:  wire.Persistent,
		CorrelationID: "corr-7",
		Timestamp:     1234567890,
		Headers:       wire.Table{"x-rank": int32(3)},
	}
	for i := 0; i < 5; i++ {
		off, err := l.Append("amq.direct", fmt.Sprintf("rk.%d", i), props, []byte(fmt.Sprintf("body-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if off != uint64(i) {
			t.Fatalf("append %d: offset %d", i, off)
		}
	}
	if err := l.Ack(1); err != nil {
		t.Fatalf("ack: %v", err)
	}
	if err := l.AckAll([]uint64{3, 4}); err != nil {
		t.Fatalf("ackall: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec2.Records != 5 || rec2.Truncated {
		t.Fatalf("recovery %+v, want 5 clean records", rec2)
	}
	var got []uint64
	for _, r := range rec2.Unacked {
		got = append(got, r.Offset)
	}
	if fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("unacked offsets %v, want [0 2]", got)
	}
	r0 := rec2.Unacked[0]
	if r0.Exchange != "amq.direct" || r0.Key != "rk.0" || string(r0.Body) != "body-0" {
		t.Fatalf("record 0 round-trip: %+v body=%q", r0, r0.Body)
	}
	if r0.Props.CorrelationID != "corr-7" || r0.Props.Timestamp != 1234567890 {
		t.Fatalf("properties did not round-trip: %+v", r0.Props)
	}
	if v, ok := r0.Props.Headers["x-rank"].(int32); !ok || v != 3 {
		t.Fatalf("headers did not round-trip: %+v", r0.Props.Headers)
	}
	if next := l2.NextOffset(); next != 5 {
		t.Fatalf("NextOffset=%d, want 5", next)
	}
}

func TestHeadCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		mustAppend(t, l, fmt.Sprintf("payload-%d", i))
	}
	head := headSeq(l)
	// Ack out of order: 1 first must NOT release the head (0 unacked).
	if err := l.Ack(1); err != nil {
		t.Fatal(err)
	}
	if got := headSeq(l); got != head {
		t.Fatalf("head segment %d after mid ack, want %d (head-only compaction)", got, head)
	}
	if err := l.Ack(0); err != nil {
		t.Fatal(err)
	}
	if got := headSeq(l); got <= head+1 {
		t.Fatalf("head segment %d after head drain, want both drained segments gone (> %d)", got, head+1)
	}
	// Offsets 2,3 still recoverable after reopen.
	l.Close()
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	var got []uint64
	for _, r := range rec.Unacked {
		got = append(got, r.Offset)
	}
	if fmt.Sprint(got) != "[2 3]" {
		t.Fatalf("unacked after compaction %v, want [2 3]", got)
	}
}

func TestRetainAllKeepsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1, RetainAll: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		mustAppend(t, l, "x")
	}
	if err := l.AckAll([]uint64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got < 3 {
		t.Fatalf("RetainAll log compacted to %d segments", got)
	}
}

func TestCrashDropsUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, l, "survives")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "buffered-only")
	l.Crash() // no flush: the second record must die with the buffer

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	if rec.Records != 1 || len(rec.Unacked) != 1 {
		t.Fatalf("recovered %d records (%d unacked), want exactly the synced one", rec.Records, len(rec.Unacked))
	}
	if string(rec.Unacked[0].Body) != "survives" {
		t.Fatalf("recovered %q", rec.Unacked[0].Body)
	}
}

func TestFsyncAlwaysSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 8; i++ {
		mustAppend(t, l, fmt.Sprintf("msg-%d", i))
	}
	l.Crash()
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Records != 8 {
		t.Fatalf("fsync=always lost records: recovered %d of 8", rec.Records)
	}
}

func TestFsyncIntervalSyncs(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, l, "ticked")
	deadline := time.Now().Add(2 * time.Second)
	for {
		// The interval syncer flushes the buffer; once it has run, a
		// crash must not lose the record.
		st, err := os.Stat(activeSegPath(t, l))
		if err == nil && st.Size() > fileHeaderSize {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	l.Crash()
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Records != 1 {
		t.Fatalf("recovered %d records, want the interval-synced one", rec.Records)
	}
}

func headSeq(l *Log) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].seq
}

func activeSegPath(t *testing.T, l *Log) string {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[len(l.segs)-1].path
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]Fsync{"": FsyncNever, "never": FsyncNever, "always": FsyncAlways, "interval": FsyncInterval} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("ParseFsync accepted garbage")
	}
}

func TestReaderReplaysAndFollowsTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256, RetainAll: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("hot-%d", i))
	}
	// Acks interleaved in the stream must be invisible to replay.
	if err := l.AckAll([]uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	defer close(stop)
	r := l.NewReader(0)
	defer r.Close()
	for i := 0; i < 10; i++ {
		rec, err := r.Next(stop)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if rec.Offset != uint64(i) || string(rec.Body) != fmt.Sprintf("hot-%d", i) {
			t.Fatalf("replay %d: off=%d body=%q", i, rec.Offset, rec.Body)
		}
	}

	// Tail-follow: the next record arrives while the reader blocks.
	got := make(chan *Record, 1)
	errs := make(chan error, 1)
	go func() {
		rec, err := r.Next(stop)
		if err != nil {
			errs <- err
			return
		}
		got <- rec
	}()
	time.Sleep(10 * time.Millisecond)
	mustAppend(t, l, "live-tail")
	select {
	case rec := <-got:
		if rec.Offset != 10 || string(rec.Body) != "live-tail" {
			t.Fatalf("tail record off=%d body=%q", rec.Offset, rec.Body)
		}
	case err := <-errs:
		t.Fatalf("tail follow: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("reader never saw the tail append")
	}
}

func TestReaderFromMidOffsetAndStop(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{RetainAll: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		mustAppend(t, l, fmt.Sprintf("m-%d", i))
	}
	stop := make(chan struct{})
	r := l.NewReader(4)
	defer r.Close()
	for want := 4; want < 6; want++ {
		rec, err := r.Next(stop)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Offset != uint64(want) {
			t.Fatalf("offset %d, want %d", rec.Offset, want)
		}
	}
	errs := make(chan error, 1)
	go func() {
		_, err := r.Next(stop)
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case err := <-errs:
		if err != ErrStopped {
			t.Fatalf("stopped reader returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader ignored stop")
	}
}

func TestReaderSeesClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r := l.NewReader(0)
	defer r.Close()
	errs := make(chan error, 1)
	go func() {
		_, err := r.Next(nil)
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-errs:
		if err != ErrClosed {
			t.Fatalf("reader on closed log returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not observe log close")
	}
}

func TestRemoveDeletesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "q")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, l, "gone")
	if err := l.Remove(); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("log dir still present: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Close()
	if _, err := l.Append("e", "k", &wire.Properties{}, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Ack(0); err != ErrClosed {
		t.Fatalf("ack after close: %v", err)
	}
}

func TestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if rec.Records != 0 || rec.Truncated {
		t.Fatalf("foreign file treated as segment: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
}

func TestDiskBytesTracksAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	base := l.DiskBytes()
	body := bytes.Repeat([]byte("z"), 100)
	if _, err := l.Append("e", "k", &wire.Properties{}, body); err != nil {
		t.Fatal(err)
	}
	if got := l.DiskBytes(); got <= base+100 {
		t.Fatalf("DiskBytes=%d after 100-byte body (base %d)", got, base)
	}
}
