package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// recover scans the directory's segment chain in sequence order,
// truncates the first torn or corrupt record (and drops every segment
// after it — recovery keeps exactly the prefix of intact records), and
// rebuilds the in-memory accounting plus the set of unacked records.
func (l *Log) recover() (*Recovery, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	rec := &Recovery{}
	type liveRec struct {
		r   *Record
		seg *segment
	}
	var live []liveRec
	index := map[uint64]int{} // data offset -> live index
	corrupt := false
	seenAny := false // a record sequence anchor exists
	for _, seq := range seqs {
		path := filepath.Join(l.dir, segName(seq))
		if corrupt {
			// Everything after the first damaged record is dropped,
			// even if it would scan clean: replay is a prefix.
			if st, err := os.Stat(path); err == nil {
				rec.TruncatedBytes += st.Size()
			}
			os.Remove(path)
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("seglog: %w", err)
		}
		base, err := parseFileHeader(raw)
		if err != nil {
			// A damaged header forfeits the whole segment and the rest
			// of the chain.
			rec.Truncated = true
			rec.TruncatedBytes += int64(len(raw))
			corrupt = true
			os.Remove(path)
			continue
		}
		seg := &segment{seq: seq, base: base, path: path, sealed: true}
		pos := fileHeaderSize
		for {
			if pos+recHeaderSize > len(raw) {
				break
			}
			crc, plen, typ, recSeq, off := parseRecHeader(raw[pos:])
			if plen < 0 || plen > maxRecordBytes || (typ != recData && typ != recAck) {
				break
			}
			end := pos + recHeaderSize + plen
			if end > len(raw) {
				break
			}
			payload := raw[pos+recHeaderSize : end]
			if recCRC(raw[pos+4:pos+recHeaderSize], payload) != crc {
				break
			}
			// The retained chain must be seq-contiguous: a gap means a
			// cleanly sliced-off tail whose survivors all still checksum
			// — drop from the gap on, like any other damage.
			if seenAny && recSeq != l.recSeq {
				break
			}
			seenAny = true
			l.recSeq = recSeq + 1
			switch typ {
			case recData:
				r, err := decodeDataPayload(off, payload)
				if err != nil {
					// Framing intact but contents unparseable: treat as
					// the first damaged record.
					goto done
				}
				index[off] = len(live)
				live = append(live, liveRec{r: r, seg: seg})
				if seg.data == 0 {
					seg.firstOff = off
				}
				seg.data++
				seg.unacked++
				seg.lastOff = off
				rec.Records++
				if off >= l.next {
					l.next = off + 1
				}
			case recAck:
				if i, ok := index[off]; ok {
					live[i].r = nil
					if live[i].seg.unacked > 0 {
						live[i].seg.unacked--
					}
					delete(index, off)
				}
			}
			pos = end
		}
	done:
		if pos < len(raw) {
			rec.Truncated = true
			rec.TruncatedBytes += int64(len(raw) - pos)
			corrupt = true
			if err := os.Truncate(path, int64(pos)); err != nil {
				return nil, fmt.Errorf("seglog: truncate torn tail: %w", err)
			}
		}
		seg.size = int64(pos)
		l.segs = append(l.segs, seg)
		l.diskBytes += seg.size
		telSegments.Add(1)
		telSegmentBytes.Add(seg.size)
	}
	l.compactLocked()
	for _, lr := range live {
		if lr.r != nil {
			rec.Unacked = append(rec.Unacked, lr.r)
		}
	}
	return rec, nil
}
