package broker

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"ds2hpc/internal/amqp"
	"ds2hpc/internal/broker/seglog"
)

// TestDurableHardKillRecovery is the headline crash scenario, end to end
// over real AMQP: a publisher streams confirmed messages into a durable
// queue (fsync=always, so confirm implies durable), the broker settles a
// prefix of them as acked, and then the node is hard-killed mid-publish —
// Server.Crash drops unflushed buffers and connections with no graceful
// teardown, exactly as SIGKILL would. A second broker recovering from the
// same data directory must re-enqueue exactly the confirmed-but-unsettled
// messages: zero acked-message loss, no resurrection of settled ones, and
// nothing the log never confirmed.
func TestDurableHardKillRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Addr:       "127.0.0.1:0",
		DataDir:    dir,
		Durability: seglog.Options{Fsync: seglog.FsyncAlways},
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := amqp.Dial("amqp://" + s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := ch.NotifyPublish(make(chan amqp.Confirmation, 1024))
	if _, err := ch.QueueDeclare("crash-q", true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}

	// Confirmation collector: tag i corresponds to the i-th publish
	// (1-based), i.e. body "msg-<i-1>".
	var mu sync.Mutex
	confirmed := map[uint64]bool{}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for c := range confirms {
			if c.Ack {
				mu.Lock()
				confirmed[c.DeliveryTag] = true
				mu.Unlock()
			}
		}
	}()

	// Publisher: streams until the crash kills the connection. published
	// counts bodies handed to the client, an upper bound on what can ever
	// be recovered.
	var published int
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			err := ch.Publish("", "crash-q", false, false, amqp.Publishing{
				DeliveryMode: 2,
				Body:         []byte(fmt.Sprintf("msg-%d", i)),
			})
			if err != nil {
				return
			}
			mu.Lock()
			published = i + 1
			mu.Unlock()
		}
	}()

	// Let the stream establish, then settle a prefix server-side through
	// the real ack path (pop + commit — what basic.ack does), so recovery
	// must prove settled messages stay dead.
	q, _ := s.VHost("/").Queue("crash-q")
	deadline := time.Now().Add(5 * time.Second)
	for q.Len() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("publisher stalled: queue depth %d", q.Len())
		}
		time.Sleep(time.Millisecond)
	}
	settled := map[string]bool{}
	for i := 0; i < 15; i++ {
		m, off, _, _, ok := q.Get()
		if !ok {
			t.Fatal("settle pop came up empty")
		}
		settled[string(m.Body)] = true
		m.Release()
		q.Commit(off)
	}

	// Hard kill, mid-publish.
	s.Crash()
	conn.Close() // unblocks the client goroutines promptly
	<-pubDone
	select {
	case <-collectorDone:
	case <-time.After(5 * time.Second):
		t.Fatal("confirmation collector did not drain")
	}

	mu.Lock()
	wantAlive := map[string]bool{}
	for tag := range confirmed {
		body := fmt.Sprintf("msg-%d", tag-1)
		if !settled[body] {
			wantAlive[body] = true
		}
	}
	pubCount := published
	mu.Unlock()
	if len(wantAlive) == 0 {
		t.Fatal("no confirmed-unsettled messages before the crash; test proved nothing")
	}

	// Recover on a fresh node from the same data directory.
	s2, err := Listen(Config{Addr: "127.0.0.1:0", DataDir: dir, Durability: cfg.Durability})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	q2, ok := s2.VHost("/").Queue("crash-q")
	if !ok {
		t.Fatal("durable queue not recovered")
	}
	recovered := map[string]bool{}
	for {
		m, off, redelivered, _, ok := q2.Get()
		if !ok {
			break
		}
		if !redelivered {
			t.Errorf("recovered %q not flagged redelivered", m.Body)
		}
		recovered[string(m.Body)] = true
		m.Release()
		q2.Commit(off)
	}

	// Zero acked-message loss: everything confirmed and unsettled is back.
	for body := range wantAlive {
		if !recovered[body] {
			t.Errorf("confirmed message %q lost across the crash", body)
		}
	}
	// No resurrection, no phantoms: recovered ⊆ published minus settled.
	for body := range recovered {
		if settled[body] {
			t.Errorf("settled message %q resurrected by recovery", body)
		}
	}
	if len(recovered) > pubCount {
		t.Errorf("recovered %d messages, published only %d", len(recovered), pubCount)
	}
	t.Logf("published≥%d confirmed=%d settled=%d recovered=%d",
		pubCount, len(wantAlive)+len(settled), len(settled), len(recovered))
}

// TestDurableReplayConsumer exercises the cold-replay path end to end: a
// durable queue with full retention is published to and fully consumed
// and acked; a consumer then attaches with x-stream-offset 0 and must
// receive the entire history again, in order, and keep following the
// live tail.
func TestDurableReplayConsumer(t *testing.T) {
	s, err := Listen(Config{
		Addr:       "127.0.0.1:0",
		DataDir:    t.TempDir(),
		Durability: seglog.Options{RetainAll: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := amqp.Dial("amqp://" + s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ch, err := conn.Channel()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Confirm(false); err != nil {
		t.Fatal(err)
	}
	confirms := ch.NotifyPublish(make(chan amqp.Confirmation, 64))
	if _, err := ch.QueueDeclare("replay-q", true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}

	const n = 10
	live, err := ch.Consume("replay-q", "live", false, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ch.Publish("", "replay-q", false, false, amqp.Publishing{
			Body: []byte(fmt.Sprintf("hist-%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
		<-confirms
	}
	for i := 0; i < n; i++ {
		select {
		case d := <-live:
			if err := d.Ack(false); err != nil {
				t.Fatal(err)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("live consumer starved at %d", i)
		}
	}

	// Cold replay from offset 0: the acked history must come back.
	replay, err := ch.Consume("replay-q", "cold", true, false, false, false,
		amqp.Table{"x-stream-offset": int32(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case d := <-replay:
			if want := fmt.Sprintf("hist-%d", i); string(d.Body) != want {
				t.Fatalf("replay[%d] = %q, want %q", i, d.Body, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("replay starved at %d", i)
		}
	}

	// The replay consumer keeps following the tail.
	if err := ch.Publish("", "replay-q", false, false, amqp.Publishing{
		Body: []byte("tail-0"),
	}); err != nil {
		t.Fatal(err)
	}
	<-confirms
	select {
	case d := <-replay:
		if string(d.Body) != "tail-0" {
			t.Fatalf("tail delivery = %q", d.Body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("replay consumer did not follow the tail")
	}
	select {
	case d := <-live:
		if err := d.Ack(false); err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("live consumer missed the tail publish")
	}
}

// TestDurableGracefulCloseRecovery locks in the clean-shutdown contract:
// Close flushes and fsyncs every queue log, so a restart recovers the
// full unacked set with no truncation even under fsync=never.
func TestDurableGracefulCloseRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Listen(Config{Addr: "127.0.0.1:0", DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	vh := s.VHost("/")
	if _, err := vh.DeclareQueue("grace-q", true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		m := newManaged(t, "grace-q", 256)
		if _, err := vh.Publish("", "grace-q", m); err != nil {
			t.Fatal(err)
		}
		m.Release()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Listen(Config{Addr: "127.0.0.1:0", DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	q, ok := s2.VHost("/").Queue("grace-q")
	if !ok {
		t.Fatal("queue not recovered")
	}
	if q.Len() != 7 {
		t.Fatalf("recovered %d messages, want 7", q.Len())
	}
	for q.Len() > 0 {
		m, _, _, _, _ := q.Get()
		m.Release()
	}
}

// TestDurableQueueDeleteRemovesLog: explicit deletion destroys the
// on-disk history — a restart finds nothing to recover.
func TestDurableQueueDeleteRemovesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Listen(Config{Addr: "127.0.0.1:0", DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	vh := s.VHost("/")
	if _, err := vh.DeclareQueue("del-d", true, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	m := newManaged(t, "del-d", 64)
	if _, err := vh.Publish("", "del-d", m); err != nil {
		t.Fatal(err)
	}
	m.Release()
	if _, err := vh.DeleteQueue("del-d", false, false); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Listen(Config{Addr: "127.0.0.1:0", DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.VHost("/").Queue("del-d"); ok {
		t.Fatal("deleted durable queue came back after restart")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sub, _ := os.ReadDir(fmt.Sprintf("%s/%s", dir, e.Name()))
		if len(sub) != 0 {
			t.Fatalf("leftover durable state: %s/%v", e.Name(), sub)
		}
	}
}
