package pattern

import (
	"fmt"

	"ds2hpc/internal/amqp"
)

// BroadcastName is the broadcast phase of §5.5: a single producer
// publishes each message to fanout exchanges delivering to every
// consumer's queue (the pub-sub model). Aggregate consumer throughput is
// reported.
//
// Subscriber queues are spread across the broker nodes (consumer i's queue
// lives on node i mod N), as RabbitMQ places queues on the node the
// declaring client is connected to; the producer publishes one copy per
// node, so every DSN's link participates in the fan-out.
const BroadcastName = "broadcast"

// BroadcastGatherName is the full broadcast-and-gather pattern: alongside
// the broadcast, every consumer replies to a gather exchange whose
// per-node queues the single producer drains; per-reply RTTs are measured
// at the producer.
const BroadcastGatherName = "broadcast-gather"

func init() {
	Register(&Graph{
		Name:           BroadcastName,
		SingleProducer: true,
		Build:          func(cfg *Config) (*Topology, error) { return buildBroadcast(cfg, false) },
	})
	Register(&Graph{
		Name:           BroadcastGatherName,
		SingleProducer: true,
		Build:          func(cfg *Config) (*Topology, error) { return buildBroadcast(cfg, true) },
	})
}

func buildBroadcast(cfg *Config, gather bool) (*Topology, error) {
	const bcastX = "bg-bcast"
	const gatherX = "bg-gather-x"
	nodes := cfg.Deployment.Cluster().Size()
	if nodes > cfg.Consumers {
		nodes = cfg.Consumers
	}
	// Bound queues for the producer's in-flight window (plus prefetch
	// slack); the producer paces itself so these are never exceeded.
	if need := int64(cfg.Window+cfg.Prefetch+4) * int64(cfg.Workload.PayloadBytes) * 2; cfg.QueueBytes < need {
		cfg.QueueBytes = need
	}

	// One declaration group per participating broker node: both exchanges,
	// the node's gather queue, and the subscriber queues of the consumers
	// placed there.
	anchors := make([]string, nodes)
	gatherQ := make([]string, nodes)
	decls := make([]Declarations, nodes)
	for j := 0; j < nodes; j++ {
		anchors[j] = nameOnNode(cfg.Deployment, fmt.Sprintf("bg-anchor-%d", j), j)
		gatherQ[j] = nameOnNode(cfg.Deployment, fmt.Sprintf("bg-gather-%d", j), j)
		decls[j] = Declarations{
			Anchor: anchors[j],
			Exchanges: []ExchangeDecl{
				{Name: bcastX, Kind: "fanout"},
				{Name: gatherX, Kind: "fanout"},
			},
			Queues:   []QueueDecl{{Name: gatherQ[j]}},
			Bindings: []BindingDecl{{Queue: gatherQ[j], Exchange: gatherX}},
		}
	}
	subQ := make([]string, cfg.Consumers)
	for i := range subQ {
		j := i % nodes
		subQ[i] = nameOnNode(cfg.Deployment, fmt.Sprintf("bg-sub-%d", i), j)
		decls[j].Queues = append(decls[j].Queues, QueueDecl{Name: subQ[i]})
		decls[j].Bindings = append(decls[j].Bindings, BindingDecl{Queue: subQ[i], Exchange: bcastX})
	}

	mode := FlowPaced
	var replies func(p int) []ReplySource
	var reply *ReplySpec
	var waitConsumed int64
	if gather {
		mode = FlowClosedLoop
		replies = func(int) []ReplySource {
			// One drain per node, over that node's publish-leg connection.
			srcs := make([]ReplySource, nodes)
			for j := range srcs {
				srcs[j] = ReplySource{Leg: j, Queue: gatherQ[j]}
			}
			return srcs
		}
		// The gather exchange on the consumer's node routes to the
		// node-local gather queue the producer drains.
		reply = &ReplySpec{Exchange: gatherX}
	} else {
		waitConsumed = int64(cfg.MessagesPerProducer) * int64(cfg.Consumers)
	}
	return &Topology{
		Declare: decls,
		Producer: ProducerRole{
			Name: "bg-prod",
			Mode: mode,
			Legs: func(int) []Leg {
				legs := make([]Leg, nodes)
				for j := range legs {
					legs[j] = Leg{Exchange: bcastX, Anchor: anchors[j]}
				}
				return legs
			},
			Replies:       replies,
			RepliesPerMsg: cfg.Consumers,
			PacePerMsg:    cfg.Consumers,
			Props: func(p int, seq uint64) amqp.Publishing {
				return amqp.Publishing{CorrelationID: fmt.Sprintf("bcast-%d", seq)}
			},
		},
		Consumers: []ConsumerRole{{
			Name:   "bg",
			Queue:  func(i int) string { return subQ[i] },
			Reply:  reply,
			Counts: true,
		}},
		WaitConsumed: waitConsumed,
	}, nil
}
