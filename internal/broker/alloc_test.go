package broker

import (
	"testing"

	"ds2hpc/internal/broker/seglog"
	"ds2hpc/internal/wire"
)

// TestAllocsQueuePublishGet locks in the queue hot path: a steady-state
// publish→pop cycle reuses the ready ring and allocates nothing.
func TestAllocsQueuePublishGet(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	msg := &Message{RoutingKey: "q", Body: make([]byte, 2048)}
	// Warm the ring's resident chunk.
	for i := 0; i < 8; i++ {
		if err := q.Publish(msg); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, _, _, _, ok := q.Get(); !ok {
			break
		}
	}
	got := testing.AllocsPerRun(200, func() {
		if err := q.Publish(msg); err != nil {
			t.Fatal(err)
		}
		if _, _, _, _, ok := q.Get(); !ok {
			t.Fatal("queue empty after publish")
		}
	})
	if got > 0 {
		t.Fatalf("queue publish/get allocates %.1f objects/op, want 0", got)
	}
}

// TestAllocsVHostPublish locks in the sharded-routing win: routing a
// message through the default direct exchange resolves via the per-shard
// index and pooled scratch, allocating nothing per publish.
func TestAllocsVHostPublish(t *testing.T) {
	vh := NewVHost("/")
	if _, err := vh.DeclareQueue("ws-q-0", false, false, false, false, nil); err != nil {
		t.Fatal(err)
	}
	q, _ := vh.Queue("ws-q-0")
	msg := &Message{RoutingKey: "ws-q-0", Body: make([]byte, 2048)}
	// Warm the route scratch pool and the ring chunk.
	for i := 0; i < 8; i++ {
		if _, err := vh.Publish("", "ws-q-0", msg); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, _, _, _, ok := q.Get(); !ok {
			break
		}
	}
	got := testing.AllocsPerRun(200, func() {
		routed, err := vh.Publish("", "ws-q-0", msg)
		if err != nil || routed != 1 {
			t.Fatalf("routed=%d err=%v", routed, err)
		}
		if _, _, _, _, ok := q.Get(); !ok {
			t.Fatal("queue empty after publish")
		}
	})
	if got > 0 {
		t.Fatalf("vhost publish allocates %.1f objects/op, want 0", got)
	}
}

// TestAllocsConsumerDeliveryCycle bounds the publish→pump→ack cycle with a
// live consumer: one pooled unacked-entry reuse aside, pushing a message
// through a consumer's outbox and acknowledging it must not allocate.
func TestAllocsConsumerDeliveryCycle(t *testing.T) {
	q := NewQueue("q", QueueLimits{})
	cons, err := q.AddConsumer("ctag", false, 8)
	if err != nil {
		t.Fatal(err)
	}
	msg := &Message{RoutingKey: "q", Body: make([]byte, 2048)}
	cycle := func() {
		if err := q.Publish(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case <-cons.outbox:
		default:
			t.Fatal("no delivery pumped")
		}
		q.DeliveryDoneN(cons, 1)
		q.AckN(cons, 1)
	}
	for i := 0; i < 8; i++ {
		cycle() // warm-up
	}
	got := testing.AllocsPerRun(200, cycle)
	if got > 0 {
		t.Fatalf("delivery cycle allocates %.1f objects/op, want 0", got)
	}
}

// TestAllocsFanoutPublishDeliverManaged locks in the zero-copy tentpole
// end to end at the structure level: assembling a managed message on a
// pooled body, fanning it out to two queues (shared instance, refcount =
// routed count), draining both consumers, and releasing every reference
// runs at zero allocations per message at steady state.
func TestAllocsFanoutPublishDeliverManaged(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a fraction of Puts under the race detector; zero-alloc assertion not meaningful")
	}
	vh := NewVHost("/")
	e, err := vh.DeclareExchange("fan", KindFanout, false)
	if err != nil {
		t.Fatal(err)
	}
	var queues []*Queue
	var conss []*consumer
	for _, name := range []string{"fan-a", "fan-b"} {
		q, err := vh.DeclareQueue(name, false, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Bind(q, "")
		c, err := q.AddConsumer("c", false, 8)
		if err != nil {
			t.Fatal(err)
		}
		queues = append(queues, q)
		conss = append(conss, c)
	}
	payload := make([]byte, 4096)
	cycle := func() {
		m := NewMessage("fan", "", wire.Properties{}, len(payload))
		m.AppendBody(payload)
		routed, err := vh.Publish("fan", "", m)
		if err != nil || routed != 2 {
			t.Fatalf("routed=%d err=%v", routed, err)
		}
		m.Release() // publisher's reference
		for i, c := range conss {
			var d delivery
			select {
			case d = <-c.outbox:
			default:
				t.Fatal("no delivery pumped")
			}
			queues[i].DeliveryDoneN(c, 1)
			queues[i].AckN(c, 1)
			d.msg.Release() // the queue's reference, resolved by the ack
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm pools: body buffers, message headers, ring chunks
	}
	got := testing.AllocsPerRun(200, cycle)
	if got > 0 {
		t.Fatalf("managed fanout publish→deliver allocates %.1f objects/op, want 0", got)
	}
}

// TestAllocsDurableFanoutPublishDeliver locks in the durable hot path's
// allocation budget: publishing a managed message through a fanout into
// two durable queues — each append CRC-framed into its segment log
// (fsync=never) — then draining, acking, and committing the settlement
// offsets must stay at or under one allocation per message at steady
// state. Segment rotation and offset-batch growth amortize to zero over
// the run; anything past 1 alloc/op means durability leaked onto the
// per-message path.
func TestAllocsDurableFanoutPublishDeliver(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a fraction of Puts under the race detector; alloc assertion not meaningful")
	}
	vh := NewVHost("/")
	vh.logDir = t.TempDir()
	vh.logOpts = seglog.Options{Fsync: seglog.FsyncNever}
	e, err := vh.DeclareExchange("fan", KindFanout, false)
	if err != nil {
		t.Fatal(err)
	}
	var queues []*Queue
	var conss []*consumer
	for _, name := range []string{"dfan-a", "dfan-b"} {
		q, err := vh.DeclareQueue(name, true, false, false, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Bind(q, "")
		c, err := q.AddConsumer("c", false, 8)
		if err != nil {
			t.Fatal(err)
		}
		queues = append(queues, q)
		conss = append(conss, c)
	}
	defer vh.crash()
	payload := make([]byte, 4096)
	cycle := func() {
		m := NewMessage("fan", "", wire.Properties{}, len(payload))
		m.AppendBody(payload)
		routed, err := vh.Publish("fan", "", m)
		if err != nil || routed != 2 {
			t.Fatalf("routed=%d err=%v", routed, err)
		}
		m.Release() // publisher's reference
		for i, c := range conss {
			var d delivery
			select {
			case d = <-c.outbox:
			default:
				t.Fatal("no delivery pumped")
			}
			queues[i].DeliveryDoneN(c, 1)
			queues[i].AckN(c, 1)
			d.msg.Release() // the queue's reference, resolved by the ack
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm pools and the segment logs' append buffers
	}
	got := testing.AllocsPerRun(200, cycle)
	if got > 1 {
		t.Fatalf("durable fanout publish→deliver allocates %.1f objects/op, want <= 1", got)
	}
}
