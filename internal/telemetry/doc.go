// Package telemetry is the live observability subsystem: lock-free
// instrumentation probes, a tick-driven time-series aggregator, and
// exporters, so a cross-facility streaming run can be watched while it
// happens instead of summarized after it ends.
//
// The pipeline runs in the style of the datadog-agent aggregator:
//
//	probes ──► aggregator ──► exporters (Prometheus/JSON, pull)
//	                 │
//	                 ├─► health monitor ──► transition log
//	                 └─► forwarder ──► sink (off-box collector, push)
//
// # Probes
//
// Probes are the hot-path primitives. All of them update with atomic
// operations only — no mutex, no allocation — so they can sit on the
// broker publish path or a consumer delivery loop:
//
//   - Counter: a monotonic event counter. Hot goroutines capture a
//     Shard once and add to it, spreading contended increments across
//     cache-line-padded slots; Load sums the shards.
//   - Gauge: an instantaneous level (queue depth, in-flight messages).
//   - Watermark: a monotonic maximum (peak queue depth).
//   - Histogram: a fixed-bucket log-linear streaming histogram of
//     int64 values (nanoseconds, bytes). Memory is bounded (~15 KiB)
//     regardless of sample count, snapshots are mergeable, and
//     percentiles/CDFs are extracted from bucket boundaries with a
//     relative error of at most one bucket width (~3%).
//
// A Registry names probes (optionally with key=value tags) and hands
// out stable pointers; Default is the process-wide registry. GaugeFunc
// and CounterFunc register read-at-export callbacks for values another
// subsystem already maintains (a queue's depth, an atomic server stat).
//
// # Tagged contexts
//
// Intern canonicalizes a "key=value" tag set once (sorted, deduplicated
// by content) into a small integer Context; CounterCtx and friends
// resolve (name, Context) through a read-locked cache, so a hot path
// that keys series by {queue, node, arch} renders tag strings exactly
// once — at interning — and never per lookup or per sample
// (BenchmarkTaggedCounter pins the warm path at 0 allocs/op). A
// context-keyed probe and a tag-keyed probe with the same canonical
// identity are the same probe; the only difference is that Intern
// sorts its tags while Key preserves argument order, so multi-tag call
// sites should pass tags pre-sorted if they mix both styles. SumGauges
// rolls a tagged family up across all of its contexts (total queue
// depth over per-queue gauges).
//
// # Aggregator
//
// An Aggregator snapshots observed sources on a tick (1s by default)
// into ring-buffered time series: counters become per-second rates,
// gauges become levels. Stop performs a final partial tick so runs
// shorter than one interval still produce a data point. An OnTick
// callback delivers each rollup live — this is what `streamsim
// scenario -watch` prints.
//
// # Health checks
//
// A HealthMonitor evaluates declarative HealthRules against every
// tick: above/below threshold rules over a source's level or per-tick
// delta, and flap rules counting downward movements of a gauge. Rules
// carry warn/critical thresholds with For/Clear tick hysteresis; each
// state change is a typed HealthEvent appended to the transition log
// (scenario Reports carry it as HealthEvents) and delivered to an
// OnEvent callback. The default scenario catalog lives in
// internal/scenario (DefaultHealthRules): queue-depth watermark,
// reconnect storm, redirect-followed, federation-link flap, and
// consume stall.
//
// # Exporters
//
// Registry.Snapshot freezes every probe into a JSON-serializable
// Snapshot; WritePrometheus renders a snapshot in the Prometheus text
// exposition format (histograms as cumulative le-buckets). Serve
// exposes both from an opt-in HTTP endpoint: GET /metrics and
// GET /snapshot.json (Shutdown drains in-flight scrapes on teardown).
// For push-style export, the telemetry/forwarder subpackage ships
// ticks, health transitions, and snapshots to an off-box collector
// through a bounded retry queue — see its package documentation.
package telemetry
