package main

import (
	"regexp"
	"strings"
	"testing"
)

func bench(name string, ns, bytes, allocs float64) Benchmark {
	return Benchmark{
		Name:  name,
		Iters: 100,
		Metrics: map[string]float64{
			"ns/op": ns, "B/op": bytes, "allocs/op": allocs,
		},
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 4096, 4)}}
	newSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1200, 4096, 5)}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile(".*")); code != 0 {
		t.Fatalf("exit = %d, want 0 (allocs +25%% is at, not over, threshold)\n%s", code, out.String())
	}
}

func TestRunFailsOnAllocsRegression(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 4096, 4)}}
	newSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 900, 4096, 6)}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile(".*")); code != 1 {
		t.Fatalf("exit = %d, want 1 (allocs +50%% over 25%% threshold)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report missing FAIL marker:\n%s", out.String())
	}
}

func TestRunIgnoresTimingRegression(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 4096, 4)}}
	newSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 5000, 4096, 4)}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile(".*")); code != 0 {
		t.Fatalf("exit = %d, want 0 (ns/op never gates)\n%s", code, out.String())
	}
}

func TestRunThresholdDisabled(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 4096, 0)}}
	newSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 4096, 50)}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, -1, regexp.MustCompile(".*")); code != 0 {
		t.Fatalf("exit = %d, want 0 with threshold disabled\n%s", code, out.String())
	}
}

func TestRunZeroBaselineAllocsRegression(t *testing.T) {
	// A benchmark that was 0 allocs/op and regresses to any nonzero count
	// must trip the gate: pctDelta reports +100% for 0 -> nonzero.
	oldSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 0, 0)}}
	newSnap := Snapshot{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 64, 1)}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile(".*")); code != 1 {
		t.Fatalf("exit = %d, want 1 (0 -> 1 allocs/op)\n%s", code, out.String())
	}
}

func TestRunNewAndRemovedBenchmarksReported(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkOld", 1000, 0, 0),
		bench("BenchmarkBoth", 1000, 0, 0),
	}}
	newSnap := Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkBoth", 1000, 0, 0),
		bench("BenchmarkNew", 1000, 4096, 99),
	}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile(".*")); code != 0 {
		t.Fatalf("exit = %d, want 0 (new benchmarks never gate)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkNew") || !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkOld") || !strings.Contains(out.String(), "removed since baseline") {
		t.Fatalf("removed benchmark not reported:\n%s", out.String())
	}
	// One-sided benchmarks must report their metric values, not just their
	// names — 99 allocs/op is BenchmarkNew's only row and must be visible.
	if !strings.Contains(out.String(), "99.0") {
		t.Fatalf("new benchmark's allocs/op value missing from report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1000.0") {
		t.Fatalf("removed benchmark's ns/op value missing from report:\n%s", out.String())
	}
}

func TestRunGateRestrictsFailures(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkMicro", 1000, 0, 0),
		bench("BenchmarkScenario", 1000, 4096, 100),
	}}
	newSnap := Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkMicro", 1000, 0, 0),
		bench("BenchmarkScenario", 1000, 4096, 200), // +100%, but ungated
	}}
	var out strings.Builder
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile("^BenchmarkMicro")); code != 0 {
		t.Fatalf("exit = %d, want 0 (regression outside -gate)\n%s", code, out.String())
	}
	out.Reset()
	newSnap.Benchmarks[0] = bench("BenchmarkMicro", 1000, 64, 1) // gated 0 -> 1
	if code := run(&out, oldSnap, newSnap, 25, regexp.MustCompile("^BenchmarkMicro")); code != 1 {
		t.Fatalf("exit = %d, want 1 (gated regression)\n%s", code, out.String())
	}
}
