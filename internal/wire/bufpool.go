package wire

import (
	"sync"
	"sync/atomic"

	"ds2hpc/internal/metrics"
	"ds2hpc/internal/telemetry"
)

// Buffer pooling for the streaming hot path. Every frame read and every
// coalesced frame write works out of a size-classed sync.Pool so that
// steady-state publish/deliver traffic with payloads under a pooled size
// class performs zero per-message heap allocations in the codec.
//
// Pool effectiveness is observable through the metrics registry:
//
//	wire.bufpool_hits    buffer requests served from a pool
//	wire.bufpool_misses  requests allocating fresh (cold pool or oversize)

var (
	bufPoolHits   = metrics.Default.Counter("wire.bufpool_hits")
	bufPoolMisses = metrics.Default.Counter("wire.bufpool_misses")
)

// bufClassSizes are the pooled capacity classes, smallest first. The top
// class covers a full default-size frame plus framing overhead; larger
// requests fall through to plain allocation.
var bufClassSizes = [...]int{1 << 10, 1 << 13, 1 << 16, DefaultFrameMax + 4096}

var bufPools [len(bufClassSizes)]sync.Pool

// bufClass returns the index of the smallest class with capacity >= n, or
// -1 when n exceeds every class.
func bufClass(n int) int {
	for i, size := range bufClassSizes {
		if n <= size {
			return i
		}
	}
	return -1
}

// getBuf returns a pointer to a zero-length buffer with capacity at least n.
// The pointer (not the slice) is what cycles through the pool so that
// recycling does not re-box the slice header on every put.
func getBuf(n int) *[]byte {
	class := bufClass(n)
	if class < 0 {
		bufPoolMisses.Inc()
		b := make([]byte, 0, n)
		return &b
	}
	if p, ok := bufPools[class].Get().(*[]byte); ok {
		bufPoolHits.Inc()
		*p = (*p)[:0]
		return p
	}
	bufPoolMisses.Inc()
	b := make([]byte, 0, bufClassSizes[class])
	return &b
}

// putBuf recycles a buffer obtained from getBuf. Buffers that outgrew every
// class (or were allocated oversize) are dropped for the GC.
func putBuf(p *[]byte) {
	if p == nil {
		return
	}
	class := -1
	for i, size := range bufClassSizes {
		if cap(*p) == size {
			class = i
			break
		}
	}
	if class < 0 {
		return
	}
	bufPools[class].Put(p)
}

// Loaned buffers: the exported ownership API over the size-classed pools.
// A loan is a zero-length buffer a caller owns until it releases it back;
// the broker's message bodies and the client's delivery bodies live on
// loans, so steady-state payload traffic recycles the same few buffers.
// Outstanding loaned capacity is observable as the telemetry gauge
// wire.loaned_bytes (it must return to its baseline when a workload
// drains — a rising floor is a refcount leak).

var loanedBytes atomic.Int64

func init() {
	telemetry.Default.GaugeFunc("wire.loaned_bytes", LoanedBytes)
}

// LoanBuf loans a zero-length pooled buffer with capacity at least n. The
// caller owns it until ReleaseBuf (or AbandonBuf); it must not be grown
// beyond its capacity, or the pool accounting and recycling both break.
func LoanBuf(n int) *[]byte {
	p := getBuf(n)
	loanedBytes.Add(int64(cap(*p)))
	return p
}

// ReleaseBuf returns a loaned buffer to its pool. Safe on nil.
func ReleaseBuf(p *[]byte) {
	if p == nil {
		return
	}
	loanedBytes.Add(-int64(cap(*p)))
	putBuf(p)
}

// AbandonBuf removes a loan from the outstanding accounting without
// recycling it: the buffer's ownership has escaped (e.g. an application
// retained a delivery body across a reconnect), so it is left to the
// garbage collector rather than reused under the holder.
func AbandonBuf(p *[]byte) {
	if p == nil {
		return
	}
	loanedBytes.Add(-int64(cap(*p)))
}

// LoanedBytes reports the total capacity currently out on loan via
// LoanBuf — the "pooled bytes outstanding" telemetry gauge source.
func LoanedBytes() int64 { return loanedBytes.Load() }

// writerPool recycles frame-building Writers across messages. Writers whose
// buffers grew beyond maxPooledWriterBytes are dropped rather than pinned.
var writerPool = sync.Pool{
	New: func() any { return &Writer{buf: make([]byte, 0, 4096)} },
}

// maxPooledWriterBytes caps the buffer capacity a recycled Writer may keep.
// It must comfortably exceed a batch writer's flush threshold plus one
// maximum-size frame, so the delivery batching path — the workload writer
// pooling exists for — still recycles its writers.
const maxPooledWriterBytes = 1 << 20

// GetWriter returns a reset Writer from the pool. Callers must return it
// with PutWriter once the encoded bytes have been flushed to the wire; the
// returned buffer from Bytes is invalid after PutWriter.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter recycles a Writer obtained from GetWriter.
func PutWriter(w *Writer) {
	if w == nil {
		return
	}
	// Error paths can put a writer back without flushing; make sure no
	// borrowed body slices stay pinned inside the pool.
	w.dropBorrows()
	if cap(w.buf) > maxPooledWriterBytes {
		return
	}
	writerPool.Put(w)
}
