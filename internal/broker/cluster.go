package broker

// Cluster integration. A broker node participates in a clustered data
// plane through a ClusterHook the owner installs in Config.Cluster. The
// broker stays cluster-agnostic: it only asks the hook three questions —
// who masters a queue, how to get a declare to the master, and how to
// forward a publish there — and reports the queues it masters back. The
// hook implementation (placement ring, metadata directory, federation
// links) lives in internal/cluster.
//
// Routing policy at the dispatch points:
//
//   - queue.declare for a remotely-mastered queue is ensured on the
//     master over the federation link and answered locally, so declares
//     are location-transparent.
//   - basic.consume / basic.get for a remotely-mastered queue answer
//     with a connection-level redirect (connection.close 302, reply-text
//     carrying the master's address): consumers must sit on the master
//     to get zero-copy deliveries, so the client re-dials rather than
//     the broker proxying a delivery stream.
//   - basic.publish to the default exchange whose routing key is a
//     remotely-mastered queue is forwarded over the federation link,
//     confirm-bridged: the producer's ack is withheld until the master
//     confirms. Publishes through named exchanges route locally —
//     bindings are node-local state.
type ClusterHook interface {
	// Lookup answers the master for a queue: its client-facing address
	// and whether this node is the master. Unregistered queues resolve
	// through the placement ring.
	Lookup(vhost, queue string) (addr string, local bool)
	// RegisterQueue records that this node masters the queue.
	RegisterQueue(vhost, queue string, durable bool)
	// EnsureRemoteQueue declares the queue on its (remote) master and
	// waits for the declare-ok.
	EnsureRemoteQueue(vhost, queue string, durable bool) error
	// ForwardPublish forwards a default-exchange publish to the queue's
	// master. The callee takes its own reference on m for the duration
	// of the forward (the caller's reference only covers the call). When
	// target is non-nil the forward is confirm-bridged: the master's
	// ack/nack for this message is relayed via target.ClusterConfirm with
	// the caller's seq. A non-nil error means the forward could not even
	// be attempted (no link and the master is unreachable).
	ForwardPublish(vhost, queue string, m *Message, target ConfirmTarget, seq uint64) error
	// NoteRedirect records that this node answered an operation on the
	// queue with a connection-level redirect (telemetry only).
	NoteRedirect(vhost, queue string)
	// Replicated reports whether this node masters the queue with live
	// mirrors — whether a local publish must go through ReplicateAppend
	// so its confirm is withheld until the in-sync set has appended.
	// Implementations keep this an atomic fast path: on an R=1 cluster it
	// must cost nothing on the per-publish hot path.
	Replicated(vhost, queue string) bool
	// ReplicateAppend streams one locally appended publish (at segment-log
	// offset off) to the queue's mirrors. The producer's confirm (seq on
	// target) is withheld until every in-sync mirror has appended the
	// record, or until lagging mirrors are evicted from the in-sync set —
	// the callee ALWAYS eventually resolves target.ClusterConfirm(seq, _).
	// The callee takes its own message references for the ships; the
	// caller's reference only covers the call.
	ReplicateAppend(vhost, queue string, off uint64, m *Message, target ConfirmTarget, seq uint64)
	// ReplicateSettle streams durably committed settlements (ack records)
	// to the queue's mirrors: one offset (offs nil) or a batch
	// (off == OffNone). Fire-and-forget — consumer acks never wait on
	// mirrors; a mirror that misses acks merely redelivers, which
	// at-least-once permits.
	ReplicateSettle(vhost, queue string, off uint64, offs []uint64)
	// ApplyMirror applies one received mirror-stream frame (a publish to
	// one of the reserved "!mirror.*" exchanges) to this node's standby
	// replica of the queue. The returned error nacks the frame, telling
	// the master this mirror diverged.
	ApplyMirror(vhost, exchange, key string, m *Message) error
}

// Reserved mirror-stream exchange names. The replication layer rides the
// existing confirm-mode federation links: a mirror frame is a normal
// AMQP publish whose exchange names the operation and whose routing key
// carries the master-assigned offset as a 16-hex-digit prefix before the
// queue name. '!' is unreachable from clients (invalid in declared
// exchange names here), so the namespace cannot collide with user
// exchanges.
const (
	// MirrorDataExchange frames a data record: routing key
	// "%016x<queue>", body and properties are the message.
	MirrorDataExchange = "!mirror.data"
	// MirrorAckExchange frames a settle batch: routing key "<queue>"
	// (no offset prefix), body is N big-endian u64 offsets.
	MirrorAckExchange = "!mirror.ack"
	// MirrorResetExchange wipes the standby replica before a fresh
	// catch-up: routing key "<queue>", empty body.
	MirrorResetExchange = "!mirror.reset"
)

// IsMirrorExchange reports whether name addresses the mirror stream.
func IsMirrorExchange(name string) bool {
	return len(name) > 0 && name[0] == '!'
}

// MirrorMarker is the file the replication layer drops inside a standby
// replica's segment-log directory. Server.recoverDurable skips marked
// directories — a mirror is not a queue this node masters; promotion
// removes the marker and only then does a declare recover the log.
const MirrorMarker = "MIRROR"

// ConfirmTarget receives the bridged confirm verdict for a forwarded
// publish. Implementations must be safe to call from the federation
// link's read loop.
type ConfirmTarget interface {
	ClusterConfirm(seq uint64, ok bool)
}
