package broker

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ringMsg(i int) *Message {
	return &Message{RoutingKey: fmt.Sprintf("m%d", i)}
}

func TestRingFIFOAcrossChunkBoundaries(t *testing.T) {
	var r msgRing
	n := ringChunkSize*3 + 7
	for i := 0; i < n; i++ {
		r.pushBack(qitem{msg: ringMsg(i)})
	}
	if r.len() != n {
		t.Fatalf("len = %d, want %d", r.len(), n)
	}
	for i := 0; i < n; i++ {
		it := r.popFront()
		if want := fmt.Sprintf("m%d", i); it.msg.RoutingKey != want {
			t.Fatalf("pop %d = %q, want %q", i, it.msg.RoutingKey, want)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d", r.len())
	}
}

func TestRingPushFrontOrdering(t *testing.T) {
	var r msgRing
	// Fill past one chunk, then push-front more than a chunk's worth so
	// front growth crosses a chunk boundary too.
	for i := 0; i < ringChunkSize+3; i++ {
		r.pushBack(qitem{msg: ringMsg(i)})
	}
	for i := 1; i <= ringChunkSize+5; i++ {
		r.pushFront(qitem{msg: ringMsg(-i), redelivered: true})
	}
	// Front entries come out in reverse push-front order...
	for i := ringChunkSize + 5; i >= 1; i-- {
		it := r.popFront()
		if want := fmt.Sprintf("m%d", -i); it.msg.RoutingKey != want || !it.redelivered {
			t.Fatalf("front pop = %q redelivered=%v, want %q true", it.msg.RoutingKey, it.redelivered, want)
		}
	}
	// ...followed by the original FIFO tail.
	for i := 0; i < ringChunkSize+3; i++ {
		it := r.popFront()
		if want := fmt.Sprintf("m%d", i); it.msg.RoutingKey != want {
			t.Fatalf("tail pop = %q, want %q", it.msg.RoutingKey, want)
		}
	}
}

func TestRingEmptyDrainReuse(t *testing.T) {
	var r msgRing
	// Oscillate around empty: the resident chunk must absorb the churn in
	// both directions without losing entries.
	for cycle := 0; cycle < 2*ringChunkSize; cycle++ {
		r.pushBack(qitem{msg: ringMsg(cycle)})
		if it := r.popFront(); it.msg.RoutingKey != fmt.Sprintf("m%d", cycle) {
			t.Fatalf("cycle %d: wrong entry %q", cycle, it.msg.RoutingKey)
		}
		r.pushFront(qitem{msg: ringMsg(cycle)})
		if it := r.popFront(); it.msg.RoutingKey != fmt.Sprintf("m%d", cycle) {
			t.Fatalf("cycle %d: wrong front entry %q", cycle, it.msg.RoutingKey)
		}
		if r.len() != 0 {
			t.Fatalf("cycle %d: len = %d", cycle, r.len())
		}
	}
}

// TestRingChunkRecycling checks popFront pools drained interior chunks:
// a deep fill-and-drain leaves at most the resident chunk behind.
func TestRingChunkRecycling(t *testing.T) {
	var r msgRing
	for i := 0; i < ringChunkSize*8; i++ {
		r.pushBack(qitem{msg: ringMsg(i)})
	}
	for i := 0; i < ringChunkSize*8; i++ {
		r.popFront()
	}
	chunks := 0
	for c := r.head; c != nil; c = c.next {
		chunks++
	}
	if chunks > 1 {
		t.Fatalf("%d chunks retained after drain, want <= 1", chunks)
	}
}

// TestQuickRingMatchesSliceDeque cross-checks the chunked ring against a
// naive slice deque over random front/back operation sequences.
func TestQuickRingMatchesSliceDeque(t *testing.T) {
	f := func(ops []uint8) bool {
		var r msgRing
		var ref []*Message
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // pushBack (biased: publishes dominate)
				m := ringMsg(next)
				next++
				r.pushBack(qitem{msg: m})
				ref = append(ref, m)
			case 2: // pushFront
				m := ringMsg(next)
				next++
				r.pushFront(qitem{msg: m})
				ref = append([]*Message{m}, ref...)
			case 3: // popFront
				if len(ref) == 0 {
					continue
				}
				it := r.popFront()
				if it.msg != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if r.len() != len(ref) {
				return false
			}
		}
		for len(ref) > 0 {
			if r.popFront().msg != ref[0] {
				return false
			}
			ref = ref[1:]
		}
		return r.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
